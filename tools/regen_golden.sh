#!/usr/bin/env bash
# Regenerate the golden trace fixtures in tests/engine/golden/ from the
# current source tree. Use after an intentional change to the engines'
# observable schedule (and say so in the commit message); the golden tests
# exist to make unintentional changes loud.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target golden_trace_test

G10_REGEN_GOLDEN=1 "$BUILD_DIR"/tests/golden_trace_test

echo
echo "fixture changes:"
git diff --stat -- tests/engine/golden || true
