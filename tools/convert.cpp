// g10_convert — converts run traces between the text log format and the
// binary columnar `.g10t` format (DESIGN.md §16):
//
//   g10_convert --in <trace> --out <trace>
//               [--to auto|text|binary] [--block-records N]
//               [--verify] [--lenient] [--threads N]
//
// The input format is sniffed from the file's bytes (the .g10t magic, not
// the extension); --to auto converts to the opposite format. Converting
// text -> binary parses once and writes the columnar blocks; binary ->
// text decodes every block and re-renders the canonical log. Both
// directions are lossless: a text log converted to .g10t and back is byte-
// identical (comments and blank lines excepted — the parser drops those,
// so the round trip canonicalizes them away).
//
// --verify re-reads the written output, renders both sides through the
// canonical log writer, and fails loudly on any byte difference — the
// paranoid mode for archiving traces.
//
// --lenient skips malformed text lines / corrupt binary blocks instead of
// stopping at the first one (the converted file then holds the surviving
// records).
//
// Exit codes (src/common/exit_codes.hpp): 0 success, 1 internal error or
// --verify mismatch, 2 bad arguments, 3 unreadable/corrupt input (including
// a truncated or corrupt .g10t header).
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/exit_codes.hpp"
#include "common/strings.hpp"
#include "trace/g10t_io.hpp"
#include "trace/log_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10 {
namespace {

struct Args {
  std::string in_path;
  std::string out_path;
  trace::TraceFormat to = trace::TraceFormat::kAuto;
  std::size_t block_records = trace::kG10tDefaultBlockRecords;
  bool verify = false;
  bool lenient = false;
  int threads = 0;
};

int usage() {
  std::cerr << "usage: g10_convert --in <trace> --out <trace>\n"
               "                   [--to auto|text|binary] "
               "[--block-records N]\n"
               "                   [--verify] [--lenient] [--threads N]\n";
  return kExitBadArgs;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--verify") {
      args.verify = true;
      continue;
    }
    if (arg == "--lenient") {
      args.lenient = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const std::string value = argv[++i];
    if (arg == "--in") {
      args.in_path = value;
    } else if (arg == "--out") {
      args.out_path = value;
    } else if (arg == "--to") {
      if (value == "auto") {
        args.to = trace::TraceFormat::kAuto;
      } else if (value == "text") {
        args.to = trace::TraceFormat::kText;
      } else if (value == "binary") {
        args.to = trace::TraceFormat::kBinary;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--block-records") {
      const auto n = parse_int(value);
      if (!n || *n < 1) return std::nullopt;
      args.block_records = static_cast<std::size_t>(*n);
    } else if (arg == "--threads") {
      const auto n = parse_int(value);
      if (!n || *n < 0) return std::nullopt;
      args.threads = static_cast<int>(*n);
    } else {
      return std::nullopt;
    }
  }
  if (args.in_path.empty() || args.out_path.empty()) return std::nullopt;
  return args;
}

/// Renders the canonical text form (what write_log emits) of a parsed log.
std::string render_canonical(const trace::ParsedLog& log) {
  std::ostringstream out;
  trace::write_log(out, log.phase_events, log.blocking_events, log.samples,
                   log.meta);
  return std::move(out).str();
}

int run(const Args& args) {
  trace::TraceReadOptions read_options;
  read_options.recover = args.lenient;
  read_options.threads = args.threads;
  trace::TraceReader::OpenResult opened =
      trace::TraceReader::open(args.in_path, read_options);
  if (!opened.ok()) {
    std::cerr << *opened.error << '\n';
    return kExitParseFailure;
  }
  trace::TraceReader& reader = *opened.reader;

  trace::ParseResult parsed = reader.read();
  if (parsed.error && parsed.error->line_number == 0) {
    std::cerr << parsed.error->message << '\n';
    return kExitParseFailure;
  }
  if (!parsed.ok() && !args.lenient) {
    std::cerr << args.in_path << ": " << parsed.error_count << " damaged "
              << (reader.is_binary() ? "block(s)" : "line(s)")
              << "; re-run with --lenient to convert the rest:\n";
    for (const auto& error : parsed.errors) {
      std::cerr << "  " << error.message << '\n';
    }
    return kExitParseFailure;
  }
  if (parsed.error_count > 0) {
    std::cout << "lenient: skipped " << parsed.error_count << " damaged "
              << (reader.is_binary() ? "block(s)" : "line(s)") << '\n';
  }

  trace::TraceFormat to = args.to;
  if (to == trace::TraceFormat::kAuto) {
    to = reader.is_binary() ? trace::TraceFormat::kText
                            : trace::TraceFormat::kBinary;
  }

  if (to == trace::TraceFormat::kBinary) {
    trace::G10tWriteOptions write_options;
    write_options.block_records = args.block_records;
    std::string error;
    if (!trace::write_g10t_file(args.out_path, parsed.log, write_options,
                                &error)) {
      std::cerr << error << '\n';
      return kExitInternalError;
    }
  } else {
    std::ofstream out(args.out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << args.out_path << " for writing\n";
      return kExitInternalError;
    }
    trace::write_log(out, parsed.log.phase_events,
                     parsed.log.blocking_events, parsed.log.samples,
                     parsed.log.meta);
    out.flush();
    if (!out) {
      std::cerr << "write to " << args.out_path << " failed\n";
      return kExitInternalError;
    }
  }

  std::cout << "converted " << args.in_path << " ("
            << (reader.is_binary() ? "binary" : "text") << ") -> "
            << args.out_path << " ("
            << (to == trace::TraceFormat::kBinary ? "binary" : "text")
            << "): " << parsed.log.phase_events.size() << " phase events, "
            << parsed.log.blocking_events.size() << " blocking events, "
            << parsed.log.samples.size() << " samples";
  if (to == trace::TraceFormat::kBinary) {
    trace::TraceReader::OpenResult written =
        trace::TraceReader::open(args.out_path, {});
    if (written.ok() && written.reader->structure() != nullptr) {
      const trace::G10tStructure& structure = *written.reader->structure();
      std::cout << ", " << structure.index.size() << " blocks, "
                << structure.symbols.size() << " symbols, "
                << structure.header.file_size << " bytes";
    }
  }
  std::cout << '\n';

  if (!args.verify) return kExitOk;

  // Round-trip verification: the written file, read back, must render to
  // the exact bytes the input's records render to.
  trace::TraceReadOptions verify_options;
  verify_options.threads = args.threads;
  trace::ParseResult reread =
      trace::read_trace_file(args.out_path, verify_options);
  if (!reread.ok()) {
    std::cerr << "verify: cannot re-read " << args.out_path << ": "
              << reread.error->message << '\n';
    return kExitInternalError;
  }
  const std::string original = render_canonical(parsed.log);
  const std::string round_tripped = render_canonical(reread.log);
  if (original != round_tripped) {
    std::cerr << "verify: round trip is NOT byte-identical ("
              << original.size() << " vs " << round_tripped.size()
              << " canonical bytes)\n";
    return kExitInternalError;
  }
  std::cout << "verify: round trip byte-identical (" << original.size()
            << " canonical bytes)\n";
  return kExitOk;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return g10::kExitInternalError;
  }
}
