// g10_run — run a workload on one of the bundled engines and dump the
// artifacts a real deployment would collect: the execution/blocking log,
// the monitoring samples, and the matching expert model file.
//
//   g10_run --engine pregel|gas --algorithm pagerank|bfs|wcc|cdlp|sssp
//           --dataset rmat:<scale>|datagen:<vertices> --out <dir>
//           [--workers N] [--cores N] [--iterations K] [--seed S]
//           [--monitor-ms MS] [--sync-bug] [--faults <spec>]
//
// --faults injects failures from a deterministic schedule, e.g.
//   crash:w2@40%              worker 2 crashes 40% into the nominal run
//   slow:w1@2s+3s:x0.5        worker 1 at half speed for 3s starting at 2s
//   nic:w0@10%+30%:x0.25:loss=0.2   NIC degraded + 20% message loss
//   drop:w3@30%+20%           worker 3's monitoring samples dropped
// Multiple events are comma- or semicolon-separated. The gas engine
// supports only the slow/drop kinds.
//
// The dumped directory can be analyzed offline with g10_analyze.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "algorithms/programs.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "sim/fault_injector.hpp"
#include "trace/log_io.hpp"

namespace g10 {
namespace {

struct Args {
  std::string engine = "pregel";
  std::string algorithm = "pagerank";
  std::string dataset = "rmat:14";
  std::string out = "g10_run_out";
  int workers = 4;
  int cores = 8;
  int iterations = 20;
  std::uint64_t seed = 2020;
  DurationNs monitor_interval = 400 * kMillisecond;
  bool sync_bug = false;
  std::string faults;
};

int usage() {
  std::cerr << "usage: g10_run --engine pregel|gas "
               "--algorithm pagerank|bfs|wcc|cdlp|sssp\n"
               "               --dataset rmat:<scale>|datagen:<vertices> "
               "--out <dir>\n"
               "               [--workers N] [--cores N] [--iterations K]\n"
               "               [--seed S] [--monitor-ms MS] [--sync-bug]\n"
               "               [--faults <spec>]  e.g. crash:w2@40%\n";
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--sync-bug") {
      args.sync_bug = true;
      continue;
    }
    const auto v = value();
    if (!v) return std::nullopt;
    if (arg == "--engine") {
      args.engine = *v;
    } else if (arg == "--algorithm") {
      args.algorithm = *v;
    } else if (arg == "--dataset") {
      args.dataset = *v;
    } else if (arg == "--out") {
      args.out = *v;
    } else if (arg == "--workers") {
      args.workers = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--cores") {
      args.cores = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--iterations") {
      args.iterations = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(parse_int(*v).value_or(2020));
    } else if (arg == "--monitor-ms") {
      args.monitor_interval = parse_int(*v).value_or(400) * kMillisecond;
    } else if (arg == "--faults") {
      args.faults = *v;
    } else {
      return std::nullopt;
    }
  }
  if (args.workers <= 0 || args.cores <= 0 || args.iterations <= 0) {
    return std::nullopt;
  }
  return args;
}

graph::Graph make_dataset(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "rmat") {
    graph::RmatParams params;
    params.scale = static_cast<int>(parse_int(parts[1]).value_or(14));
    return generate_rmat(params);
  }
  if (parts.size() == 2 && parts[0] == "datagen") {
    graph::DatagenParams params;
    params.vertices = static_cast<graph::VertexId>(
        parse_int(parts[1]).value_or(16384));
    return generate_datagen_like(params);
  }
  throw std::runtime_error("unknown dataset spec: " + spec);
}

int run(const Args& args) {
  sim::FaultSpec fault_spec;
  if (!args.faults.empty()) {
    std::string error;
    const auto parsed = sim::FaultSpec::parse(args.faults, &error);
    if (!parsed) {
      std::cerr << "bad --faults spec: " << error << '\n';
      return 2;
    }
    fault_spec = *parsed;
    try {
      fault_spec.validate(args.workers);
    } catch (const CheckError& e) {
      std::cerr << "bad --faults spec: " << e.what() << '\n';
      return 2;
    }
  }

  graph::Graph graph = make_dataset(args.dataset);
  if (args.algorithm == "sssp") {
    graph::assign_random_weights(graph, 1.0, 10.0, args.seed);
  }
  std::cout << "dataset: " << graph.vertex_count() << " vertices, "
            << graph.edge_count() << " edges\n";

  const algorithms::PageRank pagerank(args.iterations);
  const algorithms::Bfs bfs(1);
  const algorithms::Wcc wcc;
  const algorithms::Cdlp cdlp(args.iterations);
  const algorithms::Sssp sssp(1);

  trace::RunArtifacts artifacts;
  core::FrameworkModel framework;
  TimeNs fault_horizon = 0;
  if (args.engine == "pregel") {
    engine::PregelConfig cfg;
    cfg.cluster.machine_count = args.workers;
    cfg.cluster.machine.cores = args.cores;
    cfg.cluster.faults = fault_spec;
    cfg.seed = args.seed;
    const engine::PregelEngine engine(cfg);
    const std::map<std::string, const algorithms::PregelProgram*> programs{
        {"pagerank", &pagerank}, {"bfs", &bfs}, {"wcc", &wcc},
        {"cdlp", &cdlp}, {"sssp", &sssp}};
    const auto it = programs.find(args.algorithm);
    if (it == programs.end()) return usage();
    fault_horizon = engine.estimate_horizon(graph, *it->second);
    artifacts = engine.run(graph, *it->second);
    core::PregelModelParams params;
    params.cores = args.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    framework = core::make_pregel_model(params);
  } else if (args.engine == "gas") {
    if (fault_spec.has_kind(sim::FaultKind::kCrash) ||
        fault_spec.has_kind(sim::FaultKind::kNicDegrade)) {
      std::cerr << "the gas engine supports only slow/drop fault kinds\n";
      return 2;
    }
    engine::GasConfig cfg;
    cfg.cluster.machine_count = args.workers;
    cfg.cluster.machine.cores = args.cores;
    cfg.cluster.faults = fault_spec;
    cfg.seed = args.seed;
    cfg.sync_bug.enabled = args.sync_bug;
    const engine::GasEngine engine(cfg);
    const std::map<std::string, const algorithms::GasProgram*> programs{
        {"pagerank", &pagerank}, {"bfs", &bfs}, {"wcc", &wcc},
        {"cdlp", &cdlp}, {"sssp", &sssp}};
    const auto it = programs.find(args.algorithm);
    if (it == programs.end()) return usage();
    fault_horizon = engine.estimate_horizon(graph, *it->second);
    artifacts = engine.run(graph, *it->second);
    core::GasModelParams params;
    params.cores = args.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    framework = core::make_gas_model(params);
  } else {
    return usage();
  }

  auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, args.monitor_interval, artifacts.makespan);
  if (fault_spec.has_kind(sim::FaultKind::kSampleDrop)) {
    sim::FaultInjector dropout(fault_spec, args.seed);
    dropout.resolve(fault_horizon);
    const std::size_t before = samples.size();
    samples = monitor::apply_sampler_dropout(samples, dropout);
    std::cout << "sampler dropout: " << (before - samples.size()) << " of "
              << before << " samples lost\n";
  }

  std::filesystem::create_directories(args.out);
  {
    // A large stream buffer turns the many small record writes into a few
    // big ones; fault-injected runs can dump millions of records.
    std::vector<char> buffer(1 << 20);
    std::ofstream log;
    log.rdbuf()->pubsetbuf(buffer.data(),
                           static_cast<std::streamsize>(buffer.size()));
    log.open(args.out + "/run.log");
    trace::write_log(log, artifacts.phase_events, artifacts.blocking_events,
                     samples);
  }
  {
    std::ofstream model(args.out + "/model.g10");
    core::write_model(model, framework.execution, framework.resources,
                      framework.tuned_rules);
  }
  std::cout << "makespan: " << to_seconds(artifacts.makespan) << " s\n";
  std::cout << "wrote " << args.out << "/run.log ("
            << artifacts.phase_events.size() << " phase events, "
            << artifacts.blocking_events.size() << " blocking events, "
            << samples.size() << " samples) and " << args.out
            << "/model.g10\n";
  std::cout << "analyze with: g10_analyze --model " << args.out
            << "/model.g10 --log " << args.out << "/run.log";
  if (!fault_spec.empty()) {
    std::cout << " --lenient";
    std::cout << "\nfaults injected: " << fault_spec.to_string();
  }
  std::cout << '\n';
  return 0;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
