// g10_run — run a workload on one of the bundled engines and dump the
// artifacts a real deployment would collect: the execution/blocking log,
// the monitoring samples, and the matching expert model file.
//
//   g10_run --engine pregel|gas --algorithm pagerank|bfs|wcc|cdlp|sssp
//           --dataset rmat:<scale>|datagen:<vertices> --out <dir>
//           [--workers N] [--cores N] [--iterations K] [--seed S]
//           [--monitor-ms MS] [--sync-bug] [--faults <spec>]
//           [--retry-timeout-ms MS] [--retry-max-attempts N]
//           [--heartbeat-ms MS] [--heartbeat-timeout-ms MS]
//           [--crash-log reconciled|truncated]
//           [--batch-bytes B] [--batch-flush-us US]
//           [--det-check N]
//
// --batch-bytes sets the per-destination coalescing threshold for remote
// message delivery (0 disables batching entirely and restores per-chunk
// sends); --batch-flush-us bounds how long a partial batch may sit before
// the time-based flush pushes it out.
//
// --faults injects failures from a deterministic schedule, e.g.
//   crash:w2@40%              worker 2 crashes 40% into the nominal run
//   slow:w1@2s+3s:x0.5        worker 1 at half speed for 3s starting at 2s
//   nic:w0@10%+30%:x0.25:loss=0.2   NIC degraded + 20% message loss
//   part:w0-w2@30%+20%        w0 and w2 cannot exchange messages for a while
//   drop:w3@30%+20%           worker 3's monitoring samples dropped
// Multiple events are comma- or semicolon-separated. Both engines ride out
// every kind via the reliable channel (backoff retransmit), the heartbeat
// failure detector, and checkpoint/restart recovery; the --retry-* and
// --heartbeat-* knobs tune those substrates. The injected spec is recorded
// in the log as a META record so offline tools can cross-check the trace.
//
// The dumped directory can be analyzed offline with g10_analyze.
//
// --det-check N is the runtime determinism oracle (DESIGN.md §14): instead
// of dumping logs, it executes the workload N times in one process, folds
// every artifact stream of each execution into per-phase-path FNV hashes
// (trace/det_fold.hpp), and compares. The engines are serial discrete-event
// simulators, so repeated in-process executions catch entropy, ambient
// time, and address/allocation-order nondeterminism (heap layout differs
// between executions) — anything that makes a "deterministic" run disagree
// with itself. On divergence it names the first divergent phase path and
// exits 5 (analysis error).
//
// SIGTERM/SIGINT cancel the run at the next stage boundary (dataset →
// engine → samples → dump; between executions under --det-check): whatever
// artifact files were already completely written stay flushed on disk, and
// the process exits kExitInterrupted (6).
//
// Exit codes (src/common/exit_codes.hpp): 0 success, 2 bad arguments,
// 3 unparseable --faults/--dataset spec, 4 fault abort (spec inconsistent
// with the cluster, or the engine aborted under active faults),
// 6 when interrupted by SIGTERM/SIGINT, 1 internal.
#include <signal.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "algorithms/programs.hpp"
#include "common/check.hpp"
#include "common/det_hash.hpp"
#include "common/exit_codes.hpp"
#include "common/strings.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "sim/fault_injector.hpp"
#include "trace/det_fold.hpp"
#include "trace/g10t_io.hpp"
#include "trace/log_io.hpp"

namespace g10 {
namespace {

// Raised by the SIGTERM/SIGINT handler; polled at stage boundaries. The
// engines are serial discrete-event simulators, so a boundary check is the
// cancellation granularity — there is no partial engine state to unwind.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_release); }

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

/// True (after printing the diagnostic) when the run should wind down.
/// Completed artifact files are already flushed by their stream destructors.
bool interrupted_at(const char* boundary) {
  if (!g_stop.load(std::memory_order_acquire)) return false;
  std::cerr << "interrupted before " << boundary
            << "; completed artifacts are flushed\n";
  return true;
}

struct Args {
  std::string engine = "pregel";
  std::string algorithm = "pagerank";
  std::string dataset = "rmat:14";
  std::string out = "g10_run_out";
  int workers = 4;
  int cores = 8;
  int iterations = 20;
  std::uint64_t seed = 2020;
  DurationNs monitor_interval = 400 * kMillisecond;
  bool sync_bug = false;
  std::string faults;
  std::optional<double> retry_timeout_ms;
  std::optional<int> retry_max_attempts;
  std::optional<double> heartbeat_ms;
  std::optional<double> heartbeat_timeout_ms;
  std::optional<double> batch_bytes;
  std::optional<double> batch_flush_us;
  engine::CrashLogStyle crash_log = engine::CrashLogStyle::kReconciled;
  int det_check = 0;  ///< 0 = off; otherwise number of executions (>= 2)
  std::string trace_format = "text";  ///< text | binary | both
};

int usage() {
  std::cerr << "usage: g10_run --engine pregel|gas "
               "--algorithm pagerank|bfs|wcc|cdlp|sssp\n"
               "               --dataset rmat:<scale>|datagen:<vertices> "
               "--out <dir>\n"
               "               [--workers N] [--cores N] [--iterations K]\n"
               "               [--seed S] [--monitor-ms MS] [--sync-bug]\n"
               "               [--faults <spec>]  e.g. crash:w2@40%\n"
               "               [--retry-timeout-ms MS] "
               "[--retry-max-attempts N]\n"
               "               [--heartbeat-ms MS] "
               "[--heartbeat-timeout-ms MS]\n"
               "               [--crash-log reconciled|truncated]\n"
               "               [--batch-bytes B] [--batch-flush-us US]\n"
               "               [--det-check N] "
               "[--trace-format text|binary|both]\n";
  return kExitBadArgs;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--sync-bug") {
      args.sync_bug = true;
      continue;
    }
    const auto v = value();
    if (!v) return std::nullopt;
    if (arg == "--engine") {
      args.engine = *v;
    } else if (arg == "--algorithm") {
      args.algorithm = *v;
    } else if (arg == "--dataset") {
      args.dataset = *v;
    } else if (arg == "--out") {
      args.out = *v;
    } else if (arg == "--workers") {
      args.workers = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--cores") {
      args.cores = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--iterations") {
      args.iterations = static_cast<int>(parse_int(*v).value_or(0));
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(parse_int(*v).value_or(2020));
    } else if (arg == "--monitor-ms") {
      args.monitor_interval = parse_int(*v).value_or(400) * kMillisecond;
    } else if (arg == "--faults") {
      args.faults = *v;
    } else if (arg == "--retry-timeout-ms") {
      const auto ms = parse_double(*v);
      if (!ms || *ms <= 0.0) return std::nullopt;
      args.retry_timeout_ms = *ms;
    } else if (arg == "--retry-max-attempts") {
      const auto n = parse_int(*v);
      if (!n || *n < 1) return std::nullopt;
      args.retry_max_attempts = static_cast<int>(*n);
    } else if (arg == "--heartbeat-ms") {
      const auto ms = parse_double(*v);
      if (!ms || *ms <= 0.0) return std::nullopt;
      args.heartbeat_ms = *ms;
    } else if (arg == "--heartbeat-timeout-ms") {
      const auto ms = parse_double(*v);
      if (!ms || *ms <= 0.0) return std::nullopt;
      args.heartbeat_timeout_ms = *ms;
    } else if (arg == "--batch-bytes") {
      const auto b = parse_double(*v);
      if (!b || *b < 0.0) return std::nullopt;
      args.batch_bytes = *b;  // 0 disables batching
    } else if (arg == "--batch-flush-us") {
      const auto us = parse_double(*v);
      if (!us || *us <= 0.0) return std::nullopt;
      args.batch_flush_us = *us;
    } else if (arg == "--det-check") {
      const auto n = parse_int(*v);
      if (!n || *n < 2) return std::nullopt;
      args.det_check = static_cast<int>(*n);
    } else if (arg == "--crash-log") {
      if (*v == "reconciled") {
        args.crash_log = engine::CrashLogStyle::kReconciled;
      } else if (*v == "truncated") {
        args.crash_log = engine::CrashLogStyle::kTruncated;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--trace-format") {
      if (*v != "text" && *v != "binary" && *v != "both") return std::nullopt;
      args.trace_format = *v;
    } else {
      return std::nullopt;
    }
  }
  if (args.workers <= 0 || args.cores <= 0 || args.iterations <= 0) {
    return std::nullopt;
  }
  return args;
}

/// Folds the retry/heartbeat command-line knobs into an engine config (both
/// engine configs expose the same `retry`/`heartbeat`/`crash_log` members).
template <typename Config>
void apply_fault_knobs(const Args& args, Config& cfg) {
  if (args.retry_timeout_ms) {
    cfg.retry.timeout_seconds = *args.retry_timeout_ms / 1e3;
  }
  if (args.retry_max_attempts) cfg.retry.max_attempts = *args.retry_max_attempts;
  if (args.heartbeat_ms) {
    cfg.heartbeat.interval_seconds = *args.heartbeat_ms / 1e3;
  }
  if (args.heartbeat_timeout_ms) {
    cfg.heartbeat.timeout_seconds = *args.heartbeat_timeout_ms / 1e3;
  }
  if (args.batch_bytes) cfg.batch.max_batch_bytes = *args.batch_bytes;
  if (args.batch_flush_us) {
    cfg.batch.flush_after =
        static_cast<DurationNs>(*args.batch_flush_us * 1e3);
  }
  cfg.crash_log = args.crash_log;
}

graph::Graph make_dataset(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "rmat") {
    graph::RmatParams params;
    params.scale = static_cast<int>(parse_int(parts[1]).value_or(14));
    return generate_rmat(params);
  }
  if (parts.size() == 2 && parts[0] == "datagen") {
    graph::DatagenParams params;
    params.vertices = static_cast<graph::VertexId>(
        parse_int(parts[1]).value_or(16384));
    return generate_datagen_like(params);
  }
  throw std::runtime_error("unknown dataset spec: " + spec);
}

/// One engine execution's outputs, shared by the normal dump path and the
/// --det-check repetition loop.
struct EngineRun {
  trace::RunArtifacts artifacts;
  core::FrameworkModel framework;
  TimeNs fault_horizon = 0;
};

/// Runs the configured engine once. Returns kExitOk and fills `out`, or the
/// exit code to terminate with.
int execute_engine(const Args& args, const sim::FaultSpec& fault_spec,
                   const graph::Graph& graph, EngineRun& out) {
  const algorithms::PageRank pagerank(args.iterations);
  const algorithms::Bfs bfs(1);
  const algorithms::Wcc wcc;
  const algorithms::Cdlp cdlp(args.iterations);
  const algorithms::Sssp sssp(1);

  if (args.engine == "pregel") {
    engine::PregelConfig cfg;
    cfg.cluster.machine_count = args.workers;
    cfg.cluster.machine.cores = args.cores;
    cfg.cluster.faults = fault_spec;
    cfg.seed = args.seed;
    apply_fault_knobs(args, cfg);
    const engine::PregelEngine engine(cfg);
    const std::map<std::string, const algorithms::PregelProgram*> programs{
        {"pagerank", &pagerank}, {"bfs", &bfs}, {"wcc", &wcc},
        {"cdlp", &cdlp}, {"sssp", &sssp}};
    const auto it = programs.find(args.algorithm);
    if (it == programs.end()) return usage();
    out.fault_horizon = engine.estimate_horizon(graph, *it->second);
    try {
      out.artifacts = engine.run(graph, *it->second);
    } catch (const std::exception& e) {
      if (!fault_spec.empty()) {
        std::cerr << "engine aborted under injected faults: " << e.what()
                  << '\n';
        return kExitFaultAbort;
      }
      throw;
    }
    core::PregelModelParams params;
    params.cores = args.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    out.framework = core::make_pregel_model(params);
  } else if (args.engine == "gas") {
    engine::GasConfig cfg;
    cfg.cluster.machine_count = args.workers;
    cfg.cluster.machine.cores = args.cores;
    cfg.cluster.faults = fault_spec;
    cfg.seed = args.seed;
    cfg.sync_bug.enabled = args.sync_bug;
    apply_fault_knobs(args, cfg);
    const engine::GasEngine engine(cfg);
    const std::map<std::string, const algorithms::GasProgram*> programs{
        {"pagerank", &pagerank}, {"bfs", &bfs}, {"wcc", &wcc},
        {"cdlp", &cdlp}, {"sssp", &sssp}};
    const auto it = programs.find(args.algorithm);
    if (it == programs.end()) return usage();
    out.fault_horizon = engine.estimate_horizon(graph, *it->second);
    try {
      out.artifacts = engine.run(graph, *it->second);
    } catch (const std::exception& e) {
      if (!fault_spec.empty()) {
        std::cerr << "engine aborted under injected faults: " << e.what()
                  << '\n';
        return kExitFaultAbort;
      }
      throw;
    }
    core::GasModelParams params;
    params.cores = args.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    out.framework = core::make_gas_model(params);
  } else {
    return usage();
  }
  return kExitOk;
}

/// Derives the monitoring samples the normal dump path would write,
/// including the seeded sampler dropout when the spec injects it.
std::vector<trace::MonitoringSampleRecord> derive_samples(
    const Args& args, const sim::FaultSpec& fault_spec, const EngineRun& run,
    bool verbose) {
  auto samples = monitor::sample_ground_truth(run.artifacts.ground_truth,
                                              args.monitor_interval,
                                              run.artifacts.makespan);
  if (fault_spec.has_kind(sim::FaultKind::kSampleDrop)) {
    sim::FaultInjector dropout(fault_spec, args.seed);
    dropout.resolve(run.fault_horizon);
    const std::size_t before = samples.size();
    samples = monitor::apply_sampler_dropout(samples, dropout);
    if (verbose) {
      std::cout << "sampler dropout: " << (before - samples.size()) << " of "
                << before << " samples lost\n";
    }
  }
  return samples;
}

/// Test hook for the determinism oracle: when G10_DET_INJECT=<substring> is
/// set, the hash of the first phase path containing the substring is
/// perturbed in the second execution only, so tests can verify the oracle
/// names the right phase and exits 5. (Tool mains are srclint's sanctioned
/// home for getenv.)
void maybe_inject_divergence(DetSummary& summary, int execution) {
  const char* target = std::getenv("G10_DET_INJECT");
  if (target == nullptr || *target == '\0' || execution != 1) return;
  for (DetSummary::Entry& entry : summary.phases) {
    if (entry.path.find(target) != std::string::npos) {
      entry.hash ^= 1;
      summary.overall ^= 1;
      return;
    }
  }
}

int det_check(const Args& args, const sim::FaultSpec& fault_spec,
              const graph::Graph& graph) {
  std::vector<DetSummary> summaries;
  for (int execution = 0; execution < args.det_check; ++execution) {
    if (interrupted_at("the next det-check execution")) {
      return kExitInterrupted;
    }
    EngineRun run;
    const int rc = execute_engine(args, fault_spec, graph, run);
    if (rc != kExitOk) return rc;
    DetHasher hasher;
    trace::fold_run(hasher, run.artifacts);
    const auto samples =
        derive_samples(args, fault_spec, run, /*verbose=*/false);
    trace::fold_samples(hasher, samples);
    DetSummary summary = hasher.summary();
    maybe_inject_divergence(summary, execution);
    summaries.push_back(std::move(summary));
  }

  const DetSummary& baseline = summaries.front();
  std::cout << "det-check: " << args.det_check << " executions of "
            << args.engine << '/' << args.algorithm << ", "
            << baseline.phases.size() << " phase paths, "
            << baseline.total_folds << " folds per execution\n";
  for (std::size_t i = 1; i < summaries.size(); ++i) {
    const auto divergence = first_divergence(baseline, summaries[i]);
    if (!divergence) continue;
    std::cout << "det-check: DIVERGENCE in execution " << (i + 1)
              << ": phase '" << divergence->path << "': "
              << divergence->detail << " (0x" << std::hex << divergence->lhs
              << " vs 0x" << divergence->rhs << std::dec << ")\n";
    return kExitAnalysisError;
  }
  std::cout << "det-check: identical per-phase hashes, overall 0x"
            << std::hex << baseline.overall << std::dec << '\n';
  return kExitOk;
}

int run(const Args& args) {
  sim::FaultSpec fault_spec;
  if (!args.faults.empty()) {
    std::string error;
    const auto parsed = sim::FaultSpec::parse(args.faults, &error);
    if (!parsed) {
      std::cerr << "bad --faults spec: " << error << '\n';
      return kExitParseFailure;
    }
    fault_spec = *parsed;
    try {
      fault_spec.validate(args.workers);
    } catch (const CheckError& e) {
      // The spec parses but names faults the cluster cannot host (e.g. a
      // crash on a machine the cluster doesn't have): a fault abort, not a
      // syntax problem.
      std::cerr << "fault spec rejected: " << e.what() << '\n';
      return kExitFaultAbort;
    }
  }

  graph::Graph graph;
  try {
    graph = make_dataset(args.dataset);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return kExitParseFailure;
  }
  if (args.algorithm == "sssp") {
    graph::assign_random_weights(graph, 1.0, 10.0, args.seed);
  }
  std::cout << "dataset: " << graph.vertex_count() << " vertices, "
            << graph.edge_count() << " edges\n";

  if (args.det_check > 0) return det_check(args, fault_spec, graph);

  if (interrupted_at("the engine run")) return kExitInterrupted;
  EngineRun engine_run;
  const int rc = execute_engine(args, fault_spec, graph, engine_run);
  if (rc != kExitOk) return rc;
  if (interrupted_at("the artifact dump")) return kExitInterrupted;
  trace::RunArtifacts& artifacts = engine_run.artifacts;
  const core::FrameworkModel& framework = engine_run.framework;

  const auto samples =
      derive_samples(args, fault_spec, engine_run, /*verbose=*/true);

  std::filesystem::create_directories(args.out);
  std::vector<trace::LogMeta> meta;
  if (!fault_spec.empty()) {
    meta.emplace_back("faults", fault_spec.to_string());
  }
  const bool want_text = args.trace_format != "binary";
  const bool want_binary = args.trace_format != "text";
  if (want_text) {
    // A large stream buffer turns the many small record writes into a few
    // big ones; fault-injected runs can dump millions of records.
    std::vector<char> buffer(1 << 20);
    std::ofstream log;
    log.rdbuf()->pubsetbuf(buffer.data(),
                           static_cast<std::streamsize>(buffer.size()));
    log.open(args.out + "/run.log");
    trace::write_log(log, artifacts.phase_events, artifacts.blocking_events,
                     samples, meta);
  }
  if (want_binary) {
    trace::ParsedLog log;
    log.meta = meta;
    log.phase_events = artifacts.phase_events;
    log.blocking_events = artifacts.blocking_events;
    log.samples = samples;
    std::string error;
    if (!trace::write_g10t_file(args.out + "/run.g10t", log, {}, &error)) {
      std::cerr << error << '\n';
      return kExitInternalError;
    }
  }
  {
    std::ofstream model(args.out + "/model.g10");
    core::write_model(model, framework.execution, framework.resources,
                      framework.tuned_rules);
  }
  std::cout << "makespan: " << to_seconds(artifacts.makespan) << " s\n";
  std::cout << "comm: " << artifacts.comm.remote_bytes_total
            << " remote bytes, " << artifacts.comm.channel_plans
            << " channel plans, " << artifacts.comm.batch_flushes
            << " batch flushes\n";
  const std::string trace_name =
      want_text ? "/run.log" : "/run.g10t";
  std::cout << "wrote " << args.out << trace_name
            << (want_text && want_binary ? " + /run.g10t (" : " (")
            << artifacts.phase_events.size() << " phase events, "
            << artifacts.blocking_events.size() << " blocking events, "
            << samples.size() << " samples) and " << args.out
            << "/model.g10\n";
  std::cout << "analyze with: g10_analyze --model " << args.out
            << "/model.g10 --log " << args.out << trace_name;
  if (args.crash_log == engine::CrashLogStyle::kTruncated) {
    // A truncated crash log has BEGIN-without-END records by design; only
    // the lenient parser repairs those.
    std::cout << " --lenient";
  }
  if (!fault_spec.empty()) {
    std::cout << "\nfaults injected: " << fault_spec.to_string();
  }
  std::cout << '\n';
  return kExitOk;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  g10::install_stop_handlers();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return g10::kExitInternalError;
  }
}
