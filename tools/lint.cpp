// g10_lint — static validation of Grade10 inputs, without running the
// characterization pipeline:
//
//   g10_lint --model <model.g10> [--log <run.log | run.g10t>]
//            [--json] [--werror] [--threads N]
//   g10_lint --rules
//
// Checks the declarative model file (phase tree shape, sibling order
// cycles, attribution rules) and, when --log is given, the dumped run
// against that model (unbalanced/overlapping phases, blocking events
// outside their phase, monitoring series defects). The trace may be the
// text log or its binary `.g10t` form (sniffed from the bytes); corrupt
// binary blocks surface as trace-binary-corrupt-block findings. Findings
// are printed one per line, or as JSON with --json; --rules lists every
// rule id.
//
// Exit codes: 0 = clean or warnings only, 1 = errors (or any finding with
// --werror), 2 = usage or I/O failure.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "grade10/lint/model_lint.hpp"
#include "grade10/lint/preflight.hpp"
#include "grade10/model/model_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10 {
namespace {

struct Args {
  std::string model_path;
  std::string log_path;
  bool json = false;
  bool werror = false;
  bool list_rules = false;
  int threads = 0;
};

int usage() {
  std::cerr << "usage: g10_lint --model <model.g10> [--log <run.log>]\n"
               "                [--json] [--werror] [--threads N]\n"
               "       g10_lint --rules\n";
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      args.json = true;
      continue;
    }
    if (arg == "--werror") {
      args.werror = true;
      continue;
    }
    if (arg == "--rules") {
      args.list_rules = true;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const std::string value = argv[++i];
    if (arg == "--model") {
      args.model_path = value;
    } else if (arg == "--log") {
      args.log_path = value;
    } else if (arg == "--threads") {
      args.threads = static_cast<int>(parse_int(value).value_or(0));
      if (args.threads < 0) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!args.list_rules && args.model_path.empty()) return std::nullopt;
  return args;
}

int list_rules() {
  for (const lint::RuleInfo& rule : lint::rule_catalog()) {
    std::cout << rule.id << " (" << lint::to_string(rule.severity) << "): "
              << rule.summary << '\n';
  }
  return 0;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return std::move(buffer).str();
}

int run(const Args& args) {
  const auto model_text = slurp(args.model_path);
  if (!model_text) {
    std::cerr << "cannot open model file: " << args.model_path << '\n';
    return 2;
  }

  lint::LintReport report;
  if (args.log_path.empty()) {
    report = lint::preflight_model(*model_text, args.model_path);
  } else {
    // Trace rules cross-check against the parsed model, so the model must
    // at least parse; its lint findings explain why when it does not.
    std::istringstream model_stream(*model_text);
    core::ModelParseResult model = core::parse_model(model_stream);
    if (!model.ok()) {
      report = lint::preflight_model(*model_text, args.model_path);
      std::cerr << "model does not parse; skipping trace lint\n";
    } else {
      trace::TraceReadOptions options;
      options.recover = true;
      options.threads = args.threads;
      trace::TraceReader::OpenResult opened =
          trace::TraceReader::open(args.log_path, options);
      if (!opened.ok()) {
        std::cerr << *opened.error << '\n';
        return 2;
      }
      const trace::ParseResult log = opened.reader->read();
      if (log.error && log.error->line_number == 0) {
        std::cerr << log.error->message << '\n';
        return 2;
      }
      report = lint::preflight(*model_text, args.model_path, model.model, log,
                               args.log_path, {},
                               opened.reader->is_binary());
    }
  }

  if (args.json) {
    lint::render_json(std::cout, report);
  } else {
    lint::render_text(std::cout, report);
  }
  if (report.error_count() > 0) return 1;
  if (args.werror && !report.clean()) return 1;
  return 0;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  if (args->list_rules) return g10::list_rules();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
