// g10_srclint — determinism & concurrency lint over this repository's own
// C++ sources (DESIGN.md §14):
//
//   g10_srclint [--json] [--werror] <file-or-dir>...
//   g10_srclint --rules
//
// Directories are walked recursively for *.cpp / *.hpp / *.h, skipping
// build trees and hidden directories; files are scanned in sorted path
// order so output is byte-stable across filesystems. After the findings, a
// one-line suppression account is printed (files, waivers, suppressed
// findings) so reviewers can see how much of the tree is excused rather
// than clean.
//
// Exit codes (common/exit_codes.hpp): 0 = clean or warnings only, 1 =
// errors (or any finding with --werror), 2 = usage/I-O failure or a bare
// waiver — a suppression without a reason is malformed input, not a mere
// finding.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "srclint/srclint.hpp"

namespace g10 {
namespace {

namespace fs = std::filesystem;

struct Args {
  std::vector<std::string> paths;
  bool json = false;
  bool werror = false;
  bool list_rules = false;
};

int usage() {
  std::cerr << "usage: g10_srclint [--json] [--werror] <file-or-dir>...\n"
               "       g10_srclint --rules\n";
  return kExitBadArgs;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      args.json = true;
    } else if (arg == "--werror") {
      args.werror = true;
    } else if (arg == "--rules") {
      args.list_rules = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return std::nullopt;
    } else {
      args.paths.emplace_back(arg);
    }
  }
  if (!args.list_rules && args.paths.empty()) return std::nullopt;
  return args;
}

int list_rules() {
  for (const lint::RuleInfo& rule : srclint::rule_catalog()) {
    std::cout << rule.id << " (" << lint::to_string(rule.severity) << "): "
              << rule.summary << '\n';
  }
  return kExitOk;
}

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool skip_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "build" || (name.size() > 1 && name.front() == '.');
}

/// Expands the argument list into a sorted list of source files.
std::optional<std::vector<std::string>> collect_files(
    const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status status = fs::status(root, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      std::cerr << "cannot open: " << root << '\n';
      return std::nullopt;
    }
    if (status.type() != fs::file_type::directory) {
      files.push_back(root);
      continue;
    }
    fs::recursive_directory_iterator it(root, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) {
        std::cerr << "cannot walk: " << root << ": " << ec.message() << '\n';
        return std::nullopt;
      }
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && is_source_file(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return std::move(buffer).str();
}

int run(const Args& args) {
  const auto files = collect_files(args.paths);
  if (!files) return kExitBadArgs;

  lint::LintReport report;
  srclint::ScanStats stats;
  for (const std::string& path : *files) {
    const auto text = slurp(path);
    if (!text) {
      std::cerr << "cannot open: " << path << '\n';
      return kExitBadArgs;
    }
    report.merge(srclint::scan_source(*text, path, &stats));
  }

  if (args.json) {
    lint::render_json(std::cout, report);
  } else {
    lint::render_text(std::cout, report);
    std::cout << stats.files << " file(s), " << stats.waivers
              << " waiver(s), " << stats.suppressed
              << " finding(s) suppressed\n";
  }
  if (stats.bare_waivers > 0) return kExitBadArgs;
  if (report.error_count() > 0) return 1;
  if (args.werror && !report.clean()) return 1;
  return kExitOk;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  if (args->list_rules) return g10::list_rules();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return g10::kExitInternalError;
  }
}
