// g10_ensemble — crash-safe Monte-Carlo scenario driver.
//
//   g10_ensemble --out <dir>
//       [--engines pregel,gas] [--algorithm pagerank|bfs|wcc|cdlp|sssp]
//       [--dataset rmat:<scale>|datagen:<vertices>]
//       [--workers N] [--cores N] [--iterations K]
//       [--seeds N] [--seed-base B]
//       [--faults <spec>]...       explicit fault axis ("none" = clean run)
//       [--sampled-faults N]       per-seed random-but-valid fault specs
//       [--jitter F] [--sync-bug]
//       [--threads N] [--deadline-s F] [--max-attempts N]
//       [--limit N] [--resume] [--quiet]
//
// Expands (engines × seeds × fault axis) into concrete scenarios, fans them
// across the thread pool, and journals every completed run to
// <out>/journal.jsonl (fsync'd, one JSON line per run). The aggregate
// report — outcome counts, coverage, sync-bug rediscovery rate with Wilson
// CI, issue rates and impact quantiles, per-phase bottleneck frequencies —
// is written to <out>/report.txt and <out>/report.json and printed.
//
// Crash safety: kill the process at any point and rerun with --resume; the
// journal is replayed, only missing runs are recomputed, and the final
// report is byte-identical to an uninterrupted execution's. Runs that
// time out or fail do not fail the fleet: the report is stamped with the
// coverage fraction instead. --limit N executes at most N pending runs and
// exits (a deterministic way to produce a partial journal).
//
// Exit codes (src/common/exit_codes.hpp): 0 even for a degraded fleet,
// 2 for bad arguments or a fresh start over a non-empty journal, 3 for an
// unparseable --faults spec, 1 for internal errors.
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/strings.hpp"
#include "ensemble/driver.hpp"
#include "ensemble/run_grade10.hpp"

namespace g10 {
namespace {

struct Args {
  ensemble::ScenarioMatrix matrix;
  std::string out;
  int seeds = 16;
  std::uint64_t seed_base = 1;
  std::size_t threads = 0;
  ensemble::RetryPolicy retry;
  std::size_t limit = 0;
  bool resume = false;
  bool quiet = false;
};

int usage() {
  std::cerr
      << "usage: g10_ensemble --out <dir>\n"
         "           [--engines pregel,gas] "
         "[--algorithm pagerank|bfs|wcc|cdlp|sssp]\n"
         "           [--dataset rmat:<scale>|datagen:<vertices>]\n"
         "           [--workers N] [--cores N] [--iterations K]\n"
         "           [--seeds N] [--seed-base B]\n"
         "           [--faults <spec>]... [--sampled-faults N]\n"
         "           [--jitter F] [--sync-bug]\n"
         "           [--threads N] [--deadline-s F] [--max-attempts N]\n"
         "           [--limit N] [--resume] [--quiet]\n";
  return kExitBadArgs;
}

std::optional<int> parse_faults_axis(const std::string& text, Args& args) {
  if (text == "none") {
    args.matrix.fault_specs.emplace_back();
    return std::nullopt;
  }
  std::string error;
  const auto spec = sim::FaultSpec::parse(text, &error);
  if (!spec) {
    std::cerr << "bad --faults spec '" << text << "': " << error << '\n';
    return kExitParseFailure;
  }
  args.matrix.fault_specs.push_back(*spec);
  return std::nullopt;
}

int run(const Args& args) {
  ensemble::EnsembleOptions options;
  options.journal_path = args.out + "/journal.jsonl";
  options.resume = args.resume;
  options.threads = args.threads;
  options.retry = args.retry;
  options.limit = args.limit;

  std::filesystem::create_directories(args.out);

  const std::vector<ensemble::Scenario> scenarios = args.matrix.expand();
  std::atomic<std::size_t> done{0};
  if (!args.quiet) {
    std::cerr << "ensemble: " << scenarios.size() << " scenarios -> "
              << options.journal_path << '\n';
    options.on_run = [&](const ensemble::JournalEntry& entry) {
      const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      std::string line = "[" + std::to_string(n) + "] " +
                         std::string(ensemble::outcome_name(entry.outcome)) +
                         " " + entry.scenario + "\n";
      std::cerr << line;  // one write per line: safe to interleave
    };
  }

  const ensemble::EnsembleOutcome outcome = ensemble::run_ensemble(
      args.matrix, ensemble::make_grade10_runner(), options);

  const std::string text = ensemble::render_text(outcome.report);
  const std::string json = ensemble::render_json(outcome.report);
  {
    std::ofstream out(args.out + "/report.txt", std::ios::binary);
    out << text;
  }
  {
    std::ofstream out(args.out + "/report.json", std::ios::binary);
    out << json;
  }
  std::cout << text;
  std::cout << "executed=" << outcome.executed << " reused=" << outcome.reused
            << " remaining=" << outcome.remaining << "\n";
  std::cout << "wrote " << args.out << "/report.txt and " << args.out
            << "/report.json\n";
  if (outcome.remaining > 0) {
    std::cout << "rerun with --resume to finish the remaining "
              << outcome.remaining << " runs\n";
  }
  return kExitOk;
}

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--sync-bug") {
      args.matrix.sync_bug = true;
      continue;
    }
    if (arg == "--resume") {
      args.resume = true;
      continue;
    }
    if (arg == "--quiet") {
      args.quiet = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const std::string v = argv[++i];
    if (arg == "--out") {
      args.out = v;
    } else if (arg == "--engines") {
      args.matrix.engines.clear();
      for (const auto part : split(v, ',')) {
        if (part != "pregel" && part != "gas") return usage();
        args.matrix.engines.emplace_back(part);
      }
      if (args.matrix.engines.empty()) return usage();
    } else if (arg == "--algorithm") {
      args.matrix.algorithm = v;
    } else if (arg == "--dataset") {
      args.matrix.dataset = v;
    } else if (arg == "--workers") {
      args.matrix.workers = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--cores") {
      args.matrix.cores = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--iterations") {
      args.matrix.iterations = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--seeds") {
      args.seeds = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--seed-base") {
      const auto base = parse_int(v);
      if (!base) return usage();
      args.seed_base = static_cast<std::uint64_t>(*base);
    } else if (arg == "--faults") {
      if (const auto code = parse_faults_axis(v, args)) return *code;
    } else if (arg == "--sampled-faults") {
      args.matrix.sampled_fault_specs =
          static_cast<int>(parse_int(v).value_or(-1));
      if (args.matrix.sampled_fault_specs < 0) return usage();
    } else if (arg == "--jitter") {
      const auto f = parse_double(v);
      if (!f || *f < 0.0 || *f >= 1.0) return usage();
      args.matrix.jitter = *f;
    } else if (arg == "--threads") {
      const auto n = parse_int(v);
      if (!n || *n < 0) return usage();
      args.threads = static_cast<std::size_t>(*n);
    } else if (arg == "--deadline-s") {
      const auto s = parse_double(v);
      if (!s || *s <= 0.0) return usage();
      args.retry.deadline_seconds = *s;
    } else if (arg == "--max-attempts") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.retry.max_attempts = static_cast<int>(*n);
    } else if (arg == "--limit") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.limit = static_cast<std::size_t>(*n);
    } else {
      return usage();
    }
  }
  if (args.out.empty() || args.seeds <= 0 || args.matrix.workers <= 0 ||
      args.matrix.cores <= 0 || args.matrix.iterations <= 0) {
    return usage();
  }
  args.matrix.seed_range(args.seed_base, args.seeds);

  try {
    return run(args);
  } catch (const CheckError& e) {
    // Matrix/journal preconditions (e.g. a fresh start over a non-empty
    // journal) are usage errors, not crashes.
    std::cerr << "error: " << e.what() << '\n';
    return kExitBadArgs;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitInternalError;
  }
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) { return g10::main(argc, argv); }
