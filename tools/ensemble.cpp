// g10_ensemble — crash-safe Monte-Carlo scenario driver.
//
//   g10_ensemble --out <dir>
//       [--engines pregel,gas] [--algorithm pagerank|bfs|wcc|cdlp|sssp]
//       [--dataset rmat:<scale>|datagen:<vertices>]
//       [--workers N] [--cores N] [--iterations K]
//       [--seeds N] [--seed-base B]
//       [--faults <spec>]...       explicit fault axis ("none" = clean run)
//       [--sampled-faults N]       per-seed random-but-valid fault specs
//       [--jitter F] [--sync-bug]
//       [--threads N] [--deadline-s F] [--max-attempts N]
//       [--jobs N] [--isolate] [--rlimit-as-mb N] [--rlimit-cpu-s F]
//       [--hb-timeout-s F] [--wedge-timeout-s F] [--crash-budget N]
//       [--limit N] [--resume] [--quiet]
//
// Expands (engines × seeds × fault axis) into concrete scenarios and
// journals every completed run to <out>/journal.jsonl (fsync'd, one JSON
// line per run). The aggregate report — outcome counts, coverage, sync-bug
// rediscovery rate with Wilson CI, issue rates and impact quantiles,
// per-phase bottleneck frequencies — is written to <out>/report.txt and
// <out>/report.json and printed.
//
// Execution modes (DESIGN.md §15):
//   default      in-process thread pool (--threads N)
//   --jobs N     supervisor/worker: N worker *processes*, each running its
//                deterministic shard (scenario hash % N) and appending to
//                the shared journal under O_APPEND. A worker crash
//                (SIGSEGV, OOM kill, wedge) is contained: the supervisor
//                charges it to the in-flight scenario, re-queues it with
//                capped backoff, and respawns the worker. --isolate adds
//                kernel sandboxes (RLIMIT_AS/RLIMIT_CPU) to each worker.
//
// Crash safety: kill anything — a worker, the whole fleet, the supervisor
// itself — and rerun with --resume; the journal is replayed, only missing
// runs are recomputed, and the final report is byte-identical to an
// uninterrupted execution's, at any --jobs level.
//
// SIGTERM/SIGINT cancel in-flight work at the next stage boundary; the
// journal holds every completed run (each append is fsync'd) and the
// process exits kExitInterrupted (6) with the fleet resumable.
//
// Exit codes (src/common/exit_codes.hpp): 0 even for a degraded fleet,
// 2 for bad arguments, bad --jobs/--isolate combinations, or a fresh start
// over a non-empty journal, 3 for an unparseable --faults spec,
// 6 when interrupted by SIGTERM/SIGINT, 1 for internal errors.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/strings.hpp"
#include "ensemble/driver.hpp"
#include "ensemble/run_grade10.hpp"
#include "ensemble/supervisor.hpp"
#include "ensemble/worker.hpp"

namespace g10 {
namespace {

// Raised by the SIGTERM/SIGINT handler (and by the orphan detector in
// worker mode). std::atomic<bool> is lock-free here, so the store is safe
// in a signal handler.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_release); }

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

struct Args {
  ensemble::ScenarioMatrix matrix;
  std::string out;
  int seeds = 16;
  std::uint64_t seed_base = 1;
  std::size_t threads = 0;
  bool threads_given = false;
  ensemble::RetryPolicy retry;
  std::size_t limit = 0;
  bool resume = false;
  bool quiet = false;

  // Supervisor mode (--jobs N).
  std::size_t jobs = 0;  ///< 0 = in-process mode
  bool isolate = false;
  std::uint64_t rlimit_as_mb = 8192;
  double rlimit_cpu_s = 0.0;
  double hb_timeout_s = 5.0;
  double wedge_timeout_s = -1.0;  ///< <0 = derive from --deadline-s
  int crash_budget = 3;

  // Worker mode (hidden; the supervisor spawns us with these).
  bool worker = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  int status_fd = -1;
  std::vector<std::uint64_t> defer_keys;
};

int usage() {
  std::cerr
      << "usage: g10_ensemble --out <dir>\n"
         "           [--engines pregel,gas] "
         "[--algorithm pagerank|bfs|wcc|cdlp|sssp]\n"
         "           [--dataset rmat:<scale>|datagen:<vertices>]\n"
         "           [--workers N] [--cores N] [--iterations K]\n"
         "           [--seeds N] [--seed-base B]\n"
         "           [--faults <spec>]... [--sampled-faults N]\n"
         "           [--jitter F] [--sync-bug]\n"
         "           [--threads N] [--deadline-s F] [--max-attempts N]\n"
         "           [--jobs N] [--isolate] [--rlimit-as-mb N] "
         "[--rlimit-cpu-s F]\n"
         "           [--hb-timeout-s F] [--wedge-timeout-s F] "
         "[--crash-budget N]\n"
         "           [--limit N] [--resume] [--quiet]\n"
         "notes: --isolate requires --jobs; --jobs excludes --threads and "
         "--limit\n";
  return kExitBadArgs;
}

std::optional<int> parse_faults_axis(const std::string& text, Args& args) {
  if (text == "none") {
    args.matrix.fault_specs.emplace_back();
    return std::nullopt;
  }
  std::string error;
  const auto spec = sim::FaultSpec::parse(text, &error);
  if (!spec) {
    std::cerr << "bad --faults spec '" << text << "': " << error << '\n';
    return kExitParseFailure;
  }
  args.matrix.fault_specs.push_back(*spec);
  return std::nullopt;
}

void write_reports(const std::string& out_dir,
                   const ensemble::AggregateReport& report) {
  const std::string text = ensemble::render_text(report);
  const std::string json = ensemble::render_json(report);
  {
    std::ofstream out(out_dir + "/report.txt", std::ios::binary);
    out << text;
  }
  {
    std::ofstream out(out_dir + "/report.json", std::ios::binary);
    out << json;
  }
  std::cout << text;
  std::cout << "wrote " << out_dir << "/report.txt and " << out_dir
            << "/report.json\n";
}

// Test-only fault injection for the supervisor's crash containment
// (documented in DESIGN.md §15, used by tests and the CI chaos fleet):
// G10_ENSEMBLE_TEST_CRASH="<action>:<scenario key substring>" makes a
// worker act out when it starts a matching scenario.
//   segv:<sub>   raise SIGSEGV (an attributable hard crash)
//   kill:<sub>   raise SIGKILL (what the OOM killer delivers)
//   spin:<sub>   wedge forever with heartbeats still flowing
//                (only --wedge-timeout-s can reclaim the worker)
void maybe_crash_for_test(const ensemble::Scenario& scenario) {
  const char* spec = std::getenv("G10_ENSEMBLE_TEST_CRASH");
  if (spec == nullptr) return;
  const std::string_view text(spec);
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return;
  const std::string_view action = text.substr(0, colon);
  const std::string_view needle = text.substr(colon + 1);
  if (needle.empty() ||
      scenario.key().find(needle) == std::string::npos) {
    return;
  }
  if (action == "segv") ::raise(SIGSEGV);
  if (action == "kill") ::raise(SIGKILL);
  if (action == "spin") {
    for (;;) ::usleep(50000);
  }
}

// Hidden worker entry point: run one shard of the fleet under a
// supervisor, reporting liveness and progress over the inherited status
// pipe. The work list is derived locally from (matrix, journal, shard), so
// a respawned worker resumes exactly where its predecessor died.
int run_worker(const Args& args) {
  // EPIPE (not SIGPIPE death) on a status write is the orphan detector: it
  // means the supervisor is gone, and the heartbeat thread then raises the
  // stop flag so in-flight work cancels instead of running unsupervised.
  ::signal(SIGPIPE, SIG_IGN);

  ensemble::StatusChannel channel(args.status_fd);
  ensemble::Heartbeat heartbeat(&channel, 0.25, &g_stop);

  ensemble::EnsembleOptions options;
  options.journal_path = args.out + "/journal.jsonl";
  options.resume = true;  // the shared journal always has siblings' entries
  options.threads = 1;    // process-level parallelism only
  options.retry = args.retry;
  options.shard_count = args.shard_count;
  options.shard_index = args.shard_index;
  options.defer_keys = args.defer_keys;
  options.stop = &g_stop;
  options.on_start = [&channel](const ensemble::Scenario& scenario) {
    channel.start(scenario.hash());
    maybe_crash_for_test(scenario);
  };
  options.on_run = [&channel](const ensemble::JournalEntry& entry) {
    channel.done(entry.key, entry.outcome);
  };

  ensemble::run_ensemble(args.matrix, ensemble::make_grade10_runner(),
                         options);
  return g_stop.load(std::memory_order_acquire) ? kExitInterrupted : kExitOk;
}

// The worker re-runs this same binary; its argv is the supervisor's argv
// minus the supervisor-only flags, plus the hidden worker flags. argv[0]
// is resolved through /proc/self/exe so the fleet works regardless of how
// the supervisor was invoked.
std::vector<std::string> worker_base_argv(
    const std::vector<std::string>& original) {
  std::vector<std::string> base;
  std::error_code ec;
  const std::filesystem::path exe =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  base.push_back(ec ? original[0] : exe.string());
  for (std::size_t i = 1; i < original.size(); ++i) {
    const std::string& arg = original[i];
    if (arg == "--isolate" || arg == "--resume" || arg == "--quiet") {
      continue;
    }
    if (arg == "--jobs" || arg == "--rlimit-as-mb" ||
        arg == "--rlimit-cpu-s" || arg == "--hb-timeout-s" ||
        arg == "--wedge-timeout-s" || arg == "--crash-budget") {
      ++i;  // skip the flag's value too
      continue;
    }
    base.push_back(arg);
  }
  base.push_back("--resume");
  base.push_back("--quiet");
  return base;
}

int run_supervisor(const Args& args,
                   const std::vector<std::string>& original_argv) {
  std::filesystem::create_directories(args.out);

  ensemble::SupervisorOptions options;
  options.journal_path = args.out + "/journal.jsonl";
  options.jobs = args.jobs;
  options.resume = args.resume;
  options.heartbeat_timeout_s = args.hb_timeout_s;
  // Default wedge ceiling: give the worker's own watchdog + retries room
  // to classify a timeout cooperatively first; the supervisor's kill is
  // the backstop for runs that ignore their CancelToken.
  options.wedge_timeout_s =
      args.wedge_timeout_s >= 0.0
          ? args.wedge_timeout_s
          : (args.retry.deadline_seconds > 0.0
                 ? args.retry.deadline_seconds * args.retry.max_attempts +
                       10.0
                 : 0.0);
  options.max_attempts = args.retry.max_attempts;
  options.crash_budget = args.crash_budget;
  if (args.isolate) {
    options.limits.address_space_bytes =
        args.rlimit_as_mb * 1024ull * 1024ull;
    options.limits.cpu_seconds = args.rlimit_cpu_s;
  }
  options.stop = &g_stop;
  if (!args.quiet) {
    options.on_event = [](const std::string& message) {
      std::cerr << "supervisor: " << message << '\n';
    };
  }

  const std::vector<std::string> base = worker_base_argv(original_argv);
  const std::size_t jobs = args.jobs;
  options.command = [base, jobs](
                        std::size_t shard, int /*status_fd is always 3*/,
                        const std::vector<std::uint64_t>& defer) {
    std::vector<std::string> argv = base;
    argv.push_back("--worker-shard");
    argv.push_back(std::to_string(shard) + ":" + std::to_string(jobs));
    argv.push_back("--status-fd");
    argv.push_back("3");
    for (const std::uint64_t key : defer) {
      argv.push_back("--defer-key");
      argv.push_back(ensemble::format_key(key));
    }
    return argv;
  };

  const std::vector<ensemble::Scenario> scenarios = args.matrix.expand();
  if (!args.quiet) {
    std::cerr << "ensemble: " << scenarios.size() << " scenarios -> "
              << options.journal_path << " (" << args.jobs << " worker "
              << "processes" << (args.isolate ? ", isolated" : "") << ")\n";
  }

  const ensemble::SupervisorStats stats =
      ensemble::run_supervised(args.matrix, options);

  if (stats.interrupted) {
    std::cerr << "interrupted: workers terminated, journal is flushed; "
                 "rerun with --resume\n";
    return kExitInterrupted;
  }

  // Identical aggregation path to in-process mode: reduce a fresh read of
  // the journal. Byte-identical reports at any --jobs level follow.
  const ensemble::AggregateReport report =
      ensemble::aggregate(scenarios,
                          ensemble::read_journal(options.journal_path));
  write_reports(args.out, report);

  const ensemble::JournalReplay replay =
      ensemble::read_journal(options.journal_path);
  std::size_t journaled = 0;
  for (const ensemble::Scenario& s : scenarios) {
    for (const ensemble::JournalEntry& entry : replay.entries) {
      if (entry.key == s.hash()) {
        ++journaled;
        break;
      }
    }
  }
  const std::size_t remaining = scenarios.size() - journaled;
  std::cout << "workers=" << stats.spawned << " crashes=" << stats.crashes
            << " wedges=" << stats.wedges << " finalized=" << stats.finalized
            << " poisoned=" << stats.poisoned
            << " abandoned_shards=" << stats.abandoned_shards << "\n";
  if (remaining > 0) {
    std::cout << "rerun with --resume to finish the remaining " << remaining
              << " runs\n";
  }
  return kExitOk;
}

int run(const Args& args) {
  ensemble::EnsembleOptions options;
  options.journal_path = args.out + "/journal.jsonl";
  options.resume = args.resume;
  options.threads = args.threads;
  options.retry = args.retry;
  options.limit = args.limit;
  options.stop = &g_stop;

  std::filesystem::create_directories(args.out);

  const std::vector<ensemble::Scenario> scenarios = args.matrix.expand();
  std::atomic<std::size_t> done{0};
  if (!args.quiet) {
    std::cerr << "ensemble: " << scenarios.size() << " scenarios -> "
              << options.journal_path << '\n';
    options.on_run = [&](const ensemble::JournalEntry& entry) {
      const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
      std::string line = "[" + std::to_string(n) + "] " +
                         std::string(ensemble::outcome_name(entry.outcome)) +
                         " " + entry.scenario + "\n";
      std::cerr << line;  // one write per line: safe to interleave
    };
  }

  const ensemble::EnsembleOutcome outcome = ensemble::run_ensemble(
      args.matrix, ensemble::make_grade10_runner(), options);

  if (g_stop.load(std::memory_order_acquire)) {
    // Every completed run was fsync'd into the journal by its append;
    // nothing in flight was journaled, so the fleet resumes cleanly.
    std::cerr << "interrupted: journal is flushed; rerun with --resume\n";
    return kExitInterrupted;
  }

  write_reports(args.out, outcome.report);
  std::cout << "executed=" << outcome.executed << " reused=" << outcome.reused
            << " remaining=" << outcome.remaining << "\n";
  if (outcome.remaining > 0) {
    std::cout << "rerun with --resume to finish the remaining "
              << outcome.remaining << " runs\n";
  }
  return kExitOk;
}

int main(int argc, char** argv) {
  Args args;
  std::vector<std::string> original_argv(argv, argv + argc);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--sync-bug") {
      args.matrix.sync_bug = true;
      continue;
    }
    if (arg == "--resume") {
      args.resume = true;
      continue;
    }
    if (arg == "--quiet") {
      args.quiet = true;
      continue;
    }
    if (arg == "--isolate") {
      args.isolate = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const std::string v = argv[++i];
    if (arg == "--out") {
      args.out = v;
    } else if (arg == "--engines") {
      args.matrix.engines.clear();
      for (const auto part : split(v, ',')) {
        if (part != "pregel" && part != "gas") return usage();
        args.matrix.engines.emplace_back(part);
      }
      if (args.matrix.engines.empty()) return usage();
    } else if (arg == "--algorithm") {
      args.matrix.algorithm = v;
    } else if (arg == "--dataset") {
      args.matrix.dataset = v;
    } else if (arg == "--workers") {
      args.matrix.workers = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--cores") {
      args.matrix.cores = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--iterations") {
      args.matrix.iterations = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--seeds") {
      args.seeds = static_cast<int>(parse_int(v).value_or(0));
    } else if (arg == "--seed-base") {
      const auto base = parse_int(v);
      if (!base) return usage();
      args.seed_base = static_cast<std::uint64_t>(*base);
    } else if (arg == "--faults") {
      if (const auto code = parse_faults_axis(v, args)) return *code;
    } else if (arg == "--sampled-faults") {
      args.matrix.sampled_fault_specs =
          static_cast<int>(parse_int(v).value_or(-1));
      if (args.matrix.sampled_fault_specs < 0) return usage();
    } else if (arg == "--jitter") {
      const auto f = parse_double(v);
      if (!f || *f < 0.0 || *f >= 1.0) return usage();
      args.matrix.jitter = *f;
    } else if (arg == "--threads") {
      const auto n = parse_int(v);
      if (!n || *n < 0) return usage();
      args.threads = static_cast<std::size_t>(*n);
      args.threads_given = true;
    } else if (arg == "--deadline-s") {
      const auto s = parse_double(v);
      if (!s || *s <= 0.0) return usage();
      args.retry.deadline_seconds = *s;
    } else if (arg == "--max-attempts") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.retry.max_attempts = static_cast<int>(*n);
    } else if (arg == "--limit") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.limit = static_cast<std::size_t>(*n);
    } else if (arg == "--jobs") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.jobs = static_cast<std::size_t>(*n);
    } else if (arg == "--rlimit-as-mb") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.rlimit_as_mb = static_cast<std::uint64_t>(*n);
    } else if (arg == "--rlimit-cpu-s") {
      const auto s = parse_double(v);
      if (!s || *s < 0.0) return usage();
      args.rlimit_cpu_s = *s;
    } else if (arg == "--hb-timeout-s") {
      const auto s = parse_double(v);
      if (!s || *s <= 0.0) return usage();
      args.hb_timeout_s = *s;
    } else if (arg == "--wedge-timeout-s") {
      const auto s = parse_double(v);
      if (!s || *s < 0.0) return usage();
      args.wedge_timeout_s = *s;
    } else if (arg == "--crash-budget") {
      const auto n = parse_int(v);
      if (!n || *n < 1) return usage();
      args.crash_budget = static_cast<int>(*n);
    } else if (arg == "--worker-shard") {
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos) return usage();
      const auto index = parse_int(v.substr(0, colon));
      const auto count = parse_int(v.substr(colon + 1));
      if (!index || !count || *index < 0 || *count < 1 || *index >= *count) {
        return usage();
      }
      args.worker = true;
      args.shard_index = static_cast<std::size_t>(*index);
      args.shard_count = static_cast<std::size_t>(*count);
    } else if (arg == "--status-fd") {
      const auto fd = parse_int(v);
      if (!fd || *fd < 0) return usage();
      args.status_fd = static_cast<int>(*fd);
    } else if (arg == "--defer-key") {
      const auto key = ensemble::parse_key(v);
      if (!key) return usage();
      args.defer_keys.push_back(*key);
    } else {
      return usage();
    }
  }
  if (args.out.empty() || args.seeds <= 0 || args.matrix.workers <= 0 ||
      args.matrix.cores <= 0 || args.matrix.iterations <= 0) {
    return usage();
  }
  // Mode exclusions (exit 2): --isolate only sandboxes worker processes;
  // --threads and --limit configure the in-process pool, which --jobs
  // replaces; a worker cannot itself be a supervisor.
  if (args.isolate && args.jobs == 0) return usage();
  if (args.jobs > 0 && (args.threads_given || args.limit > 0)) return usage();
  if (args.worker && args.jobs > 0) return usage();
  args.matrix.seed_range(args.seed_base, args.seeds);

  install_stop_handlers();

  try {
    if (args.worker) return run_worker(args);
    if (args.jobs > 0) return run_supervisor(args, original_argv);
    return run(args);
  } catch (const CheckError& e) {
    // Matrix/journal preconditions (e.g. a fresh start over a non-empty
    // journal) are usage errors, not crashes.
    std::cerr << "error: " << e.what() << '\n';
    return kExitBadArgs;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitInternalError;
  }
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) { return g10::main(argc, argv); }
