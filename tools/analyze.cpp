// g10_analyze — offline Grade10 analysis of a dumped run:
//
//   g10_analyze --model <model.g10> --log <run.log | run.g10t>
//               [--timeslice-ms MS] [--min-impact PCT]
//               [--threads N] [--lenient | --strict] [--no-preflight]
//               [--det-check N] [--trace-format auto|text|binary]
//               [--machines M,M,...] [--phases TYPE,TYPE,...]
//               [--time-range LO:HI] [--cache-budget-mb MB]
//
// Parses the declarative model file and the run's trace — the text log or
// its binary `.g10t` form (g10_convert), sniffed from the file's bytes —
// executes the full characterization pipeline, and prints the profile,
// bottleneck, and issue reports. Both formats produce byte-identical
// reports; binary ingestion decodes through an LRU block cache
// (--cache-budget-mb) with async prefetch, touching only the blocks the
// filters below admit.
//
// --machines / --phases / --time-range restrict the analysis to a slice of
// the trace: listed machines (global records always kept), phase subtrees
// (requested types are expanded with their model ancestors so the slice
// stays a tree), and an inclusive nanosecond window. On a `.g10t` input the
// filters skip non-matching blocks via the index instead of scanning the
// whole trace. A time-sliced extract usually cuts phases mid-flight —
// analyze those with --lenient.
//
// Before characterizing, the inputs are linted (the same checks g10_lint
// runs): in strict mode lint errors abort the analysis; with --lenient
// they are printed and the analysis continues; --no-preflight skips the
// lint pass entirely.
//
// --strict (the default) refuses damaged input: malformed log lines and
// structural trace defects (e.g. a crashed worker's BEGIN-without-END) are
// listed and the exit code is non-zero. --lenient repairs what it can —
// bad lines are skipped, truncated phases get synthesized ends and are
// flagged degraded — and characterizes the run end to end anyway.
//
// --threads N caps the parse/characterization concurrency (0 = auto via
// the G10_THREADS environment variable, else all hardware threads;
// 1 = fully serial). Results are identical at every setting.
//
// --det-check N is the runtime determinism oracle for that promise
// (DESIGN.md §14): instead of printing reports, it parses and characterizes
// the same input at thread counts 1, 2, and N, folds every characterization
// output (instance tree, attribution, bottlenecks, issues) into
// per-phase-path FNV hashes, and compares. On divergence it names the first
// divergent phase path and exits 5 (analysis error).
//
// Exit codes (src/common/exit_codes.hpp): 0 success, 2 bad arguments,
// 3 parse failure (unreadable/malformed model or log, strict-mode lint or
// preflight rejection), 5 analysis error (inputs parsed but the pipeline
// produced no result), 1 internal.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/strings.hpp"
#include "grade10/det_fold.hpp"
#include "grade10/lint/model_lint.hpp"
#include "grade10/lint/trace_lint.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/pipeline.hpp"
#include "grade10/report/diagnostics.hpp"
#include "grade10/report/phase_profile.hpp"
#include "grade10/report/report.hpp"
#include "grade10/report/timeline_export.hpp"
#include "trace/log_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10 {
namespace {

struct Args {
  std::string model_path;
  std::string log_path;
  std::string chrome_trace_path;  ///< optional chrome://tracing export
  DurationNs timeslice = 50 * kMillisecond;
  double min_impact = 0.01;
  int threads = 0;  ///< 0 = auto (G10_THREADS, else hardware)
  bool lenient = false;
  bool preflight = true;
  int det_check = 0;  ///< 0 = off; otherwise max thread count to sweep
  trace::TraceFormat trace_format = trace::TraceFormat::kAuto;
  std::vector<trace::MachineId> machines;
  std::vector<std::string> phases;
  std::optional<std::pair<TimeNs, TimeNs>> time_range;
  std::size_t cache_budget_mb = 256;
};

int usage() {
  std::cerr << "usage: g10_analyze --model <model.g10> "
               "--log <run.log | run.g10t>\n"
               "                   [--timeslice-ms MS] [--min-impact FRAC]\n"
               "                   [--chrome-trace <out.json>] [--threads N]\n"
               "                   [--lenient | --strict] [--no-preflight]\n"
               "                   [--det-check N] "
               "[--trace-format auto|text|binary]\n"
               "                   [--machines M,M,...] "
               "[--phases TYPE,TYPE,...]\n"
               "                   [--time-range LO:HI] "
               "[--cache-budget-mb MB]\n";
  return kExitBadArgs;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--lenient") {
      args.lenient = true;
      continue;
    }
    if (arg == "--strict") {
      args.lenient = false;
      continue;
    }
    if (arg == "--no-preflight") {
      args.preflight = false;
      continue;
    }
    if (i + 1 >= argc) return std::nullopt;
    const std::string value = argv[++i];
    if (arg == "--model") {
      args.model_path = value;
    } else if (arg == "--log") {
      args.log_path = value;
    } else if (arg == "--timeslice-ms") {
      args.timeslice = parse_int(value).value_or(50) * kMillisecond;
    } else if (arg == "--min-impact") {
      args.min_impact = parse_double(value).value_or(0.01);
    } else if (arg == "--threads") {
      args.threads = static_cast<int>(parse_int(value).value_or(0));
      if (args.threads < 0) return std::nullopt;
    } else if (arg == "--chrome-trace") {
      args.chrome_trace_path = value;
    } else if (arg == "--det-check") {
      const auto n = parse_int(value);
      if (!n || *n < 1) return std::nullopt;
      args.det_check = static_cast<int>(*n);
    } else if (arg == "--trace-format") {
      if (value == "auto") {
        args.trace_format = trace::TraceFormat::kAuto;
      } else if (value == "text") {
        args.trace_format = trace::TraceFormat::kText;
      } else if (value == "binary") {
        args.trace_format = trace::TraceFormat::kBinary;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--machines") {
      for (const std::string_view field : split(value, ',')) {
        const auto machine = parse_int(trim(field));
        if (!machine) return std::nullopt;
        args.machines.push_back(static_cast<trace::MachineId>(*machine));
      }
    } else if (arg == "--phases") {
      for (const std::string_view field : split(value, ',')) {
        const std::string_view type = trim(field);
        if (type.empty()) return std::nullopt;
        args.phases.emplace_back(type);
      }
    } else if (arg == "--time-range") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) return std::nullopt;
      const auto lo = parse_int(std::string_view(value).substr(0, colon));
      const auto hi = parse_int(std::string_view(value).substr(colon + 1));
      if (!lo || !hi || *lo < 0 || *hi < *lo) return std::nullopt;
      args.time_range = {*lo, *hi};
    } else if (arg == "--cache-budget-mb") {
      const auto n = parse_int(value);
      if (!n || *n < 0) return std::nullopt;
      args.cache_budget_mb = static_cast<std::size_t>(*n);
    } else {
      return std::nullopt;
    }
  }
  if (args.model_path.empty() || args.log_path.empty()) return std::nullopt;
  return args;
}

/// The record filter for --machines/--phases/--time-range. Requested phase
/// types are expanded with their model ancestors so the filtered slice
/// keeps the enclosing instance tree analyzable.
trace::TraceFilter build_filter(const Args& args,
                                const core::ExecutionModel& model) {
  trace::TraceFilter filter;
  filter.machines = args.machines;
  if (args.time_range) {
    filter.time_min = args.time_range->first;
    filter.time_max = args.time_range->second;
  }
  const auto add_type = [](std::vector<std::string>& types,
                           const std::string& name) {
    if (std::find(types.begin(), types.end(), name) == types.end()) {
      types.push_back(name);
    }
  };
  for (const std::string& name : args.phases) {
    add_type(filter.phase_types, name);  // kept even if unknown to the model
    const core::PhaseTypeId requested = model.find(name);
    if (requested == core::kNoPhaseType) continue;
    for (core::PhaseTypeId id = model.type(requested).parent;
         id != core::kNoPhaseType; id = model.type(id).parent) {
      add_type(filter.ancestor_types, model.type(id).name);
    }
  }
  return filter;
}

trace::TraceReadOptions reader_options(const Args& args, int threads) {
  trace::TraceReadOptions options;
  options.format = args.trace_format;
  options.recover = true;  // always collect the full error list
  options.threads = threads;
  options.cache_budget_bytes = args.cache_budget_mb << 20;
  return options;
}

/// The determinism oracle: parse + characterize the same input at thread
/// counts 1, 2, and N, fold each characterization into per-phase-path
/// hashes, and compare against the serial baseline.
int det_check(const Args& args, const core::ModelParseResult& model) {
  std::vector<int> counts{1, 2, args.det_check};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  const trace::TraceFilter filter =
      build_filter(args, model.model.execution);
  std::vector<DetSummary> summaries;
  for (const int threads : counts) {
    const trace::ParseResult log = trace::read_trace_file(
        args.log_path, reader_options(args, threads), filter);
    if (log.error && log.error->line_number == 0) {
      std::cerr << log.error->message << '\n';
      return kExitParseFailure;
    }
    if (!log.ok() && !args.lenient) {
      std::cerr << args.log_path << ": " << log.error_count
                << " malformed line(s); re-run with --lenient\n";
      return kExitParseFailure;
    }

    core::CharacterizationInput input;
    input.model = &model.model.execution;
    input.resources = &model.model.resources;
    input.rules = &model.model.rules;
    input.phase_events = log.log.phase_events;
    input.blocking_events = log.log.blocking_events;
    input.samples = log.log.samples;
    input.config.timeslice = args.timeslice;
    input.config.min_issue_impact = args.min_impact;
    input.config.threads = threads;
    input.trace_options.lenient = args.lenient;

    core::CheckedCharacterization checked = core::characterize_checked(input);
    if (!checked.status.ok() || !checked.result.has_value()) {
      std::cerr << "characterization failed at " << threads
                << " thread(s):\n";
      for (const auto& error : checked.status.errors) {
        std::cerr << "  " << error << '\n';
      }
      return kExitAnalysisError;
    }
    summaries.push_back(
        core::fold_characterization(*checked.result, model.model.resources));
  }

  const DetSummary& baseline = summaries.front();
  std::cout << "det-check: characterized at";
  for (const int threads : counts) std::cout << ' ' << threads;
  std::cout << " thread(s), " << baseline.phases.size() << " phase paths, "
            << baseline.total_folds << " folds per characterization\n";
  for (std::size_t i = 1; i < summaries.size(); ++i) {
    const auto divergence = first_divergence(baseline, summaries[i]);
    if (!divergence) continue;
    std::cout << "det-check: DIVERGENCE at " << counts[i]
              << " thread(s) vs 1: phase '" << divergence->path << "': "
              << divergence->detail << " (0x" << std::hex << divergence->lhs
              << " vs 0x" << divergence->rhs << std::dec << ")\n";
    return kExitAnalysisError;
  }
  std::cout << "det-check: identical per-phase hashes, overall 0x"
            << std::hex << baseline.overall << std::dec << '\n';
  return kExitOk;
}

int run(const Args& args) {
  std::ifstream model_file(args.model_path, std::ios::binary);
  if (!model_file) {
    std::cerr << "cannot open model file: " << args.model_path << '\n';
    return kExitParseFailure;
  }
  std::ostringstream model_buffer;
  model_buffer << model_file.rdbuf();
  const std::string model_text = std::move(model_buffer).str();
  std::istringstream model_stream(model_text);
  core::ModelParseResult model = core::parse_model(model_stream);
  if (!model.ok()) {
    std::cerr << args.model_path << ':' << model.error->line_number << ": "
              << model.error->message << '\n';
    return kExitParseFailure;
  }

  if (args.det_check > 0) return det_check(args, model);

  const trace::ParseResult log = trace::read_trace_file(
      args.log_path, reader_options(args, args.threads),
      build_filter(args, model.model.execution));
  if (log.error && log.error->line_number == 0) {
    // File-level failure: unreadable file, or a truncated / corrupt .g10t
    // header or section table.
    std::cerr << log.error->message << '\n';
    return kExitParseFailure;
  }
  if (!log.ok()) {
    if (!args.lenient) {
      std::cerr << args.log_path << ": " << log.error_count
                << " malformed line(s)/block(s):\n";
      for (const auto& error : log.errors) {
        if (error.line.empty()) {
          std::cerr << "  " << error.message << '\n';
        } else {
          std::cerr << "  line " << error.line_number << ": "
                    << error.message << "  [" << error.line << "]\n";
        }
      }
      if (log.error_count > log.errors.size()) {
        std::cerr << "  (+" << (log.error_count - log.errors.size())
                  << " more)\n";
      }
      std::cerr << "re-run with --lenient to skip damaged lines\n";
      return kExitParseFailure;
    }
    std::cout << "lenient: skipped " << log.error_count
              << " malformed line(s)\n";
  }
  std::cout << "parsed " << log.log.phase_events.size() << " phase events, "
            << log.log.blocking_events.size() << " blocking events, "
            << log.log.samples.size() << " monitoring samples\n\n";

  // Pre-flight lint: the same static checks g10_lint runs. Malformed log
  // lines are already reported above, so only the model and record-level
  // trace rules run here.
  if (args.preflight) {
    lint::LintReport preflight =
        lint::lint_model_text(model_text, args.model_path);
    preflight.merge(
        lint::lint_trace(model.model, log.log, {}, args.log_path));
    if (!preflight.clean()) {
      std::cerr << "preflight lint:\n";
      lint::render_text(std::cerr, preflight);
    }
    if (!preflight.ok()) {
      if (!args.lenient) {
        std::cerr << "preflight failed; fix the input, or re-run with "
                     "--lenient to analyze anyway (--no-preflight skips "
                     "the check)\n";
        return kExitParseFailure;
      }
      std::cout << "lenient: continuing past " << preflight.error_count()
                << " preflight error(s)\n\n";
    }
  }

  core::CharacterizationInput input;
  input.model = &model.model.execution;
  input.resources = &model.model.resources;
  input.rules = &model.model.rules;
  input.phase_events = log.log.phase_events;
  input.blocking_events = log.log.blocking_events;
  input.samples = log.log.samples;
  input.config.timeslice = args.timeslice;
  input.config.min_issue_impact = args.min_impact;
  input.config.threads = args.threads;
  input.trace_options.lenient = args.lenient;

  core::CheckedCharacterization checked = core::characterize_checked(input);
  if (!checked.status.ok() || !checked.result.has_value()) {
    std::cerr << "characterization failed:\n";
    for (const auto& error : checked.status.errors) {
      std::cerr << "  " << error << '\n';
    }
    if (!args.lenient) {
      std::cerr << "re-run with --lenient to repair damaged traces\n";
    }
    return kExitAnalysisError;
  }
  const core::CharacterizationResult& result = *checked.result;
  if (!checked.status.warnings.empty()) {
    std::cout << "lenient repairs ("
              << result.trace.degraded_count() << " degraded instances):\n";
    for (const auto& warning : checked.status.warnings) {
      std::cout << "  " << warning << '\n';
    }
    std::cout << '\n';
  }

  core::render_profile(std::cout, result.trace, model.model.resources,
                       result.usage, result.grid);
  std::cout << '\n';
  core::render_bottlenecks(std::cout, model.model.resources,
                           result.bottlenecks);
  std::cout << '\n';
  core::render_issues(std::cout, result.issues);
  std::cout << '\n';
  const auto profile = core::build_phase_profile(
      result.trace, result.usage, result.bottlenecks, result.grid);
  core::render_phase_profile(std::cout, model.model.execution,
                             model.model.resources, profile);
  std::cout << '\n';
  const core::ReplaySimulator simulator(model.model.execution, result.trace);
  const core::ReplaySchedule schedule =
      simulator.simulate(simulator.recorded_durations());
  core::render_critical_path(std::cout, model.model.execution, result.trace,
                             simulator, schedule);
  std::cout << '\n';
  core::render_diagnostics(
      std::cout, model.model.resources,
      core::compute_resource_diagnostics(result.usage),
      core::compute_machine_skew(result.usage));
  if (!args.chrome_trace_path.empty()) {
    std::ofstream trace_file(args.chrome_trace_path);
    if (!trace_file) {
      std::cerr << "cannot open " << args.chrome_trace_path << '\n';
      return kExitInternalError;
    }
    core::write_chrome_trace(trace_file, model.model.execution, result.trace);
    std::cout << "\nwrote chrome://tracing timeline to "
              << args.chrome_trace_path << '\n';
  }
  return kExitOk;
}

}  // namespace
}  // namespace g10

int main(int argc, char** argv) {
  const auto args = g10::parse_args(argc, argv);
  if (!args) return g10::usage();
  try {
    return g10::run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return g10::kExitInternalError;
  }
}
