#include "graph/degree_stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace g10::graph {
namespace {

TEST(DegreeStatsTest, UniformDegreesHaveZeroGini) {
  GraphBuilder builder(4);
  // Ring: every vertex out-degree 1.
  for (VertexId v = 0; v < 4; ++v) builder.add_edge(v, (v + 1) % 4);
  const DegreeStats stats = compute_degree_stats(builder.build({}));
  EXPECT_EQ(stats.min_out, 1u);
  EXPECT_EQ(stats.max_out, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_out, 1.0);
  EXPECT_NEAR(stats.gini, 0.0, 1e-12);
  EXPECT_EQ(stats.isolated_vertices, 0u);
}

TEST(DegreeStatsTest, StarIsMaximallySkewed) {
  GraphBuilder builder(11);
  for (VertexId v = 1; v <= 10; ++v) builder.add_edge(0, v);
  const DegreeStats stats = compute_degree_stats(builder.build({}));
  EXPECT_EQ(stats.max_out, 10u);
  EXPECT_EQ(stats.min_out, 0u);
  EXPECT_EQ(stats.isolated_vertices, 10u);
  // One of 11 vertices holds all degree: gini = 10/11.
  EXPECT_NEAR(stats.gini, 10.0 / 11.0, 1e-9);
}

TEST(DegreeStatsTest, EmptyGraph) {
  const DegreeStats stats = compute_degree_stats(Graph());
  EXPECT_EQ(stats.max_out, 0u);
  EXPECT_DOUBLE_EQ(stats.gini, 0.0);
}

TEST(DegreeStatsTest, PercentilesAreOrdered) {
  GraphBuilder builder(100);
  for (VertexId v = 0; v < 99; ++v) {
    for (VertexId t = 0; t < v % 10; ++t) {
      builder.add_edge(v, (v + t + 1) % 100);
    }
  }
  const DegreeStats stats = compute_degree_stats(builder.build({}));
  EXPECT_LE(stats.p50_out, stats.p99_out);
  EXPECT_LE(static_cast<double>(stats.min_out), stats.p50_out);
  EXPECT_LE(stats.p99_out, static_cast<double>(stats.max_out));
}

}  // namespace
}  // namespace g10::graph
