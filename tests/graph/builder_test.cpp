#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::graph {
namespace {

TEST(GraphBuilderTest, BuildsSortedCsr) {
  GraphBuilder builder(4);
  builder.add_edge(0, 2);
  builder.add_edge(0, 1);
  builder.add_edge(3, 0);
  const Graph g = builder.build({});
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  const auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(3), 1u);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  const Graph g = builder.build({});
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphBuilderTest, KeepsParallelEdgesWhenAsked) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  GraphBuilder::Options options;
  options.deduplicate = false;
  const Graph g = builder.build(options);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphBuilderTest, RemovesSelfLoopsByDefault) {
  GraphBuilder builder(3);
  builder.add_edge(1, 1);
  builder.add_edge(0, 1);
  const Graph g = builder.build({});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphBuilderTest, SymmetrizeAddsReverseEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  GraphBuilder::Options options;
  options.symmetrize = true;
  const Graph g = builder.build(options);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.undirected());
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), CheckError);
  EXPECT_THROW(builder.add_edge(5, 0), CheckError);
}

TEST(GraphTest, InNeighborsAreCorrect) {
  GraphBuilder builder(4);
  builder.add_edge(0, 2);
  builder.add_edge(1, 2);
  builder.add_edge(3, 2);
  builder.add_edge(2, 0);
  const Graph g = builder.build({});
  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 3u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
  EXPECT_EQ(in2[2], 3u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 0u);
}

TEST(GraphTest, HasEdgeBinarySearch) {
  GraphBuilder builder(5);
  for (VertexId v = 1; v < 5; ++v) builder.add_edge(0, v);
  const Graph g = builder.build({});
  for (VertexId v = 1; v < 5; ++v) EXPECT_TRUE(g.has_edge(0, v));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(GraphTest, EdgeIdMatchesCsrPosition) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 2);
  const Graph g = builder.build({});
  EXPECT_EQ(g.edge_id(0, 0), 0u);
  EXPECT_EQ(g.edge_id(0, 1), 1u);
  EXPECT_EQ(g.edge_id(1, 0), 2u);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder(3);
  const Graph g = builder.build({});
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.out_neighbors(0).empty());
}

TEST(WeightedGraphTest, WeightsFollowEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 2, 5.0);
  builder.add_edge(0, 1, 2.5);
  builder.add_edge(1, 2, 7.0);
  const Graph g = builder.build({});
  ASSERT_TRUE(g.weighted());
  // Sorted CSR: (0,1)=2.5, (0,2)=5.0, (1,2)=7.0.
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1), 5.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2), 7.0);
  const auto w0 = g.out_weights(0);
  ASSERT_EQ(w0.size(), 2u);
  EXPECT_DOUBLE_EQ(w0[0], 2.5);
}

TEST(WeightedGraphTest, UnweightedDefaultsToOne) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const Graph g = builder.build({});
  EXPECT_FALSE(g.weighted());
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
  EXPECT_TRUE(g.out_weights(0).empty());
}

TEST(WeightedGraphTest, SymmetrizeDuplicatesWeight) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 3.5);
  GraphBuilder::Options options;
  options.symmetrize = true;
  const Graph g = builder.build(options);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.edge_id(0, 0)), 3.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.edge_id(1, 0)), 3.5);
}

TEST(WeightedGraphTest, DedupKeepsLightestParallelEdge) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 9.0);
  builder.add_edge(0, 1, 2.0);
  const Graph g = builder.build({});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.0);
}

TEST(WeightedGraphTest, InWeightMatchesOutEdge) {
  GraphBuilder builder(3);
  builder.add_edge(0, 2, 4.0);
  builder.add_edge(1, 2, 6.0);
  const Graph g = builder.build({});
  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_DOUBLE_EQ(g.in_weight(2, 0), 4.0);  // from vertex 0
  EXPECT_DOUBLE_EQ(g.in_weight(2, 1), 6.0);  // from vertex 1
}

TEST(WeightedGraphTest, SetWeightsValidatesSize) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1);
  Graph g = builder.build({});
  EXPECT_THROW(g.set_weights({1.0, 2.0}), CheckError);
  g.set_weights({2.5});
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 2.5);
}

TEST(GraphTest, CsrValidationRejectsBadOffsets) {
  EXPECT_THROW(Graph({0, 2, 1}, {0, 1}, false, "bad"), CheckError);
  EXPECT_THROW(Graph({1, 2}, {0}, false, "bad"), CheckError);
}

}  // namespace
}  // namespace g10::graph
