#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"

namespace g10::graph {
namespace {

TEST(RmatTest, DeterministicForSeed) {
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  params.seed = 5;
  const Graph a = generate_rmat(params);
  const Graph b = generate_rmat(params);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.out_targets(), b.out_targets());
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
}

TEST(RmatTest, DifferentSeedsDiffer) {
  RmatParams params;
  params.scale = 8;
  params.seed = 5;
  const Graph a = generate_rmat(params);
  params.seed = 6;
  const Graph b = generate_rmat(params);
  EXPECT_NE(a.out_targets(), b.out_targets());
}

TEST(RmatTest, HasExpectedScaleAndSkew) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 16;
  const Graph g = generate_rmat(params);
  EXPECT_EQ(g.vertex_count(), 1024u);
  // Dedup removes some edges but most should survive.
  EXPECT_GT(g.edge_count(), 1024u * 8);
  const DegreeStats stats = compute_degree_stats(g);
  // Power-law-ish: heavily skewed out-degree distribution.
  EXPECT_GT(stats.gini, 0.4);
  EXPECT_GT(static_cast<double>(stats.max_out), 8.0 * stats.mean_out);
}

TEST(ErdosRenyiTest, ExactEdgeBudgetBeforeDedup) {
  ErdosRenyiParams params;
  params.vertices = 512;
  params.edges = 4096;
  const Graph g = generate_erdos_renyi(params);
  EXPECT_EQ(g.vertex_count(), 512u);
  // A few duplicates collapse; the count stays close to requested.
  EXPECT_GT(g.edge_count(), 3900u);
  EXPECT_LE(g.edge_count(), 4096u);
  const DegreeStats stats = compute_degree_stats(g);
  EXPECT_LT(stats.gini, 0.3);  // near-uniform degrees
}

TEST(ErdosRenyiTest, Deterministic) {
  ErdosRenyiParams params;
  params.vertices = 128;
  params.edges = 512;
  params.seed = 77;
  EXPECT_EQ(generate_erdos_renyi(params).out_targets(),
            generate_erdos_renyi(params).out_targets());
}

TEST(GridTest, StructureIsCorrect) {
  const Graph g = generate_grid(4, 3);
  EXPECT_EQ(g.vertex_count(), 12u);
  // Undirected 4-neighborhood: 2*w*h - w - h edges, doubled by symmetrize.
  EXPECT_EQ(g.edge_count(), 2u * (2 * 4 * 3 - 4 - 3));
  // Corner has degree 2, center degree 4.
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(5), 4u);  // (1,1)
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(DatagenTest, DeterministicAndClustered) {
  DatagenParams params;
  params.vertices = 2048;
  params.mean_degree = 10;
  params.seed = 11;
  const Graph a = generate_datagen_like(params);
  const Graph b = generate_datagen_like(params);
  EXPECT_EQ(a.out_targets(), b.out_targets());
  EXPECT_EQ(a.vertex_count(), 2048u);
  EXPECT_GT(a.edge_count(), 2048u * 3);
  EXPECT_TRUE(a.undirected());
}

TEST(DatagenTest, DegreeSkewPresent) {
  DatagenParams params;
  params.vertices = 4096;
  params.mean_degree = 16;
  const Graph g = generate_datagen_like(params);
  const DegreeStats stats = compute_degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max_out), 5.0 * stats.mean_out);
}

TEST(RandomWeightsTest, DeterministicSymmetricAndInRange) {
  DatagenParams params;
  params.vertices = 1024;
  params.mean_degree = 8;
  Graph a = generate_datagen_like(params);
  Graph b = generate_datagen_like(params);
  assign_random_weights(a, 1.0, 10.0, 42);
  assign_random_weights(b, 1.0, 10.0, 42);
  ASSERT_TRUE(a.weighted());
  for (EdgeIndex e = 0; e < a.edge_count(); ++e) {
    ASSERT_DOUBLE_EQ(a.edge_weight(e), b.edge_weight(e));
    ASSERT_GE(a.edge_weight(e), 1.0);
    ASSERT_LT(a.edge_weight(e), 10.0);
  }
  // Symmetric: weight(u->v) == weight(v->u) on the symmetrized graph.
  for (VertexId u = 0; u < a.vertex_count(); ++u) {
    const auto nbrs = a.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      const auto back = a.out_neighbors(v);
      for (EdgeIndex j = 0; j < back.size(); ++j) {
        if (back[j] == u) {
          ASSERT_DOUBLE_EQ(a.edge_weight(a.edge_id(u, i)),
                           a.edge_weight(a.edge_id(v, j)));
        }
      }
    }
  }
}

TEST(RandomWeightsTest, DifferentSeedsDiffer) {
  RmatParams params;
  params.scale = 8;
  Graph a = generate_rmat(params);
  Graph b = generate_rmat(params);
  assign_random_weights(a, 0.0, 1.0, 1);
  assign_random_weights(b, 0.0, 1.0, 2);
  bool any_diff = false;
  for (EdgeIndex e = 0; e < a.edge_count(); ++e) {
    if (a.edge_weight(e) != b.edge_weight(e)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

class GeneratorScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorScaleTest, RmatVertexCountMatchesScale) {
  RmatParams params;
  params.scale = GetParam();
  params.edge_factor = 4;
  const Graph g = generate_rmat(params);
  EXPECT_EQ(g.vertex_count(), 1u << GetParam());
  EXPECT_GT(g.edge_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorScaleTest,
                         ::testing::Values(4, 6, 8, 10, 12));

}  // namespace
}  // namespace g10::graph
