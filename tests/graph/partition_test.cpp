#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"

namespace g10::graph {
namespace {

Graph test_graph() {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8;
  params.seed = 3;
  return generate_rmat(params);
}

class EdgeCutTest : public ::testing::TestWithParam<PartitionId> {};

TEST_P(EdgeCutTest, HashCoversAllVertices) {
  const Graph g = test_graph();
  const auto p = partition_by_hash(g, GetParam());
  ASSERT_EQ(p.owner.size(), g.vertex_count());
  for (const PartitionId owner : p.owner) EXPECT_LT(owner, GetParam());
  const auto counts = p.vertex_counts();
  const VertexId total = std::accumulate(counts.begin(), counts.end(), 0u);
  EXPECT_EQ(total, g.vertex_count());
}

TEST_P(EdgeCutTest, RangeIsContiguous) {
  const Graph g = test_graph();
  const auto p = partition_by_range(g, GetParam());
  for (VertexId v = 1; v < g.vertex_count(); ++v) {
    EXPECT_LE(p.owner[v - 1], p.owner[v]);
  }
}

TEST_P(EdgeCutTest, EdgeBalanceBalancesEdges) {
  const Graph g = test_graph();
  const auto p = partition_by_edge_balance(g, GetParam());
  const auto edges = p.edge_counts(g);
  const auto parts = GetParam();
  const double mean =
      static_cast<double>(g.edge_count()) / static_cast<double>(parts);
  for (const EdgeIndex count : edges) {
    // Within 50% of the mean (a single hub can distort one bin).
    EXPECT_LT(static_cast<double>(count), mean * 1.5 + 64.0);
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, EdgeCutTest,
                         ::testing::Values(2, 4, 8, 16));

TEST(EdgeCutTest, SinglePartitionHasNoCut) {
  const Graph g = test_graph();
  const auto p = partition_by_hash(g, 1);
  EXPECT_DOUBLE_EQ(p.cut_fraction(g), 0.0);
}

TEST(EdgeCutTest, HashCutFractionIsHigh) {
  const Graph g = test_graph();
  const auto p = partition_by_hash(g, 8);
  // Random-ish placement cuts about (k-1)/k of edges.
  EXPECT_GT(p.cut_fraction(g), 0.6);
  EXPECT_LE(p.cut_fraction(g), 1.0);
}

class VertexCutTest
    : public ::testing::TestWithParam<std::pair<const char*, PartitionId>> {
 protected:
  VertexCutPartition make(const Graph& g) const {
    const auto& [kind, parts] = GetParam();
    if (std::string_view(kind) == "greedy") {
      return partition_vertex_cut_greedy(g, parts);
    }
    if (std::string_view(kind) == "random") {
      return partition_vertex_cut_random(g, parts, 7);
    }
    return partition_vertex_cut_hash_source(g, parts);
  }
};

TEST_P(VertexCutTest, EveryEdgeAssignedAndReplicasConsistent) {
  const Graph g = test_graph();
  const auto cut = make(g);
  const auto parts = GetParam().second;
  ASSERT_EQ(cut.edge_owner.size(), g.edge_count());
  for (const PartitionId p : cut.edge_owner) EXPECT_LT(p, parts);

  // Each edge's endpoints must have replicas on the edge's partition, and
  // each vertex's master must be among its replicas.
  for (VertexId u = 0; u < g.vertex_count(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const PartitionId p = cut.edge_owner[g.edge_id(u, i)];
      const auto& ru = cut.replicas[u];
      const auto& rv = cut.replicas[nbrs[i]];
      EXPECT_TRUE(std::find(ru.begin(), ru.end(), p) != ru.end());
      EXPECT_TRUE(std::find(rv.begin(), rv.end(), p) != rv.end());
    }
    if (!cut.replicas[u].empty()) {
      const auto& r = cut.replicas[u];
      EXPECT_TRUE(std::find(r.begin(), r.end(), cut.master[u]) != r.end());
      EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
    }
  }
  EXPECT_GE(cut.replication_factor(), 1.0);
  EXPECT_LE(cut.replication_factor(), static_cast<double>(parts));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, VertexCutTest,
    ::testing::Values(std::make_pair("greedy", PartitionId{4}),
                      std::make_pair("greedy", PartitionId{8}),
                      std::make_pair("random", PartitionId{4}),
                      std::make_pair("hash", PartitionId{4}),
                      std::make_pair("hash", PartitionId{8})));

TEST(VertexCutComparisonTest, GreedyBalancesBetterThanHashSource) {
  const Graph g = test_graph();
  const auto greedy = partition_vertex_cut_greedy(g, 8);
  const auto hash = partition_vertex_cut_hash_source(g, 8);
  const auto imbalance = [](const std::vector<EdgeIndex>& counts) {
    const auto max = *std::max_element(counts.begin(), counts.end());
    const auto sum = std::accumulate(counts.begin(), counts.end(),
                                     EdgeIndex{0});
    return static_cast<double>(max) * counts.size() /
           static_cast<double>(sum);
  };
  EXPECT_LT(imbalance(greedy.edge_counts()), imbalance(hash.edge_counts()));
}

TEST(VertexCutComparisonTest, GreedyReplicationBelowRandom) {
  const Graph g = test_graph();
  const auto greedy = partition_vertex_cut_greedy(g, 8);
  const auto random = partition_vertex_cut_random(g, 8, 9);
  EXPECT_LT(greedy.replication_factor(), random.replication_factor());
}

}  // namespace
}  // namespace g10::graph
