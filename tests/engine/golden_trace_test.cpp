// Golden-trace regression: the engines' logs must stay byte-identical to
// committed fixtures across refactors of the trace-generation path. The
// original fixtures were produced by the pre-batching delivery path, so the
// batch-off runs pin that path byte-for-byte; the `_batched` fixtures pin
// the default coalesced delivery schedule (DESIGN.md §13).
//
// Set G10_REGEN_GOLDEN=1 (or use the `regen-golden` CMake target /
// tools/regen_golden.sh) to rewrite every fixture from the current build
// instead of comparing.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "algorithms/programs.hpp"
#include "engine/dataflow/dataflow_engine.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "trace/log_io.hpp"

namespace g10 {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(G10_GOLDEN_TRACE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Compares `rendered` to the committed fixture, or rewrites the fixture
/// when G10_REGEN_GOLDEN is set in the environment.
void check_or_regen(const std::string& name, const std::string& rendered) {
  if (std::getenv("G10_REGEN_GOLDEN") != nullptr) {
    const std::string path = fixture_path(name);
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write fixture: " << path;
    os << rendered;
    std::cout << "[regen] wrote " << path << " (" << rendered.size()
              << " bytes)\n";
    return;
  }
  EXPECT_EQ(rendered, read_fixture(name));
}

std::string render(const trace::RunArtifacts& artifacts) {
  std::ostringstream os;
  trace::write_log(os, artifacts.phase_events, artifacts.blocking_events, {});
  return os.str();
}

graph::Graph make_graph() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 11;
  return generate_datagen_like(params);
}

engine::PregelConfig pregel_config() {
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  return cfg;
}

engine::GasConfig gas_config() {
  engine::GasConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  return cfg;
}

TEST(GoldenTraceTest, PregelPageRankUnbatchedMatchesFixture) {
  auto cfg = pregel_config();
  cfg.batch.max_batch_bytes = 0.0;  // pre-batching delivery path
  const auto artifacts =
      engine::PregelEngine(cfg).run(make_graph(), algorithms::PageRank(5));
  check_or_regen("pregel_pagerank_d512_s99.log", render(artifacts));
}

TEST(GoldenTraceTest, PregelPageRankBatchedMatchesFixture) {
  const auto artifacts = engine::PregelEngine(pregel_config())
                             .run(make_graph(), algorithms::PageRank(5));
  check_or_regen("pregel_pagerank_d512_s99_batched.log", render(artifacts));
}

TEST(GoldenTraceTest, GasPageRankUnbatchedMatchesFixture) {
  auto cfg = gas_config();
  cfg.batch.max_batch_bytes = 0.0;
  const auto artifacts =
      engine::GasEngine(cfg).run(make_graph(), algorithms::PageRank(5));
  check_or_regen("gas_pagerank_d512_s99.log", render(artifacts));
}

TEST(GoldenTraceTest, GasPageRankBatchedMatchesFixture) {
  const auto artifacts = engine::GasEngine(gas_config())
                             .run(make_graph(), algorithms::PageRank(5));
  check_or_regen("gas_pagerank_d512_s99_batched.log", render(artifacts));
}

TEST(GoldenTraceTest, DataflowMatchesFixture) {
  engine::DataflowConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  engine::StageSpec stage;
  stage.tasks = 48;
  stage.skew = 0.3;
  engine::DataflowJobSpec job;
  job.stages = {stage, stage, stage};
  const auto artifacts = engine::DataflowEngine(cfg).run(job);
  check_or_regen("dataflow_3stage_s99.log", render(artifacts));
}

}  // namespace
}  // namespace g10
