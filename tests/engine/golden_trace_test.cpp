// Golden-trace regression: the engines' logs must stay byte-identical to
// committed fixtures across refactors of the trace-generation path. The
// fixtures were produced by the string-based (pre-interning) pipeline, so a
// pass here proves the interned fast path changes nothing observable.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "algorithms/programs.hpp"
#include "engine/dataflow/dataflow_engine.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "trace/log_io.hpp"

namespace g10 {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(G10_GOLDEN_TRACE_DIR) + "/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

std::string render(const trace::RunArtifacts& artifacts) {
  std::ostringstream os;
  trace::write_log(os, artifacts.phase_events, artifacts.blocking_events, {});
  return os.str();
}

graph::Graph make_graph() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 11;
  return generate_datagen_like(params);
}

TEST(GoldenTraceTest, PregelPageRankMatchesFixture) {
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  const auto artifacts =
      engine::PregelEngine(cfg).run(make_graph(), algorithms::PageRank(5));
  EXPECT_EQ(render(artifacts), read_fixture("pregel_pagerank_d512_s99.log"));
}

TEST(GoldenTraceTest, GasPageRankMatchesFixture) {
  engine::GasConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  const auto artifacts =
      engine::GasEngine(cfg).run(make_graph(), algorithms::PageRank(5));
  EXPECT_EQ(render(artifacts), read_fixture("gas_pagerank_d512_s99.log"));
}

TEST(GoldenTraceTest, DataflowMatchesFixture) {
  engine::DataflowConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  engine::StageSpec stage;
  stage.tasks = 48;
  stage.skew = 0.3;
  engine::DataflowJobSpec job;
  job.stages = {stage, stage, stage};
  const auto artifacts = engine::DataflowEngine(cfg).run(job);
  EXPECT_EQ(render(artifacts), read_fixture("dataflow_3stage_s99.log"));
}

}  // namespace
}  // namespace g10
