// Regression: the fault-tolerance substrate must be a strict no-op when no
// faults are injected. Attaching an empty FaultSpec — and turning every
// retry / heartbeat / checkpoint knob — must leave the serialized trace of
// both engines byte-identical to a plain run, at any thread count. If the
// reliable channel, failure detector, or checkpoint scheduling ever engages
// on a fault-free run (extra RNG draws, reordered records, spurious
// phases), this test catches it at the byte level.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "algorithms/programs.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "sim/fault_injector.hpp"
#include "trace/log_io.hpp"

namespace g10::engine {
namespace {

graph::Graph make_graph() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 11;
  return generate_datagen_like(params);
}

std::string pregel_log(const PregelConfig& cfg, const graph::Graph& graph) {
  const auto artifacts =
      PregelEngine(cfg).run(graph, algorithms::PageRank(5));
  std::ostringstream os;
  trace::write_log(os, artifacts.phase_events, artifacts.blocking_events, {});
  return os.str();
}

std::string gas_log(const GasConfig& cfg, const graph::Graph& graph) {
  const auto artifacts = GasEngine(cfg).run(graph, algorithms::PageRank(5));
  std::ostringstream os;
  trace::write_log(os, artifacts.phase_events, artifacts.blocking_events, {});
  return os.str();
}

/// Attaches an empty spec and moves every fault-tolerance knob away from
/// its default; none of it may matter without fault events.
template <typename Config>
Config with_idle_fault_machinery(Config cfg) {
  cfg.cluster.faults = sim::FaultSpec{};
  cfg.retry.timeout_seconds = 0.5;
  cfg.retry.backoff = 3.0;
  cfg.retry.max_attempts = 9;
  cfg.heartbeat.interval_seconds = 0.01;
  cfg.heartbeat.timeout_seconds = 0.03;
  cfg.checkpoint.interval_steps = 2;
  cfg.crash_log = CrashLogStyle::kTruncated;
  return cfg;
}

TEST(FaultFreeIdentityTest, PregelTraceIsByteIdentical) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    PregelConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    const std::string reference = pregel_log(cfg, graph);
    EXPECT_EQ(pregel_log(with_idle_fault_machinery(cfg), graph), reference)
        << "threads_per_worker=" << threads;
  }
}

TEST(FaultFreeIdentityTest, GasTraceIsByteIdentical) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    GasConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    const std::string reference = gas_log(cfg, graph);
    EXPECT_EQ(gas_log(with_idle_fault_machinery(cfg), graph), reference)
        << "threads_per_worker=" << threads;
  }
}

// The same no-op guarantee must hold on the --batch-bytes 0 escape hatch:
// disabling communication batching restores the pre-batcher delivery path,
// and idle fault machinery must still not perturb it.
TEST(FaultFreeIdentityTest, PregelUnbatchedTraceIsByteIdentical) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    PregelConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    cfg.batch.max_batch_bytes = 0.0;
    const std::string reference = pregel_log(cfg, graph);
    EXPECT_EQ(pregel_log(with_idle_fault_machinery(cfg), graph), reference)
        << "threads_per_worker=" << threads;
  }
}

TEST(FaultFreeIdentityTest, GasUnbatchedTraceIsByteIdentical) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    GasConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    cfg.batch.max_batch_bytes = 0.0;
    const std::string reference = gas_log(cfg, graph);
    EXPECT_EQ(gas_log(with_idle_fault_machinery(cfg), graph), reference)
        << "threads_per_worker=" << threads;
  }
}

// Determinism sweep for the default batched schedule: running the same
// batched configuration twice must reproduce the trace byte-for-byte at
// every thread count (the batcher introduces no hidden run-to-run state).
TEST(FaultFreeIdentityTest, PregelBatchedTraceIsReproducible) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    PregelConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    const std::string reference = pregel_log(cfg, graph);
    EXPECT_EQ(pregel_log(cfg, graph), reference)
        << "threads_per_worker=" << threads;
  }
}

TEST(FaultFreeIdentityTest, GasBatchedTraceIsReproducible) {
  const graph::Graph graph = make_graph();
  for (const int threads : {1, 2, 8}) {
    GasConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 8;
    cfg.threads_per_worker = threads;
    cfg.seed = 99;
    const std::string reference = gas_log(cfg, graph);
    EXPECT_EQ(gas_log(cfg, graph), reference)
        << "threads_per_worker=" << threads;
  }
}

}  // namespace
}  // namespace g10::engine
