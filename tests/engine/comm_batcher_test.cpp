// Unit tests for the per-destination communication coalescing buffers
// (DESIGN.md §13): deposit/threshold semantics, drain order, crash clears,
// and the statistics the engines surface through trace::CommStats.
#include <gtest/gtest.h>

#include <vector>

#include "engine/comm_batcher.hpp"

namespace g10::engine {
namespace {

CommBatcher make_batcher(double max_bytes, int workers) {
  CommBatcherConfig config;
  config.max_batch_bytes = max_bytes;
  return CommBatcher(config, workers);
}

TEST(CommBatcherTest, DisabledWhenThresholdIsZero) {
  EXPECT_FALSE(CommBatcher().enabled());  // default-constructed: no workers
  EXPECT_FALSE(make_batcher(0.0, 4).enabled());
  EXPECT_TRUE(make_batcher(1024.0, 4).enabled());
}

TEST(CommBatcherTest, DepositAccumulatesAndReportsCrossing) {
  auto batcher = make_batcher(100.0, 3);

  auto dep = batcher.deposit(0, 1, 40.0);
  EXPECT_TRUE(dep.first_pending);
  EXPECT_FALSE(dep.crossed);
  EXPECT_DOUBLE_EQ(batcher.pending(0), 40.0);

  dep = batcher.deposit(0, 1, 40.0);
  EXPECT_FALSE(dep.first_pending);
  EXPECT_FALSE(dep.crossed);

  dep = batcher.deposit(0, 1, 30.0);
  EXPECT_FALSE(dep.first_pending);
  EXPECT_TRUE(dep.crossed);  // 110 >= 100
  EXPECT_DOUBLE_EQ(batcher.pending(0), 110.0);

  EXPECT_DOUBLE_EQ(batcher.take(0, 1, FlushCause::kSize), 110.0);
  EXPECT_DOUBLE_EQ(batcher.pending(0), 0.0);
  EXPECT_DOUBLE_EQ(batcher.take(0, 1, FlushCause::kSize), 0.0);  // empty
}

TEST(CommBatcherTest, ZeroByteDepositIsIgnored) {
  auto batcher = make_batcher(100.0, 2);
  const auto dep = batcher.deposit(0, 1, 0.0);
  EXPECT_FALSE(dep.first_pending);
  EXPECT_FALSE(dep.crossed);
  EXPECT_EQ(batcher.stats().deposits, 0);
}

TEST(CommBatcherTest, FirstPendingIsPerSource) {
  auto batcher = make_batcher(1000.0, 3);
  EXPECT_TRUE(batcher.deposit(0, 1, 8.0).first_pending);
  EXPECT_FALSE(batcher.deposit(0, 2, 8.0).first_pending);  // src 0 not idle
  EXPECT_TRUE(batcher.deposit(1, 0, 8.0).first_pending);   // src 1 was idle
}

TEST(CommBatcherTest, TakeAllDrainsAscendingByDestination) {
  auto batcher = make_batcher(1000.0, 4);
  batcher.deposit(1, 3, 24.0);
  batcher.deposit(1, 0, 16.0);
  batcher.deposit(1, 2, 8.0);
  batcher.deposit(1, 2, 8.0);

  std::vector<CommBatcher::Flush> flushes;
  batcher.take_all(1, FlushCause::kBarrier, flushes);
  ASSERT_EQ(flushes.size(), 3u);
  EXPECT_EQ(flushes[0].dst, 0);
  EXPECT_DOUBLE_EQ(flushes[0].bytes, 16.0);
  EXPECT_EQ(flushes[1].dst, 2);
  EXPECT_DOUBLE_EQ(flushes[1].bytes, 16.0);
  EXPECT_EQ(flushes[2].dst, 3);
  EXPECT_DOUBLE_EQ(flushes[2].bytes, 24.0);
  EXPECT_DOUBLE_EQ(batcher.pending(1), 0.0);

  batcher.take_all(1, FlushCause::kBarrier, flushes);
  EXPECT_TRUE(flushes.empty());  // out is cleared even when nothing drains
}

TEST(CommBatcherTest, ClearDropsBuffersWithoutCountingFlushes) {
  auto batcher = make_batcher(1000.0, 3);
  batcher.deposit(2, 0, 24.0);
  batcher.deposit(2, 1, 24.0);
  batcher.clear(2);
  EXPECT_DOUBLE_EQ(batcher.pending(2), 0.0);
  EXPECT_EQ(batcher.stats().dropped_buffers, 2);
  EXPECT_EQ(batcher.stats().total_flushes(), 0);
  EXPECT_DOUBLE_EQ(batcher.stats().bytes_flushed, 0.0);
}

TEST(CommBatcherTest, StatsTallyDepositsAndFlushCauses) {
  auto batcher = make_batcher(100.0, 2);
  batcher.deposit(0, 1, 60.0);
  batcher.deposit(1, 0, 60.0);
  batcher.deposit(1, 0, 60.0);
  EXPECT_EQ(batcher.stats().deposits, 3);
  EXPECT_DOUBLE_EQ(batcher.stats().bytes_deposited, 180.0);

  batcher.take(1, 0, FlushCause::kSize);
  std::vector<CommBatcher::Flush> flushes;
  batcher.take_all(0, FlushCause::kTimer, flushes);
  batcher.deposit(0, 1, 8.0);
  batcher.take_all(0, FlushCause::kBarrier, flushes);

  EXPECT_EQ(batcher.stats().size_flushes, 1);
  EXPECT_EQ(batcher.stats().timer_flushes, 1);
  EXPECT_EQ(batcher.stats().barrier_flushes, 1);
  EXPECT_EQ(batcher.stats().total_flushes(), 3);
  EXPECT_DOUBLE_EQ(batcher.stats().bytes_flushed, 188.0);
}

}  // namespace
}  // namespace g10::engine
