// Communication batching must be a transport-level optimization only: the
// logical workload — messages produced per step, logical remote wire bytes,
// and the final per-vertex values — has to come out identical whether
// coalescing is on or off, both fault-free and under injected message loss.
// What batching IS allowed to change is the transport bookkeeping: fewer
// ReliableChannel plans under loss, nonzero flush counts when enabled.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "algorithms/programs.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "sim/fault_injector.hpp"
#include "trace/log_io.hpp"

namespace g10::engine {
namespace {

constexpr const char* kLossSpec = "nic:w*@10%+40%:x0.5:loss=0.3";

graph::Graph make_graph() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 11;
  return generate_datagen_like(params);
}

template <typename Config>
Config base_config(bool batched) {
  Config cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 8;
  cfg.seed = 99;
  if (!batched) cfg.batch.max_batch_bytes = 0.0;
  return cfg;
}

template <typename Config>
Config lossy_config(bool batched) {
  Config cfg = base_config<Config>(batched);
  std::string error;
  const auto spec = sim::FaultSpec::parse(kLossSpec, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  cfg.cluster.faults = *spec;
  return cfg;
}

std::string render(const trace::RunArtifacts& artifacts) {
  std::ostringstream os;
  trace::write_log(os, artifacts.phase_events, artifacts.blocking_events, {});
  return os.str();
}

void expect_same_logical_workload(const trace::RunArtifacts& on,
                                  const trace::RunArtifacts& off) {
  EXPECT_EQ(on.comm.messages_per_step, off.comm.messages_per_step);
  EXPECT_EQ(on.comm.remote_bytes_total, off.comm.remote_bytes_total);
  EXPECT_EQ(on.vertex_values, off.vertex_values);
}

TEST(BatchingEquivalenceTest, PregelFaultFreeLogicalWorkloadMatches) {
  const graph::Graph graph = make_graph();
  const algorithms::PageRank pagerank(5);
  const auto on =
      PregelEngine(base_config<PregelConfig>(true)).run(graph, pagerank);
  const auto off =
      PregelEngine(base_config<PregelConfig>(false)).run(graph, pagerank);
  expect_same_logical_workload(on, off);
  EXPECT_GT(on.comm.batch_flushes, 0);
  EXPECT_EQ(off.comm.batch_flushes, 0);
  // Fault-free runs never touch the reliable channel in either mode.
  EXPECT_EQ(on.comm.channel_plans, 0);
  EXPECT_EQ(off.comm.channel_plans, 0);
}

TEST(BatchingEquivalenceTest, PregelUnderLossLogicalWorkloadMatches) {
  const graph::Graph graph = make_graph();
  const algorithms::Wcc wcc;
  const auto on =
      PregelEngine(lossy_config<PregelConfig>(true)).run(graph, wcc);
  const auto off =
      PregelEngine(lossy_config<PregelConfig>(false)).run(graph, wcc);
  expect_same_logical_workload(on, off);
  // Coalescing exists to shrink per-destination channel plans; under loss
  // that is where retransmit bookkeeping lives.
  EXPECT_GT(off.comm.channel_plans, 0);
  EXPECT_LT(on.comm.channel_plans, off.comm.channel_plans);
  EXPECT_GT(on.comm.batch_flushes, 0);
}

TEST(BatchingEquivalenceTest, GasFaultFreeTraceAndWorkloadMatch) {
  const graph::Graph graph = make_graph();
  const algorithms::PageRank pagerank(5);
  const auto on = GasEngine(base_config<GasConfig>(true)).run(graph, pagerank);
  const auto off =
      GasEngine(base_config<GasConfig>(false)).run(graph, pagerank);
  expect_same_logical_workload(on, off);
  // GAS exchanges at a single bulk barrier, so the batched drain hands the
  // NIC exactly the bytes the unbatched path would: identical traces.
  EXPECT_EQ(render(on), render(off));
  EXPECT_GT(on.comm.batch_flushes, 0);
  EXPECT_EQ(off.comm.batch_flushes, 0);
}

TEST(BatchingEquivalenceTest, GasUnderLossTraceAndWorkloadMatch) {
  const graph::Graph graph = make_graph();
  const algorithms::Wcc wcc;
  const auto on = GasEngine(lossy_config<GasConfig>(true)).run(graph, wcc);
  const auto off = GasEngine(lossy_config<GasConfig>(false)).run(graph, wcc);
  expect_same_logical_workload(on, off);
  // The batched drain issues the same per-destination plans in the same
  // ascending order as the unbatched loop, so even the lossy schedule is
  // byte-identical.
  EXPECT_EQ(render(on), render(off));
  EXPECT_EQ(on.comm.channel_plans, off.comm.channel_plans);
  EXPECT_GT(off.comm.channel_plans, 0);
}

}  // namespace
}  // namespace g10::engine
