#include "engine/gas/gas_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "algorithms/programs.hpp"
#include "algorithms/reference.hpp"
#include "common/check.hpp"
#include "graph/generators.hpp"

namespace g10::engine {
namespace {

using algorithms::Bfs;
using algorithms::Cdlp;
using algorithms::PageRank;
using algorithms::Wcc;

graph::Graph small_graph() {
  graph::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.seed = 17;
  return generate_rmat(params);
}

graph::Graph small_undirected() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 21;
  return generate_datagen_like(params);
}

GasConfig small_config() {
  GasConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 4;
  cfg.seed = 55;
  return cfg;
}

void expect_values_near(const std::vector<double>& actual,
                        const std::vector<double>& expected, double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(actual[i])) << "vertex " << i;
    } else {
      EXPECT_NEAR(actual[i], expected[i], tol) << "vertex " << i;
    }
  }
}

TEST(GasEngineTest, PageRankMatchesReference) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, PageRank(8));
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 8), 1e-9);
}

TEST(GasEngineTest, BfsMatchesReference) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, Bfs(1));
  expect_values_near(result.vertex_values, algorithms::bfs_reference(g, 1),
                     1e-12);
}

TEST(GasEngineTest, WccMatchesReference) {
  const auto g = small_undirected();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, Wcc());
  expect_values_near(result.vertex_values, algorithms::wcc_reference(g),
                     1e-12);
}

TEST(GasEngineTest, CdlpMatchesReference) {
  const auto g = small_undirected();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, Cdlp(4));
  expect_values_near(result.vertex_values, algorithms::cdlp_reference(g, 4),
                     1e-12);
}

TEST(GasEngineTest, SsspMatchesDijkstraOnWeightedGraph) {
  auto g = small_graph();
  graph::assign_random_weights(g, 1.0, 10.0, 99);
  const GasEngine engine(small_config());
  const auto result = engine.run(g, algorithms::Sssp(1));
  expect_values_near(result.vertex_values,
                     algorithms::sssp_reference(g, 1), 1e-9);
}

TEST(GasEngineTest, SsspOnUnweightedGraphEqualsBfs) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, algorithms::Sssp(1));
  expect_values_near(result.vertex_values, algorithms::bfs_reference(g, 1),
                     1e-12);
}

TEST(GasEngineTest, DeterministicForSameSeed) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto a = engine.run(g, PageRank(5));
  const auto b = engine.run(g, PageRank(5));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.phase_events.size(), b.phase_events.size());
}

TEST(GasEngineTest, PhaseEventsAreBalanced) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, PageRank(4));
  std::map<std::string, int> open;
  for (const auto& event : result.phase_events) {
    open[event.path.to_string()] +=
        event.kind == trace::PhaseEventRecord::Kind::Begin ? 1 : -1;
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0) << key;
}

TEST(GasEngineTest, NoBlockingEventsEver) {
  // PowerGraph has no GC and no explicit queue stalls (paper §IV-C).
  const auto g = small_undirected();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, Cdlp(4));
  EXPECT_TRUE(result.blocking_events.empty());
}

TEST(GasEngineTest, CpuWithinCapacity) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, PageRank(5));
  for (const auto& gt : result.ground_truth) {
    if (gt.resource != gas_names::kCpu) continue;
    EXPECT_LE(gt.series.max_over(0, result.makespan), gt.capacity + 1e-9);
  }
}

TEST(GasEngineTest, IterationStepsPresentAndOrdered) {
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, PageRank(3));
  // Gather of iteration 0 must end before Apply of iteration 0 begins.
  std::map<std::string, std::pair<TimeNs, TimeNs>> spans;
  for (const auto& event : result.phase_events) {
    auto& span = spans[event.path.to_string()];
    (event.kind == trace::PhaseEventRecord::Kind::Begin ? span.first
                                                        : span.second) =
        event.time;
  }
  const std::string prefix = "Job.0/Execute.0/Iteration.0/";
  ASSERT_TRUE(spans.contains(prefix + "GatherStep.0"));
  ASSERT_TRUE(spans.contains(prefix + "ApplyStep.0"));
  ASSERT_TRUE(spans.contains(prefix + "ScatterStep.0"));
  ASSERT_TRUE(spans.contains(prefix + "ExchangeStep.0"));
  EXPECT_LE(spans[prefix + "GatherStep.0"].second,
            spans[prefix + "ApplyStep.0"].first);
  EXPECT_LE(spans[prefix + "ApplyStep.0"].second,
            spans[prefix + "ScatterStep.0"].first);
  EXPECT_LE(spans[prefix + "ScatterStep.0"].second,
            spans[prefix + "ExchangeStep.0"].first);
}

TEST(GasEngineTest, SyncBugInflatesGatherSteps) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.seed = 7;

  auto cfg_bug = cfg;
  cfg_bug.sync_bug.enabled = true;
  cfg_bug.sync_bug.probability = 1.0;  // every gather step on every worker
  cfg_bug.sync_bug.min_extra = 0.5;
  cfg_bug.sync_bug.max_extra = 0.5;

  const auto clean = GasEngine(cfg).run(g, Cdlp(4));
  const auto buggy = GasEngine(cfg_bug).run(g, Cdlp(4));
  EXPECT_GT(buggy.makespan, clean.makespan);
}

TEST(GasEngineTest, SyncBugDisabledByDefault) {
  const GasConfig cfg;
  EXPECT_FALSE(cfg.sync_bug.enabled);
}

class GasPartitioningTest : public ::testing::TestWithParam<VertexCutStrategy> {
};

TEST_P(GasPartitioningTest, CorrectUnderAllStrategies) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.partitioning = GetParam();
  const GasEngine engine(cfg);
  const auto result = engine.run(g, Wcc());
  const auto expected = algorithms::wcc_reference(g);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ(result.vertex_values[i], expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, GasPartitioningTest,
                         ::testing::Values(VertexCutStrategy::kHashSource,
                                           VertexCutStrategy::kGreedy,
                                           VertexCutStrategy::kRandom));

TEST(GasEngineTest, BfsTerminatesEarlyOnConvergence) {
  // BFS on a small graph should need far fewer iterations than the cap.
  const auto g = small_graph();
  const GasEngine engine(small_config());
  const auto result = engine.run(g, Bfs(1));
  std::int64_t max_iteration = -1;
  for (const auto& event : result.phase_events) {
    for (const auto& element : event.path.elements) {
      if (element.type == "Iteration") {
        max_iteration = std::max(max_iteration, element.index);
      }
    }
  }
  EXPECT_GE(max_iteration, 1);
  EXPECT_LT(max_iteration, 100);
}

TEST(GasFaultTest, SlowdownStretchesMakespanWithoutChangingOutput) {
  const auto g = small_graph();
  const GasEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(6));
  auto cfg = small_config();
  const auto spec = sim::FaultSpec::parse("slow:w*@0s:x0.25");
  ASSERT_TRUE(spec.has_value());
  cfg.cluster.faults = *spec;
  const GasEngine engine(cfg);
  const auto slowed = engine.run(g, PageRank(6));
  EXPECT_GT(slowed.makespan, baseline.makespan);
  expect_values_near(slowed.vertex_values, baseline.vertex_values, 0.0);
}

TEST(GasFaultTest, CrashRecoveryConvergesToReference) {
  const auto g = small_graph();
  auto cfg = small_config();
  const auto spec = sim::FaultSpec::parse("crash:w0@40%");
  ASSERT_TRUE(spec.has_value());
  cfg.cluster.faults = *spec;
  const GasEngine engine(cfg);
  const auto result = engine.run(g, PageRank(8));
  // Snapshot restore + re-execution must not perturb algorithm output.
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 8), 1e-9);

  // The reconciled crash log stays balanced, has Recovery/Checkpoint
  // phases, and reports the downtime as Recovery blocking events.
  std::map<std::string, int> open;
  bool saw_recovery_phase = false;
  for (const auto& event : result.phase_events) {
    open[event.path.to_string()] +=
        event.kind == trace::PhaseEventRecord::Kind::Begin ? 1 : -1;
    for (const auto& element : event.path.elements) {
      if (element.type == "Recovery") saw_recovery_phase = true;
    }
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0) << key;
  EXPECT_TRUE(saw_recovery_phase);
  bool saw_recovery_block = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == gas_names::kRecovery) saw_recovery_block = true;
  }
  EXPECT_TRUE(saw_recovery_block);
}

TEST(GasFaultTest, PartitionIsRiddenOutWithRetries) {
  const auto g = small_graph();
  const GasEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(6));
  auto cfg = small_config();
  const auto spec = sim::FaultSpec::parse("part:w0-w1@20%+25%");
  ASSERT_TRUE(spec.has_value());
  cfg.cluster.faults = *spec;
  const GasEngine engine(cfg);
  const auto result = engine.run(g, PageRank(6));
  bool saw_retry = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == gas_names::kRetry) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(result.makespan, baseline.makespan);
  expect_values_near(result.vertex_values, baseline.vertex_values, 1e-12);
}

TEST(GasFaultTest, LossyNicCausesRetryBlocksWithoutChangingOutput) {
  const auto g = small_graph();
  const GasEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(6));
  auto cfg = small_config();
  const auto spec = sim::FaultSpec::parse("nic:w*@0s:x0.5:loss=0.4");
  ASSERT_TRUE(spec.has_value());
  cfg.cluster.faults = *spec;
  const GasEngine engine(cfg);
  const auto result = engine.run(g, PageRank(6));
  bool saw_retry = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == gas_names::kRetry) saw_retry = true;
  }
  EXPECT_TRUE(saw_retry);
  expect_values_near(result.vertex_values, baseline.vertex_values, 1e-12);
}

}  // namespace
}  // namespace g10::engine
