#include "engine/phase_logger.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::engine {
namespace {

trace::PathRef path(std::string_view type, std::int64_t index) {
  return trace::PathRef{}.child(type, index);
}

TEST(PhaseLoggerTest, BalancedBeginEnd) {
  PhaseLogger log;
  log.begin(path("A", 0), 0, -1);
  log.end(path("A", 0), 10, -1);
  const auto events = log.take_phase_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, trace::PhaseEventRecord::Kind::Begin);
  EXPECT_EQ(events[1].kind, trace::PhaseEventRecord::Kind::End);
  EXPECT_EQ(events[1].time, 10);
}

TEST(PhaseLoggerTest, RejectsDoubleBegin) {
  PhaseLogger log;
  log.begin(path("A", 0), 0, -1);
  EXPECT_THROW(log.begin(path("A", 0), 5, -1), CheckError);
}

TEST(PhaseLoggerTest, RejectsEndWithoutBegin) {
  PhaseLogger log;
  EXPECT_THROW(log.end(path("A", 0), 5, -1), CheckError);
}

TEST(PhaseLoggerTest, RejectsEndBeforeBegin) {
  PhaseLogger log;
  log.begin(path("A", 0), 10, -1);
  EXPECT_THROW(log.end(path("A", 0), 5, -1), CheckError);
}

TEST(PhaseLoggerTest, RejectsTakeWithOpenPhases) {
  PhaseLogger log;
  log.begin(path("A", 0), 0, -1);
  EXPECT_THROW(log.take_phase_events(), CheckError);
}

TEST(PhaseLoggerTest, BlockEventsRecorded) {
  PhaseLogger log;
  log.begin(path("A", 0), 0, 2);
  log.block("GC", path("A", 0), 3, 7, 2);
  log.block("GC", path("A", 0), 7, 7, 2);  // zero length: dropped
  log.end(path("A", 0), 10, 2);
  const auto blocks = log.take_blocking_events();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].resource, "GC");
  EXPECT_EQ(blocks[0].begin, 3);
  EXPECT_EQ(blocks[0].end, 7);
  EXPECT_EQ(blocks[0].machine, 2);
}

TEST(PhaseLoggerTest, SamePathCanReopenAfterEnd) {
  PhaseLogger log;
  log.begin(path("A", 0), 0, -1);
  log.end(path("A", 0), 5, -1);
  // Re-opening the same path is rejected only while open; after end it is a
  // duplicate instance and the engines never do it — but the logger treats
  // path uniqueness per open set.
  log.begin(path("A", 1), 5, -1);
  log.end(path("A", 1), 6, -1);
  EXPECT_EQ(log.take_phase_events().size(), 4u);
}

}  // namespace
}  // namespace g10::engine
