#include "engine/pregel/pregel_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "algorithms/programs.hpp"
#include "algorithms/reference.hpp"
#include "graph/generators.hpp"

namespace g10::engine {
namespace {

using algorithms::Bfs;
using algorithms::Cdlp;
using algorithms::PageRank;
using algorithms::Wcc;

graph::Graph small_graph() {
  graph::RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.seed = 17;
  return generate_rmat(params);
}

graph::Graph small_undirected() {
  graph::DatagenParams params;
  params.vertices = 512;
  params.mean_degree = 8;
  params.seed = 21;
  return generate_datagen_like(params);
}

PregelConfig small_config() {
  PregelConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 4;
  cfg.seed = 123;
  return cfg;
}

void expect_values_near(const std::vector<double>& actual,
                        const std::vector<double>& expected, double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(actual[i])) << "vertex " << i;
    } else {
      EXPECT_NEAR(actual[i], expected[i], tol) << "vertex " << i;
    }
  }
}

TEST(PregelEngineTest, PageRankMatchesReference) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, PageRank(8));
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 8), 1e-9);
}

TEST(PregelEngineTest, BfsMatchesReference) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, Bfs(1));
  expect_values_near(result.vertex_values, algorithms::bfs_reference(g, 1),
                     1e-12);
}

TEST(PregelEngineTest, WccMatchesReference) {
  const auto g = small_undirected();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, Wcc());
  expect_values_near(result.vertex_values, algorithms::wcc_reference(g),
                     1e-12);
}

TEST(PregelEngineTest, CdlpMatchesReference) {
  const auto g = small_undirected();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, Cdlp(4));
  expect_values_near(result.vertex_values, algorithms::cdlp_reference(g, 4),
                     1e-12);
}

TEST(PregelEngineTest, SsspMatchesDijkstraOnWeightedGraph) {
  auto g = small_graph();
  graph::assign_random_weights(g, 1.0, 10.0, 99);
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, algorithms::Sssp(1));
  expect_values_near(result.vertex_values,
                     algorithms::sssp_reference(g, 1), 1e-9);
}

TEST(PregelEngineTest, SsspOnUnweightedGraphEqualsBfs) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, algorithms::Sssp(1));
  expect_values_near(result.vertex_values, algorithms::bfs_reference(g, 1),
                     1e-12);
}

TEST(PregelEngineTest, DeterministicForSameSeed) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto a = engine.run(g, PageRank(5));
  const auto b = engine.run(g, PageRank(5));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.phase_events.size(), b.phase_events.size());
  EXPECT_EQ(a.blocking_events.size(), b.blocking_events.size());
}

TEST(PregelEngineTest, PhaseEventsAreBalanced) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, PageRank(4));
  std::map<std::string, int> open;
  for (const auto& event : result.phase_events) {
    const std::string key = event.path.to_string();
    if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
      ++open[key];
    } else {
      --open[key];
    }
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0) << key;
}

TEST(PregelEngineTest, GroundTruthCpuWithinCapacity) {
  const auto g = small_graph();
  const auto cfg = small_config();
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, PageRank(5));
  for (const auto& gt : result.ground_truth) {
    if (gt.resource != pregel_names::kCpu) continue;
    EXPECT_LE(gt.series.max_over(0, result.makespan), gt.capacity + 1e-9);
    // Usage never negative.
    for (const double v : gt.series.values()) EXPECT_GE(v, -1e-9);
  }
}

TEST(PregelEngineTest, EmitsGcPausesWhenEnabled) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.gc.young_gen_bytes = 2e5;  // aggressive: force collections
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, Cdlp(4));
  bool has_gc_block = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kGc) has_gc_block = true;
  }
  EXPECT_TRUE(has_gc_block);
  bool has_gc_phase = false;
  for (const auto& event : result.phase_events) {
    if (event.path.leaf().type == "GcPause") has_gc_phase = true;
  }
  EXPECT_TRUE(has_gc_phase);
}

TEST(PregelEngineTest, NoGcWhenDisabled) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.gc.enabled = false;
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, Cdlp(4));
  for (const auto& block : result.blocking_events) {
    EXPECT_NE(block.resource, pregel_names::kGc);
  }
}

TEST(PregelEngineTest, SmallQueueCausesMessageQueueStalls) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.queue.capacity_bytes = 2000;  // tiny buffer: must stall
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, Cdlp(3));
  bool stalled = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kMessageQueue) stalled = true;
  }
  EXPECT_TRUE(stalled);
}

TEST(PregelEngineTest, BlockingEventsLieWithinTheirPhase) {
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.gc.young_gen_bytes = 2e6;
  cfg.queue.capacity_bytes = 50000;
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, Cdlp(3));
  std::map<std::string, std::pair<TimeNs, TimeNs>> spans;
  for (const auto& event : result.phase_events) {
    auto& span = spans[event.path.to_string()];
    if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
      span.first = event.time;
    } else {
      span.second = event.time;
    }
  }
  for (const auto& block : result.blocking_events) {
    const auto it = spans.find(block.path.to_string());
    ASSERT_NE(it, spans.end());
    EXPECT_GE(block.begin, it->second.first);
    EXPECT_LE(block.end, it->second.second);
  }
}

TEST(PregelEngineTest, SuperstepCountMatchesAlgorithm) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, PageRank(6));
  std::int64_t max_superstep = -1;
  for (const auto& event : result.phase_events) {
    for (const auto& element : event.path.elements) {
      if (element.type == "Superstep") {
        max_superstep = std::max(max_superstep, element.index);
      }
    }
  }
  // PageRank(6) runs supersteps 0..6.
  EXPECT_EQ(max_superstep, 6);
}

TEST(PregelEngineTest, MakespanCoversAllEvents) {
  const auto g = small_graph();
  const PregelEngine engine(small_config());
  const auto result = engine.run(g, Bfs(0));
  for (const auto& event : result.phase_events) {
    EXPECT_LE(event.time, result.makespan);
  }
  EXPECT_GT(result.makespan, 0);
}

PregelConfig faulted_config(const std::string& faults) {
  PregelConfig cfg = small_config();
  auto spec = sim::FaultSpec::parse(faults);
  EXPECT_TRUE(spec.has_value()) << faults;
  if (spec) cfg.cluster.faults = *spec;
  return cfg;
}

TEST(PregelFaultTest, CrashRecoveryConvergesToReference) {
  // A worker crash mid-run must not change the algorithm's output: the
  // engine restarts from the last checkpoint and re-executes.
  const auto g = small_graph();
  const PregelEngine engine(faulted_config("crash:w1@40%"));
  const auto result = engine.run(g, PageRank(8));
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 8), 1e-9);
}

TEST(PregelFaultTest, CrashEmitsRecoveryBlocksAndTruncatedPhases) {
  const auto g = small_graph();
  const PregelEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(8));
  PregelConfig cfg = faulted_config("crash:w1@40%");
  cfg.crash_log = CrashLogStyle::kTruncated;
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, PageRank(8));
  // The recovery window shows up as blocked time.
  bool has_recovery = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kRecovery) has_recovery = true;
  }
  EXPECT_TRUE(has_recovery);
  // The crashed worker's log stops mid-phase: at least one BEGIN has no END.
  std::map<std::string, int> open;
  for (const auto& event : result.phase_events) {
    open[event.path.to_string()] +=
        event.kind == trace::PhaseEventRecord::Kind::Begin ? 1 : -1;
  }
  int truncated = 0;
  for (const auto& [key, count] : open) truncated += count;
  EXPECT_GT(truncated, 0);
  // Recovery + re-execution costs time.
  EXPECT_GT(result.makespan, baseline.makespan);
}

TEST(PregelFaultTest, ReconciledCrashLogStaysBalanced) {
  // With the default CrashLogStyle::kReconciled, a crash run still emits a
  // balanced log (every BEGIN has an END) so strict analysis succeeds, and
  // the lost time is visible as Recovery blocking instead.
  const auto g = small_graph();
  const PregelEngine engine(faulted_config("crash:w1@40%"));
  const auto result = engine.run(g, PageRank(8));
  std::map<std::string, int> open;
  for (const auto& event : result.phase_events) {
    open[event.path.to_string()] +=
        event.kind == trace::PhaseEventRecord::Kind::Begin ? 1 : -1;
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0) << key;
  bool has_recovery = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kRecovery) has_recovery = true;
  }
  EXPECT_TRUE(has_recovery);
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 8), 1e-9);
}

TEST(PregelFaultTest, PartitionIsRiddenOutWithRetries) {
  // A temporary network partition between two workers delays their traffic
  // (Retry blocking while the channel waits for the link to heal) but the
  // output and the log stay intact.
  const auto g = small_graph();
  const PregelEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(6));
  const PregelEngine engine(faulted_config("part:w0-w1@20%+25%"));
  const auto result = engine.run(g, PageRank(6));
  bool has_retry = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kRetry) has_retry = true;
  }
  EXPECT_TRUE(has_retry);
  EXPECT_GT(result.makespan, baseline.makespan);
  std::map<std::string, int> open;
  for (const auto& event : result.phase_events) {
    open[event.path.to_string()] +=
        event.kind == trace::PhaseEventRecord::Kind::Begin ? 1 : -1;
  }
  for (const auto& [key, count] : open) EXPECT_EQ(count, 0) << key;
  expect_values_near(result.vertex_values, baseline.vertex_values, 1e-12);
}

TEST(PregelFaultTest, FaultScheduleIsDeterministic) {
  const auto g = small_graph();
  const PregelEngine engine(faulted_config("crash:w1@40%,slow:w0@30%+30%:x0.5"));
  const auto a = engine.run(g, PageRank(6));
  const auto b = engine.run(g, PageRank(6));
  ASSERT_EQ(a.phase_events.size(), b.phase_events.size());
  for (std::size_t i = 0; i < a.phase_events.size(); ++i) {
    EXPECT_EQ(a.phase_events[i].kind, b.phase_events[i].kind);
    EXPECT_EQ(a.phase_events[i].time, b.phase_events[i].time);
    EXPECT_EQ(a.phase_events[i].path.to_string(),
              b.phase_events[i].path.to_string());
  }
  ASSERT_EQ(a.blocking_events.size(), b.blocking_events.size());
  for (std::size_t i = 0; i < a.blocking_events.size(); ++i) {
    EXPECT_EQ(a.blocking_events[i].begin, b.blocking_events[i].begin);
    EXPECT_EQ(a.blocking_events[i].end, b.blocking_events[i].end);
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(PregelFaultTest, SlowdownStretchesMakespan) {
  const auto g = small_graph();
  const PregelEngine baseline_engine(small_config());
  const auto baseline = baseline_engine.run(g, PageRank(6));
  const PregelEngine engine(faulted_config("slow:w*@0s:x0.25"));
  const auto slowed = engine.run(g, PageRank(6));
  EXPECT_GT(slowed.makespan, baseline.makespan);
  // Correctness is unaffected; timing shifts only reorder message
  // accumulation, so values agree to floating-point noise.
  expect_values_near(slowed.vertex_values, baseline.vertex_values, 1e-12);
}

TEST(PregelFaultTest, LossyNicCausesRetryBlocks) {
  const auto g = small_graph();
  const PregelEngine engine(faulted_config("nic:w*@0s:x0.5:loss=0.4"));
  const auto result = engine.run(g, PageRank(6));
  bool has_retry = false;
  for (const auto& block : result.blocking_events) {
    if (block.resource == pregel_names::kRetry) has_retry = true;
  }
  EXPECT_TRUE(has_retry);
  expect_values_near(result.vertex_values,
                     algorithms::pagerank_reference(g, 6), 1e-9);
}

TEST(PregelFaultTest, CrashedRunEmitsCheckpoints) {
  const auto g = small_graph();
  const PregelEngine engine(faulted_config("crash:w0@50%"));
  const auto result = engine.run(g, PageRank(6));
  bool has_checkpoint = false;
  for (const auto& event : result.phase_events) {
    if (event.path.leaf().type == "CheckpointWorker") has_checkpoint = true;
  }
  EXPECT_TRUE(has_checkpoint);
}

class PregelChunkingTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PregelChunkingTest, CorrectnessIndependentOfScheduling) {
  // Chunk size and partition granularity change the DES interleaving but
  // must never change the algorithm's output.
  const auto [chunk, partitions] = GetParam();
  const auto g = small_undirected();
  auto cfg = small_config();
  cfg.chunk_vertices = chunk;
  cfg.partitions_per_thread = partitions;
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, Cdlp(4));
  const auto expected = algorithms::cdlp_reference(g, 4);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ(result.vertex_values[i], expected[i]) << i;
  }
  EXPECT_GT(result.makespan, 0);
}

INSTANTIATE_TEST_SUITE_P(Granularities, PregelChunkingTest,
                         ::testing::Values(std::make_pair(16, 1),
                                           std::make_pair(64, 2),
                                           std::make_pair(256, 4),
                                           std::make_pair(4096, 8)));

class PregelWorkerCountTest : public ::testing::TestWithParam<int> {};

TEST_P(PregelWorkerCountTest, CorrectAcrossClusterSizes) {
  const auto g = small_graph();
  auto cfg = small_config();
  cfg.cluster.machine_count = GetParam();
  const PregelEngine engine(cfg);
  const auto result = engine.run(g, PageRank(4));
  const auto expected = algorithms::pagerank_reference(g, 4);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(result.vertex_values[i], expected[i], 1e-9);
  }
  // One CPU + one network ground-truth series per machine.
  EXPECT_EQ(result.ground_truth.size(),
            static_cast<std::size_t>(2 * GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PregelWorkerCountTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace g10::engine
