#include "engine/dataflow/dataflow_engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"

namespace g10::engine {
namespace {

DataflowConfig small_config() {
  DataflowConfig cfg;
  cfg.cluster.machine_count = 3;
  cfg.cluster.machine.cores = 4;
  cfg.seed = 9;
  return cfg;
}

DataflowJobSpec three_stage_job() {
  DataflowJobSpec job;
  job.stages.push_back({/*tasks=*/24, /*work=*/1e6, /*skew=*/0.0,
                        /*shuffle=*/5e5});
  job.stages.push_back({/*tasks=*/12, /*work=*/2e6, /*skew=*/1.5,
                        /*shuffle=*/1e6});
  job.stages.push_back({/*tasks=*/6, /*work=*/1e6, /*skew=*/0.0,
                        /*shuffle=*/0.0});
  return job;
}

TEST(DataflowEngineTest, RunsAllStagesAndTasks) {
  const DataflowEngine engine(small_config());
  const auto result = engine.run(three_stage_job());
  EXPECT_GT(result.makespan, 0);
  std::map<int, int> tasks_per_stage;
  for (const auto& event : result.phase_events) {
    if (event.kind != trace::PhaseEventRecord::Kind::Begin) continue;
    if (event.path.leaf().type != "Task") continue;
    ++tasks_per_stage[static_cast<int>(event.path.elements[1].index)];
  }
  EXPECT_EQ(tasks_per_stage[0], 24);
  EXPECT_EQ(tasks_per_stage[1], 12);
  EXPECT_EQ(tasks_per_stage[2], 6);
}

TEST(DataflowEngineTest, StagesAreSequential) {
  const DataflowEngine engine(small_config());
  const auto result = engine.run(three_stage_job());
  std::map<std::string, std::pair<TimeNs, TimeNs>> spans;
  for (const auto& event : result.phase_events) {
    auto& span = spans[event.path.to_string()];
    (event.kind == trace::PhaseEventRecord::Kind::Begin ? span.first
                                                        : span.second) =
        event.time;
  }
  EXPECT_LE(spans["Job.0/Stage.0"].second, spans["Job.0/Stage.1"].first);
  EXPECT_LE(spans["Job.0/Stage.1"].second, spans["Job.0/Stage.2"].first);
}

TEST(DataflowEngineTest, DeterministicForSameSeed) {
  const DataflowEngine engine(small_config());
  const auto a = engine.run(three_stage_job());
  const auto b = engine.run(three_stage_job());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.phase_events.size(), b.phase_events.size());
}

TEST(DataflowEngineTest, CpuWithinCapacity) {
  const DataflowEngine engine(small_config());
  const auto result = engine.run(three_stage_job());
  for (const auto& gt : result.ground_truth) {
    if (gt.resource != dataflow_names::kCpu) continue;
    EXPECT_LE(gt.series.max_over(0, result.makespan), gt.capacity + 1e-9);
  }
}

TEST(DataflowEngineTest, SkewedStageHasStragglers) {
  auto job = three_stage_job();
  const DataflowEngine engine(small_config());
  const auto result = engine.run(job);
  // Stage 1 has skew 1.5: its longest task should far exceed its shortest.
  DurationNs min_task = 1'000'000'000;
  DurationNs max_task = 0;
  std::map<std::string, TimeNs> begins;
  for (const auto& event : result.phase_events) {
    if (event.path.leaf().type != "Task" ||
        event.path.elements[1].index != 1) {
      continue;
    }
    if (event.kind == trace::PhaseEventRecord::Kind::Begin) {
      begins[event.path.to_string()] = event.time;
    } else {
      const DurationNs d = event.time - begins[event.path.to_string()];
      min_task = std::min(min_task, d);
      max_task = std::max(max_task, d);
    }
  }
  EXPECT_GT(max_task, 2 * min_task);
}

TEST(DataflowEngineTest, EmptyJobRejected) {
  const DataflowEngine engine(small_config());
  EXPECT_THROW(engine.run(DataflowJobSpec{}), CheckError);
}

TEST(DataflowEngineTest, ZeroTaskStageCompletes) {
  DataflowJobSpec job;
  job.stages.push_back({/*tasks=*/0, 1e6, 0.0, 0.0});
  job.stages.push_back({/*tasks=*/4, 1e6, 0.0, 0.0});
  const DataflowEngine engine(small_config());
  const auto result = engine.run(job);
  EXPECT_GT(result.makespan, 0);
}

TEST(DataflowEngineTest, FewerSlotsSerializeTasks) {
  DataflowJobSpec job;
  job.stages.push_back({/*tasks=*/12, 1e6, 0.0, 0.0});
  auto wide = small_config();
  auto narrow = small_config();
  narrow.slots_per_machine = 1;
  const auto fast = DataflowEngine(wide).run(job);
  const auto slow = DataflowEngine(narrow).run(job);
  EXPECT_GT(slow.makespan, fast.makespan);
}

}  // namespace
}  // namespace g10::engine
