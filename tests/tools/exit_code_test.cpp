// Pins the documented exit-code taxonomy (src/common/exit_codes.hpp) of the
// shipped tools by spawning the real binaries:
//   0 success, 1 internal, 2 bad arguments, 3 parse failure,
//   4 fault abort, 5 analysis error.
// Binary paths are injected at compile time (G10_RUN_BIN & co), so the test
// always exercises the binaries from its own build tree.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common/exit_codes.hpp"

namespace g10 {
namespace {

/// Runs a shell command with stdout/stderr discarded; returns its exit code.
int exit_code(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  EXPECT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status)) << command << " did not exit normally";
  return WEXITSTATUS(status);
}

std::filesystem::path test_root() {
  static const std::filesystem::path root = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("g10_exit_code_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
  }();
  return root;
}

/// A tiny successful g10_run, produced once and shared by the analyze tests.
const std::string& ok_artifacts() {
  static const std::string dir = [] {
    const std::string out = (test_root() / "run_ok").string();
    const int code = exit_code(
        std::string(G10_RUN_BIN) +
        " --engine pregel --algorithm pagerank --dataset rmat:5"
        " --workers 2 --cores 2 --iterations 2 --monitor-ms 20 --out " + out);
    EXPECT_EQ(code, kExitOk);
    return out;
  }();
  return dir;
}

TEST(RunExitCodeTest, SuccessIsZero) {
  ASSERT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --engine gas --algorithm bfs --dataset rmat:5"
                      " --workers 2 --cores 2 --iterations 2"
                      " --monitor-ms 20 --out " +
                      (test_root() / "run_gas").string()),
            kExitOk);
}

TEST(RunExitCodeTest, UnknownFlagIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) + " --bogus 1"), kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) + " --workers 0"),
            kExitBadArgs);
}

TEST(RunExitCodeTest, UnparseableFaultSpecIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --faults gremlins-everywhere --out " +
                      (test_root() / "unused").string()),
            kExitParseFailure);
}

TEST(RunExitCodeTest, UnknownDatasetIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --dataset mystery:9 --out " +
                      (test_root() / "unused").string()),
            kExitParseFailure);
}

TEST(RunExitCodeTest, FaultOutsideTheClusterIsFaultAbort) {
  // Parses fine, but worker 7 does not exist in a 2-machine cluster.
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --workers 2 --faults crash:w7@40% --out " +
                      (test_root() / "unused").string()),
            kExitFaultAbort);
}

TEST(AnalyzeExitCodeTest, MissingFlagsIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN)), kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) + " --bogus 1"),
            kExitBadArgs);
}

TEST(AnalyzeExitCodeTest, UnreadableModelIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) +
                      " --model /nonexistent.g10 --log /nonexistent.log"),
            kExitParseFailure);
}

TEST(AnalyzeExitCodeTest, GoodRunAnalyzesCleanly) {
  const std::string& dir = ok_artifacts();
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) + " --model " + dir +
                      "/model.g10 --log " + dir + "/run.log"),
            kExitOk);
}

TEST(AnalyzeExitCodeTest, DamagedLogIsParseFailureUnlessLenient) {
  const std::string& dir = ok_artifacts();
  const std::string damaged = (test_root() / "damaged.log").string();
  std::filesystem::copy_file(dir + "/run.log", damaged,
                             std::filesystem::copy_options::overwrite_existing);
  {
    std::ofstream out(damaged, std::ios::app);
    out << "THIS IS NOT A LOG RECORD\n";
  }
  const std::string base = std::string(G10_ANALYZE_BIN) + " --model " + dir +
                           "/model.g10 --log " + damaged;
  EXPECT_EQ(exit_code(base), kExitParseFailure);  // strict is the default
  EXPECT_EQ(exit_code(base + " --lenient"), kExitOk);
}

TEST(AnalyzeExitCodeTest, TruncatedCrashLogIsAnalysisError) {
  // A crash with a truncated log leaves BEGIN-without-END records: every
  // line parses, but strict characterization refuses the damaged trace.
  const std::string dir = (test_root() / "run_truncated").string();
  ASSERT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --engine pregel --algorithm pagerank --dataset rmat:5"
                      " --workers 2 --cores 2 --iterations 4 --monitor-ms 20"
                      " --faults crash:w1@40% --crash-log truncated --out " +
                      dir),
            kExitOk);
  const std::string base = std::string(G10_ANALYZE_BIN) + " --model " + dir +
                           "/model.g10 --log " + dir +
                           "/run.log --no-preflight";
  EXPECT_EQ(exit_code(base), kExitAnalysisError);
  EXPECT_EQ(exit_code(base + " --lenient"), kExitOk);
}

/// A small valid `.g10t`, converted once from the shared run artifacts.
const std::string& ok_binary_trace() {
  static const std::string path = [] {
    const std::string out = (test_root() / "run_ok.g10t").string();
    EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in " +
                        ok_artifacts() + "/run.log --out " + out +
                        " --verify"),
              kExitOk);
    return out;
  }();
  return path;
}

/// Copies the valid binary trace and flips one header byte.
std::string corrupt_header_trace() {
  const std::string out = (test_root() / "corrupt_header.g10t").string();
  std::ifstream in(ok_binary_trace(), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_GT(bytes.size(), 40u);
  bytes[24] ^= 0x5c;
  std::ofstream(out, std::ios::binary) << bytes;
  return out;
}

TEST(ConvertExitCodeTest, MissingOrUnknownFlagsAreBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN)), kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in a --out b"
                      " --to protobuf"),
            kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in a --out b"
                      " --block-records 0"),
            kExitBadArgs);
}

TEST(ConvertExitCodeTest, MissingInputIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) +
                      " --in /nonexistent.log --out " +
                      (test_root() / "x.g10t").string()),
            kExitParseFailure);
}

TEST(ConvertExitCodeTest, RoundTripBothDirectionsIsZero) {
  const std::string back = (test_root() / "back.log").string();
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in " +
                      ok_binary_trace() + " --out " + back + " --verify"),
            kExitOk);
}

TEST(ConvertExitCodeTest, TruncatedHeaderIsParseFailure) {
  const std::string truncated = (test_root() / "truncated.g10t").string();
  {
    std::ifstream in(ok_binary_trace(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream(truncated, std::ios::binary) << bytes.substr(0, 40);
  }
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in " + truncated +
                      " --out " + (test_root() / "y.log").string()),
            kExitParseFailure);
}

TEST(ConvertExitCodeTest, CorruptHeaderIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_CONVERT_BIN) + " --in " +
                      corrupt_header_trace() + " --out " +
                      (test_root() / "z.log").string()),
            kExitParseFailure);
}

TEST(AnalyzeExitCodeTest, BinaryTraceAnalyzesCleanly) {
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) + " --model " +
                      ok_artifacts() + "/model.g10 --log " +
                      ok_binary_trace()),
            kExitOk);
}

TEST(AnalyzeExitCodeTest, CorruptBinaryHeaderIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) + " --model " +
                      ok_artifacts() + "/model.g10 --log " +
                      corrupt_header_trace()),
            kExitParseFailure);
}

TEST(AnalyzeExitCodeTest, BadFilterSyntaxIsBadArgs) {
  const std::string base = std::string(G10_ANALYZE_BIN) + " --model " +
                           ok_artifacts() + "/model.g10 --log " +
                           ok_binary_trace();
  EXPECT_EQ(exit_code(base + " --trace-format parquet"), kExitBadArgs);
  EXPECT_EQ(exit_code(base + " --time-range 10"), kExitBadArgs);
  EXPECT_EQ(exit_code(base + " --time-range 50:10"), kExitBadArgs);
  EXPECT_EQ(exit_code(base + " --machines 1,x"), kExitBadArgs);
}

TEST(DetCheckExitCodeTest, IdenticalExecutionsAreZero) {
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) +
                      " --engine pregel --algorithm pagerank --dataset rmat:5"
                      " --workers 2 --cores 2 --iterations 2 --det-check 2"),
            kExitOk);
}

TEST(DetCheckExitCodeTest, InjectedDivergenceIsAnalysisError) {
  // The G10_DET_INJECT hook perturbs the named phase's hash in the second
  // execution; the oracle must flag it and exit 5.
  EXPECT_EQ(exit_code("G10_DET_INJECT=Superstep " + std::string(G10_RUN_BIN) +
                      " --engine pregel --algorithm pagerank --dataset rmat:5"
                      " --workers 2 --cores 2 --iterations 2 --det-check 2"),
            kExitAnalysisError);
}

TEST(DetCheckExitCodeTest, SingleExecutionCountIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_RUN_BIN) + " --det-check 1"),
            kExitBadArgs);
}

TEST(DetCheckExitCodeTest, AnalyzeThreadSweepIsZero) {
  const std::string& dir = ok_artifacts();
  EXPECT_EQ(exit_code(std::string(G10_ANALYZE_BIN) + " --model " + dir +
                      "/model.g10 --log " + dir + "/run.log --det-check 4"),
            kExitOk);
}

TEST(SrclintExitCodeTest, NoPathsIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN)), kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " --bogus"),
            kExitBadArgs);
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " /nonexistent.cpp"),
            kExitBadArgs);
}

TEST(SrclintExitCodeTest, CleanFixtureIsZeroFindingsAreOne) {
  const std::string fixtures = G10_SRCLINT_FIXTURE_DIR;
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " --werror " + fixtures +
                      "/clean.cpp"),
            kExitOk);
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " " + fixtures +
                      "/unordered_iter.cpp"),
            1);
  // Warnings only: zero by default, nonzero under --werror.
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " " + fixtures +
                      "/waivers.cpp"),
            kExitOk);
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " --werror " + fixtures +
                      "/waivers.cpp"),
            1);
}

TEST(SrclintExitCodeTest, BareWaiverIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_SRCLINT_BIN) + " " +
                      std::string(G10_SRCLINT_FIXTURE_DIR) +
                      "/bare_waiver.cpp"),
            kExitBadArgs);
}

TEST(EnsembleExitCodeTest, UnknownFlagIsBadArgs) {
  EXPECT_EQ(exit_code(std::string(G10_ENSEMBLE_BIN) + " --bogus 1"),
            kExitBadArgs);
}

TEST(EnsembleExitCodeTest, UnparseableFaultSpecIsParseFailure) {
  EXPECT_EQ(exit_code(std::string(G10_ENSEMBLE_BIN) + " --out " +
                      (test_root() / "unused").string() + " --faults junk"),
            kExitParseFailure);
}

TEST(EnsembleExitCodeTest, FreshStartOverAJournalIsRefused) {
  const std::string out = (test_root() / "fleet").string();
  const std::string base = std::string(G10_ENSEMBLE_BIN) + " --out " + out +
                           " --engines gas --dataset rmat:5 --workers 2"
                           " --cores 2 --iterations 2 --seeds 1 --quiet";
  ASSERT_EQ(exit_code(base), kExitOk);
  EXPECT_EQ(exit_code(base), kExitBadArgs);  // would silently mix fleets
  EXPECT_EQ(exit_code(base + " --resume"), kExitOk);
}

/// Shared prefix for a tiny real fleet in supervisor mode.
std::string tiny_fleet(const std::string& out) {
  return std::string(G10_ENSEMBLE_BIN) + " --out " + out +
         " --engines pregel --dataset rmat:5 --workers 2 --cores 2"
         " --iterations 2 --seeds 3 --quiet";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(EnsembleExitCodeTest, BadJobsIsolateCombosAreBadArgs) {
  const std::string out = (test_root() / "combos").string();
  EXPECT_EQ(exit_code(tiny_fleet(out) + " --jobs 0"), kExitBadArgs);
  // --isolate only sandboxes worker processes; without --jobs there are
  // no workers to sandbox.
  EXPECT_EQ(exit_code(tiny_fleet(out) + " --isolate"), kExitBadArgs);
  // --threads and --limit configure the in-process pool --jobs replaces.
  EXPECT_EQ(exit_code(tiny_fleet(out) + " --jobs 2 --threads 2"),
            kExitBadArgs);
  EXPECT_EQ(exit_code(tiny_fleet(out) + " --jobs 2 --limit 1"),
            kExitBadArgs);
}

TEST(EnsembleExitCodeTest, SegfaultingWorkerSurfacesRunFailedWithSignal) {
  const std::string out = (test_root() / "segv_fleet").string();
  // The test-crash hook makes any worker that starts a seed=2 scenario die
  // by SIGSEGV; with a 1-attempt budget the supervisor journals run_failed
  // with the signal name, and the rest of the fleet completes: exit 0.
  ASSERT_EQ(exit_code("G10_ENSEMBLE_TEST_CRASH=segv:seed=2 " +
                      tiny_fleet(out) + " --jobs 2 --max-attempts 1"),
            kExitOk);
  const std::string journal = slurp(out + "/journal.jsonl");
  EXPECT_NE(journal.find("\"outcome\":\"run_failed\""), std::string::npos);
  EXPECT_NE(journal.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(journal.find("\"outcome\":\"ok\""), std::string::npos);
  // Reports were still written: a crashed scenario degrades coverage, it
  // does not fail the fleet.
  EXPECT_FALSE(slurp(out + "/report.json").empty());
}

TEST(EnsembleExitCodeTest, SigkilledWorkerSurfacesRunFailedWithSignal) {
  const std::string out = (test_root() / "kill_fleet").string();
  // SIGKILL is what the OOM killer delivers: same containment path.
  ASSERT_EQ(exit_code("G10_ENSEMBLE_TEST_CRASH=kill:seed=3 " +
                      tiny_fleet(out) + " --jobs 2 --max-attempts 1"),
            kExitOk);
  const std::string journal = slurp(out + "/journal.jsonl");
  EXPECT_NE(journal.find("\"outcome\":\"run_failed\""), std::string::npos);
  EXPECT_NE(journal.find("SIGKILL"), std::string::npos);
}

TEST(EnsembleExitCodeTest, JobsAndInProcessReportsAreByteIdentical) {
  const std::string in_process = (test_root() / "ip_fleet").string();
  const std::string supervised = (test_root() / "sv_fleet").string();
  ASSERT_EQ(exit_code(tiny_fleet(in_process)), kExitOk);
  ASSERT_EQ(exit_code(tiny_fleet(supervised) + " --jobs 2 --isolate"),
            kExitOk);
  EXPECT_EQ(slurp(in_process + "/report.json"),
            slurp(supervised + "/report.json"));
  EXPECT_EQ(slurp(in_process + "/report.txt"),
            slurp(supervised + "/report.txt"));
}

TEST(InterruptExitCodeTest, SigtermedEnsembleExitsInterrupted) {
  const std::string out = (test_root() / "interrupted_fleet").string();
  // A fleet big enough to still be running when the SIGTERM lands; the
  // handler cancels at the next stage boundary and exits 6 with the
  // journal flushed and resumable.
  const std::string fleet =
      std::string(G10_ENSEMBLE_BIN) + " --out " + out +
      " --engines pregel,gas --dataset rmat:14 --workers 4 --cores 4"
      " --iterations 10 --seeds 30 --quiet";
  EXPECT_EQ(exit_code(fleet + " >/dev/null 2>&1 & pid=$!; sleep 0.3;"
                      " kill -TERM $pid; wait $pid"),
            kExitInterrupted);
  // The interrupted journal resumes cleanly.
  EXPECT_EQ(exit_code(fleet + " --resume"), kExitOk);
}

TEST(InterruptExitCodeTest, SigtermedRunExitsInterrupted) {
  const std::string cmd =
      std::string(G10_RUN_BIN) +
      " --engine pregel --algorithm pagerank --dataset rmat:16"
      " --workers 4 --cores 4 --iterations 20 --det-check 8";
  EXPECT_EQ(exit_code(cmd + " >/dev/null 2>&1 & pid=$!; sleep 0.3;"
                      " kill -TERM $pid; wait $pid"),
            kExitInterrupted);
}

}  // namespace
}  // namespace g10
