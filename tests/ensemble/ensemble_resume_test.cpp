// End-to-end driver tests with a synthetic (fast, deterministic) run
// function: crash-resume byte-identity, partial-fleet degradation, and the
// fresh-start-over-existing-journal guard.
#include "ensemble/driver.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace g10::ensemble {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("g10_ensemble_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

ScenarioMatrix test_matrix(int seeds = 12) {
  ScenarioMatrix m;
  m.engines = {"pregel", "gas"};
  m.seed_range(1, seeds);
  return m;
}

/// Deterministic synthetic runner: the report is a pure function of the
/// scenario, like the real engine+analysis under a fixed seed.
RunAttempt synthetic_run(const Scenario& scenario, const CancelToken&) {
  RunAttempt attempt;
  attempt.outcome = RunOutcome::kOk;
  attempt.report.makespan_seconds =
      0.5 + 0.01 * static_cast<double>(scenario.seed) +
      (scenario.engine == "gas" ? 0.25 : 0.0);
  attempt.report.sync_bug_rediscovered =
      scenario.engine == "gas" && scenario.seed % 3 != 0;
  attempt.report.issues.push_back(
      {"imbalance:GatherThread", 0.01 * static_cast<double>(scenario.seed)});
  attempt.report.phase_bottlenecks.push_back(
      {"GatherStep", scenario.seed % 2 == 0 ? "cpu" : "network", 0.125});
  return attempt;
}

TEST(EnsembleDriverTest, RunsEverythingAndAggregates) {
  const TempDir dir("full");
  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.threads = 4;
  const EnsembleOutcome outcome =
      run_ensemble(test_matrix(), synthetic_run, options);
  EXPECT_EQ(outcome.executed, 24u);
  EXPECT_EQ(outcome.reused, 0u);
  EXPECT_EQ(outcome.remaining, 0u);
  EXPECT_EQ(outcome.report.ok, 24u);
  EXPECT_DOUBLE_EQ(outcome.report.coverage, 1.0);
  // gas runs with seed % 3 != 0: seeds 1..12 -> 8 of 12.
  EXPECT_EQ(outcome.report.sync_bug.hits, 8u);
  EXPECT_EQ(outcome.report.sync_bug.trials, 24u);
}

TEST(EnsembleDriverTest, ResumeAfterKillIsByteIdentical) {
  const TempDir dir("resume");

  // The uninterrupted reference fleet.
  EnsembleOptions full;
  full.journal_path = dir.file("full.jsonl");
  full.threads = 4;
  const EnsembleOutcome reference =
      run_ensemble(test_matrix(), synthetic_run, full);

  // The "crashed" fleet: limit stops after 7 runs, then a torn final line
  // simulates a kill -9 mid-append.
  EnsembleOptions part;
  part.journal_path = dir.file("part.jsonl");
  part.threads = 4;
  part.limit = 7;
  const EnsembleOutcome first =
      run_ensemble(test_matrix(), synthetic_run, part);
  EXPECT_EQ(first.executed, 7u);
  EXPECT_EQ(first.remaining, 17u);
  EXPECT_EQ(first.report.missing, 17u);
  EXPECT_LT(first.report.coverage, 1.0);
  {
    std::ofstream torn(part.journal_path, std::ios::app | std::ios::binary);
    torn << "{\"key\":\"00";  // the write the crash interrupted
  }

  EnsembleOptions resume = part;
  resume.limit = 0;
  resume.resume = true;
  const EnsembleOutcome second =
      run_ensemble(test_matrix(), synthetic_run, resume);
  EXPECT_EQ(second.reused, 7u);
  EXPECT_EQ(second.executed, 17u);
  EXPECT_EQ(second.report.ok, 24u);
  EXPECT_EQ(second.report.dropped_lines, 1u);  // the torn line, skipped

  // The aggregate (minus the journal-hygiene counters, which legitimately
  // differ) is byte-identical: same JSON for the distributional body.
  const std::string ref_json = render_json(reference.report);
  const std::string res_json = render_json(second.report);
  const auto strip_journal = [](std::string text) {
    const auto begin = text.find("\"journal\":{");
    const auto end = text.find('}', begin);
    return text.erase(begin, end - begin + 1);
  };
  EXPECT_EQ(strip_journal(ref_json), strip_journal(res_json));

  // And a resume of an already-complete fleet recomputes nothing and
  // renders the exact same bytes end to end.
  const EnsembleOutcome third =
      run_ensemble(test_matrix(), synthetic_run, resume);
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(third.reused, 24u);
  EXPECT_EQ(render_json(third.report), res_json);
  EXPECT_EQ(render_text(third.report), render_text(second.report));
}

TEST(EnsembleDriverTest, FreshStartOverNonEmptyJournalIsRefused) {
  const TempDir dir("guard");
  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.limit = 2;
  run_ensemble(test_matrix(), synthetic_run, options);
  EXPECT_THROW(run_ensemble(test_matrix(), synthetic_run, options),
               CheckError);
  options.resume = true;
  EXPECT_NO_THROW(run_ensemble(test_matrix(), synthetic_run, options));
}

TEST(EnsembleDriverTest, FailuresDegradeCoverageInsteadOfAborting) {
  const TempDir dir("degraded");
  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.threads = 4;
  options.retry.max_attempts = 1;
  const auto flaky = [](const Scenario& scenario,
                        const CancelToken& token) -> RunAttempt {
    if (scenario.seed % 4 == 0) throw std::runtime_error("engine crashed");
    if (scenario.seed % 4 == 1) {
      RunAttempt a;
      a.outcome = RunOutcome::kAnalysisFailed;
      a.error = "damaged trace";
      return a;
    }
    return synthetic_run(scenario, token);
  };
  const EnsembleOutcome outcome =
      run_ensemble(test_matrix(), flaky, options);
  EXPECT_EQ(outcome.executed, 24u);
  EXPECT_EQ(outcome.report.run_failed, 6u);       // seeds 4,8,12 x 2 engines
  EXPECT_EQ(outcome.report.analysis_failed, 6u);  // seeds 1,5,9 x 2 engines
  EXPECT_EQ(outcome.report.ok, 12u);
  EXPECT_DOUBLE_EQ(outcome.report.coverage, 0.5);
  // The distributional stats cover exactly the ok runs.
  EXPECT_EQ(outcome.report.makespan_seconds.count, 12u);
  EXPECT_EQ(outcome.report.sync_bug.trials, 12u);
}

TEST(EnsembleDriverTest, JournaledOutcomePreservesAttemptsAndError) {
  const TempDir dir("forensics");
  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.retry.max_attempts = 3;
  options.retry.backoff_initial_seconds = 0.001;
  ScenarioMatrix m = test_matrix(1);
  m.engines = {"pregel"};
  const auto broken = [](const Scenario&, const CancelToken&) -> RunAttempt {
    throw std::runtime_error("persistent failure");
  };
  run_ensemble(m, broken, options);
  const JournalReplay replay = read_journal(options.journal_path);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].outcome, RunOutcome::kRunFailed);
  EXPECT_EQ(replay.entries[0].attempts, 3);
  EXPECT_EQ(replay.entries[0].error, "persistent failure");
  EXPECT_GE(replay.entries[0].wall_ms, 0.0);
}

TEST(EnsembleDriverTest, ShardsPartitionPendingAndUnionIsByteIdentical) {
  const TempDir dir("shards");

  EnsembleOptions reference;
  reference.journal_path = dir.file("reference.jsonl");
  reference.threads = 2;
  const EnsembleOutcome ref =
      run_ensemble(test_matrix(), synthetic_run, reference);

  // Three shard invocations against one shared journal — the multi-process
  // fan-out's access pattern, here in one process. Shards are disjoint and
  // exhaustive by construction (hash % shard_count), so executed counts sum
  // to the fleet and the final aggregate is byte-identical.
  constexpr std::size_t kShards = 3;
  std::size_t executed_total = 0;
  EnsembleOutcome last;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EnsembleOptions options;
    options.journal_path = dir.file("sharded.jsonl");
    options.resume = true;  // the shared journal grows shard by shard
    options.threads = 2;
    options.shard_count = kShards;
    options.shard_index = shard;
    last = run_ensemble(test_matrix(), synthetic_run, options);
    executed_total += last.executed;
  }
  EXPECT_EQ(executed_total, 24u);
  EXPECT_EQ(last.report.ok, 24u);
  EXPECT_EQ(render_json(last.report), render_json(ref.report));
  EXPECT_EQ(render_text(last.report), render_text(ref.report));
}

TEST(EnsembleDriverTest, ShardIndexOutOfRangeIsRefused) {
  const TempDir dir("shard_range");
  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW(run_ensemble(test_matrix(), synthetic_run, options),
               CheckError);
}

TEST(EnsembleDriverTest, DeferredKeysRunAfterTheHealthyRest) {
  const TempDir dir("defer");
  const std::vector<Scenario> scenarios = test_matrix().expand();
  // Defer two scenarios from the middle of the queue (the supervisor does
  // this for scenarios that crashed a worker).
  const std::uint64_t suspect_a = scenarios[3].hash();
  const std::uint64_t suspect_b = scenarios[10].hash();

  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.threads = 1;  // deterministic execution order
  options.defer_keys = {suspect_a, suspect_b};
  std::vector<std::uint64_t> order;
  options.on_start = [&order](const Scenario& s) {
    order.push_back(s.hash());
  };
  const EnsembleOutcome outcome =
      run_ensemble(test_matrix(), synthetic_run, options);
  EXPECT_EQ(outcome.executed, 24u);
  ASSERT_EQ(order.size(), 24u);
  // The two suspects are the final two starts, in their original relative
  // order; everyone else keeps theirs too (stable partition).
  EXPECT_EQ(order[22], suspect_a);
  EXPECT_EQ(order[23], suspect_b);
}

TEST(EnsembleDriverTest, RaisedStopFlagLeavesTheFleetResumable) {
  const TempDir dir("stop");
  std::atomic<bool> stop{true};  // SIGTERM arrived before the fleet started

  EnsembleOptions options;
  options.journal_path = dir.file("journal.jsonl");
  options.threads = 2;
  options.stop = &stop;
  std::atomic<std::size_t> started{0};
  options.on_start = [&started](const Scenario&) {
    started.fetch_add(1, std::memory_order_relaxed);
  };
  const EnsembleOutcome outcome =
      run_ensemble(test_matrix(), synthetic_run, options);
  // Nothing attempted, nothing journaled, everything still missing.
  EXPECT_EQ(outcome.executed, 0u);
  EXPECT_EQ(outcome.remaining, 24u);
  EXPECT_EQ(started.load(), 0u);
  EXPECT_TRUE(read_journal(options.journal_path).entries.empty());

  // The interrupted fleet resumes to the same bytes as a clean one.
  EnsembleOptions resume;
  resume.journal_path = options.journal_path;
  resume.resume = true;
  resume.threads = 2;
  const EnsembleOutcome second =
      run_ensemble(test_matrix(), synthetic_run, resume);
  EXPECT_EQ(second.executed, 24u);

  EnsembleOptions reference;
  reference.journal_path = dir.file("reference.jsonl");
  reference.threads = 2;
  const EnsembleOutcome ref =
      run_ensemble(test_matrix(), synthetic_run, reference);
  EXPECT_EQ(render_json(second.report), render_json(ref.report));
}

}  // namespace
}  // namespace g10::ensemble
