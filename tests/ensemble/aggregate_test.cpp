#include "ensemble/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/json.hpp"

namespace g10::ensemble {
namespace {

std::vector<Scenario> make_scenarios(int count) {
  std::vector<Scenario> out;
  for (int i = 0; i < count; ++i) {
    Scenario s;
    s.seed = static_cast<std::uint64_t>(i + 1);
    out.push_back(s);
  }
  return out;
}

JournalEntry ok_entry(const Scenario& s, double makespan, bool sync_bug) {
  JournalEntry entry;
  entry.key = s.hash();
  entry.scenario = s.key();
  entry.outcome = RunOutcome::kOk;
  entry.attempts = 1;
  entry.report.makespan_seconds = makespan;
  entry.report.sync_bug_rediscovered = sync_bug;
  return entry;
}

JournalEntry failed_entry(const Scenario& s, RunOutcome outcome) {
  JournalEntry entry;
  entry.key = s.hash();
  entry.scenario = s.key();
  entry.outcome = outcome;
  entry.attempts = 2;
  entry.error = "boom";
  return entry;
}

TEST(AggregateTest, FullCoverageCountsAndHeadline) {
  const auto scenarios = make_scenarios(10);
  JournalReplay replay;
  for (int i = 0; i < 10; ++i) {
    replay.entries.push_back(ok_entry(scenarios[static_cast<std::size_t>(i)],
                                      1.0 + i, i < 8));
  }
  const AggregateReport report = aggregate(scenarios, replay);
  EXPECT_EQ(report.scenario_count, 10u);
  EXPECT_EQ(report.ok, 10u);
  EXPECT_EQ(report.missing, 0u);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_EQ(report.sync_bug.hits, 8u);
  EXPECT_EQ(report.sync_bug.trials, 10u);
  EXPECT_DOUBLE_EQ(report.sync_bug.rate(), 0.8);
  EXPECT_GT(report.sync_bug.ci.low, 0.4);
  EXPECT_LT(report.sync_bug.ci.high, 1.0);
  EXPECT_EQ(report.makespan_seconds.count, 10u);
  EXPECT_DOUBLE_EQ(report.makespan_seconds.min, 1.0);
  EXPECT_DOUBLE_EQ(report.makespan_seconds.max, 10.0);
}

TEST(AggregateTest, PartialFleetIsDegradedNotFatal) {
  const auto scenarios = make_scenarios(8);
  JournalReplay replay;
  replay.entries.push_back(ok_entry(scenarios[0], 1.0, true));
  replay.entries.push_back(ok_entry(scenarios[1], 2.0, false));
  replay.entries.push_back(failed_entry(scenarios[2], RunOutcome::kTimeout));
  replay.entries.push_back(
      failed_entry(scenarios[3], RunOutcome::kRunFailed));
  replay.entries.push_back(
      failed_entry(scenarios[4], RunOutcome::kAnalysisFailed));
  // Scenarios 5-7 never ran (killed mid-fleet).
  replay.dropped_lines = 1;

  const AggregateReport report = aggregate(scenarios, replay);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.timeout, 1u);
  EXPECT_EQ(report.run_failed, 1u);
  EXPECT_EQ(report.analysis_failed, 1u);
  EXPECT_EQ(report.missing, 3u);
  EXPECT_DOUBLE_EQ(report.coverage, 0.25);
  EXPECT_EQ(report.dropped_lines, 1u);
  // Rates are over ok runs only: failed runs have no trustworthy report.
  EXPECT_EQ(report.sync_bug.trials, 2u);
  EXPECT_EQ(report.sync_bug.hits, 1u);
  const std::string text = render_text(report);
  EXPECT_NE(text.find("DEGRADED"), std::string::npos);
  EXPECT_NE(text.find("missing=3"), std::string::npos);
}

TEST(AggregateTest, DuplicatesFirstWinAndUnknownsAreIgnored) {
  const auto scenarios = make_scenarios(2);
  JournalReplay replay;
  replay.entries.push_back(ok_entry(scenarios[0], 1.0, true));
  // A resume that re-ran scenario 0 after a torn line: second entry loses.
  replay.entries.push_back(ok_entry(scenarios[0], 99.0, false));
  // A line from some other matrix entirely.
  Scenario alien;
  alien.seed = 777;
  replay.entries.push_back(ok_entry(alien, 5.0, false));

  const AggregateReport report = aggregate(scenarios, replay);
  EXPECT_EQ(report.matched_entries, 1u);
  EXPECT_EQ(report.duplicate_entries, 1u);
  EXPECT_EQ(report.unknown_entries, 1u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.missing, 1u);
  EXPECT_DOUBLE_EQ(report.makespan_seconds.mean, 1.0);
  EXPECT_EQ(report.sync_bug.hits, 1u);
}

TEST(AggregateTest, IssueAndPhaseDistributions) {
  const auto scenarios = make_scenarios(4);
  JournalReplay replay;
  for (int i = 0; i < 4; ++i) {
    JournalEntry entry = ok_entry(scenarios[static_cast<std::size_t>(i)],
                                  1.0, false);
    if (i < 3) entry.report.issues.push_back({"bottleneck:network", 0.1 * (i + 1)});
    if (i == 0) entry.report.issues.push_back({"imbalance:GatherThread", 0.3});
    entry.report.phase_bottlenecks.push_back(
        {"GatherStep", i < 2 ? "network" : "cpu", 0.5});
    replay.entries.push_back(std::move(entry));
  }
  const AggregateReport report = aggregate(scenarios, replay);
  ASSERT_EQ(report.issues.size(), 2u);
  // Sorted by hits desc.
  EXPECT_EQ(report.issues[0].label, "bottleneck:network");
  EXPECT_EQ(report.issues[0].rate.hits, 3u);
  EXPECT_EQ(report.issues[0].rate.trials, 4u);
  EXPECT_EQ(report.issues[0].impact.count, 3u);
  EXPECT_DOUBLE_EQ(report.issues[0].impact.p50, 0.2);
  EXPECT_EQ(report.issues[1].label, "imbalance:GatherThread");
  EXPECT_EQ(report.issues[1].rate.hits, 1u);

  ASSERT_EQ(report.phase_bottlenecks.size(), 1u);
  EXPECT_EQ(report.phase_bottlenecks[0].phase, "GatherStep");
  ASSERT_EQ(report.phase_bottlenecks[0].resources.size(), 2u);
  // cpu and network tie at 2 runs each; name ascending breaks the tie.
  EXPECT_EQ(report.phase_bottlenecks[0].resources[0].resource, "cpu");
  EXPECT_EQ(report.phase_bottlenecks[0].resources[0].runs, 2u);
  EXPECT_EQ(report.phase_bottlenecks[0].resources[1].resource, "network");
}

TEST(AggregateTest, EmptyEverything) {
  const AggregateReport report = aggregate({}, JournalReplay{});
  EXPECT_EQ(report.scenario_count, 0u);
  EXPECT_DOUBLE_EQ(report.coverage, 0.0);
  EXPECT_EQ(report.sync_bug.trials, 0u);
  EXPECT_DOUBLE_EQ(report.sync_bug.ci.low, 0.0);
  EXPECT_DOUBLE_EQ(report.sync_bug.ci.high, 1.0);
  // Still renders without crashing.
  EXPECT_FALSE(render_text(report).empty());
  EXPECT_FALSE(render_json(report).empty());
}

TEST(AggregateTest, RenderingIsDeterministic) {
  const auto scenarios = make_scenarios(6);
  JournalReplay replay;
  for (int i = 0; i < 5; ++i) {
    JournalEntry entry = ok_entry(scenarios[static_cast<std::size_t>(i)],
                                  0.1 * (i + 1), i % 2 == 0);
    entry.report.issues.push_back({"fault-recovery", 0.05 * (i + 1)});
    entry.wall_ms = 1000.0 * i;  // wall clock must not affect the report
    entry.attempts = i + 1;
    replay.entries.push_back(std::move(entry));
  }
  const AggregateReport a = aggregate(scenarios, replay);
  // Same entries in a different order (journal order varies with pool
  // scheduling) -> byte-identical report.
  std::reverse(replay.entries.begin(), replay.entries.end());
  for (auto& entry : replay.entries) entry.wall_ms += 5.0;
  const AggregateReport b = aggregate(scenarios, replay);
  EXPECT_EQ(render_text(a), render_text(b));
  EXPECT_EQ(render_json(a), render_json(b));
}

TEST(AggregateTest, JsonIsParseable) {
  const auto scenarios = make_scenarios(3);
  JournalReplay replay;
  for (int i = 0; i < 3; ++i) {
    replay.entries.push_back(
        ok_entry(scenarios[static_cast<std::size_t>(i)], 1.5, true));
  }
  const std::string json = render_json(aggregate(scenarios, replay));
  const auto parsed = JsonValue::parse(
      std::string_view(json).substr(0, json.size() - 1));  // trailing \n
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->get_double("coverage"), 1.0);
  const JsonValue* sync = parsed->find("sync_bug_rediscovery");
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(sync->get_uint("hits"), 3u);
}

}  // namespace
}  // namespace g10::ensemble
