// Supervision-loop tests with fake /bin/sh workers: crash attribution and
// containment, retry/crash budgets, wedge escalation, shutdown semantics,
// and the no-progress respawn cap. The fake workers speak the real status
// protocol over fd 3 and consult the real journal, so every path through
// run_supervised is exercised without engine costs.
#include "ensemble/supervisor.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "ensemble/driver.hpp"
#include "ensemble/journal.hpp"

namespace g10::ensemble {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("g10_supervisor_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

ScenarioMatrix test_matrix(int seeds = 4) {
  ScenarioMatrix m;
  m.engines = {"pregel"};
  m.seed_range(1, seeds);
  return m;
}

/// Options preset with fast timings so the tests run in milliseconds.
SupervisorOptions fast_options(const std::string& journal_path) {
  SupervisorOptions options;
  options.journal_path = journal_path;
  options.jobs = 1;
  options.backoff_initial_s = 0.01;
  options.backoff_max_s = 0.05;
  options.kill_grace_s = 0.2;
  return options;
}

/// Worker command builder that always runs the same shell script,
/// regardless of shard (tests use matrices small enough to reason about).
std::function<std::vector<std::string>(std::size_t, int,
                                       const std::vector<std::uint64_t>&)>
sh_worker(const std::string& script) {
  return [script](std::size_t, int, const std::vector<std::uint64_t>&) {
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };
}

/// "Crash once per attempt" worker: exits cleanly once the scenario is
/// settled in the journal, otherwise announces the scenario and dies.
std::string crashing_script(const std::string& journal,
                            const std::string& key_hex,
                            const std::string& death) {
  return "grep -q " + key_hex + " " + journal + " 2>/dev/null && exit 0; " +
         "printf 'start " + key_hex + "\\n' >&3; " + death;
}

TEST(SupervisorTest, CleanWorkersFinishTheFleet) {
  const TempDir dir("clean");
  const ScenarioMatrix matrix = test_matrix(8);
  SupervisorOptions options = fast_options(dir.file("journal.jsonl"));
  options.jobs = 2;
  options.command = sh_worker("printf 'hb\\n' >&3; exit 0");
  const SupervisorStats stats = run_supervised(matrix, options);

  std::size_t nonempty_shards = 0;
  std::vector<std::size_t> counts(options.jobs, 0);
  for (const Scenario& s : matrix.expand()) ++counts[s.hash() % options.jobs];
  for (const std::size_t c : counts) nonempty_shards += c > 0 ? 1 : 0;

  EXPECT_EQ(stats.spawned, nonempty_shards);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.wedges, 0u);
  EXPECT_EQ(stats.finalized, 0u);
  EXPECT_FALSE(stats.interrupted);
}

TEST(SupervisorTest, AllReusedFleetSpawnsNothing) {
  const TempDir dir("reused");
  const ScenarioMatrix matrix = test_matrix();
  // Complete the fleet in-process first; the supervisor then has no
  // pending work and must not spawn a single process.
  EnsembleOptions in_process;
  in_process.journal_path = dir.file("journal.jsonl");
  run_ensemble(matrix, [](const Scenario&, const CancelToken&) {
    RunAttempt attempt;
    attempt.outcome = RunOutcome::kOk;
    return attempt;
  }, in_process);

  SupervisorOptions options = fast_options(dir.file("journal.jsonl"));
  options.resume = true;
  options.command = sh_worker("exit 1");  // would count as a crash if run
  const SupervisorStats stats = run_supervised(matrix, options);
  EXPECT_EQ(stats.spawned, 0u);
  EXPECT_EQ(stats.crashes, 0u);
}

TEST(SupervisorTest, CrashIsChargedAndJournaledRunFailed) {
  const TempDir dir("crash");
  const ScenarioMatrix matrix = test_matrix();
  const std::string journal = dir.file("journal.jsonl");
  const std::uint64_t key = matrix.expand().front().hash();

  SupervisorOptions options = fast_options(journal);
  options.max_attempts = 1;
  options.command = sh_worker(
      crashing_script(journal, format_key(key), "kill -SEGV $$"));
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_GE(stats.crashes, 1u);
  EXPECT_EQ(stats.finalized, 1u);
  EXPECT_EQ(stats.poisoned, 0u);
  const JournalReplay replay = read_journal(journal);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].key, key);
  EXPECT_EQ(replay.entries[0].outcome, RunOutcome::kRunFailed);
  EXPECT_EQ(replay.entries[0].attempts, 1);
  EXPECT_NE(replay.entries[0].error.find("SIGSEGV"), std::string::npos)
      << replay.entries[0].error;
}

TEST(SupervisorTest, CrashBudgetPoisonsTheScenario) {
  const TempDir dir("poison");
  const ScenarioMatrix matrix = test_matrix();
  const std::string journal = dir.file("journal.jsonl");
  const std::uint64_t key = matrix.expand().front().hash();

  SupervisorOptions options = fast_options(journal);
  options.max_attempts = 5;   // plenty of retries left...
  options.crash_budget = 2;   // ...but only two dead workers allowed
  options.command = sh_worker(
      crashing_script(journal, format_key(key), "kill -SEGV $$"));
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_GE(stats.crashes, 2u);
  EXPECT_EQ(stats.finalized, 1u);
  EXPECT_EQ(stats.poisoned, 1u);
  const JournalReplay replay = read_journal(journal);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].outcome, RunOutcome::kSkipped);
  EXPECT_NE(replay.entries[0].error.find("poisonous"), std::string::npos);
  EXPECT_NE(replay.entries[0].error.find("SIGSEGV"), std::string::npos);
}

TEST(SupervisorTest, WedgedScenarioIsKilledAndJournaledTimeout) {
  const TempDir dir("wedge");
  const ScenarioMatrix matrix = test_matrix();
  const std::string journal = dir.file("journal.jsonl");
  const std::uint64_t key = matrix.expand().front().hash();

  SupervisorOptions options = fast_options(journal);
  options.max_attempts = 1;
  options.wedge_timeout_s = 0.3;
  // Heartbeats keep flowing while the "run" spins: only the per-scenario
  // wedge ceiling can reclaim this worker.
  options.command = sh_worker(crashing_script(
      journal, format_key(key),
      "while :; do printf 'hb\\n' >&3; sleep 0.05; done"));
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_GE(stats.wedges, 1u);
  EXPECT_EQ(stats.finalized, 1u);
  const JournalReplay replay = read_journal(journal);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].outcome, RunOutcome::kTimeout);
  EXPECT_NE(replay.entries[0].error.find("wedged"), std::string::npos);
}

TEST(SupervisorTest, HeartbeatSilenceIsEscalated) {
  const TempDir dir("silent");
  const ScenarioMatrix matrix = test_matrix();
  const std::string journal = dir.file("journal.jsonl");
  const std::uint64_t key = matrix.expand().front().hash();

  SupervisorOptions options = fast_options(journal);
  options.max_attempts = 1;
  options.heartbeat_timeout_s = 0.3;
  options.command = sh_worker(
      crashing_script(journal, format_key(key), "sleep 30"));
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_GE(stats.wedges, 1u);
  const JournalReplay replay = read_journal(journal);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].outcome, RunOutcome::kTimeout);
}

TEST(SupervisorTest, ShutdownTerminatesWithoutJournaling) {
  const TempDir dir("shutdown");
  const ScenarioMatrix matrix = test_matrix();
  std::atomic<bool> stop{true};  // raised before the first loop tick

  SupervisorOptions options = fast_options(dir.file("journal.jsonl"));
  options.stop = &stop;
  options.command = sh_worker(
      "printf 'start 0000000000000001\\n' >&3; "
      "while :; do printf 'hb\\n' >&3; sleep 0.05; done");
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_TRUE(stats.interrupted);
  EXPECT_EQ(stats.finalized, 0u);
  // Nothing journaled: the in-flight scenario stays missing (resumable).
  EXPECT_TRUE(read_journal(dir.file("journal.jsonl")).entries.empty());
}

TEST(SupervisorTest, NoProgressCrashLoopAbandonsTheShard) {
  const TempDir dir("abandon");
  const ScenarioMatrix matrix = test_matrix();

  SupervisorOptions options = fast_options(dir.file("journal.jsonl"));
  options.respawn_cap = 2;
  options.command = sh_worker("exit 3");  // cannot even start
  const SupervisorStats stats = run_supervised(matrix, options);

  EXPECT_EQ(stats.abandoned_shards, 1u);
  EXPECT_GE(stats.crashes, 2u);
  EXPECT_EQ(stats.finalized, 0u);
  EXPECT_FALSE(stats.interrupted);
}

TEST(SupervisorTest, PreconditionsThrow) {
  const TempDir dir("precond");
  const ScenarioMatrix matrix = test_matrix();
  {
    SupervisorOptions options;  // no journal path
    options.command = sh_worker("exit 0");
    EXPECT_THROW(run_supervised(matrix, options), CheckError);
  }
  {
    SupervisorOptions options = fast_options(dir.file("journal.jsonl"));
    // no command builder
    EXPECT_THROW(run_supervised(matrix, options), CheckError);
  }
}

}  // namespace
}  // namespace g10::ensemble
