#include "ensemble/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.hpp"

namespace g10::ensemble {
namespace {

JournalEntry sample_entry(std::uint64_t key = 0xdeadbeefcafef00dull) {
  JournalEntry entry;
  entry.key = key;
  entry.scenario = "engine=gas algo=pagerank seed=7 faults=crash:w2@40%";
  entry.outcome = RunOutcome::kOk;
  entry.attempts = 2;
  entry.wall_ms = 12.75;
  entry.report.makespan_seconds = 1.0 / 3.0;
  entry.report.phase_bottlenecks.push_back({"GatherStep", "network", 0.125});
  entry.report.phase_bottlenecks.push_back({"ApplyThread", "cpu", 0.5});
  entry.report.issues.push_back({"imbalance:GatherThread", 0.18});
  entry.report.sync_bug_rediscovered = true;
  return entry;
}

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("g10_journal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(JournalLineTest, RoundTripsExactly) {
  const JournalEntry entry = sample_entry();
  const std::string line = journal_line(entry);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = parse_journal_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, entry.key);
  EXPECT_EQ(parsed->scenario, entry.scenario);
  EXPECT_EQ(parsed->outcome, entry.outcome);
  EXPECT_EQ(parsed->attempts, entry.attempts);
  EXPECT_DOUBLE_EQ(parsed->wall_ms, entry.wall_ms);
  // Doubles survive bit-exactly (shortest-round-trip rendering): the
  // re-serialized line is byte-identical.
  EXPECT_EQ(parsed->report.makespan_seconds, entry.report.makespan_seconds);
  EXPECT_EQ(journal_line(*parsed), line);
  ASSERT_EQ(parsed->report.phase_bottlenecks.size(), 2u);
  EXPECT_EQ(parsed->report.phase_bottlenecks[0].phase, "GatherStep");
  EXPECT_EQ(parsed->report.phase_bottlenecks[0].resource, "network");
  ASSERT_EQ(parsed->report.issues.size(), 1u);
  EXPECT_EQ(parsed->report.issues[0].label, "imbalance:GatherThread");
  EXPECT_TRUE(parsed->report.sync_bug_rediscovered);
}

TEST(JournalLineTest, FailureEntryCarriesTheError) {
  JournalEntry entry;
  entry.key = 1;
  entry.scenario = "seed=1";
  entry.outcome = RunOutcome::kTimeout;
  entry.attempts = 3;
  entry.error = "deadline exceeded";
  const auto parsed = parse_journal_line(journal_line(entry));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->outcome, RunOutcome::kTimeout);
  EXPECT_EQ(parsed->error, "deadline exceeded");
}

TEST(JournalLineTest, RejectsDamagedLines) {
  const std::string line = journal_line(sample_entry());
  std::string error;
  // Torn tails: every strict prefix must fail to parse, never mis-parse.
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(parse_journal_line(line.substr(0, len), &error).has_value())
        << "prefix of length " << len << " parsed";
  }
  EXPECT_FALSE(parse_journal_line("{}", &error).has_value());
  EXPECT_FALSE(
      parse_journal_line("{\"key\":\"zz\",\"scenario\":\"s\"}", &error)
          .has_value());
  EXPECT_FALSE(parse_journal_line(
                   "{\"key\":\"0000000000000001\",\"scenario\":\"s\","
                   "\"outcome\":\"nope\",\"report\":{}}",
                   &error)
                   .has_value());
}

TEST(JournalWriterTest, AppendsAndReadsBack) {
  const TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  {
    JournalWriter writer(path);
    writer.append(sample_entry(1));
    writer.append(sample_entry(2));
  }
  {
    JournalWriter writer(path);  // reopen appends, never truncates
    writer.append(sample_entry(3));
  }
  const JournalReplay replay = read_journal(path);
  EXPECT_EQ(replay.dropped_lines, 0u);
  ASSERT_EQ(replay.entries.size(), 3u);
  EXPECT_EQ(replay.entries[0].key, 1u);
  EXPECT_EQ(replay.entries[1].key, 2u);
  EXPECT_EQ(replay.entries[2].key, 3u);
}

TEST(JournalWriterTest, MissingDirectoryIsAnError) {
  EXPECT_THROW(JournalWriter("/nonexistent-dir-g10/journal.jsonl"),
               CheckError);
}

TEST(ReadJournalTest, MissingFileIsEmpty) {
  const JournalReplay replay = read_journal("/tmp/g10-does-not-exist.jsonl");
  EXPECT_TRUE(replay.entries.empty());
  EXPECT_EQ(replay.dropped_lines, 0u);
}

TEST(ReadJournalTest, TornFinalLineIsDroppedNotFatal) {
  const TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  {
    JournalWriter writer(path);
    writer.append(sample_entry(1));
    writer.append(sample_entry(2));
  }
  // Simulate a kill -9 mid-write: append half a line, no newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << journal_line(sample_entry(3)).substr(0, 40);
  }
  const JournalReplay replay = read_journal(path);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.dropped_lines, 1u);
  EXPECT_EQ(replay.entries[0].key, 1u);
  EXPECT_EQ(replay.entries[1].key, 2u);
}

TEST(JournalWriterTest, ReopenAfterTornLineHealsTheTail) {
  const TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  {
    JournalWriter writer(path);
    writer.append(sample_entry(1));
  }
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"key\":\"00";  // kill -9 mid-append
  }
  {
    // The resumed writer must not fuse its first append onto the fragment.
    JournalWriter writer(path);
    writer.append(sample_entry(2));
  }
  const JournalReplay replay = read_journal(path);
  EXPECT_EQ(replay.dropped_lines, 1u);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.entries[0].key, 1u);
  EXPECT_EQ(replay.entries[1].key, 2u);
}

}  // namespace
}  // namespace g10::ensemble
