#include "ensemble/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace g10::ensemble {
namespace {

ScenarioMatrix small_matrix() {
  ScenarioMatrix m;
  m.engines = {"pregel", "gas"};
  m.dataset = "rmat:6";
  m.workers = 4;
  m.seed_range(10, 5);
  return m;
}

TEST(ScenarioTest, KeyRendersTheFullRecipe) {
  Scenario s;
  s.engine = "gas";
  s.algorithm = "cdlp";
  s.dataset = "datagen:4096";
  s.workers = 3;
  s.cores = 6;
  s.iterations = 7;
  s.seed = 42;
  s.sync_bug = true;
  s.jitter.core_speed = 0.95;
  s.jitter.nic_bandwidth = 1.025;
  s.faults = *sim::FaultSpec::parse("crash:w2@40%");
  EXPECT_EQ(s.key(),
            "engine=gas algo=cdlp dataset=datagen:4096 workers=3 cores=6 "
            "iters=7 seed=42 sync_bug=1 jitter=0.95x1.025 faults=crash:w2@40%");
}

TEST(ScenarioTest, EmptyFaultsRenderAsNone) {
  Scenario s;
  EXPECT_NE(s.key().find("faults=none"), std::string::npos);
}

TEST(ScenarioTest, HashIsPinnedFnv1a) {
  // Pinned value: journals written by one build must resume under another,
  // so the key hash can never silently change.
  EXPECT_EQ(fnv1a64("grade10"), 0xc4efdc608b6d68ddull);
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  Scenario s;
  EXPECT_EQ(s.hash(), fnv1a64(s.key()));
}

TEST(ScenarioMatrixTest, ExpandIsDeterministicAndUnique) {
  const ScenarioMatrix m = small_matrix();
  const auto a = m.expand();
  const auto b = m.expand();
  ASSERT_EQ(a.size(), 2u * 5u);  // engines x seeds, one clean run per cell
  std::set<std::string> keys;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key());
    keys.insert(a[i].key());
  }
  EXPECT_EQ(keys.size(), a.size());
}

TEST(ScenarioMatrixTest, SampledFaultsExtendTheAxisDeterministically) {
  ScenarioMatrix m = small_matrix();
  m.sampled_fault_specs = 2;
  const auto a = m.expand();
  const auto b = m.expand();
  ASSERT_EQ(a.size(), 2u * 5u * 3u);  // clean + 2 sampled per cell
  std::set<std::string> keys;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key());
    keys.insert(a[i].key());
    EXPECT_NO_THROW(a[i].faults.validate(m.workers));
  }
  EXPECT_EQ(keys.size(), a.size());
}

TEST(ScenarioMatrixTest, JitterDependsOnSeedNotFaultAxis) {
  ScenarioMatrix m = small_matrix();
  m.engines = {"gas"};
  m.jitter = 0.2;
  m.fault_specs.push_back({});
  m.fault_specs.push_back(*sim::FaultSpec::parse("slow:w0@10%+20%:x0.5"));
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 5u * 2u);
  for (std::size_t i = 0; i < scenarios.size(); i += 2) {
    // Same seed, different fault pattern -> same simulated hardware.
    EXPECT_EQ(scenarios[i].seed, scenarios[i + 1].seed);
    EXPECT_EQ(scenarios[i].jitter, scenarios[i + 1].jitter);
    EXPECT_FALSE(scenarios[i].jitter.identity());
    EXPECT_GE(scenarios[i].jitter.core_speed, 0.8);
    EXPECT_LE(scenarios[i].jitter.core_speed, 1.2);
  }
  // Different seeds draw different hardware (with overwhelming probability).
  EXPECT_NE(scenarios[0].jitter, scenarios[2].jitter);
}

TEST(ScenarioMatrixTest, JitteredKeysRoundTripExactly) {
  ScenarioMatrix m = small_matrix();
  m.jitter = 0.15;
  for (const Scenario& s : m.expand()) {
    // The key must render the quantized factors losslessly: two scenarios
    // with different jitter must never collide on the same key text.
    Scenario copy = s;
    EXPECT_EQ(copy.key(), s.key());
    copy.jitter.core_speed += 0.0001;
    EXPECT_NE(copy.key(), s.key());
  }
}

TEST(ScenarioMatrixTest, RejectsInvalidShapes) {
  ScenarioMatrix empty_seeds = small_matrix();
  empty_seeds.seeds.clear();
  EXPECT_THROW(empty_seeds.expand(), CheckError);

  ScenarioMatrix no_engines = small_matrix();
  no_engines.engines.clear();
  EXPECT_THROW(no_engines.expand(), CheckError);

  ScenarioMatrix bad_jitter = small_matrix();
  bad_jitter.jitter = 1.0;
  EXPECT_THROW(bad_jitter.expand(), CheckError);

  EXPECT_THROW(small_matrix().seed_range(1, 0), CheckError);
}

}  // namespace
}  // namespace g10::ensemble
