// Watchdog + cancellation + retry coverage for the ensemble's robust run
// executor. The hung-run scenarios use a cooperative spin that polls its
// CancelToken — the production contract — so a fired deadline releases the
// pool slot instead of wedging the fleet. Runs TSan-clean (registered with
// the sanitizer CI jobs).
#include "ensemble/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace g10::ensemble {
namespace {

using namespace std::chrono_literals;

Scenario test_scenario(std::uint64_t seed = 1) {
  Scenario s;
  s.seed = seed;
  return s;
}

RunAttempt ok_attempt(double makespan = 1.0) {
  RunAttempt a;
  a.outcome = RunOutcome::kOk;
  a.report.makespan_seconds = makespan;
  return a;
}

/// Blocks until the token fires (bounded by a generous failsafe so a broken
/// watchdog fails the test instead of hanging it).
void hang_until_cancelled(const CancelToken& token) {
  const auto failsafe = std::chrono::steady_clock::now() + 30s;
  while (!token.cancelled()) {
    ASSERT_LT(std::chrono::steady_clock::now(), failsafe)
        << "watchdog never fired";
    std::this_thread::sleep_for(1ms);
  }
}

TEST(OutcomeNameTest, RoundTripsEveryOutcome) {
  for (const RunOutcome outcome :
       {RunOutcome::kOk, RunOutcome::kTimeout, RunOutcome::kRunFailed,
        RunOutcome::kAnalysisFailed, RunOutcome::kSkipped}) {
    const auto parsed = parse_outcome(outcome_name(outcome));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, outcome);
  }
  EXPECT_FALSE(parse_outcome("exploded").has_value());
}

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.backoff_initial_seconds = 0.1;
  policy.backoff_factor = 2.0;
  policy.backoff_max_seconds = 0.35;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 0.1);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 0.2);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(4), 0.35);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(9), 0.35);
}

TEST(RunExecutorTest, SuccessOnFirstAttempt) {
  const RunExecutor executor(
      [](const Scenario&, const CancelToken&) { return ok_attempt(2.5); },
      RetryPolicy{}, nullptr);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kOk);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_DOUBLE_EQ(result.report.makespan_seconds, 2.5);
  EXPECT_TRUE(result.error.empty());
}

TEST(RunExecutorTest, ThrowingRunBecomesRunFailedAndIsRetried) {
  std::atomic<int> calls{0};
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_initial_seconds = 0.001;
  const RunExecutor executor(
      [&](const Scenario&, const CancelToken&) -> RunAttempt {
        if (calls.fetch_add(1) < 2) throw std::runtime_error("flaky");
        return ok_attempt();
      },
      policy, nullptr);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kOk);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls.load(), 3);
}

TEST(RunExecutorTest, ExhaustedRetriesKeepTheLastFailure) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_initial_seconds = 0.001;
  const RunExecutor executor(
      [](const Scenario&, const CancelToken&) -> RunAttempt {
        throw std::runtime_error("always broken");
      },
      policy, nullptr);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kRunFailed);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(result.error, "always broken");
}

TEST(RunExecutorTest, AnalysisFailureIsNotRetriedByDefault) {
  std::atomic<int> calls{0};
  const RunExecutor executor(
      [&](const Scenario&, const CancelToken&) {
        ++calls;
        RunAttempt a;
        a.outcome = RunOutcome::kAnalysisFailed;
        a.error = "bad trace";
        return a;
      },
      RetryPolicy{}, nullptr);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kAnalysisFailed);
  EXPECT_EQ(calls.load(), 1);
}

TEST(RunExecutorTest, StopFlagSkipsBeforeTheFirstAttempt) {
  std::atomic<bool> stop{true};
  std::atomic<int> calls{0};
  const RunExecutor executor(
      [&](const Scenario&, const CancelToken&) {
        ++calls;
        return ok_attempt();
      },
      RetryPolicy{}, nullptr);
  const RunResult result = executor.execute(test_scenario(), &stop);
  EXPECT_EQ(result.outcome, RunOutcome::kSkipped);
  EXPECT_EQ(result.attempts, 0);
  EXPECT_EQ(calls.load(), 0);
}

TEST(WatchdogTest, HungRunIsCancelledAndClassifiedTimeout) {
  Watchdog watchdog;
  RetryPolicy policy;
  policy.deadline_seconds = 0.05;
  policy.retry_timeout = false;
  const RunExecutor executor(
      [](const Scenario&, const CancelToken& token) {
        hang_until_cancelled(token);
        // Whatever a cancelled run reports is overridden by the deadline
        // verdict — even a claimed success.
        return ok_attempt();
      },
      policy, &watchdog);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kTimeout);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.error, "deadline exceeded");
  // A timed-out attempt's partial report must not leak into the aggregate.
  EXPECT_DOUBLE_EQ(result.report.makespan_seconds, 0.0);
}

TEST(WatchdogTest, TimeoutIsRetriedPerPolicyWithAFreshToken) {
  Watchdog watchdog;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.deadline_seconds = 0.05;
  policy.backoff_initial_seconds = 0.001;
  std::atomic<int> calls{0};
  const RunExecutor executor(
      [&](const Scenario&, const CancelToken& token) -> RunAttempt {
        if (calls.fetch_add(1) == 0) {
          hang_until_cancelled(token);
          return ok_attempt();
        }
        // Attempt 2 gets a fresh token: the attempt-1 deadline must not
        // have poisoned it.
        EXPECT_FALSE(token.cancelled());
        return ok_attempt(7.0);
      },
      policy, &watchdog);
  const RunResult result = executor.execute(test_scenario());
  EXPECT_EQ(result.outcome, RunOutcome::kOk);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_DOUBLE_EQ(result.report.makespan_seconds, 7.0);
}

TEST(WatchdogTest, FastRunIsNeverCancelled) {
  Watchdog watchdog;
  RetryPolicy policy;
  policy.deadline_seconds = 30.0;
  const RunExecutor executor(
      [](const Scenario&, const CancelToken& token) {
        EXPECT_FALSE(token.cancelled());
        return ok_attempt();
      },
      policy, &watchdog);
  for (int i = 0; i < 50; ++i) {
    const RunResult result = executor.execute(test_scenario(i));
    EXPECT_EQ(result.outcome, RunOutcome::kOk);
  }
}

TEST(WatchdogTest, DisarmedGuardNeverFires) {
  Watchdog watchdog;
  auto token = std::make_shared<CancelToken>();
  {
    Watchdog::Guard guard = watchdog.arm(token, 20ms);
    guard.disarm();
  }
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(token->cancelled());
}

TEST(WatchdogTest, GuardDestructionDisarms) {
  Watchdog watchdog;
  auto token = std::make_shared<CancelToken>();
  { const Watchdog::Guard guard = watchdog.arm(token, 20ms); }
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(token->cancelled());
}

TEST(WatchdogTest, ManyConcurrentDeadlinesFireIndependently) {
  Watchdog watchdog;
  constexpr int kCount = 32;
  std::vector<std::shared_ptr<CancelToken>> fire;
  std::vector<std::shared_ptr<CancelToken>> hold;
  std::vector<Watchdog::Guard> guards;
  for (int i = 0; i < kCount; ++i) {
    fire.push_back(std::make_shared<CancelToken>());
    hold.push_back(std::make_shared<CancelToken>());
    guards.push_back(watchdog.arm(fire.back(), 10ms));
    guards.push_back(watchdog.arm(hold.back(), 1h));
  }
  const auto failsafe = std::chrono::steady_clock::now() + 30s;
  for (const auto& token : fire) {
    while (!token->cancelled()) {
      ASSERT_LT(std::chrono::steady_clock::now(), failsafe);
      std::this_thread::sleep_for(1ms);
    }
  }
  for (const auto& token : hold) EXPECT_FALSE(token->cancelled());
}

// The ISSUE's wedge check: a fleet of deliberately-hung runs, fanned across
// the shared ThreadPool exactly as the driver does it, must drain — every
// deadline fires, every slot is released, and the pool finishes more work
// afterwards.
TEST(WatchdogTest, HungFleetNeverWedgesTheThreadPool) {
  Watchdog watchdog;
  RetryPolicy policy;
  policy.max_attempts = 2;  // timeouts retried once, per the default policy
  policy.deadline_seconds = 0.03;
  policy.backoff_initial_seconds = 0.001;
  std::atomic<int> hung_attempts{0};
  const RunExecutor executor(
      [&](const Scenario& scenario, const CancelToken& token) -> RunAttempt {
        if (scenario.seed % 2 == 0) {
          ++hung_attempts;
          hang_until_cancelled(token);
          RunAttempt a;
          a.outcome = RunOutcome::kRunFailed;
          a.error = "hung";
          return a;
        }
        return ok_attempt();
      },
      policy, &watchdog);

  ThreadPool pool(4);
  constexpr std::size_t kRuns = 16;
  std::vector<RunResult> results(kRuns);
  parallel_for(&pool, kRuns, 1, [&](std::size_t i) {
    results[i] = executor.execute(test_scenario(i));
  });

  std::size_t ok = 0;
  std::size_t timeout = 0;
  for (std::size_t i = 0; i < kRuns; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(results[i].outcome, RunOutcome::kTimeout) << i;
      EXPECT_EQ(results[i].attempts, 2) << i;
      ++timeout;
    } else {
      EXPECT_EQ(results[i].outcome, RunOutcome::kOk) << i;
      ++ok;
    }
  }
  EXPECT_EQ(ok, kRuns / 2);
  EXPECT_EQ(timeout, kRuns / 2);
  EXPECT_EQ(hung_attempts.load(), static_cast<int>(kRuns));  // 2 each

  // The pool still works: the hung fleet released every slot.
  std::atomic<std::size_t> after{0};
  parallel_for(&pool, 100, 1, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 100u);
}

TEST(RunExecutorTest, DeadlineWithoutWatchdogIsRejected) {
  RetryPolicy policy;
  policy.deadline_seconds = 1.0;
  EXPECT_THROW(RunExecutor([](const Scenario&, const CancelToken&)
                               { return RunAttempt{}; },
                           policy, nullptr),
               CheckError);
}

}  // namespace
}  // namespace g10::ensemble
