// Property tests for the journal under concurrent writer *processes*: the
// supervisor/worker mode has several processes appending to one journal
// file under O_APPEND. Each append is a single write(2) of one full line,
// so (1) concurrent writers interleave at line granularity — never inside a
// line, (2) a SIGKILL mid-fleet tears at most the final line per killed
// writer, (3) a short write (RLIMIT_FSIZE) aborts the writer and leaves a
// torn tail the next reopen heals — no cross-writer corruption in any case.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "ensemble/journal.hpp"

namespace g10::ensemble {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("g10_journal_conc_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

/// Deterministic, distinctive entry: any byte-level corruption or
/// cross-writer fusion changes the serialization and is caught by the
/// membership check against the expected-line set.
JournalEntry make_entry(int writer, int seq) {
  JournalEntry entry;
  entry.key = static_cast<std::uint64_t>(writer) * 100000u +
              static_cast<std::uint64_t>(seq);
  entry.scenario = "writer=" + std::to_string(writer) +
                   " seq=" + std::to_string(seq);
  entry.outcome = RunOutcome::kOk;
  entry.attempts = 1;
  entry.wall_ms = static_cast<double>(seq);
  entry.report.makespan_seconds = 1.0 + 0.001 * static_cast<double>(seq);
  entry.report.issues.push_back(
      {"imbalance:writer" + std::to_string(writer),
       0.01 * static_cast<double>(writer)});
  return entry;
}

/// Forks a writer process that appends `count` entries and exits. The
/// child only _exits, never returns into gtest.
pid_t fork_writer(const std::string& path, int writer, int count) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  try {
    JournalWriter out(path);
    for (int seq = 0; seq < count; ++seq) {
      out.append(make_entry(writer, seq));
    }
  } catch (...) {
    ::_exit(1);  // never unwind into gtest from the forked child
  }
  ::_exit(0);
}

/// Every parsed entry must reserialize to a line some writer legitimately
/// produced — the no-cross-writer-corruption property.
void expect_all_entries_legitimate(const JournalReplay& replay, int writers,
                                   int count) {
  std::set<std::string> expected;
  for (int w = 0; w < writers; ++w) {
    for (int s = 0; s < count; ++s) {
      expected.insert(journal_line(make_entry(w, s)));
    }
  }
  for (const JournalEntry& entry : replay.entries) {
    EXPECT_TRUE(expected.contains(journal_line(entry)))
        << "corrupt or fused line resurfaced as: " << entry.scenario;
  }
}

TEST(JournalConcurrencyTest, WritersInterleaveAtLineGranularity) {
  const TempDir dir("interleave");
  const std::string path = dir.file("journal.jsonl");
  constexpr int kWriters = 4;
  constexpr int kCount = 120;

  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    pids.push_back(fork_writer(path, w, kCount));
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  const JournalReplay replay = read_journal(path);
  EXPECT_EQ(replay.entries.size(),
            static_cast<std::size_t>(kWriters * kCount));
  EXPECT_EQ(replay.dropped_lines, 0u);
  expect_all_entries_legitimate(replay, kWriters, kCount);
}

TEST(JournalConcurrencyTest, KilledWritersTearAtMostOneLineEach) {
  const TempDir dir("killed");
  const std::string path = dir.file("journal.jsonl");
  constexpr int kWriters = 4;
  constexpr int kCount = 400;
  constexpr int kKilled = 2;

  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    pids.push_back(fork_writer(path, w, kCount));
  }
  // Let the fleet write for a moment, then kill two writers mid-append.
  ::usleep(20000);
  for (int w = 0; w < kKilled; ++w) ::kill(pids[w], SIGKILL);
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }

  const JournalReplay replay = read_journal(path);
  // Each killed writer can tear at most its one in-flight line.
  EXPECT_LE(replay.dropped_lines, static_cast<std::size_t>(kKilled));
  expect_all_entries_legitimate(replay, kWriters, kCount);
  // The surviving writers' records all landed intact.
  for (int w = kKilled; w < kWriters; ++w) {
    std::size_t from_writer = 0;
    const std::string tag = "writer=" + std::to_string(w) + " ";
    for (const JournalEntry& entry : replay.entries) {
      if (entry.scenario.find(tag) == 0) ++from_writer;
    }
    EXPECT_EQ(from_writer, static_cast<std::size_t>(kCount))
        << "writer " << w << " lost entries";
  }

  // Reopening heals any torn tail: a fresh append must land as its own
  // parseable line, not fuse with a fragment.
  const std::size_t before = replay.entries.size();
  {
    JournalWriter heal(path);
    heal.append(make_entry(99, 0));
  }
  const JournalReplay after = read_journal(path);
  EXPECT_EQ(after.entries.size(), before + 1);
  EXPECT_LE(after.dropped_lines, replay.dropped_lines);
  bool found = false;
  for (const JournalEntry& entry : after.entries) {
    found = found || journal_line(entry) == journal_line(make_entry(99, 0));
  }
  EXPECT_TRUE(found);
}

TEST(JournalConcurrencyTest, ShortWriteBecomesAHealableTornTail) {
  const TempDir dir("fsize");
  const std::string path = dir.file("journal.jsonl");

  // The child caps its own file size, so some append eventually gets a
  // short write. The writer must abort (single-write discipline: never
  // resume a remainder) leaving a torn tail, not a fused record.
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::signal(SIGXFSZ, SIG_IGN);  // make the over-limit write return short
    struct rlimit limit {};
    limit.rlim_cur = 700;
    limit.rlim_max = 700;
    ::setrlimit(RLIMIT_FSIZE, &limit);
    // The expected CheckError must not escape into gtest inside the
    // child: unwinding would run this TEST's destructors (including the
    // parent's TempDir) in the child process. Catch and _exit instead.
    try {
      JournalWriter out(path);
      for (int seq = 0; seq < 64; ++seq) {
        out.append(make_entry(0, seq));  // aborts on the short write
      }
      ::_exit(0);  // not reached: the short write raises CheckError
    } catch (...) {
      ::_exit(42);
    }
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42)
      << "the child should have aborted on the short write";

  const JournalReplay torn = read_journal(path);
  EXPECT_LE(torn.dropped_lines, 1u);  // exactly the truncated fragment
  expect_all_entries_legitimate(torn, 1, 64);

  // Reopen heals the fragment; the next append is cleanly parseable.
  {
    JournalWriter heal(path);
    heal.append(make_entry(7, 7));
  }
  const JournalReplay healed = read_journal(path);
  EXPECT_EQ(healed.entries.size(), torn.entries.size() + 1);
  EXPECT_LE(healed.dropped_lines, 1u);
}

}  // namespace
}  // namespace g10::ensemble
