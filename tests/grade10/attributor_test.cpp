#include "grade10/attribution/attributor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_sample;

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  PhaseTypeId parent = kNoPhaseType;
  PhaseTypeId a = kNoPhaseType;
  PhaseTypeId b = kNoPhaseType;
  ResourceId cpu = kNoResource;

  Fixture() {
    const PhaseTypeId job = execution.add_root("Job");
    parent = execution.add_child(job, "Group");
    a = execution.add_child(parent, "A");
    b = execution.add_child(parent, "B");
    cpu = resources.add_consumable("cpu", 4.0);
    rules.set(a, cpu, AttributionRule::exact(2.0));
    rules.set(b, cpu, AttributionRule::variable(1.0));
  }

  struct Built {
    ExecutionTrace trace;
    std::vector<DemandMatrix> demand;
    AttributedUsage usage;
  };

  Built build(const std::vector<trace::PhaseEventRecord>& events,
              const std::vector<trace::MonitoringSampleRecord>& samples) {
    const TimesliceGrid grid(10);
    Built out{ExecutionTrace::build(execution, resources, events, {}), {}, {}};
    out.demand = estimate_demand(resources, rules, out.trace, grid);
    const auto monitored = ResourceTrace::build(resources, samples);
    out.usage = attribute_usage(out.demand, monitored, grid);
    return out;
  }
};

TEST(AttributorTest, ExactPhaseFirstThenVariable) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/Group.0", 0, 10);
  add_phase(events, "Job.0/Group.0/A.0", 0, 10, 0);
  add_phase(events, "Job.0/Group.0/B.0", 0, 10, 0);
  // One slice at consumption 3.0: A (exact 2) gets 2, B gets 1.
  const auto built = f.build(events, {make_sample("cpu", 0, 10, 3.0)});
  ASSERT_EQ(built.usage.resources.size(), 1u);
  const AttributedResource& r = built.usage.resources[0];
  const auto entries = r.slice_entries(0);
  ASSERT_EQ(entries.size(), 2u);
  double a_usage = 0.0;
  double b_usage = 0.0;
  for (const auto& entry : entries) {
    const auto& instance = built.trace.instance(entry.instance);
    (instance.path.ends_with("A.0") ? a_usage : b_usage) = entry.usage;
  }
  EXPECT_NEAR(a_usage, 2.0, 1e-9);
  EXPECT_NEAR(b_usage, 1.0, 1e-9);
}

TEST(AttributorTest, ExactCappedWhenConsumptionLow) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/Group.0", 0, 10);
  add_phase(events, "Job.0/Group.0/A.0", 0, 10, 0);
  const auto built = f.build(events, {make_sample("cpu", 0, 10, 1.0)});
  const auto entries = built.usage.resources[0].slice_entries(0);
  ASSERT_EQ(entries.size(), 1u);
  // Consumption below the exact demand: A gets all of it, scaled.
  EXPECT_NEAR(entries[0].usage, 1.0, 1e-9);
  EXPECT_TRUE(entries[0].exact);
  EXPECT_NEAR(entries[0].demand, 2.0, 1e-9);
}

TEST(AttributorTest, LeftoverWithoutVariablePhasesIsUnattributed) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/Group.0", 0, 10);
  add_phase(events, "Job.0/Group.0/A.0", 0, 10, 0);
  const auto built = f.build(events, {make_sample("cpu", 0, 10, 3.5)});
  const AttributedResource& r = built.usage.resources[0];
  // A takes its exact 2.0; 1.5 has no variable consumer.
  EXPECT_NEAR(r.unattributed[0], 1.5, 1e-9);
}

TEST(AttributorTest, ConsumptionWithNoActivePhases) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/Group.0", 0, 20);
  add_phase(events, "Job.0/Group.0/A.0", 0, 10, 0);
  const auto built = f.build(
      events,
      {make_sample("cpu", 0, 10, 2.0), make_sample("cpu", 0, 20, 1.0)});
  const AttributedResource& r = built.usage.resources[0];
  // Slice 1 has consumption but no phases: fully unattributed.
  EXPECT_GT(r.unattributed[1], 0.0);
}

TEST(AttributorTest, SubtreeRollupsSumChildren) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/Group.0", 0, 20);
  add_phase(events, "Job.0/Group.0/A.0", 0, 20, 0);
  add_phase(events, "Job.0/Group.0/B.0", 0, 20, 0);
  const auto built = f.build(
      events,
      {make_sample("cpu", 0, 10, 3.0), make_sample("cpu", 0, 20, 3.0)});
  const AttributedResource& r = built.usage.resources[0];
  const TimesliceGrid grid(10);

  const InstanceId group = built.trace.find("Job.0/Group.0");
  const auto series = subtree_usage_series(r, built.trace, group);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 3.0, 1e-9);
  EXPECT_NEAR(series[1], 3.0, 1e-9);
  // Total in unit-seconds: 3 units for 20 ns..
  EXPECT_NEAR(subtree_usage(r, built.trace, group, grid),
              3.0 * to_seconds(20), 1e-15);

  // Demand series: exact 2 + variable 1 per slice.
  const auto demand = subtree_demand_series(built.demand[0], built.trace, group);
  EXPECT_NEAR(demand[0], 3.0, 1e-9);
}

TEST(AttributorTest, FindLocatesResourceInstance) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/Group.0", 0, 10);
  add_phase(events, "Job.0/Group.0/A.0", 0, 10, 0);
  const auto built = f.build(events, {make_sample("cpu", 0, 10, 1.0)});
  EXPECT_NE(built.usage.find(f.cpu, 0), nullptr);
  EXPECT_EQ(built.usage.find(f.cpu, 9), nullptr);
}

TEST(AttributorTest, ConstantStrawmanSelectable) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/Group.0", 0, 20);
  add_phase(events, "Job.0/Group.0/A.0", 10, 20, 0);
  const TimesliceGrid grid(10);
  const auto trace = ExecutionTrace::build(f.execution, f.resources, events, {});
  const auto demand = estimate_demand(f.resources, f.rules, trace, grid);
  const auto monitored = ResourceTrace::build(
      f.resources, std::vector<trace::MonitoringSampleRecord>{
                       make_sample("cpu", 0, 20, 1.0)});
  const auto smart = attribute_usage(demand, monitored, grid, false);
  const auto constant = attribute_usage(demand, monitored, grid, true);
  // Grade10 places the mass in slice 1 (where A is active); the strawman
  // spreads it evenly.
  EXPECT_NEAR(smart.resources[0].upsampled.usage[1], 2.0, 1e-9);
  EXPECT_NEAR(constant.resources[0].upsampled.usage[0], 1.0, 1e-9);
  EXPECT_NEAR(constant.resources[0].upsampled.usage[1], 1.0, 1e-9);
}

// Property: per slice, the attributed usage sums to the upsampled
// consumption (up to the reported unattributed remainder), Exact entries
// never exceed their demand, and nothing is negative.
class AttributionInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AttributionInvariantTest, SliceSumsAndCapsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271);
  ExecutionModel model;
  const PhaseTypeId job = model.add_root("Job");
  std::vector<PhaseTypeId> types;
  for (int i = 0; i < 4; ++i) {
    types.push_back(model.add_child(job, "T" + std::to_string(i)));
  }
  ResourceModel resources;
  const ResourceId cpu = resources.add_consumable("cpu", 8.0);
  AttributionRuleSet rules;
  for (const PhaseTypeId t : types) {
    if (rng.next_bool(0.4)) {
      rules.set(t, cpu, AttributionRule::exact(rng.next_double(0.5, 3.0)));
    } else if (rng.next_bool(0.2)) {
      rules.set(t, cpu, AttributionRule::none());
    }  // else: default Variable(1)
  }

  const TimeNs horizon = 200;
  std::vector<trace::PhaseEventRecord> events;
  testing::add_phase(events, "Job.0", 0, horizon);
  int index = 0;
  for (const PhaseTypeId t : types) {
    const int instances = static_cast<int>(rng.next_int(1, 3));
    for (int k = 0; k < instances; ++k) {
      const TimeNs begin = rng.next_int(0, horizon - 20);
      const TimeNs end = rng.next_int(begin + 5, horizon);
      testing::add_phase(events,
                         "Job.0/T" + std::to_string(t - 1) + "." +
                             std::to_string(index++ % 4),
                         begin, end, 0);
    }
    index = 0;
  }
  std::vector<trace::MonitoringSampleRecord> samples;
  for (TimeNs t = 40; t <= horizon; t += 40) {
    samples.push_back(testing::make_sample("cpu", 0, t,
                                           rng.next_double(0.0, 8.0)));
  }

  const TimesliceGrid grid(10);
  const auto trace = ExecutionTrace::build(model, resources, events, {});
  const auto demand = estimate_demand(resources, rules, trace, grid);
  const auto monitored = ResourceTrace::build(resources, samples);
  const auto usage = attribute_usage(demand, monitored, grid);
  ASSERT_EQ(usage.resources.size(), 1u);
  const AttributedResource& r = usage.resources[0];
  for (TimesliceIndex s = 0; s < r.slice_count(); ++s) {
    double attributed = 0.0;
    for (const auto& entry : r.slice_entries(s)) {
      ASSERT_GE(entry.usage, -1e-9);
      if (entry.exact) {
        ASSERT_LE(entry.usage, entry.demand + 1e-9);
      }
      attributed += entry.usage;
    }
    const double consumption = r.upsampled.usage[static_cast<std::size_t>(s)];
    ASSERT_LE(consumption, r.capacity + 1e-6);
    ASSERT_NEAR(attributed + r.unattributed[static_cast<std::size_t>(s)],
                consumption, 1e-6)
        << "slice " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttributionInvariantTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace g10::core
