// fold_characterization: the analysis-side half of the determinism oracle
// (DESIGN.md §14). The whole CharacterizationResult — instance tree,
// attribution, bottlenecks, issues — digests to the same per-phase-path
// hashes at every thread count, which is exactly the comparison
// `g10_analyze --det-check N` runs.
#include <gtest/gtest.h>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/det_fold.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

namespace g10::core {
namespace {

struct Workload {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> samples;
  FrameworkModel model;
};

const Workload& workload() {
  static const Workload w = [] {
    graph::DatagenParams params;
    params.vertices = 512;
    params.mean_degree = 8;
    params.seed = 21;
    const graph::Graph graph = generate_datagen_like(params);

    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 3;
    cfg.cluster.machine.cores = 4;
    const engine::PregelEngine engine(cfg);

    Workload out;
    out.artifacts = engine.run(graph, algorithms::PageRank(4));
    out.samples = monitor::sample_ground_truth(out.artifacts.ground_truth,
                                               50 * kMillisecond,
                                               out.artifacts.makespan);
    PregelModelParams model_params;
    model_params.cores = cfg.cluster.machine.cores;
    model_params.threads = cfg.effective_threads();
    model_params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    out.model = make_pregel_model(model_params);
    return out;
  }();
  return w;
}

DetSummary digest_at(int threads) {
  const Workload& w = workload();
  CharacterizationInput input;
  input.model = &w.model.execution;
  input.resources = &w.model.resources;
  input.rules = &w.model.tuned_rules;
  input.phase_events = w.artifacts.phase_events;
  input.blocking_events = w.artifacts.blocking_events;
  input.samples = w.samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  input.config.threads = threads;
  return fold_characterization(characterize(input), w.model.resources);
}

TEST(DetFoldCharacterization, DigestCoversTheWholeResult) {
  const DetSummary summary = digest_at(1);
  EXPECT_GT(summary.phases.size(), 10u);
  EXPECT_GT(summary.total_folds, 1000u);
  bool has_usage = false;
  bool has_saturation = false;
  for (const DetSummary::Entry& entry : summary.phases) {
    has_usage |= entry.path.compare(0, 6, "usage/") == 0;
    has_saturation |= entry.path.compare(0, 11, "saturation/") == 0;
  }
  EXPECT_TRUE(has_usage);
  EXPECT_TRUE(has_saturation);
}

TEST(DetFoldCharacterization, IdenticalAcrossThreadCounts) {
  const DetSummary serial = digest_at(1);
  for (const int threads : {2, 4, 8}) {
    const auto divergence = first_divergence(serial, digest_at(threads));
    EXPECT_FALSE(divergence.has_value())
        << "threads=" << threads << " diverged at '" << divergence->path
        << "': " << divergence->detail;
  }
}

TEST(DetFoldCharacterization, RepeatedSerialRunsAreStable) {
  EXPECT_FALSE(first_divergence(digest_at(1), digest_at(1)).has_value());
}

}  // namespace
}  // namespace g10::core
