#include "grade10/model/execution_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::core {
namespace {

TEST(ExecutionModelTest, BuildsHierarchy) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId load = m.add_child(job, "Load");
  const PhaseTypeId run = m.add_child(job, "Run");
  const PhaseTypeId step = m.add_child(run, "Step", /*repeated=*/true);
  m.add_order(load, run);
  m.validate();

  EXPECT_EQ(m.root(), job);
  EXPECT_EQ(m.type(job).children.size(), 2u);
  EXPECT_EQ(m.type(step).parent, run);
  EXPECT_TRUE(m.type(step).repeated);
  EXPECT_EQ(m.find("Step"), step);
  EXPECT_EQ(m.find("Nope"), kNoPhaseType);
  EXPECT_EQ(m.type(run).predecessors.size(), 1u);
  EXPECT_EQ(m.type(load).successors.size(), 1u);
}

TEST(ExecutionModelTest, RejectsSecondRoot) {
  ExecutionModel m;
  m.add_root("Job");
  EXPECT_THROW(m.add_root("Job2"), CheckError);
}

TEST(ExecutionModelTest, RejectsDuplicateNames) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  m.add_child(job, "A");
  EXPECT_THROW(m.add_child(job, "A"), CheckError);
}

TEST(ExecutionModelTest, RejectsCrossParentOrder) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  const PhaseTypeId b = m.add_child(a, "B");
  EXPECT_THROW(m.add_order(a, b), CheckError);
}

TEST(ExecutionModelTest, DetectsSiblingCycle) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  const PhaseTypeId b = m.add_child(job, "B");
  m.add_order(a, b);
  m.add_order(b, a);
  EXPECT_THROW(m.validate(), CheckError);
}

TEST(ExecutionModelTest, SelfOrderRejected) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  EXPECT_THROW(m.add_order(a, a), CheckError);
}

TEST(ExecutionModelTest, WaitAndConcurrencyFlags) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  m.set_wait(a);
  m.set_concurrency_limit(a, 4);
  EXPECT_TRUE(m.type(a).wait);
  EXPECT_EQ(m.type(a).concurrency_limit, 4);
  EXPECT_THROW(m.set_concurrency_limit(a, -1), CheckError);
}

TEST(ExecutionModelTest, EmptyModelFailsValidation) {
  ExecutionModel m;
  EXPECT_THROW(m.validate(), CheckError);
}

}  // namespace
}  // namespace g10::core
