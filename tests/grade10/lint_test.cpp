// Lint subsystem tests: every rule id fires on its bad-input fixture, the
// shipped example models and a real engine run lint clean, the emitters
// render what the report holds, and the rule catalog stays consistent.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/lint/model_lint.hpp"
#include "grade10/lint/preflight.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/models/dataflow_model.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "trace/g10t_io.hpp"
#include "trace/log_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(G10_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return std::move(buffer).str();
}

// ---------------------------------------------------------------------------
// Report mechanics and emitters.

TEST(LintReportTest, CountsAndMerge) {
  LintReport a;
  a.add("model-empty", Severity::kError, {"m.g10", 1, ""}, "no phases");
  LintReport b;
  b.add("model-rule-shadowed", Severity::kWarning, {"m.g10", 2, "A/cpu"},
        "shadowed");
  a.merge(std::move(b));
  EXPECT_EQ(a.findings().size(), 2u);
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(a.clean());
  EXPECT_TRUE(a.has_rule("model-empty"));
  EXPECT_FALSE(a.has_rule("model-syntax"));
  const auto ids = a.rule_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "model-empty");

  LintReport clean;
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(clean.clean());
}

TEST(LintReportTest, TextEmitterFormatsFileLineRuleAndContext) {
  LintReport report;
  report.add("model-order-cycle", Severity::kError, {"m.g10", 7, "A, B"},
             "cycle detected");
  std::ostringstream os;
  render_text(os, report);
  EXPECT_EQ(os.str(),
            "m.g10:7: error: [model-order-cycle] cycle detected  (A, B)\n"
            "1 error(s), 0 warning(s)\n");
}

TEST(LintReportTest, JsonEmitterEscapesAndCounts) {
  LintReport report;
  report.add("trace-syntax", Severity::kError, {"run.log", 3, "a\tb\"c"},
             "bad \"line\"");
  std::ostringstream os;
  render_json(os, report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rule_id\":\"trace-syntax\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  EXPECT_NE(json.find("a\\tb\\\"c"), std::string::npos);
  EXPECT_NE(json.find("bad \\\"line\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":0"), std::string::npos);
}

TEST(RuleCatalogTest, SortedUniqueAndLookupConsistent) {
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  EXPECT_TRUE(std::is_sorted(
      catalog.begin(), catalog.end(),
      [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; }));
  for (const RuleInfo& rule : catalog) {
    const RuleInfo* found = find_rule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found->id, rule.id);
    EXPECT_FALSE(found->summary.empty());
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

// ---------------------------------------------------------------------------
// Bad-input fixtures: each file is named after the rule it must trigger.

struct FixtureCase {
  const char* file;     ///< fixture name under tests/grade10/lint/
  const char* rule_id;  ///< rule that must fire
  bool is_error;        ///< false: warning-only fixture, report stays ok()
};

void PrintTo(const FixtureCase& c, std::ostream* os) { *os << c.file; }

class ModelFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(ModelFixtureTest, TriggersItsRule) {
  const FixtureCase& c = GetParam();
  const LintReport report =
      lint_model_text(slurp(fixture_path(c.file)), c.file);
  EXPECT_TRUE(report.has_rule(c.rule_id))
      << "expected " << c.rule_id << ", got: " << [&] {
           std::ostringstream os;
           render_text(os, report);
           return os.str();
         }();
  EXPECT_EQ(report.ok(), !c.is_error);
  EXPECT_FALSE(report.clean());
  // Every finding uses a cataloged rule id.
  for (const LintFinding& finding : report.findings()) {
    EXPECT_NE(find_rule(finding.rule_id), nullptr) << finding.rule_id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelRules, ModelFixtureTest,
    ::testing::Values(
        FixtureCase{"model-syntax.g10", "model-syntax", true},
        FixtureCase{"model-empty.g10", "model-empty", true},
        FixtureCase{"model-multiple-roots.g10", "model-multiple-roots", true},
        FixtureCase{"model-duplicate-phase.g10", "model-duplicate-phase",
                    true},
        FixtureCase{"model-duplicate-resource.g10",
                    "model-duplicate-resource", true},
        FixtureCase{"model-unknown-parent.g10", "model-unknown-parent", true},
        FixtureCase{"model-unreachable-phase.g10", "model-unreachable-phase",
                    true},
        FixtureCase{"model-order-unknown-phase.g10",
                    "model-order-unknown-phase", true},
        FixtureCase{"model-order-not-siblings.g10",
                    "model-order-not-siblings", true},
        FixtureCase{"model-order-cycle.g10", "model-order-cycle", true},
        FixtureCase{"model-rule-unknown-phase.g10", "model-rule-unknown-phase",
                    true},
        FixtureCase{"model-rule-unknown-resource.g10",
                    "model-rule-unknown-resource", true},
        FixtureCase{"model-rule-conflict.g10", "model-rule-conflict", true},
        FixtureCase{"model-rule-shadowed.g10", "model-rule-shadowed", false},
        FixtureCase{"model-rule-blocking-resource.g10",
                    "model-rule-blocking-resource", false},
        FixtureCase{"model-rule-interior-phase.g10",
                    "model-rule-interior-phase", false},
        FixtureCase{"model-exact-exceeds-capacity.g10",
                    "model-exact-exceeds-capacity", false}));

class TraceFixtureTest : public ::testing::TestWithParam<FixtureCase> {
 protected:
  static core::ModelDescription load_model() {
    std::istringstream is(slurp(fixture_path("trace-model.g10")));
    core::ModelParseResult result = core::parse_model(is);
    EXPECT_TRUE(result.ok());
    return std::move(result.model);
  }
};

TEST_P(TraceFixtureTest, TriggersItsRule) {
  const FixtureCase& c = GetParam();
  const core::ModelDescription model = load_model();
  trace::ParseOptions options;
  options.recover = true;
  const trace::ParseResult parsed =
      trace::read_log_file(fixture_path(c.file), options);
  LintReport report = lint_parse_errors(parsed, c.file);
  report.merge(lint_trace(model, parsed.log, {}, c.file));
  EXPECT_TRUE(report.has_rule(c.rule_id))
      << "expected " << c.rule_id << ", got: " << [&] {
           std::ostringstream os;
           render_text(os, report);
           return os.str();
         }();
  EXPECT_EQ(report.ok(), !c.is_error);
  for (const LintFinding& finding : report.findings()) {
    EXPECT_NE(find_rule(finding.rule_id), nullptr) << finding.rule_id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTraceRules, TraceFixtureTest,
    ::testing::Values(
        FixtureCase{"trace-syntax.log", "trace-syntax", true},
        FixtureCase{"trace-unbalanced-begin.log", "trace-unbalanced-begin",
                    true},
        FixtureCase{"trace-unbalanced-end.log", "trace-unbalanced-end", true},
        FixtureCase{"trace-duplicate-begin.log", "trace-duplicate-begin",
                    true},
        FixtureCase{"trace-duplicate-end.log", "trace-duplicate-end", true},
        FixtureCase{"trace-nonmonotonic-time.log", "trace-nonmonotonic-time",
                    true},
        FixtureCase{"trace-missing-parent.log", "trace-missing-parent", true},
        FixtureCase{"trace-child-escapes-parent.log",
                    "trace-child-escapes-parent", true},
        FixtureCase{"trace-overlapping-siblings.log",
                    "trace-overlapping-siblings", true},
        FixtureCase{"trace-unknown-phase-type.log", "trace-unknown-phase-type",
                    true},
        FixtureCase{"trace-hierarchy-mismatch.log", "trace-hierarchy-mismatch",
                    true},
        FixtureCase{"trace-machine-mismatch.log", "trace-machine-mismatch",
                    false},
        FixtureCase{"trace-blocking-unknown-phase.log",
                    "trace-blocking-unknown-phase", true},
        FixtureCase{"trace-blocking-outside-phase.log",
                    "trace-blocking-outside-phase", true},
        FixtureCase{"trace-blocking-unknown-resource.log",
                    "trace-blocking-unknown-resource", true},
        FixtureCase{"trace-blocking-consumable-resource.log",
                    "trace-blocking-consumable-resource", false},
        FixtureCase{"trace-fault-blocking-without-spec.log",
                    "trace-fault-blocking-without-spec", false},
        FixtureCase{"trace-orphan-machine.log", "trace-orphan-machine",
                    false},
        FixtureCase{"trace-sample-nonmonotonic.log",
                    "trace-sample-nonmonotonic", true},
        FixtureCase{"trace-sample-negative.log", "trace-sample-negative",
                    true},
        FixtureCase{"trace-sample-over-capacity.log",
                    "trace-sample-over-capacity", false},
        FixtureCase{"trace-sample-unknown-resource.log",
                    "trace-sample-unknown-resource", true},
        FixtureCase{"trace-sample-blocking-resource.log",
                    "trace-sample-blocking-resource", true},
        FixtureCase{"trace-sample-gap.log", "trace-sample-gap", false}));

// The fault-provenance rule is silenced by a META faults record: the same
// trace as the fixture, plus provenance, lints clean.
TEST(TraceLintTest, FaultBlockingWithSpecIsClean) {
  std::istringstream is(slurp(fixture_path("trace-model.g10")));
  core::ModelParseResult model = core::parse_model(is);
  ASSERT_TRUE(model.ok());
  const trace::ParseResult parsed = trace::parse_log_text(
      "META\tfaults\tcrash:w1@40%\n"
      "PHASE\tB\tJob.0\t0\t-1\n"
      "PHASE\tE\tJob.0\t100\t-1\n"
      "BLOCK\tRetry\tJob.0\t10\t20\t-1\n");
  ASSERT_TRUE(parsed.ok());
  const LintReport report = lint_trace(model.model, parsed.log, {}, "<mem>");
  EXPECT_FALSE(report.has_rule("trace-fault-blocking-without-spec"));
  EXPECT_TRUE(report.clean());
}

// ---------------------------------------------------------------------------
// Clean corpus: the shipped example models and a real engine run must not
// trigger anything.

TEST(CleanCorpusTest, ShippedExampleModelsLintClean) {
  for (const char* name : {"pregel", "gas", "dataflow"}) {
    const std::string path =
        std::string(G10_EXAMPLE_MODEL_DIR) + "/" + name + ".g10";
    const LintReport report = lint_model_text(slurp(path), path);
    std::ostringstream os;
    render_text(os, report);
    EXPECT_TRUE(report.clean()) << os.str();
  }
}

TEST(CleanCorpusTest, ShippedExampleModelsMatchBuiltinModels) {
  const auto serialized = [](const core::FrameworkModel& m) {
    std::ostringstream os;
    core::write_model(os, m.execution, m.resources, m.tuned_rules);
    return os.str();
  };
  const std::string dir(G10_EXAMPLE_MODEL_DIR);
  EXPECT_EQ(slurp(dir + "/pregel.g10"),
            serialized(core::make_pregel_model({})));
  EXPECT_EQ(slurp(dir + "/gas.g10"), serialized(core::make_gas_model({})));
  EXPECT_EQ(slurp(dir + "/dataflow.g10"),
            serialized(core::make_dataflow_model({})));
}

TEST(CleanCorpusTest, EngineRunLintsClean) {
  graph::DatagenParams params;
  params.vertices = 1024;
  params.mean_degree = 10;
  params.seed = 5;
  const auto graph = generate_datagen_like(params);
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 2;
  cfg.cluster.machine.cores = 4;
  cfg.gc.young_gen_bytes = 4e5;  // force GC pauses -> blocking events
  const auto artifacts =
      engine::PregelEngine(cfg).run(graph, algorithms::Cdlp(4));
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 50 * kMillisecond, artifacts.makespan);

  core::PregelModelParams model_params;
  model_params.cores = cfg.cluster.machine.cores;
  model_params.threads = cfg.effective_threads();
  model_params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const core::FrameworkModel framework = core::make_pregel_model(model_params);
  core::ModelDescription model;
  model.execution = framework.execution;
  model.resources = framework.resources;
  model.rules = framework.tuned_rules;

  std::ostringstream log_stream;
  trace::write_log(log_stream, artifacts.phase_events,
                   artifacts.blocking_events, samples);
  const trace::ParseResult parsed = trace::parse_log_text(log_stream.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error->message;

  // Full preflight path: model lint + trace lint, as g10_analyze runs it.
  std::ostringstream model_stream;
  core::write_model(model_stream, model.execution, model.resources,
                    model.rules);
  const LintReport report = preflight(model_stream.str(), "<model>", model,
                                      parsed, "<run>");
  std::ostringstream os;
  render_text(os, report);
  EXPECT_TRUE(report.clean()) << os.str();
}

// ---------------------------------------------------------------------------
// Binary traces lint through the same preflight; a corrupt `.g10t` block
// surfaces as its own rule so the finding names the damaged block, not a
// phantom "syntax error" in a file with no lines.

TEST(BinaryTraceLintTest, CorruptBlockYieldsItsOwnFinding) {
  const std::string model_text = slurp(fixture_path("trace-model.g10"));
  std::istringstream model_stream(model_text);
  core::ModelParseResult model = core::parse_model(model_stream);
  ASSERT_TRUE(model.ok());

  trace::ParsedLog log;
  log.phase_events.push_back({trace::PhaseEventRecord::Kind::Begin,
                              trace::PhasePath{}.child("Job", 0), 0,
                              trace::kGlobalMachine});
  log.phase_events.push_back({trace::PhaseEventRecord::Kind::End,
                              trace::PhasePath{}.child("Job", 0), 1000,
                              trace::kGlobalMachine});
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("g10_lint_corrupt_" + std::to_string(::getpid()) + ".g10t"))
          .string();
  std::string error;
  ASSERT_TRUE(trace::write_g10t_file(path, log, {}, &error)) << error;

  // Flip one payload byte; header and index stay valid.
  std::string bytes = slurp(path);
  const trace::G10tStructureParse structure =
      trace::parse_g10t_structure(bytes);
  ASSERT_TRUE(structure.ok());
  ASSERT_EQ(structure.structure.index.size(), 1u);
  bytes[structure.structure.index[0].offset] ^= 0x11;
  std::ofstream(path, std::ios::binary) << bytes;

  trace::TraceReadOptions options;
  options.recover = true;
  trace::TraceReader::OpenResult opened = trace::TraceReader::open(path,
                                                                   options);
  ASSERT_TRUE(opened.ok()) << *opened.error;
  ASSERT_TRUE(opened.reader->is_binary());
  const trace::ParseResult damaged = opened.reader->read();
  EXPECT_EQ(damaged.error_count, 1u);

  const LintReport report =
      preflight(model_text, "trace-model.g10", model.model, damaged, path,
                {}, /*binary_trace=*/true);
  EXPECT_TRUE(report.has_rule("trace-binary-corrupt-block"));
  EXPECT_FALSE(report.ok());
  // The finding's location is the 1-based block ordinal, not a text line.
  bool found = false;
  for (const LintFinding& finding : report.findings()) {
    if (finding.rule_id != "trace-binary-corrupt-block") continue;
    found = true;
    EXPECT_EQ(finding.location.line, 1u);
  }
  EXPECT_TRUE(found);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// lint_model over an in-memory description (the serialize-then-lint path).

TEST(ModelLintTest, InMemoryModelRoundTrips) {
  const core::FrameworkModel framework = core::make_pregel_model({});
  core::ModelDescription model;
  model.execution = framework.execution;
  model.resources = framework.resources;
  model.rules = framework.tuned_rules;
  const LintReport report = lint_model(model);
  std::ostringstream os;
  render_text(os, report);
  EXPECT_TRUE(report.clean()) << os.str();
}

}  // namespace
}  // namespace g10::lint
