#include "grade10/issues/replay_simulator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;

TEST(ReplaySimulatorTest, SequentialChainSumsDurations) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  const PhaseTypeId b = m.add_child(job, "B");
  m.add_order(a, b);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/A.0", 0, 30);
  add_phase(events, "Job.0/B.0", 40, 100);  // recorded gap of 10
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  // No delays between phases: 30 + 60 = 90 (the gap disappears).
  EXPECT_EQ(sim.baseline_makespan(), 90);
}

TEST(ReplaySimulatorTest, ConcurrentSiblingsTakeMax) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  m.add_child(job, "A");
  m.add_child(job, "B");
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 70);
  add_phase(events, "Job.0/A.0", 0, 30);
  add_phase(events, "Job.0/B.0", 0, 70);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  EXPECT_EQ(sim.baseline_makespan(), 70);
}

TEST(ReplaySimulatorTest, ParentTailPreserved) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  m.add_child(job, "A");
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);     // 20 of own work after A ends
  add_phase(events, "Job.0/A.0", 0, 80);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  EXPECT_EQ(sim.baseline_makespan(), 100);
}

TEST(ReplaySimulatorTest, RepeatedTypeRunsSequentially) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  m.add_child(job, "Step", /*repeated=*/true);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 30);
  add_phase(events, "Job.0/Step.1", 30, 70);
  add_phase(events, "Job.0/Step.2", 70, 100);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  EXPECT_EQ(sim.baseline_makespan(), 100);

  // Shrinking step 1 shrinks the chain.
  auto durations = sim.recorded_durations();
  durations[static_cast<std::size_t>(trace.find("Job.0/Step.1"))] = 10;
  EXPECT_EQ(sim.simulate(durations).makespan, 70);
}

TEST(ReplaySimulatorTest, IndexMatchedPrecedence) {
  // Prepare.w precedes Compute.w per worker, not across workers.
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId prep = m.add_child(job, "Prepare");
  const PhaseTypeId compute = m.add_child(job, "Compute");
  m.add_order(prep, compute);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 150);
  add_phase(events, "Job.0/Prepare.0", 0, 10, 0);
  add_phase(events, "Job.0/Prepare.1", 0, 50, 1);
  add_phase(events, "Job.0/Compute.0", 10, 110, 0);
  add_phase(events, "Job.0/Compute.1", 50, 150, 1);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  const auto schedule = sim.simulate(sim.recorded_durations());
  // Compute.0 starts right after Prepare.0 (10), not after Prepare.1 (50).
  EXPECT_EQ(schedule.start[static_cast<std::size_t>(
                trace.find("Job.0/Compute.0"))],
            10);
  EXPECT_EQ(schedule.start[static_cast<std::size_t>(
                trace.find("Job.0/Compute.1"))],
            50);
  EXPECT_EQ(schedule.makespan, 150);
}

TEST(ReplaySimulatorTest, WaitTypeHasZeroDuration) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId work = m.add_child(job, "Work");
  const PhaseTypeId barrier = m.add_child(job, "Barrier");
  m.add_order(work, barrier);
  m.set_wait(barrier);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Work.0", 0, 40);
  add_phase(events, "Job.0/Barrier.0", 40, 100);  // 60 of recorded waiting
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  // The wait is slack: replay collapses it.
  EXPECT_EQ(sim.baseline_makespan(), 40);
}

TEST(ReplaySimulatorTest, ConcurrencyLimitQueuesInstances) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId task = m.add_child(job, "Task");
  m.set_concurrency_limit(task, 2);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  for (int i = 0; i < 4; ++i) {
    add_phase(events, "Job.0/Task." + std::to_string(i), 0, 100);
  }
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  std::vector<DurationNs> durations(trace.instances().size(), 0);
  for (const InstanceId leaf : trace.leaves()) {
    durations[static_cast<std::size_t>(leaf)] = 10;
  }
  // Four 10-unit tasks on two slots: 20.
  EXPECT_EQ(sim.simulate(durations).makespan, 20);
}

TEST(ReplaySimulatorTest, FallbackDependsOnAllPredecessorInstances) {
  // A has indices {0,1}; B has index 7 with no matching A.7: B waits for
  // every A.
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  const PhaseTypeId b = m.add_child(job, "B");
  m.add_order(a, b);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/A.0", 0, 30);
  add_phase(events, "Job.0/A.1", 0, 50);
  add_phase(events, "Job.0/B.7", 50, 80);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  const auto schedule = sim.simulate(sim.recorded_durations());
  EXPECT_EQ(
      schedule.start[static_cast<std::size_t>(trace.find("Job.0/B.7"))], 50);
}

TEST(ReplaySimulatorTest, CriticalPathFollowsChain) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId a = m.add_child(job, "A");
  const PhaseTypeId b = m.add_child(job, "B");
  m.add_order(a, b);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 90);
  add_phase(events, "Job.0/A.0", 0, 30);
  add_phase(events, "Job.0/B.0", 30, 90);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  const auto schedule = sim.simulate(sim.recorded_durations());
  const auto path = sim.critical_leaves(schedule);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(trace.instance(path[0]).path, "Job.0/A.0");
  EXPECT_EQ(trace.instance(path[1]).path, "Job.0/B.0");
}

TEST(ReplaySimulatorTest, CriticalPathPicksLongestParallelBranch) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  m.add_child(job, "A");
  m.add_child(job, "B");
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 70);
  add_phase(events, "Job.0/A.0", 0, 30);
  add_phase(events, "Job.0/B.0", 0, 70);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  const auto schedule = sim.simulate(sim.recorded_durations());
  const auto path = sim.critical_leaves(schedule);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(trace.instance(path[0]).path, "Job.0/B.0");
}

TEST(ReplaySimulatorTest, CriticalPathThroughRepeatedSteps) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId step = m.add_child(job, "Step", true);
  m.add_child(step, "Work");
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 60);
  add_phase(events, "Job.0/Step.0", 0, 20);
  add_phase(events, "Job.0/Step.0/Work.0", 0, 10, 0);
  add_phase(events, "Job.0/Step.0/Work.1", 0, 20, 1);
  add_phase(events, "Job.0/Step.1", 20, 60);
  add_phase(events, "Job.0/Step.1/Work.0", 20, 60, 0);
  add_phase(events, "Job.0/Step.1/Work.1", 20, 30, 1);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  const auto schedule = sim.simulate(sim.recorded_durations());
  const auto path = sim.critical_leaves(schedule);
  // Longest worker of each step: Work.1 of Step.0, then Work.0 of Step.1.
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(trace.instance(path[0]).path, "Job.0/Step.0/Work.1");
  EXPECT_EQ(trace.instance(path[1]).path, "Job.0/Step.1/Work.0");
  // Path lengths sum to the makespan (no tails in this model).
  DurationNs total = 0;
  for (const InstanceId leaf : path) {
    total += schedule.end[static_cast<std::size_t>(leaf)] -
             schedule.start[static_cast<std::size_t>(leaf)];
  }
  EXPECT_EQ(total, schedule.makespan);
}

TEST(ReplaySimulatorTest, NestedHierarchy) {
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId phase = m.add_child(job, "Phase", true);
  m.add_child(phase, "Worker");
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 110);
  add_phase(events, "Job.0/Phase.0", 0, 50);
  add_phase(events, "Job.0/Phase.0/Worker.0", 0, 30, 0);
  add_phase(events, "Job.0/Phase.0/Worker.1", 0, 50, 1);
  add_phase(events, "Job.0/Phase.1", 50, 110);
  add_phase(events, "Job.0/Phase.1/Worker.0", 50, 110, 0);
  const auto trace = ExecutionTrace::build(m, resources, events, {});
  const ReplaySimulator sim(m, trace);
  // Phase.0 = max(30, 50); Phase.1 = 60; sequential = 110.
  EXPECT_EQ(sim.baseline_makespan(), 110);

  // Balance Phase.0's workers to 40 each: makespan 100.
  auto durations = sim.recorded_durations();
  durations[static_cast<std::size_t>(
      trace.find("Job.0/Phase.0/Worker.0"))] = 40;
  durations[static_cast<std::size_t>(
      trace.find("Job.0/Phase.0/Worker.1"))] = 40;
  EXPECT_EQ(sim.simulate(durations).makespan, 100);
}

// Property: reducing any leaf duration can never increase the replayed
// makespan (the schedule is a monotone function of the durations).
class ReplayMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplayMonotonicityTest, ShrinkingLeavesNeverGrowsMakespan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  // Random two-level workload: sequential steps of concurrent workers.
  ExecutionModel m;
  const PhaseTypeId job = m.add_root("Job");
  const PhaseTypeId step = m.add_child(job, "Step", /*repeated=*/true);
  const PhaseTypeId work = m.add_child(step, "Work");
  m.set_concurrency_limit(work, 3);
  ResourceModel resources;
  std::vector<trace::PhaseEventRecord> events;
  const int steps = static_cast<int>(rng.next_int(2, 5));
  TimeNs t = 0;
  std::vector<TimeNs> step_ends;
  for (int s = 0; s < steps; ++s) {
    const int workers = static_cast<int>(rng.next_int(1, 6));
    TimeNs latest = t;
    std::vector<std::pair<std::string, TimeNs>> children;
    for (int w = 0; w < workers; ++w) {
      const TimeNs end = t + rng.next_int(5, 60);
      children.emplace_back("Job.0/Step." + std::to_string(s) + "/Work." +
                                std::to_string(w),
                            end);
      latest = std::max(latest, end);
    }
    add_phase(events, "Job.0/Step." + std::to_string(s), t, latest);
    for (const auto& [path, end] : children) {
      add_phase(events, path, t, end, 0);
    }
    t = latest;
  }
  // Root must be added before children chronologically? Build() is order-
  // agnostic for ends but parents must exist; prepend Job.
  std::vector<trace::PhaseEventRecord> all;
  add_phase(all, "Job.0", 0, t);
  all.insert(all.end(), events.begin(), events.end());
  const auto trace = ExecutionTrace::build(m, resources, all, {});
  const ReplaySimulator sim(m, trace);
  auto durations = sim.recorded_durations();
  TimeNs previous = sim.simulate(durations).makespan;
  for (int round = 0; round < 20; ++round) {
    // Shrink one random leaf.
    const auto& leaves = trace.leaves();
    const InstanceId leaf = leaves[rng.next_below(leaves.size())];
    auto& d = durations[static_cast<std::size_t>(leaf)];
    d = static_cast<DurationNs>(static_cast<double>(d) *
                                rng.next_double(0.3, 1.0));
    const TimeNs makespan = sim.simulate(durations).makespan;
    ASSERT_LE(makespan, previous) << "round " << round;
    previous = makespan;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayMonotonicityTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace g10::core
