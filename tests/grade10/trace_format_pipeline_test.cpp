// End-to-end trace-format identity: for each bundled engine model, the
// golden trace characterized from its text log and from its `.g10t`
// conversion must produce bit-identical CharacterizationResults — compared
// through the same per-phase-path FNV digests `--det-check` uses, at
// several thread counts, cold and warm. This is the acceptance gate for
// the binary format: not "close", the same bits.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "grade10/det_fold.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/pipeline.hpp"
#include "trace/g10t_io.hpp"
#include "trace/trace_reader.hpp"

namespace g10::core {
namespace {

struct Fixture {
  std::string model;  ///< examples/models file stem
  std::string log;    ///< tests/engine/golden file name
};

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture> all = {
      {"pregel", "pregel_pagerank_d512_s99.log"},
      {"gas", "gas_pagerank_d512_s99.log"},
      {"dataflow", "dataflow_3stage_s99.log"},
  };
  return all;
}

std::filesystem::path test_root() {
  static const std::filesystem::path root = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("g10_trace_format_pipeline_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
  }();
  return root;
}

ModelDescription load_model(const std::string& stem) {
  std::ifstream file(std::string(G10_EXAMPLE_MODEL_DIR) + "/" + stem +
                     ".g10");
  EXPECT_TRUE(file.is_open()) << stem;
  ModelParseResult parsed = parse_model(file);
  EXPECT_TRUE(parsed.ok()) << stem;
  return parsed.model;
}

std::string text_path(const Fixture& fixture) {
  return std::string(G10_GOLDEN_TRACE_DIR) + "/" + fixture.log;
}

std::string binary_path(const Fixture& fixture) {
  const std::string out =
      (test_root() / (fixture.log + ".g10t")).string();
  if (!std::filesystem::exists(out)) {
    const trace::ParseResult parsed =
        trace::read_log_file(text_path(fixture), {});
    EXPECT_TRUE(parsed.ok()) << fixture.log;
    trace::G10tWriteOptions options;
    options.block_records = 128;  // several blocks, so caching matters
    std::string error;
    EXPECT_TRUE(trace::write_g10t_file(out, parsed.log, options, &error))
        << error;
  }
  return out;
}

DetSummary digest(const ModelDescription& model, const trace::ParsedLog& log,
                  int threads) {
  CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.rules;
  input.phase_events = log.phase_events;
  input.blocking_events = log.blocking_events;
  input.samples = log.samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  input.config.threads = threads;
  return fold_characterization(characterize(input), model.resources);
}

TEST(TraceFormatPipelineTest, CharacterizationIsBitIdenticalAcrossFormats) {
  for (const Fixture& fixture : fixtures()) {
    const ModelDescription model = load_model(fixture.model);
    const trace::ParseResult text = trace::read_trace_file(text_path(fixture));
    ASSERT_TRUE(text.ok()) << fixture.log;
    const trace::ParseResult binary =
        trace::read_trace_file(binary_path(fixture));
    ASSERT_TRUE(binary.ok()) << fixture.log;

    for (const int threads : {1, 2, 8}) {
      const DetSummary from_text = digest(model, text.log, threads);
      const DetSummary from_binary = digest(model, binary.log, threads);
      const auto divergence = first_divergence(from_text, from_binary);
      EXPECT_FALSE(divergence.has_value())
          << fixture.log << " at " << threads << " thread(s) diverged at '"
          << divergence->path << "': " << divergence->detail;
    }
  }
}

TEST(TraceFormatPipelineTest, WarmCachedReadCharacterizesIdentically) {
  const Fixture& fixture = fixtures()[0];
  const ModelDescription model = load_model(fixture.model);
  trace::TraceReader::OpenResult opened =
      trace::TraceReader::open(binary_path(fixture), {});
  ASSERT_TRUE(opened.ok()) << *opened.error;
  const trace::ParseResult cold = opened.reader->read();
  const trace::ParseResult warm = opened.reader->read();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  const auto divergence = first_divergence(digest(model, cold.log, 2),
                                           digest(model, warm.log, 2));
  EXPECT_FALSE(divergence.has_value())
      << "warm re-read diverged at '" << divergence->path << "'";
}

TEST(TraceFormatPipelineTest, TinyCacheBudgetStillBitIdentical) {
  // Forced-eviction regime: a budget far below the trace's decoded size
  // must change performance only, never results.
  const Fixture& fixture = fixtures()[1];
  const ModelDescription model = load_model(fixture.model);
  trace::TraceReadOptions tiny;
  tiny.cache_budget_bytes = 4 << 10;
  const trace::ParseResult squeezed =
      trace::read_trace_file(binary_path(fixture), tiny);
  const trace::ParseResult roomy =
      trace::read_trace_file(binary_path(fixture));
  ASSERT_TRUE(squeezed.ok());
  ASSERT_TRUE(roomy.ok());
  const auto divergence = first_divergence(digest(model, squeezed.log, 2),
                                           digest(model, roomy.log, 2));
  EXPECT_FALSE(divergence.has_value());
}

}  // namespace
}  // namespace g10::core
