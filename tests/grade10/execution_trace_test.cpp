#include "grade10/trace/execution_trace.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_block;

struct Models {
  ExecutionModel execution;
  ResourceModel resources;
};

Models simple_models() {
  Models m;
  const PhaseTypeId job = m.execution.add_root("Job");
  const PhaseTypeId step = m.execution.add_child(job, "Step", true);
  m.execution.add_child(step, "Work");
  m.resources.add_consumable("cpu", 4.0);
  m.resources.add_blocking("GC");
  return m;
}

TEST(ExecutionTraceTest, BuildsInstanceTree) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 50);
  add_phase(events, "Job.0/Step.0/Work.0", 0, 40, 1);
  add_phase(events, "Job.0/Step.1", 50, 100);
  const auto trace =
      ExecutionTrace::build(m.execution, m.resources, events, {});

  EXPECT_EQ(trace.instances().size(), 4u);
  EXPECT_EQ(trace.leaves().size(), 2u);  // Work.0 and Step.1 (childless)
  const InstanceId work = trace.find("Job.0/Step.0/Work.0");
  ASSERT_NE(work, kNoInstance);
  const PhaseInstance& instance = trace.instance(work);
  EXPECT_EQ(instance.begin, 0);
  EXPECT_EQ(instance.end, 40);
  EXPECT_EQ(instance.machine, 1);
  EXPECT_EQ(instance.index, 0);
  EXPECT_EQ(trace.instance(instance.parent).path, "Job.0/Step.0");
  EXPECT_EQ(trace.end_time(), 100);
  ASSERT_EQ(trace.machines().size(), 1u);
  EXPECT_EQ(trace.machines()[0], 1);
}

TEST(ExecutionTraceTest, RejectsUnknownType) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/Bogus.0", 0, 5);
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
  // ...unless unknown phases are explicitly ignored (untuned models).
  ExecutionTrace::Options options;
  options.ignore_unknown_phases = true;
  const auto trace =
      ExecutionTrace::build(m.execution, m.resources, events, {}, options);
  EXPECT_EQ(trace.instances().size(), 1u);
}

TEST(ExecutionTraceTest, RejectsUnbalancedEvents) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  events.push_back({trace::PhaseEventRecord::Kind::Begin,
                    testing::make_path("Job.0"), 0, -1});
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
}

TEST(ExecutionTraceTest, RejectsChildEscapingParent) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 120);  // ends after parent
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
}

TEST(ExecutionTraceTest, RejectsHierarchyViolation) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  // Work directly under Job violates the model (Work's parent is Step).
  add_phase(events, "Job.0/Work.0", 0, 10);
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
}

TEST(ExecutionTraceTest, MissingParentInstanceRejected) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Work.0", 0, 10);  // Step.0 never logged
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
}

TEST(ExecutionTraceTest, AttachesAndMergesBlockingEvents) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Work.0", 0, 90, 0);
  std::vector<trace::BlockingEventRecord> blocks;
  blocks.push_back(make_block("GC", "Job.0/Step.0/Work.0", 10, 20, 0));
  blocks.push_back(make_block("GC", "Job.0/Step.0/Work.0", 15, 30, 0));
  blocks.push_back(make_block("GC", "Job.0/Step.0/Work.0", 50, 60, 0));
  const auto trace =
      ExecutionTrace::build(m.execution, m.resources, events, blocks);
  const PhaseInstance& work =
      trace.instance(trace.find("Job.0/Step.0/Work.0"));
  ASSERT_EQ(work.blocked.size(), 2u);  // [10,30) merged, [50,60)
  EXPECT_EQ(work.blocked[0].begin, 10);
  EXPECT_EQ(work.blocked[0].end, 30);
  EXPECT_EQ(work.blocked_time(), 30);
  EXPECT_EQ(trace.blocking().size(), 3u);
}

TEST(ExecutionTraceTest, RejectsBlockingOnConsumableResource) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  std::vector<trace::BlockingEventRecord> blocks;
  blocks.push_back(make_block("cpu", "Job.0", 10, 20));
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, blocks),
               CheckError);
}

TEST(ExecutionTraceTest, UnknownBlockingResourceOptionallyIgnored) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  std::vector<trace::BlockingEventRecord> blocks;
  blocks.push_back(make_block("Mystery", "Job.0", 10, 20));
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, blocks),
               CheckError);
  ExecutionTrace::Options options;
  options.ignore_unknown_blocking = true;
  const auto trace = ExecutionTrace::build(m.execution, m.resources, events,
                                           blocks, options);
  EXPECT_TRUE(trace.blocking().empty());
}

TEST(ExecutionTraceLenientTest, SynthesizesEndForTruncatedPhases) {
  // A crashed worker's log just stops: Step.1 and its Work.0 have a BEGIN
  // but no END. Lenient mode closes them at the crash time (the latest
  // recorded time in the subtree) and flags them degraded.
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 50);
  events.push_back({trace::PhaseEventRecord::Kind::Begin,
                    testing::make_path("Job.0/Step.1"), 50, -1});
  events.push_back({trace::PhaseEventRecord::Kind::Begin,
                    testing::make_path("Job.0/Step.1/Work.0"), 50, 1});
  std::vector<trace::BlockingEventRecord> blocks;
  blocks.push_back(make_block("GC", "Job.0/Step.1/Work.0", 60, 80, 1));

  ExecutionTrace::Options options;
  options.lenient = true;
  const auto trace = ExecutionTrace::build(m.execution, m.resources, events,
                                           blocks, options);
  const PhaseInstance& work = trace.instance(trace.find("Job.0/Step.1/Work.0"));
  const PhaseInstance& step = trace.instance(trace.find("Job.0/Step.1"));
  // The blocking event pins the last sign of life at t=80.
  EXPECT_EQ(work.end, 80);
  EXPECT_TRUE(work.degraded);
  EXPECT_EQ(step.end, 80);
  EXPECT_TRUE(step.degraded);
  EXPECT_EQ(trace.degraded_count(), 2u);
  EXPECT_FALSE(trace.warnings().empty());
  // The blocking event itself still attaches.
  EXPECT_EQ(trace.blocking().size(), 1u);
}

TEST(ExecutionTraceLenientTest, SkipsDuplicateAndOrphanEvents) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 50);
  // Duplicate begin, duplicate end, end-without-begin.
  events.push_back({trace::PhaseEventRecord::Kind::Begin,
                    testing::make_path("Job.0/Step.0"), 60, -1});
  events.push_back({trace::PhaseEventRecord::Kind::End,
                    testing::make_path("Job.0/Step.0"), 70, -1});
  events.push_back({trace::PhaseEventRecord::Kind::End,
                    testing::make_path("Job.0/Step.7"), 70, -1});

  ExecutionTrace::Options options;
  options.lenient = true;
  const auto trace =
      ExecutionTrace::build(m.execution, m.resources, events, {}, options);
  EXPECT_EQ(trace.instances().size(), 2u);
  EXPECT_EQ(trace.instance(trace.find("Job.0/Step.0")).end, 50);
  EXPECT_EQ(trace.warnings().size(), 3u);
}

TEST(ExecutionTraceLenientTest, ClampsEscapingChildAndBlocking) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 120);  // ends after parent
  std::vector<trace::BlockingEventRecord> blocks;
  blocks.push_back(make_block("GC", "Job.0/Step.0", 90, 110, -1));

  ExecutionTrace::Options options;
  options.lenient = true;
  const auto trace = ExecutionTrace::build(m.execution, m.resources, events,
                                           blocks, options);
  const PhaseInstance& step = trace.instance(trace.find("Job.0/Step.0"));
  EXPECT_EQ(step.end, 100);  // clamped into Job.0
  EXPECT_TRUE(step.degraded);
  ASSERT_EQ(trace.blocking().size(), 1u);
  EXPECT_EQ(trace.blocking()[0].interval.end, 100);  // clamped too
}

TEST(ExecutionTraceLenientTest, ModelViolationsStayHardErrors) {
  // Lenient mode repairs damaged data, not a mismatched model.
  const Models m = simple_models();
  ExecutionTrace::Options options;
  options.lenient = true;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Work.0", 0, 10);  // Work under Job: wrong parent
  EXPECT_THROW(
      ExecutionTrace::build(m.execution, m.resources, events, {}, options),
      CheckError);
}

TEST(ExecutionTraceLenientTest, StrictModeStillThrowsOnTruncation) {
  const Models m = simple_models();
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  events.push_back({trace::PhaseEventRecord::Kind::Begin,
                    testing::make_path("Job.0/Step.0"), 10, -1});
  EXPECT_THROW(ExecutionTrace::build(m.execution, m.resources, events, {}),
               CheckError);
}

TEST(ActiveIntervalsTest, SubtractsAndMerges) {
  const auto active = active_intervals(0, 100, {{20, 40}, {30, 50}, {80, 90}});
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0], (Interval{0, 20}));
  EXPECT_EQ(active[1], (Interval{50, 80}));
  EXPECT_EQ(active[2], (Interval{90, 100}));
}

TEST(ActiveIntervalsTest, FullyBlockedIsEmpty) {
  EXPECT_TRUE(active_intervals(10, 20, {{0, 30}}).empty());
}

TEST(ActiveIntervalsTest, NoBlocksIsWholeInterval) {
  const auto active = active_intervals(5, 15, {});
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], (Interval{5, 15}));
}

}  // namespace
}  // namespace g10::core
