#include "grade10/report/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "grade10/report/timeline_export.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_sample;

AttributedResource make_resource(std::vector<double> usage, double capacity,
                                 trace::MachineId machine) {
  AttributedResource r;
  r.resource = 0;
  r.machine = machine;
  r.capacity = capacity;
  r.upsampled.usage = std::move(usage);
  r.unattributed.assign(r.upsampled.usage.size(), 0.0);
  r.slice_offsets.assign(r.upsampled.usage.size() + 1, 0);
  return r;
}

TEST(DiagnosticsTest, SmoothUsageHasBurstinessOne) {
  AttributedUsage usage;
  usage.resources.push_back(
      make_resource(std::vector<double>(20, 2.0), 4.0, 0));
  const auto diagnostics = compute_resource_diagnostics(usage);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NEAR(diagnostics[0].mean_utilization, 0.5, 1e-9);
  EXPECT_NEAR(diagnostics[0].burstiness, 1.0, 1e-9);
  EXPECT_NEAR(diagnostics[0].idle_fraction, 0.0, 1e-9);
}

TEST(DiagnosticsTest, SpikeUsageIsBursty) {
  std::vector<double> usage(20, 0.0);
  usage[3] = 4.0;
  usage[7] = 4.0;  // all mass in 2 of 20 slices = the busiest decile
  AttributedUsage attributed;
  attributed.resources.push_back(make_resource(usage, 4.0, 0));
  const auto diagnostics = compute_resource_diagnostics(attributed);
  EXPECT_NEAR(diagnostics[0].burstiness, 10.0, 1e-9);
  EXPECT_NEAR(diagnostics[0].idle_fraction, 18.0 / 20.0, 1e-9);
}

TEST(DiagnosticsTest, MachineSkewDetectsImbalance) {
  AttributedUsage usage;
  usage.resources.push_back(
      make_resource(std::vector<double>(10, 4.0), 4.0, 0));
  usage.resources.push_back(
      make_resource(std::vector<double>(10, 1.0), 4.0, 1));
  const auto skew = compute_machine_skew(usage);
  ASSERT_EQ(skew.size(), 1u);
  // Totals 40 and 10 -> mean 25, max/mean = 1.6.
  EXPECT_NEAR(skew[0].max_over_mean, 1.6, 1e-9);
  EXPECT_GT(skew[0].cov, 0.5);
}

TEST(DiagnosticsTest, SkewNeedsTwoMachines) {
  AttributedUsage usage;
  usage.resources.push_back(
      make_resource(std::vector<double>(10, 4.0), 4.0, 0));
  EXPECT_TRUE(compute_machine_skew(usage).empty());
}

TEST(DiagnosticsTest, RendersTables) {
  ResourceModel resources;
  resources.add_consumable("cpu", 4.0);
  AttributedUsage usage;
  usage.resources.push_back(
      make_resource(std::vector<double>(10, 2.0), 4.0, 0));
  usage.resources.push_back(
      make_resource(std::vector<double>(10, 3.0), 4.0, 1));
  std::ostringstream os;
  render_diagnostics(os, resources, compute_resource_diagnostics(usage),
                     compute_machine_skew(usage));
  EXPECT_NE(os.str().find("burstiness"), std::string::npos);
  EXPECT_NE(os.str().find("Cross-machine skew"), std::string::npos);
}

TEST(ChromeTraceTest, EmitsValidStructuredEvents) {
  ExecutionModel model;
  const PhaseTypeId job = model.add_root("Job");
  const PhaseTypeId work = model.add_child(job, "Work");
  (void)work;
  ResourceModel resources;
  resources.add_blocking("GC");
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100 * kMillisecond);
  add_phase(events, "Job.0/Work.0", 0, 60 * kMillisecond, 0);
  add_phase(events, "Job.0/Work.1", 0, 90 * kMillisecond, 0);
  std::vector<trace::BlockingEventRecord> blocks{
      testing::make_block("GC", "Job.0/Work.0", 10 * kMillisecond,
                          20 * kMillisecond, 0)};
  const auto trace = ExecutionTrace::build(model, resources, events, blocks);
  std::ostringstream os;
  write_chrome_trace(os, model, trace);
  const std::string out = os.str();
  // Structural sanity: JSON-ish wrapper, both event categories, lane split.
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"blocked\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"structure\""), std::string::npos);
  // Two overlapping leaves on machine 0 must land on different lanes.
  EXPECT_NE(out.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(out.find("\"tid\": 1"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

}  // namespace
}  // namespace g10::core
