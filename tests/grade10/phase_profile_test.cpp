#include "grade10/report/phase_profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_block;
using testing::make_sample;

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  PhaseTypeId job = kNoPhaseType;
  PhaseTypeId work = kNoPhaseType;
  ResourceId cpu = kNoResource;
  ResourceId gc = kNoResource;

  Fixture() {
    job = execution.add_root("Job");
    work = execution.add_child(job, "Work");
    cpu = resources.add_consumable("cpu", 4.0);
    gc = resources.add_blocking("GC");
    rules.set(work, cpu, AttributionRule::exact(1.0));
  }
};

TEST(PhaseProfileTest, AggregatesByType) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Work.0", 0, 60, 0);
  add_phase(events, "Job.0/Work.1", 0, 40, 0);
  std::vector<trace::BlockingEventRecord> blocks{
      make_block("GC", "Job.0/Work.0", 10, 20, 0)};
  const TimesliceGrid grid(10);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, blocks);
  const auto demand = estimate_demand(f.resources, f.rules, trace, grid);
  std::vector<trace::MonitoringSampleRecord> samples;
  for (TimeNs t = 20; t <= 100; t += 20) {
    samples.push_back(make_sample("cpu", 0, t, 2.0));
  }
  const auto monitored = ResourceTrace::build(f.resources, samples);
  const auto usage = attribute_usage(demand, monitored, grid);
  AnalysisConfig config;
  config.timeslice = 10;
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);

  const auto profile = build_phase_profile(trace, usage, bottlenecks, grid);
  const PhaseTypeStats* work_stats = nullptr;
  const PhaseTypeStats* job_stats = nullptr;
  for (const auto& stats : profile) {
    if (stats.type == f.work) work_stats = &stats;
    if (stats.type == f.job) job_stats = &stats;
  }
  ASSERT_NE(work_stats, nullptr);
  ASSERT_NE(job_stats, nullptr);
  EXPECT_EQ(work_stats->instances, 2u);
  EXPECT_EQ(work_stats->total_duration, 100);
  EXPECT_EQ(work_stats->max_duration, 60);
  EXPECT_EQ(work_stats->total_blocked, 10);
  EXPECT_EQ(job_stats->instances, 1u);
  // Profile is sorted by total duration, descending.
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i - 1].total_duration, profile[i].total_duration);
  }
  // Attributed CPU usage accrues only to the leaf type.
  EXPECT_GT(work_stats->usage.at(f.cpu), 0.0);
  EXPECT_TRUE(job_stats->usage.empty());
}

TEST(PhaseProfileTest, RendersTable) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 50);
  add_phase(events, "Job.0/Work.0", 0, 50, 0);
  const TimesliceGrid grid(10);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const auto usage = attribute_usage({}, ResourceTrace(), grid);
  AnalysisConfig config;
  config.timeslice = 10;
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);
  const auto profile = build_phase_profile(trace, usage, bottlenecks, grid);
  std::ostringstream os;
  render_phase_profile(os, f.execution, f.resources, profile);
  EXPECT_NE(os.str().find("Work"), std::string::npos);
  EXPECT_NE(os.str().find("cpu"), std::string::npos);
}

}  // namespace
}  // namespace g10::core
