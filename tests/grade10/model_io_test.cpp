#include "grade10/model/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"

namespace g10::core {
namespace {

ModelParseResult parse(const std::string& text) {
  std::istringstream is(text);
  return parse_model(is);
}

TEST(ModelIoTest, ParsesMinimalModel) {
  const auto result = parse(
      "# comment\n"
      "PHASE Job\n"
      "PHASE Work PARENT=Job\n"
      "RESOURCE cpu CONSUMABLE CAPACITY=8\n"
      "RULE Work cpu EXACT 1\n");
  ASSERT_TRUE(result.ok()) << result.error->message;
  const auto& m = result.model;
  EXPECT_EQ(m.execution.type_count(), 2u);
  EXPECT_EQ(m.execution.find("Work"),
            m.execution.type(m.execution.find("Job")).children[0]);
  EXPECT_DOUBLE_EQ(m.resources.resource(m.resources.find("cpu")).capacity,
                   8.0);
  EXPECT_TRUE(
      m.rules.get(m.execution.find("Work"), m.resources.find("cpu")).is_exact());
}

TEST(ModelIoTest, ParsesAttributes) {
  const auto result = parse(
      "PHASE Job\n"
      "PHASE Step PARENT=Job REPEATED\n"
      "PHASE Wait PARENT=Job WAIT\n"
      "PHASE Thread PARENT=Step LIMIT=16\n"
      "ORDER Step Wait\n"
      "RESOURCE lock BLOCKING GLOBAL\n"
      "DEFAULT NONE\n");
  ASSERT_TRUE(result.ok()) << result.error->message;
  const auto& m = result.model;
  EXPECT_TRUE(m.execution.type(m.execution.find("Step")).repeated);
  EXPECT_TRUE(m.execution.type(m.execution.find("Wait")).wait);
  EXPECT_EQ(m.execution.type(m.execution.find("Thread")).concurrency_limit,
            16);
  EXPECT_EQ(m.resources.resource(m.resources.find("lock")).scope,
            ResourceScope::kGlobal);
  EXPECT_TRUE(m.rules.default_rule().is_none());
  EXPECT_EQ(m.execution.type(m.execution.find("Step")).successors.size(), 1u);
}

TEST(ModelIoTest, RejectsMalformedInput) {
  const auto expect_error = [](const std::string& text,
                               std::size_t line_number) {
    const auto result = parse(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_EQ(result.error->line_number, line_number) << text;
  };
  expect_error("PHASE Job\nPHASE Orphan\n", 2);             // missing PARENT
  expect_error("PHASE Job\nPHASE A PARENT=Nope\n", 2);      // unknown parent
  expect_error("PHASE Job PARENT=Job\n", 1);                // root with parent
  expect_error("PHASE Job\nRESOURCE cpu CONSUMABLE\n", 2);  // no capacity
  expect_error("PHASE Job\nRULE Job cpu EXACT 1\n", 2);     // unknown resource
  expect_error("PHASE Job\nWHAT is this\n", 2);
  expect_error("", 0);  // no phases at all
  expect_error("PHASE Job\nPHASE A PARENT=Job LIMIT=x\n", 2);
  expect_error("PHASE Job\nDEFAULT EXACT 1\n", 2);          // exact default
}

TEST(ModelIoTest, DefaultAfterRulesPreservesThem) {
  const auto result = parse(
      "PHASE Job\n"
      "PHASE Work PARENT=Job\n"
      "RESOURCE cpu CONSUMABLE CAPACITY=4\n"
      "RULE Work cpu EXACT 2\n"
      "DEFAULT NONE\n");
  ASSERT_TRUE(result.ok()) << result.error->message;
  const auto& m = result.model;
  EXPECT_TRUE(m.rules.default_rule().is_none());
  const AttributionRule rule =
      m.rules.get(m.execution.find("Work"), m.resources.find("cpu"));
  EXPECT_TRUE(rule.is_exact());
  EXPECT_DOUBLE_EQ(rule.amount, 2.0);
}

TEST(ModelIoTest, ToleratesExtraWhitespace) {
  const auto result = parse(
      "PHASE   Job\n"
      "  PHASE Work   PARENT=Job  \n"
      "RESOURCE  cpu  CONSUMABLE  CAPACITY=4\n");
  ASSERT_TRUE(result.ok()) << result.error->message;
  EXPECT_EQ(result.model.execution.type_count(), 2u);
}

TEST(ModelIoTest, OrderMustConnectSiblings) {
  const auto result = parse(
      "PHASE Job\n"
      "PHASE A PARENT=Job\n"
      "PHASE B PARENT=A\n"
      "ORDER A B\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line_number, 4u);
}

TEST(ModelIoTest, DetectsOrderCycles) {
  const auto result = parse(
      "PHASE Job\n"
      "PHASE A PARENT=Job\n"
      "PHASE B PARENT=Job\n"
      "ORDER A B\n"
      "ORDER B A\n");
  ASSERT_FALSE(result.ok());  // caught by final validate()
}

class FrameworkRoundTripTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FrameworkRoundTripTest, WriteParseRoundTrip) {
  const FrameworkModel original =
      std::string(GetParam()) == "pregel"
          ? make_pregel_model({})
          : make_gas_model({});
  std::ostringstream os;
  write_model(os, original.execution, original.resources,
              original.tuned_rules);
  const auto result = parse(os.str());
  ASSERT_TRUE(result.ok()) << result.error->message << "\n" << os.str();
  const auto& parsed = result.model;

  ASSERT_EQ(parsed.execution.type_count(), original.execution.type_count());
  for (PhaseTypeId id = 0;
       id < static_cast<PhaseTypeId>(original.execution.type_count()); ++id) {
    const PhaseType& a = original.execution.type(id);
    const PhaseTypeId pid = parsed.execution.find(a.name);
    ASSERT_NE(pid, kNoPhaseType) << a.name;
    const PhaseType& b = parsed.execution.type(pid);
    EXPECT_EQ(a.repeated, b.repeated) << a.name;
    EXPECT_EQ(a.wait, b.wait) << a.name;
    EXPECT_EQ(a.concurrency_limit, b.concurrency_limit) << a.name;
    EXPECT_EQ(a.successors.size(), b.successors.size()) << a.name;
  }
  ASSERT_EQ(parsed.resources.resource_count(),
            original.resources.resource_count());
  for (ResourceId id = 0;
       id < static_cast<ResourceId>(original.resources.resource_count());
       ++id) {
    const Resource& a = original.resources.resource(id);
    const ResourceId pid = parsed.resources.find(a.name);
    ASSERT_NE(pid, kNoResource) << a.name;
    const Resource& b = parsed.resources.resource(pid);
    EXPECT_EQ(a.kind, b.kind) << a.name;
    EXPECT_EQ(a.scope, b.scope) << a.name;
    EXPECT_NEAR(a.capacity, b.capacity, 1e-6) << a.name;
  }
  // Every explicit rule survives (ids may differ; compare via names).
  EXPECT_EQ(parsed.rules.explicit_rule_count(),
            original.tuned_rules.explicit_rule_count());
  for (const auto& [key, rule] : original.tuned_rules.explicit_rules()) {
    const PhaseTypeId phase =
        parsed.execution.find(original.execution.type(key.first).name);
    const ResourceId resource =
        parsed.resources.find(original.resources.resource(key.second).name);
    const AttributionRule parsed_rule = parsed.rules.get(phase, resource);
    EXPECT_EQ(parsed_rule.kind, rule.kind);
    EXPECT_NEAR(parsed_rule.amount, rule.amount, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Frameworks, FrameworkRoundTripTest,
                         ::testing::Values("pregel", "gas"));

}  // namespace
}  // namespace g10::core
