#include "grade10/trace/resource_trace.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::make_sample;

ResourceModel simple_resources() {
  ResourceModel m;
  m.add_consumable("cpu", 4.0);
  m.add_consumable("network", 100.0);
  m.add_blocking("GC");
  return m;
}

TEST(ResourceTraceTest, GroupsByResourceAndMachine) {
  const ResourceModel m = simple_resources();
  std::vector<trace::MonitoringSampleRecord> samples{
      make_sample("cpu", 0, 100, 1.0),
      make_sample("cpu", 0, 200, 2.0),
      make_sample("cpu", 1, 100, 3.0),
      make_sample("network", 0, 100, 50.0)};
  const auto trace = ResourceTrace::build(m, samples);
  EXPECT_EQ(trace.series().size(), 3u);
  const ResourceSeries* cpu0 = trace.find(m.find("cpu"), 0);
  ASSERT_NE(cpu0, nullptr);
  ASSERT_EQ(cpu0->measurements.size(), 2u);
  EXPECT_EQ(cpu0->measurements[0].begin, 0);
  EXPECT_EQ(cpu0->measurements[0].end, 100);
  EXPECT_DOUBLE_EQ(cpu0->measurements[0].value, 1.0);
  EXPECT_EQ(cpu0->measurements[1].begin, 100);
  EXPECT_EQ(cpu0->measurements[1].end, 200);
}

TEST(ResourceTraceTest, SortsOutOfOrderSamples) {
  const ResourceModel m = simple_resources();
  std::vector<trace::MonitoringSampleRecord> samples{
      make_sample("cpu", 0, 200, 2.0), make_sample("cpu", 0, 100, 1.0)};
  const auto trace = ResourceTrace::build(m, samples);
  const ResourceSeries* cpu = trace.find(m.find("cpu"), 0);
  ASSERT_NE(cpu, nullptr);
  EXPECT_DOUBLE_EQ(cpu->measurements[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cpu->measurements[1].value, 2.0);
}

TEST(ResourceTraceTest, RejectsDuplicateTimes) {
  const ResourceModel m = simple_resources();
  std::vector<trace::MonitoringSampleRecord> samples{
      make_sample("cpu", 0, 100, 1.0), make_sample("cpu", 0, 100, 2.0)};
  EXPECT_THROW(ResourceTrace::build(m, samples), CheckError);
}

TEST(ResourceTraceTest, RejectsUnknownOrBlockingResources) {
  const ResourceModel m = simple_resources();
  EXPECT_THROW(ResourceTrace::build(
                   m, std::vector<trace::MonitoringSampleRecord>{
                          make_sample("mystery", 0, 100, 1.0)}),
               CheckError);
  EXPECT_THROW(ResourceTrace::build(
                   m, std::vector<trace::MonitoringSampleRecord>{
                          make_sample("GC", 0, 100, 1.0)}),
               CheckError);
  ResourceTrace::Options options;
  options.ignore_unknown_resources = true;
  const auto trace = ResourceTrace::build(
      m,
      std::vector<trace::MonitoringSampleRecord>{
          make_sample("mystery", 0, 100, 1.0)},
      options);
  EXPECT_TRUE(trace.series().empty());
}

TEST(ResourceTraceTest, FindMissingReturnsNull) {
  const ResourceModel m = simple_resources();
  const auto trace =
      ResourceTrace::build(m, std::vector<trace::MonitoringSampleRecord>{});
  EXPECT_EQ(trace.find(0, 0), nullptr);
}

}  // namespace
}  // namespace g10::core
