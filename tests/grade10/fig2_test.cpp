// Integration test reproducing the paper's Figure 2 worked example
// (§III-D/E) with the concrete instance documented in DESIGN.md §4.
//
// Index mapping: the paper's timeslices 1..6 are slices 0..5 here.
//  - P1 = slices 0-1, P2 = slices 1-4, P3 = slices 2-3, P4 = slices 4-5.
//  - Rules: P1xR1 Var(1), P2xR1 Var(2), P2xR2 Var(1), P2xR3 Exact(80),
//           P3xR2 Exact(50), P3xR3 Var(1), P4xR1 Var(1); all others None.
//  - R2 measured at 40% over paper-slices 2-3 -> upsampled 15% / 65%.
//  - R3 at 80% in paper-slice 2 (P2 pinned at its Exact cap) and 100% in
//    paper-slice 3 (saturation: P2 and P3 both bottlenecked).
#include <gtest/gtest.h>

#include "grade10/bottleneck/bottleneck.hpp"
#include "grade10/pipeline.hpp"
#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_sample;

class Fig2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    const PhaseTypeId root = execution_.add_root("Workload");
    p1_ = execution_.add_child(root, "P1");
    p2_ = execution_.add_child(root, "P2");
    p3_ = execution_.add_child(root, "P3");
    p4_ = execution_.add_child(root, "P4");
    r1_ = resources_.add_consumable("R1", 100.0);
    r2_ = resources_.add_consumable("R2", 100.0);
    r3_ = resources_.add_consumable("R3", 100.0);

    rules_ = AttributionRuleSet(AttributionRule::none());
    rules_.set(p1_, r1_, AttributionRule::variable(1.0));
    rules_.set(p2_, r1_, AttributionRule::variable(2.0));
    rules_.set(p2_, r2_, AttributionRule::variable(1.0));
    rules_.set(p2_, r3_, AttributionRule::exact(80.0));
    rules_.set(p3_, r2_, AttributionRule::exact(50.0));
    rules_.set(p3_, r3_, AttributionRule::variable(1.0));
    rules_.set(p4_, r1_, AttributionRule::variable(1.0));

    add_phase(events_, "Workload.0", 0, 60);
    add_phase(events_, "Workload.0/P1.0", 0, 20, 0);
    add_phase(events_, "Workload.0/P2.0", 10, 50, 0);
    add_phase(events_, "Workload.0/P3.0", 20, 40, 0);
    add_phase(events_, "Workload.0/P4.0", 40, 60, 0);

    // Monitoring at 2-slice quanta, aligned as in the running text:
    // windows [0,10), [10,30), [30,50), [50,60).
    const auto add = [this](const std::string& r, TimeNs t, double v) {
      samples_.push_back(make_sample(r, 0, t, v));
    };
    add("R1", 10, 60.0);
    add("R1", 30, 95.0);  // R1 saturates in paper-slice 2, ~90% in slice 3
    add("R1", 50, 70.0);
    add("R1", 60, 40.0);
    add("R2", 10, 0.0);
    add("R2", 30, 40.0);   // the paper's 40% average
    add("R2", 50, 30.0);
    add("R2", 60, 0.0);
    add("R3", 10, 0.0);
    add("R3", 30, 90.0);   // 80% then 100%
    add("R3", 50, 40.0);
    add("R3", 60, 0.0);
  }

  CharacterizationResult run() {
    CharacterizationInput input;
    input.model = &execution_;
    input.resources = &resources_;
    input.rules = &rules_;
    input.phase_events = events_;
    input.samples = samples_;
    input.config.timeslice = 10;
    input.config.min_issue_impact = 0.0;
    return characterize(input);
  }

  ExecutionModel execution_;
  ResourceModel resources_;
  AttributionRuleSet rules_{AttributionRule::none()};
  PhaseTypeId p1_{}, p2_{}, p3_{}, p4_{};
  ResourceId r1_{}, r2_{}, r3_{};
  std::vector<trace::PhaseEventRecord> events_;
  std::vector<trace::MonitoringSampleRecord> samples_;
};

TEST_F(Fig2Test, UpsamplingMatchesPaperNumbers) {
  const auto result = run();
  const AttributedResource* r2 = result.usage.find(r2_, 0);
  ASSERT_NE(r2, nullptr);
  // Paper §III-D2: 40% over paper-slices 2-3 splits into 15% and 65%.
  EXPECT_NEAR(r2->upsampled.usage[1], 15.0, 1e-9);
  EXPECT_NEAR(r2->upsampled.usage[2], 65.0, 1e-9);

  const AttributedResource* r3 = result.usage.find(r3_, 0);
  ASSERT_NE(r3, nullptr);
  EXPECT_NEAR(r3->upsampled.usage[1], 80.0, 1e-9);
  EXPECT_NEAR(r3->upsampled.usage[2], 100.0, 1e-9);
}

TEST_F(Fig2Test, AttributionMatchesPaperNumbers) {
  const auto result = run();
  const AttributedResource* r2 = result.usage.find(r2_, 0);
  ASSERT_NE(r2, nullptr);
  // Paper §III-D3: at paper-slice 3, P3 (Exact) gets 50%, P2 gets 15%.
  const InstanceId p2 = result.trace.find("Workload.0/P2.0");
  const InstanceId p3 = result.trace.find("Workload.0/P3.0");
  double p2_usage = -1.0;
  double p3_usage = -1.0;
  for (const auto& entry : r2->slice_entries(2)) {
    if (entry.instance == p2) p2_usage = entry.usage;
    if (entry.instance == p3) p3_usage = entry.usage;
  }
  EXPECT_NEAR(p3_usage, 50.0, 1e-9);
  EXPECT_NEAR(p2_usage, 15.0, 1e-9);
}

TEST_F(Fig2Test, BottleneckClassification) {
  const auto result = run();
  const InstanceId p2 = result.trace.find("Workload.0/P2.0");
  const InstanceId p3 = result.trace.find("Workload.0/P3.0");

  // Paper-slice 2: R3 at 80% = P2's Exact cap, resource not saturated
  // -> self-limit bottleneck for P2.
  const auto self_limited = result.bottlenecks.self_limited;
  const auto it = self_limited.find({p2, r3_});
  ASSERT_NE(it, self_limited.end());
  EXPECT_GE(it->second, 10);

  // Paper-slice 3: R3 saturated -> both P2 and P3 bottlenecked.
  EXPECT_GE(result.bottlenecks.saturated.at({p2, r3_}), 10);
  EXPECT_GE(result.bottlenecks.saturated.at({p3, r3_}), 10);

  // R1 saturation flagged in paper-slice 2 (the water-fill pushes its
  // measured mass to capacity there), not before.
  const ResourceSaturation* sat = result.bottlenecks.find_saturation(r1_, 0);
  ASSERT_NE(sat, nullptr);
  EXPECT_TRUE(sat->saturated[1]);
  EXPECT_FALSE(sat->saturated[0]);
}

TEST_F(Fig2Test, IssueDetectionRanksR3AndR1) {
  const auto result = run();
  // Removing the R3 bottleneck helps, but R1 is the next binding resource
  // (paper §III-F): both issues must be present with positive impact.
  double r1_impact = -1.0;
  double r3_impact = -1.0;
  for (const auto& issue : result.issues) {
    if (issue.kind != IssueKind::kResourceBottleneck) continue;
    if (issue.resource == r1_) r1_impact = issue.impact;
    if (issue.resource == r3_) r3_impact = issue.impact;
  }
  EXPECT_GT(r1_impact, 0.0);
  EXPECT_GT(r3_impact, 0.0);
}

TEST_F(Fig2Test, DemandMatrixMatchesRules) {
  const auto result = run();
  const DemandMatrix* r2 = nullptr;
  for (const auto& m : result.demand) {
    if (m.resource == r2_) r2 = &m;
  }
  ASSERT_NE(r2, nullptr);
  // Paper-slice 2 (our 1): only P2's Variable(1y); paper-slice 3: + P3's 50%.
  EXPECT_NEAR(r2->exact[1], 0.0, 1e-9);
  EXPECT_NEAR(r2->variable[1], 1.0, 1e-9);
  EXPECT_NEAR(r2->exact[2], 50.0, 1e-9);
  EXPECT_NEAR(r2->variable[2], 1.0, 1e-9);
}

}  // namespace
}  // namespace g10::core
