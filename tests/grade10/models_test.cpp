#include <gtest/gtest.h>

#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"

namespace g10::core {
namespace {

TEST(PregelModelTest, StructureIsValidAndComplete) {
  const FrameworkModel m = make_pregel_model({});
  m.execution.validate();
  for (const char* name :
       {"Job", "LoadGraph", "LoadWorker", "Execute", "Superstep",
        "WorkerPrepare", "WorkerCompute", "ComputeThread", "WorkerCommunicate",
        "WorkerBarrier", "GcPause", "StoreResults", "StoreWorker"}) {
    EXPECT_NE(m.execution.find(name), kNoPhaseType) << name;
  }
  EXPECT_TRUE(m.execution.type(m.execution.find("Superstep")).repeated);
  EXPECT_TRUE(m.execution.type(m.execution.find("WorkerBarrier")).wait);
  EXPECT_GT(
      m.execution.type(m.execution.find("ComputeThread")).concurrency_limit,
      0);
}

TEST(PregelModelTest, ResourcesMatchEngineNames) {
  const FrameworkModel m = make_pregel_model({});
  EXPECT_NE(m.cpu, kNoResource);
  EXPECT_NE(m.network, kNoResource);
  EXPECT_NE(m.gc, kNoResource);
  EXPECT_NE(m.message_queue, kNoResource);
  EXPECT_EQ(m.resources.resource(m.cpu).kind, ResourceKind::kConsumable);
  EXPECT_EQ(m.resources.resource(m.gc).kind, ResourceKind::kBlocking);
  EXPECT_EQ(m.resources.resource(m.message_queue).kind,
            ResourceKind::kBlocking);
}

TEST(PregelModelTest, TunedRulesPinComputeThreadsToOneCore) {
  const FrameworkModel m = make_pregel_model({});
  const PhaseTypeId thread = m.execution.find("ComputeThread");
  const AttributionRule rule = m.tuned_rules.get(thread, m.cpu);
  EXPECT_TRUE(rule.is_exact());
  EXPECT_DOUBLE_EQ(rule.amount, 1.0);
  EXPECT_TRUE(m.tuned_rules.get(thread, m.network).is_none());
  // Untuned: everything is the implicit Variable(1).
  EXPECT_TRUE(m.untuned_rules.get(thread, m.cpu).is_variable());
  EXPECT_EQ(m.untuned_rules.explicit_rule_count(), 0u);
}

TEST(PregelModelTest, GcPauseBurnsAllCores) {
  PregelModelParams params;
  params.cores = 6;
  const FrameworkModel m = make_pregel_model(params);
  const AttributionRule rule =
      m.tuned_rules.get(m.execution.find("GcPause"), m.cpu);
  EXPECT_TRUE(rule.is_exact());
  EXPECT_DOUBLE_EQ(rule.amount, 6.0);
  EXPECT_DOUBLE_EQ(m.resources.resource(m.cpu).capacity, 6.0);
}

TEST(GasModelTest, StructureIsValidAndComplete) {
  const FrameworkModel m = make_gas_model({});
  m.execution.validate();
  for (const char* name :
       {"Job", "LoadGraph", "Execute", "Iteration", "GatherStep",
        "WorkerGather", "GatherThread", "ApplyStep", "WorkerApply",
        "ApplyThread", "ScatterStep", "WorkerScatter", "ScatterThread",
        "ExchangeStep", "WorkerExchange", "Checkpoint", "CheckpointWorker",
        "Recovery", "RecoveryWorker", "StoreResults", "StoreWorker"}) {
    EXPECT_NE(m.execution.find(name), kNoPhaseType) << name;
  }
  EXPECT_TRUE(m.execution.type(m.execution.find("Iteration")).repeated);
  EXPECT_TRUE(m.execution.type(m.execution.find("Recovery")).repeated);
  EXPECT_TRUE(m.execution.type(m.execution.find("RecoveryWorker")).wait);
}

TEST(GasModelTest, OnlyFaultHandlingBlockingResources) {
  // PowerGraph is native C++: no GC, no queue stalls (paper §IV-C). The
  // only blocking resources are the fault-handling pair shared with the
  // Pregel model (Retry retransmit backoff, Recovery restart downtime).
  const FrameworkModel m = make_gas_model({});
  EXPECT_EQ(m.gc, kNoResource);
  EXPECT_EQ(m.message_queue, kNoResource);
  EXPECT_NE(m.recovery, kNoResource);
  EXPECT_NE(m.retry, kNoResource);
  EXPECT_EQ(m.resources.blockings().size(), 2u);
  EXPECT_EQ(m.resources.resource(m.recovery).kind, ResourceKind::kBlocking);
  EXPECT_EQ(m.resources.resource(m.retry).kind, ResourceKind::kBlocking);
}

TEST(GasModelTest, StepsAreOrdered) {
  const FrameworkModel m = make_gas_model({});
  const PhaseTypeId gather = m.execution.find("GatherStep");
  const PhaseTypeId apply = m.execution.find("ApplyStep");
  const auto& succ = m.execution.type(gather).successors;
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), apply) != succ.end());
}

TEST(GasModelTest, TunedRulesPinThreads) {
  const FrameworkModel m = make_gas_model({});
  for (const char* name : {"GatherThread", "ApplyThread", "ScatterThread"}) {
    const AttributionRule rule =
        m.tuned_rules.get(m.execution.find(name), m.cpu);
    EXPECT_TRUE(rule.is_exact()) << name;
    EXPECT_DOUBLE_EQ(rule.amount, 1.0);
  }
  EXPECT_TRUE(
      m.tuned_rules.get(m.execution.find("WorkerExchange"), m.network)
          .is_variable());
}

}  // namespace
}  // namespace g10::core
