#include "grade10/model/resource_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::core {
namespace {

TEST(ResourceModelTest, AddAndFind) {
  ResourceModel m;
  const ResourceId cpu = m.add_consumable("cpu", 8.0);
  const ResourceId gc = m.add_blocking("GC");
  EXPECT_EQ(m.resource_count(), 2u);
  EXPECT_EQ(m.find("cpu"), cpu);
  EXPECT_EQ(m.find("GC"), gc);
  EXPECT_EQ(m.find("nope"), kNoResource);
  EXPECT_EQ(m.resource(cpu).kind, ResourceKind::kConsumable);
  EXPECT_DOUBLE_EQ(m.resource(cpu).capacity, 8.0);
  EXPECT_EQ(m.resource(gc).kind, ResourceKind::kBlocking);
}

TEST(ResourceModelTest, ScopesDefaultPerMachine) {
  ResourceModel m;
  const ResourceId cpu = m.add_consumable("cpu", 2.0);
  const ResourceId lock =
      m.add_blocking("lock", ResourceScope::kGlobal);
  EXPECT_EQ(m.resource(cpu).scope, ResourceScope::kPerMachine);
  EXPECT_EQ(m.resource(lock).scope, ResourceScope::kGlobal);
}

TEST(ResourceModelTest, RejectsDuplicatesAndBadCapacity) {
  ResourceModel m;
  m.add_consumable("cpu", 1.0);
  EXPECT_THROW(m.add_consumable("cpu", 2.0), CheckError);
  EXPECT_THROW(m.add_blocking("cpu"), CheckError);
  EXPECT_THROW(m.add_consumable("x", 0.0), CheckError);
}

TEST(ResourceModelTest, KindFilters) {
  ResourceModel m;
  m.add_consumable("cpu", 1.0);
  m.add_blocking("GC");
  m.add_consumable("net", 10.0);
  EXPECT_EQ(m.consumables().size(), 2u);
  EXPECT_EQ(m.blockings().size(), 1u);
}

}  // namespace
}  // namespace g10::core
