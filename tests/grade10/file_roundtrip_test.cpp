// Integration: the full on-disk path. An engine run serialized through the
// text log + model formats and parsed back must characterize identically to
// the in-memory path (this is what the g10_run / g10_analyze tools do).
#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/model/model_io.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "trace/log_io.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

namespace g10::core {
namespace {

TEST(FileRoundTripTest, CharacterizationSurvivesSerialization) {
  // --- run a small job ----------------------------------------------------
  graph::DatagenParams params;
  params.vertices = 1024;
  params.mean_degree = 10;
  params.seed = 5;
  const auto graph = generate_datagen_like(params);
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 2;
  cfg.cluster.machine.cores = 4;
  cfg.gc.young_gen_bytes = 4e5;
  const auto artifacts =
      engine::PregelEngine(cfg).run(graph, algorithms::Cdlp(4));
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 50 * kMillisecond, artifacts.makespan);

  PregelModelParams model_params;
  model_params.cores = cfg.cluster.machine.cores;
  model_params.threads = cfg.effective_threads();
  model_params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const FrameworkModel framework = make_pregel_model(model_params);

  // --- direct, in-memory characterization ---------------------------------
  CharacterizationInput direct;
  direct.model = &framework.execution;
  direct.resources = &framework.resources;
  direct.rules = &framework.tuned_rules;
  direct.phase_events = artifacts.phase_events;
  direct.blocking_events = artifacts.blocking_events;
  direct.samples = samples;
  direct.config.timeslice = 10 * kMillisecond;
  direct.config.min_issue_impact = 0.0;
  const CharacterizationResult expected = characterize(direct);

  // --- serialize everything, parse back, characterize again ---------------
  std::stringstream log_stream;
  trace::write_log(log_stream, artifacts.phase_events,
                   artifacts.blocking_events, samples);
  const trace::ParseResult parsed_log = trace::parse_log(log_stream);
  ASSERT_TRUE(parsed_log.ok()) << parsed_log.error->message;

  std::stringstream model_stream;
  write_model(model_stream, framework.execution, framework.resources,
              framework.tuned_rules);
  const ModelParseResult parsed_model = parse_model(model_stream);
  ASSERT_TRUE(parsed_model.ok()) << parsed_model.error->message;

  CharacterizationInput via_files;
  via_files.model = &parsed_model.model.execution;
  via_files.resources = &parsed_model.model.resources;
  via_files.rules = &parsed_model.model.rules;
  via_files.phase_events = parsed_log.log.phase_events;
  via_files.blocking_events = parsed_log.log.blocking_events;
  via_files.samples = parsed_log.log.samples;
  via_files.config.timeslice = 10 * kMillisecond;
  via_files.config.min_issue_impact = 0.0;
  const CharacterizationResult actual = characterize(via_files);

  // --- equivalence ----------------------------------------------------------
  ASSERT_EQ(actual.trace.instances().size(),
            expected.trace.instances().size());
  EXPECT_EQ(actual.trace.end_time(), expected.trace.end_time());
  EXPECT_EQ(actual.baseline_makespan, expected.baseline_makespan);

  ASSERT_EQ(actual.usage.resources.size(), expected.usage.resources.size());
  for (std::size_t r = 0; r < actual.usage.resources.size(); ++r) {
    const auto& a = actual.usage.resources[r];
    const auto& e = expected.usage.resources[r];
    ASSERT_EQ(a.upsampled.usage.size(), e.upsampled.usage.size());
    for (std::size_t s = 0; s < a.upsampled.usage.size(); ++s) {
      ASSERT_NEAR(a.upsampled.usage[s], e.upsampled.usage[s], 1e-9);
    }
  }

  ASSERT_EQ(actual.issues.size(), expected.issues.size());
  for (std::size_t i = 0; i < actual.issues.size(); ++i) {
    EXPECT_EQ(actual.issues[i].description, expected.issues[i].description);
    EXPECT_NEAR(actual.issues[i].impact, expected.issues[i].impact, 1e-9);
  }
}

}  // namespace
}  // namespace g10::core
