#include "grade10/model/attribution_rules.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::core {
namespace {

TEST(AttributionRuleTest, Factories) {
  EXPECT_TRUE(AttributionRule::none().is_none());
  EXPECT_TRUE(AttributionRule::exact(2.0).is_exact());
  EXPECT_DOUBLE_EQ(AttributionRule::exact(2.0).amount, 2.0);
  EXPECT_TRUE(AttributionRule::variable(3.0).is_variable());
  EXPECT_DOUBLE_EQ(AttributionRule::variable().amount, 1.0);
}

TEST(AttributionRuleSetTest, DefaultIsImplicitVariableOne) {
  // Paper §IV-B: without rules, Grade10 assumes Variable(1x) everywhere.
  AttributionRuleSet rules;
  const AttributionRule rule = rules.get(3, 5);
  EXPECT_TRUE(rule.is_variable());
  EXPECT_DOUBLE_EQ(rule.amount, 1.0);
  EXPECT_EQ(rules.explicit_rule_count(), 0u);
}

TEST(AttributionRuleSetTest, ExplicitOverridesDefault) {
  AttributionRuleSet rules;
  rules.set(1, 0, AttributionRule::exact(1.0));
  rules.set(1, 1, AttributionRule::none());
  EXPECT_TRUE(rules.get(1, 0).is_exact());
  EXPECT_TRUE(rules.get(1, 1).is_none());
  EXPECT_TRUE(rules.get(2, 0).is_variable());
  EXPECT_EQ(rules.explicit_rule_count(), 2u);
}

TEST(AttributionRuleSetTest, CustomDefault) {
  AttributionRuleSet rules(AttributionRule::none());
  EXPECT_TRUE(rules.get(0, 0).is_none());
}

TEST(AttributionRuleSetTest, RejectsInvalidRules) {
  AttributionRuleSet rules;
  EXPECT_THROW(rules.set(-1, 0, AttributionRule::exact(1.0)), CheckError);
  EXPECT_THROW(rules.set(0, 0, AttributionRule::exact(0.0)), CheckError);
  EXPECT_THROW(rules.set(0, 0, AttributionRule::variable(-1.0)), CheckError);
}

TEST(AttributionRuleSetTest, LastSetWins) {
  AttributionRuleSet rules;
  rules.set(0, 0, AttributionRule::exact(1.0));
  rules.set(0, 0, AttributionRule::variable(2.0));
  EXPECT_TRUE(rules.get(0, 0).is_variable());
  EXPECT_DOUBLE_EQ(rules.get(0, 0).amount, 2.0);
}

}  // namespace
}  // namespace g10::core
