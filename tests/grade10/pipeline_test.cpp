// End-to-end: run the simulated engines, sample monitoring data, and push
// everything through the full Grade10 pipeline.
#include "grade10/pipeline.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "algorithms/programs.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/report/report.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "sim/fault_injector.hpp"

namespace g10::core {
namespace {

graph::Graph workload_graph() {
  graph::DatagenParams params;
  params.vertices = 1024;
  params.mean_degree = 10;
  params.seed = 33;
  return generate_datagen_like(params);
}

struct PregelRunResult {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> samples;
  FrameworkModel model;
};

PregelRunResult run_pregel() {
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 2;
  cfg.cluster.machine.cores = 4;
  cfg.gc.young_gen_bytes = 4e5;
  cfg.queue.capacity_bytes = 5e4;
  const engine::PregelEngine engine(cfg);
  PregelRunResult out;
  out.artifacts = engine.run(workload_graph(), algorithms::Cdlp(4));
  out.samples = monitor::sample_ground_truth(out.artifacts.ground_truth,
                                             50 * kMillisecond,
                                             out.artifacts.makespan);
  PregelModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  out.model = make_pregel_model(params);
  return out;
}

TEST(PipelineTest, PregelEndToEnd) {
  const PregelRunResult run = run_pregel();
  CharacterizationInput input;
  input.model = &run.model.execution;
  input.resources = &run.model.resources;
  input.rules = &run.model.tuned_rules;
  input.phase_events = run.artifacts.phase_events;
  input.blocking_events = run.artifacts.blocking_events;
  input.samples = run.samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  const CharacterizationResult result = characterize(input);

  // Trace covers the run.
  EXPECT_GT(result.trace.instances().size(), 10u);
  EXPECT_EQ(result.trace.end_time(), run.artifacts.makespan);

  // Every attributed resource respects capacity and non-negativity.
  ASSERT_FALSE(result.usage.resources.empty());
  for (const auto& r : result.usage.resources) {
    for (const double u : r.upsampled.usage) {
      EXPECT_GE(u, -1e-9);
      EXPECT_LE(u, r.capacity + 1e-6);
    }
  }

  // The Giraph stand-in must show GC and/or queue blocking bottlenecks.
  const auto blocked =
      BottleneckReport::totals_by_resource(result.bottlenecks.blocked);
  DurationNs total_blocked = 0;
  for (const auto& [r, t] : blocked) total_blocked += t;
  EXPECT_GT(total_blocked, 0);

  // Baseline replay makespan is positive and at most the recorded one.
  EXPECT_GT(result.baseline_makespan, 0);
  EXPECT_LE(result.baseline_makespan, run.artifacts.makespan);

  // Issues list is sorted by impact.
  for (std::size_t i = 1; i < result.issues.size(); ++i) {
    EXPECT_GE(result.issues[i - 1].impact, result.issues[i].impact);
  }

  // Report rendering produces non-empty output.
  std::ostringstream os;
  render_profile(os, result.trace, run.model.resources, result.usage,
                 result.grid);
  render_bottlenecks(os, run.model.resources, result.bottlenecks);
  render_issues(os, result.issues);
  EXPECT_GT(os.str().size(), 100u);
}

TEST(PipelineTest, PregelUntunedStillRuns) {
  const PregelRunResult run = run_pregel();
  CharacterizationInput input;
  input.model = &run.model.execution;
  input.resources = &run.model.resources;
  input.rules = &run.model.untuned_rules;
  input.phase_events = run.artifacts.phase_events;
  input.blocking_events = run.artifacts.blocking_events;
  input.samples = run.samples;
  input.config.timeslice = 10 * kMillisecond;
  const CharacterizationResult result = characterize(input);
  EXPECT_FALSE(result.usage.resources.empty());
}

TEST(PipelineTest, GasEndToEndFindsImbalance) {
  engine::GasConfig cfg;
  cfg.cluster.machine_count = 4;
  cfg.cluster.machine.cores = 4;
  cfg.sync_bug.enabled = true;
  cfg.sync_bug.probability = 0.5;
  cfg.seed = 11;
  const engine::GasEngine engine(cfg);
  const auto artifacts = engine.run(workload_graph(), algorithms::Cdlp(5));
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 50 * kMillisecond, artifacts.makespan);

  GasModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  const FrameworkModel model = make_gas_model(params);

  CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  const CharacterizationResult result = characterize(input);

  // No blocking resources exist in the GAS model.
  EXPECT_TRUE(result.bottlenecks.blocked.empty());

  // Imbalance issues must be reported (hash-source cut + sync bug).
  bool found_imbalance = false;
  for (const auto& issue : result.issues) {
    if (issue.kind == IssueKind::kImbalance && issue.impact > 0.0) {
      found_imbalance = true;
    }
  }
  EXPECT_TRUE(found_imbalance);
}

TEST(PipelineTest, RequiresModels) {
  CharacterizationInput input;
  EXPECT_THROW(characterize(input), CheckError);
}

TEST(PipelineTest, CheckedReportsMissingInputsWithoutThrowing) {
  CharacterizationInput input;
  const CheckedCharacterization checked = characterize_checked(input);
  EXPECT_FALSE(checked.status.ok());
  EXPECT_EQ(checked.status.errors.size(), 3u);
  EXPECT_FALSE(checked.result.has_value());
}

engine::PregelConfig crashed_pregel_config() {
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 2;
  cfg.cluster.machine.cores = 4;
  cfg.seed = 9;
  const auto spec = sim::FaultSpec::parse("crash:w1@40%");
  EXPECT_TRUE(spec.has_value());
  if (spec) cfg.cluster.faults = *spec;
  return cfg;
}

CharacterizationInput pregel_input(const engine::PregelConfig& cfg,
                                   const trace::RunArtifacts& artifacts,
                                   const std::vector<trace::MonitoringSampleRecord>& samples,
                                   const FrameworkModel& model) {
  CharacterizationInput input;
  input.model = &model.execution;
  input.resources = &model.resources;
  input.rules = &model.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  return input;
}

FrameworkModel crashed_pregel_model(const engine::PregelConfig& cfg) {
  PregelModelParams params;
  params.cores = cfg.cluster.machine.cores;
  params.threads = cfg.effective_threads();
  params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
  return make_pregel_model(params);
}

TEST(PipelineTest, FaultedPregelStrictSucceedsAndReportsRecoveryIssue) {
  // With the default reconciled crash log the trace stays balanced, so
  // STRICT ingestion succeeds and recovery is attributed, no repair needed.
  const engine::PregelConfig cfg = crashed_pregel_config();
  const engine::PregelEngine engine(cfg);
  const auto artifacts = engine.run(workload_graph(), algorithms::PageRank(6));
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 50 * kMillisecond, artifacts.makespan);
  const FrameworkModel model = crashed_pregel_model(cfg);
  CharacterizationInput input = pregel_input(cfg, artifacts, samples, model);

  const CheckedCharacterization strict = characterize_checked(input);
  ASSERT_TRUE(strict.status.ok())
      << (strict.status.errors.empty() ? "" : strict.status.errors.front());
  ASSERT_TRUE(strict.result.has_value());
  EXPECT_EQ(strict.result->trace.degraded_count(), 0u);

  // Crash recovery shows up as its own detected issue with real impact.
  bool found_fault_issue = false;
  for (const auto& issue : strict.result->issues) {
    if (issue.kind == IssueKind::kFaultRecovery) {
      found_fault_issue = true;
      EXPECT_GT(issue.impact, 0.0);
    }
  }
  EXPECT_TRUE(found_fault_issue);
}

TEST(PipelineTest, TruncatedCrashLogNeedsLenientAndReportsRecoveryIssue) {
  // CrashLogStyle::kTruncated reproduces a raw crashed logger; only the
  // lenient repair path can characterize such a trace.
  engine::PregelConfig cfg = crashed_pregel_config();
  cfg.crash_log = engine::CrashLogStyle::kTruncated;
  const engine::PregelEngine engine(cfg);
  const auto artifacts = engine.run(workload_graph(), algorithms::PageRank(6));
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 50 * kMillisecond, artifacts.makespan);
  const FrameworkModel model = crashed_pregel_model(cfg);
  CharacterizationInput input = pregel_input(cfg, artifacts, samples, model);

  // Strict ingestion fails on the truncated phases the crash left behind.
  const CheckedCharacterization strict = characterize_checked(input);
  EXPECT_FALSE(strict.status.ok());
  EXPECT_FALSE(strict.result.has_value());

  // Lenient mode repairs the trace and characterizes end-to-end.
  input.trace_options.lenient = true;
  const CheckedCharacterization lenient = characterize_checked(input);
  ASSERT_TRUE(lenient.status.ok())
      << (lenient.status.errors.empty() ? "" : lenient.status.errors.front());
  ASSERT_TRUE(lenient.result.has_value());
  EXPECT_GT(lenient.result->trace.degraded_count(), 0u);
  EXPECT_FALSE(lenient.status.warnings.empty());

  bool found_fault_issue = false;
  for (const auto& issue : lenient.result->issues) {
    if (issue.kind == IssueKind::kFaultRecovery) {
      found_fault_issue = true;
      EXPECT_GT(issue.impact, 0.0);
    }
  }
  EXPECT_TRUE(found_fault_issue);
}

}  // namespace
}  // namespace g10::core
