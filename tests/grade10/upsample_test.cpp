#include "grade10/attribution/upsample.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace g10::core {
namespace {

DemandMatrix make_matrix(std::vector<double> exact, std::vector<double> var,
                         double capacity) {
  DemandMatrix m;
  m.resource = 0;
  m.machine = 0;
  m.capacity = capacity;
  m.slice_count = static_cast<TimesliceIndex>(exact.size());
  m.exact = std::move(exact);
  m.variable = std::move(var);
  return m;
}

ResourceSeries make_series(std::vector<Measurement> measurements) {
  ResourceSeries s;
  s.resource = 0;
  s.machine = 0;
  s.measurements = std::move(measurements);
  return s;
}

TEST(UpsampleTest, ExactDemandGuidesPlacement) {
  // Two slices, exact demand only in slice 1; measured average 30 over both
  // -> mass 60 goes to slice 1 up to its demand, remainder by headroom.
  const auto m = make_matrix({0.0, 50.0}, {0.0, 0.0}, 100.0);
  const auto s = make_series({{0, 20, 30.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  ASSERT_EQ(up.usage.size(), 2u);
  // 50 to the demanding slice, the remaining 10 by headroom: slice0 has
  // headroom 100, slice1 has 50 -> 10*100/150 and 10*50/150.
  EXPECT_NEAR(up.usage[1], 50.0 + 10.0 * 50.0 / 150.0, 1e-9);
  EXPECT_NEAR(up.usage[0], 10.0 * 100.0 / 150.0, 1e-9);
  EXPECT_NEAR(up.usage[0] + up.usage[1], 60.0, 1e-9);
}

TEST(UpsampleTest, PaperR2Example) {
  // The §III-D2 numbers: demand 1y in slice 0, 50% + 1y in slice 1;
  // measured 40% average over two slices -> 15% and 65%.
  const auto m = make_matrix({0.0, 50.0}, {1.0, 1.0}, 100.0);
  const auto s = make_series({{0, 20, 40.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0], 15.0, 1e-9);
  EXPECT_NEAR(up.usage[1], 65.0, 1e-9);
}

TEST(UpsampleTest, VariableSplitRespectsWeights) {
  const auto m = make_matrix({0.0, 0.0}, {1.0, 3.0}, 100.0);
  const auto s = make_series({{0, 20, 20.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0], 10.0, 1e-9);
  EXPECT_NEAR(up.usage[1], 30.0, 1e-9);
}

TEST(UpsampleTest, CapacityCapsWaterFill) {
  // Heavy weight on slice 0 but capacity clips it; the rest overflows to
  // slice 1.
  const auto m = make_matrix({0.0, 0.0}, {10.0, 1.0}, 100.0);
  const auto s = make_series({{0, 20, 75.0}});  // mass 150
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0], 100.0, 1e-9);
  EXPECT_NEAR(up.usage[1], 50.0, 1e-9);
  EXPECT_NEAR(up.unallocated, 0.0, 1e-9);
}

TEST(UpsampleTest, OverCapacityMassIsReported) {
  const auto m = make_matrix({0.0}, {1.0}, 100.0);
  const auto s = make_series({{0, 10, 120.0}});  // impossible: above capacity
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0], 100.0, 1e-9);
  EXPECT_NEAR(up.unallocated, 20.0, 1e-9);
}

TEST(UpsampleTest, ZeroDemandFallsBackToHeadroom) {
  const auto m = make_matrix({0.0, 0.0}, {0.0, 0.0}, 100.0);
  const auto s = make_series({{0, 20, 10.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0], 10.0, 1e-9);
  EXPECT_NEAR(up.usage[1], 10.0, 1e-9);
}

TEST(UpsampleConstantTest, SpreadsUniformly) {
  const auto m = make_matrix({0.0, 50.0}, {1.0, 1.0}, 100.0);
  const auto s = make_series({{0, 20, 40.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample_constant(m, s, grid);
  EXPECT_NEAR(up.usage[0], 40.0, 1e-9);
  EXPECT_NEAR(up.usage[1], 40.0, 1e-9);
}

TEST(UpsampleTest, PartialSliceCoverageWeighted) {
  // Measurement covers [5, 15): half of slice 0, half of slice 1.
  const auto m = make_matrix({0.0, 0.0}, {1.0, 1.0}, 100.0);
  const auto s = make_series({{5, 15, 40.0}});
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);
  EXPECT_NEAR(up.usage[0] + up.usage[1], 40.0, 1e-9);
  EXPECT_NEAR(up.usage[0], 20.0, 1e-9);
}

// Property: mass conservation — the upsampled series plus unallocated mass
// equals the measured mass, for random demand matrices and measurements.
class UpsampleConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(UpsampleConservationTest, MassIsConserved) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const int slices = 32;
  const double capacity = 10.0;
  std::vector<double> exact(slices);
  std::vector<double> variable(slices);
  for (int s = 0; s < slices; ++s) {
    exact[s] = rng.next_bool(0.5) ? rng.next_double(0.0, 8.0) : 0.0;
    variable[s] = rng.next_bool(0.6) ? rng.next_double(0.0, 3.0) : 0.0;
  }
  const auto m = make_matrix(exact, variable, capacity);

  std::vector<Measurement> measurements;
  TimeNs t = 0;
  while (t < slices * 10) {
    const TimeNs len = 10 * rng.next_int(1, 8);
    const TimeNs end = std::min<TimeNs>(t + len, slices * 10);
    measurements.push_back({t, end, rng.next_double(0.0, capacity)});
    t = end;
  }
  const auto s = make_series(measurements);
  const TimesliceGrid grid(10);
  const auto up = upsample(m, s, grid);

  double measured_mass = 0.0;
  for (const auto& meas : measurements) {
    measured_mass += meas.value * static_cast<double>(meas.end - meas.begin) / 10.0;
  }
  const double placed =
      std::accumulate(up.usage.begin(), up.usage.end(), 0.0);
  EXPECT_NEAR(placed + up.unallocated, measured_mass, 1e-6);
  // Capacity respected everywhere.
  for (const double u : up.usage) {
    EXPECT_LE(u, capacity + 1e-9);
    EXPECT_GE(u, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpsampleConservationTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace g10::core
