#include "grade10/issues/issue_detector.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_block;
using testing::make_sample;

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  PhaseTypeId worker = kNoPhaseType;
  ResourceId cpu = kNoResource;
  ResourceId gc = kNoResource;

  Fixture() {
    const PhaseTypeId job = execution.add_root("Job");
    const PhaseTypeId step = execution.add_child(job, "Step", true);
    worker = execution.add_child(step, "Worker");
    cpu = resources.add_consumable("cpu", 4.0);
    gc = resources.add_blocking("GC");
    rules.set(worker, cpu, AttributionRule::variable(1.0));
  }
};

TEST(IssueDetectorTest, ImbalanceImpactMatchesHandComputation) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  add_phase(events, "Job.0/Step.0/Worker.1", 0, 20, 1);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  IssueDetector detector(f.execution, f.resources, trace, grid, config);

  EXPECT_EQ(detector.baseline_makespan(), 100);
  const PerformanceIssue issue = detector.imbalance_issue(f.worker);
  // Balanced: both workers 60 -> makespan 60, impact 40%.
  EXPECT_EQ(issue.optimistic_makespan, 60);
  EXPECT_NEAR(issue.impact, 0.4, 1e-9);
  EXPECT_EQ(issue.kind, IssueKind::kImbalance);
  EXPECT_EQ(issue.phase_type, f.worker);
}

TEST(IssueDetectorTest, ImbalanceGroupsArePerParent) {
  // Work is interchangeable within a step, not across steps.
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 200);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  add_phase(events, "Job.0/Step.0/Worker.1", 0, 20, 1);
  add_phase(events, "Job.0/Step.1", 100, 200);
  add_phase(events, "Job.0/Step.1/Worker.0", 100, 140, 0);
  add_phase(events, "Job.0/Step.1/Worker.1", 100, 200, 1);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const PerformanceIssue issue = detector.imbalance_issue(f.worker);
  // Step.0 balances to 60, Step.1 balances to 70: makespan 130.
  EXPECT_EQ(issue.optimistic_makespan, 130);
}

TEST(IssueDetectorTest, BlockingBottleneckRemovalShrinksPhases) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  std::vector<trace::BlockingEventRecord> blocks{
      make_block("GC", "Job.0/Step.0/Worker.0", 10, 40, 0)};
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, blocks);
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const auto usage = attribute_usage({}, ResourceTrace(), grid);
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);
  const PerformanceIssue issue =
      detector.bottleneck_issue(f.gc, usage, bottlenecks);
  // 30 ns of GC removed from a 100 ns phase.
  EXPECT_EQ(issue.optimistic_makespan, 70);
  EXPECT_NEAR(issue.impact, 0.3, 1e-9);
}

TEST(IssueDetectorTest, ConsumableBottleneckShrinksToNextBinding) {
  Fixture f;
  const ResourceId net = f.resources.add_consumable("network", 100.0);
  f.rules.set(f.worker, net, AttributionRule::variable(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  // CPU saturated the whole time; network at 50%.
  std::vector<trace::MonitoringSampleRecord> samples;
  for (TimeNs t = 10; t <= 100; t += 10) {
    samples.push_back(make_sample("cpu", 0, t, 4.0));
    samples.push_back(make_sample("network", 0, t, 50.0));
  }
  const auto demand = estimate_demand(f.resources, f.rules, trace, grid);
  const auto monitored = ResourceTrace::build(f.resources, samples);
  const auto usage = attribute_usage(demand, monitored, grid);
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const PerformanceIssue issue =
      detector.bottleneck_issue(f.cpu, usage, bottlenecks);
  // Every slice saturated on cpu; next binding = network at 50% ->
  // phase halves.
  EXPECT_EQ(issue.optimistic_makespan, 50);
  EXPECT_NEAR(issue.impact, 0.5, 1e-9);
}

TEST(IssueDetectorTest, SelfLimitedShrinkBoundedByHeadroom) {
  // A phase pinned at its Exact 1-core cap on a 4-core machine can at best
  // absorb the idle 3 cores: optimistic duration = 1/(1+3) of the original,
  // not the unbounded next-binding floor.
  Fixture f;
  f.rules.set(f.worker, f.cpu, AttributionRule::exact(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  std::vector<trace::MonitoringSampleRecord> samples;
  for (TimeNs t = 10; t <= 100; t += 10) {
    samples.push_back(make_sample("cpu", 0, t, 1.0));  // exactly at the cap
  }
  const auto demand = estimate_demand(f.resources, f.rules, trace, grid);
  const auto monitored = ResourceTrace::build(f.resources, samples);
  const auto usage = attribute_usage(demand, monitored, grid);
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const PerformanceIssue issue =
      detector.bottleneck_issue(f.cpu, usage, bottlenecks);
  // factor = 1 / (1 + 3) = 0.25 -> 100 ns shrinks to ~25 ns.
  EXPECT_NEAR(static_cast<double>(issue.optimistic_makespan), 25.0, 1.0);
  EXPECT_NEAR(issue.impact, 0.75, 0.02);
}

TEST(IssueDetectorTest, DetectFiltersAndSorts) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  add_phase(events, "Job.0/Step.0/Worker.1", 0, 50, 1);
  std::vector<trace::BlockingEventRecord> blocks{
      make_block("GC", "Job.0/Step.0/Worker.0", 0, 10, 0)};
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, blocks);
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  config.min_issue_impact = 0.05;
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const auto usage = attribute_usage({}, ResourceTrace(), grid);
  const auto bottlenecks = detect_bottlenecks(usage, trace, grid, config);
  const auto issues = detector.detect(usage, bottlenecks);
  ASSERT_FALSE(issues.empty());
  for (std::size_t i = 1; i < issues.size(); ++i) {
    EXPECT_GE(issues[i - 1].impact, issues[i].impact);
  }
  for (const auto& issue : issues) {
    EXPECT_GE(issue.impact, config.min_issue_impact);
    EXPECT_FALSE(issue.description.empty());
  }
}

TEST(IssueDetectorTest, BalancedGroupsHaveNoImpact) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/Step.0", 0, 100);
  add_phase(events, "Job.0/Step.0/Worker.0", 0, 100, 0);
  add_phase(events, "Job.0/Step.0/Worker.1", 0, 100, 1);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  AnalysisConfig config;
  config.timeslice = 10;
  IssueDetector detector(f.execution, f.resources, trace, grid, config);
  const PerformanceIssue issue = detector.imbalance_issue(f.worker);
  EXPECT_NEAR(issue.impact, 0.0, 1e-9);
}

}  // namespace
}  // namespace g10::core
