// The parallelized pipeline's core guarantee: the CharacterizationResult is
// bit-identical at every thread count. Each field that feeds reports or
// downstream stages is compared exactly (doubles with ==, not tolerances)
// between a serial run and multi-threaded runs of the same input.
#include <gtest/gtest.h>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"

namespace g10::core {
namespace {

struct Workload {
  trace::RunArtifacts artifacts;
  std::vector<trace::MonitoringSampleRecord> samples;
  FrameworkModel model;
};

const Workload& workload() {
  static const Workload w = [] {
    graph::DatagenParams params;
    params.vertices = 1024;
    params.mean_degree = 10;
    params.seed = 33;
    const graph::Graph graph = generate_datagen_like(params);

    engine::PregelConfig cfg;
    cfg.cluster.machine_count = 4;
    cfg.cluster.machine.cores = 4;
    cfg.gc.young_gen_bytes = 4e5;
    cfg.queue.capacity_bytes = 5e4;
    const engine::PregelEngine engine(cfg);

    Workload out;
    out.artifacts = engine.run(graph, algorithms::Cdlp(4));
    out.samples = monitor::sample_ground_truth(out.artifacts.ground_truth,
                                               50 * kMillisecond,
                                               out.artifacts.makespan);
    PregelModelParams model_params;
    model_params.cores = cfg.cluster.machine.cores;
    model_params.threads = cfg.effective_threads();
    model_params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    out.model = make_pregel_model(model_params);
    return out;
  }();
  return w;
}

CharacterizationResult characterize_with(int threads) {
  const Workload& w = workload();
  CharacterizationInput input;
  input.model = &w.model.execution;
  input.resources = &w.model.resources;
  input.rules = &w.model.tuned_rules;
  input.phase_events = w.artifacts.phase_events;
  input.blocking_events = w.artifacts.blocking_events;
  input.samples = w.samples;
  input.config.timeslice = 10 * kMillisecond;
  input.config.min_issue_impact = 0.0;
  input.config.threads = threads;
  return characterize(input);
}

void expect_identical_demand(const std::vector<DemandMatrix>& a,
                             const std::vector<DemandMatrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    SCOPED_TRACE("matrix " + std::to_string(m));
    EXPECT_EQ(a[m].resource, b[m].resource);
    EXPECT_EQ(a[m].machine, b[m].machine);
    EXPECT_EQ(a[m].capacity, b[m].capacity);
    EXPECT_EQ(a[m].slice_count, b[m].slice_count);
    EXPECT_EQ(a[m].exact, b[m].exact);        // exact double equality
    EXPECT_EQ(a[m].variable, b[m].variable);  // exact double equality
    ASSERT_EQ(a[m].leaves.size(), b[m].leaves.size());
    for (std::size_t l = 0; l < a[m].leaves.size(); ++l) {
      EXPECT_EQ(a[m].leaves[l].instance, b[m].leaves[l].instance);
      EXPECT_EQ(a[m].leaves[l].first_slice, b[m].leaves[l].first_slice);
      EXPECT_EQ(a[m].leaves[l].active_fraction,
                b[m].leaves[l].active_fraction);
    }
  }
}

void expect_identical_usage(const AttributedUsage& a,
                            const AttributedUsage& b) {
  ASSERT_EQ(a.resources.size(), b.resources.size());
  for (std::size_t r = 0; r < a.resources.size(); ++r) {
    SCOPED_TRACE("resource " + std::to_string(r));
    const AttributedResource& x = a.resources[r];
    const AttributedResource& y = b.resources[r];
    EXPECT_EQ(x.resource, y.resource);
    EXPECT_EQ(x.machine, y.machine);
    EXPECT_EQ(x.capacity, y.capacity);
    EXPECT_EQ(x.upsampled.usage, y.upsampled.usage);
    EXPECT_EQ(x.upsampled.unallocated, y.upsampled.unallocated);
    EXPECT_EQ(x.slice_offsets, y.slice_offsets);
    EXPECT_EQ(x.unattributed, y.unattributed);
    ASSERT_EQ(x.entries.size(), y.entries.size());
    for (std::size_t e = 0; e < x.entries.size(); ++e) {
      EXPECT_EQ(x.entries[e].instance, y.entries[e].instance);
      EXPECT_EQ(x.entries[e].usage, y.entries[e].usage);
      EXPECT_EQ(x.entries[e].demand, y.entries[e].demand);
      EXPECT_EQ(x.entries[e].fraction, y.entries[e].fraction);
      EXPECT_EQ(x.entries[e].exact, y.entries[e].exact);
    }
  }
}

void expect_identical_bottlenecks(const BottleneckReport& a,
                                  const BottleneckReport& b) {
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.self_limited, b.self_limited);
  ASSERT_EQ(a.saturation.size(), b.saturation.size());
  for (std::size_t s = 0; s < a.saturation.size(); ++s) {
    EXPECT_EQ(a.saturation[s].resource, b.saturation[s].resource);
    EXPECT_EQ(a.saturation[s].machine, b.saturation[s].machine);
    EXPECT_EQ(a.saturation[s].saturated, b.saturation[s].saturated);
    EXPECT_EQ(a.saturation[s].total_saturated,
              b.saturation[s].total_saturated);
  }
}

void expect_identical_issues(const std::vector<PerformanceIssue>& a,
                             const std::vector<PerformanceIssue>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("issue " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].resource, b[i].resource);
    EXPECT_EQ(a[i].phase_type, b[i].phase_type);
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_EQ(a[i].baseline_makespan, b[i].baseline_makespan);
    EXPECT_EQ(a[i].optimistic_makespan, b[i].optimistic_makespan);
    EXPECT_EQ(a[i].impact, b[i].impact);  // exact double equality
  }
}

void expect_identical(const CharacterizationResult& a,
                      const CharacterizationResult& b) {
  EXPECT_EQ(a.trace.instances().size(), b.trace.instances().size());
  EXPECT_EQ(a.trace.end_time(), b.trace.end_time());
  expect_identical_demand(a.demand, b.demand);
  expect_identical_usage(a.usage, b.usage);
  expect_identical_bottlenecks(a.bottlenecks, b.bottlenecks);
  expect_identical_issues(a.issues, b.issues);
  EXPECT_EQ(a.baseline_makespan, b.baseline_makespan);
}

TEST(PipelineDeterminismTest, TwoThreadsMatchesSerialBitForBit) {
  const CharacterizationResult serial = characterize_with(1);
  const CharacterizationResult parallel = characterize_with(2);
  expect_identical(serial, parallel);
}

TEST(PipelineDeterminismTest, EightThreadsMatchesSerialBitForBit) {
  const CharacterizationResult serial = characterize_with(1);
  const CharacterizationResult parallel = characterize_with(8);
  expect_identical(serial, parallel);
}

TEST(PipelineDeterminismTest, RepeatedParallelRunsAreStable) {
  // Scheduling differs run to run; the result must not.
  const CharacterizationResult first = characterize_with(8);
  for (int repeat = 0; repeat < 3; ++repeat) {
    expect_identical(first, characterize_with(8));
  }
}

}  // namespace
}  // namespace g10::core
