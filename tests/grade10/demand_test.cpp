#include "grade10/attribution/demand.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_block;

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  PhaseTypeId a = kNoPhaseType;
  PhaseTypeId b = kNoPhaseType;
  ResourceId cpu = kNoResource;

  Fixture() {
    const PhaseTypeId job = execution.add_root("Job");
    a = execution.add_child(job, "A");
    b = execution.add_child(job, "B");
    cpu = resources.add_consumable("cpu", 4.0);
    rules.set(a, cpu, AttributionRule::exact(2.0));
    rules.set(b, cpu, AttributionRule::variable(1.0));
  }
};

TEST(DemandTest, SumsExactAndVariablePerSlice) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 60);
  add_phase(events, "Job.0/A.0", 0, 40, 0);
  add_phase(events, "Job.0/B.0", 20, 60, 0);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  const auto matrices =
      estimate_demand(f.resources, f.rules, trace, grid);

  ASSERT_EQ(matrices.size(), 1u);  // cpu on machine 0
  const DemandMatrix& m = matrices[0];
  EXPECT_EQ(m.machine, 0);
  EXPECT_EQ(m.slice_count, 6);
  // A (Exact 2) active slices 0-3; B (Variable 1) active slices 2-5.
  EXPECT_DOUBLE_EQ(m.exact[0], 2.0);
  EXPECT_DOUBLE_EQ(m.exact[1], 2.0);
  EXPECT_DOUBLE_EQ(m.exact[3], 2.0);
  EXPECT_DOUBLE_EQ(m.exact[4], 0.0);
  EXPECT_DOUBLE_EQ(m.variable[0], 0.0);
  EXPECT_DOUBLE_EQ(m.variable[2], 1.0);
  EXPECT_DOUBLE_EQ(m.variable[5], 1.0);
  EXPECT_EQ(m.leaves.size(), 2u);
}

TEST(DemandTest, BlockedIntervalsRemoveDemand) {
  Fixture f;
  f.resources.add_blocking("GC");
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 40);
  add_phase(events, "Job.0/A.0", 0, 40, 0);
  std::vector<trace::BlockingEventRecord> blocks{
      make_block("GC", "Job.0/A.0", 10, 20, 0)};
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, blocks);
  const TimesliceGrid grid(10);
  const auto matrices = estimate_demand(f.resources, f.rules, trace, grid);
  const DemandMatrix& m = matrices[0];
  EXPECT_DOUBLE_EQ(m.exact[0], 2.0);
  EXPECT_DOUBLE_EQ(m.exact[1], 0.0);  // blocked: no demand (paper §III-D1)
  EXPECT_DOUBLE_EQ(m.exact[2], 2.0);
}

TEST(DemandTest, FractionalSliceCoverage) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/A.0", 5, 20, 0);  // half of slice 0
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  const auto matrices = estimate_demand(f.resources, f.rules, trace, grid);
  EXPECT_DOUBLE_EQ(matrices[0].exact[0], 1.0);  // 2.0 * 0.5
  EXPECT_DOUBLE_EQ(matrices[0].exact[1], 2.0);
}

TEST(DemandTest, OneMatrixPerMachine) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/A.0", 0, 20, 0);
  add_phase(events, "Job.0/B.0", 0, 20, 1);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  const auto matrices = estimate_demand(f.resources, f.rules, trace, grid);
  ASSERT_EQ(matrices.size(), 2u);
  // Machine 0 sees only A's exact demand; machine 1 only B's variable.
  for (const auto& m : matrices) {
    if (m.machine == 0) {
      EXPECT_DOUBLE_EQ(m.exact[0], 2.0);
      EXPECT_DOUBLE_EQ(m.variable[0], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(m.exact[0], 0.0);
      EXPECT_DOUBLE_EQ(m.variable[0], 1.0);
    }
  }
}

TEST(DemandTest, GlobalResourceCoversAllMachines) {
  Fixture f;
  const ResourceId lock =
      f.resources.add_consumable("lock", 1.0, ResourceScope::kGlobal);
  f.rules.set(f.a, lock, AttributionRule::variable(1.0));
  f.rules.set(f.b, lock, AttributionRule::variable(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/A.0", 0, 20, 0);
  add_phase(events, "Job.0/B.0", 0, 20, 1);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  const auto matrices = estimate_demand(f.resources, f.rules, trace, grid);
  const DemandMatrix* global = nullptr;
  for (const auto& m : matrices) {
    if (m.resource == lock) global = &m;
  }
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->machine, trace::kGlobalMachine);
  EXPECT_DOUBLE_EQ(global->variable[0], 2.0);  // both leaves contribute
}

TEST(DemandTest, NoneRuleExcludesPhase) {
  Fixture f;
  f.rules.set(f.b, f.cpu, AttributionRule::none());
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/B.0", 0, 20, 0);
  const auto trace =
      ExecutionTrace::build(f.execution, f.resources, events, {});
  const TimesliceGrid grid(10);
  const auto matrices = estimate_demand(f.resources, f.rules, trace, grid);
  EXPECT_DOUBLE_EQ(matrices[0].variable[0], 0.0);
  EXPECT_TRUE(matrices[0].leaves.empty());
}

}  // namespace
}  // namespace g10::core
