#include "grade10/bottleneck/bottleneck.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace g10::core {
namespace {

using testing::add_phase;
using testing::make_block;
using testing::make_sample;

struct Fixture {
  ExecutionModel execution;
  ResourceModel resources;
  AttributionRuleSet rules;
  PhaseTypeId a = kNoPhaseType;
  ResourceId cpu = kNoResource;
  ResourceId gc = kNoResource;

  Fixture() {
    const PhaseTypeId job = execution.add_root("Job");
    a = execution.add_child(job, "A");
    cpu = resources.add_consumable("cpu", 4.0);
    gc = resources.add_blocking("GC");
  }

  struct Built {
    ExecutionTrace trace;
    AttributedUsage usage;
    BottleneckReport report;
  };

  Built build(const std::vector<trace::PhaseEventRecord>& events,
              const std::vector<trace::BlockingEventRecord>& blocks,
              const std::vector<trace::MonitoringSampleRecord>& samples,
              const AnalysisConfig& config) {
    const TimesliceGrid grid(config.timeslice);
    Built out{ExecutionTrace::build(execution, resources, events, blocks),
              {},
              {}};
    const auto demand = estimate_demand(resources, rules, out.trace, grid);
    const auto monitored = ResourceTrace::build(resources, samples);
    out.usage = attribute_usage(demand, monitored, grid);
    out.report = detect_bottlenecks(out.usage, out.trace, grid, config);
    return out;
  }
};

TEST(BottleneckTest, BlockedTimeAccounting) {
  Fixture f;
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 100);
  add_phase(events, "Job.0/A.0", 0, 100, 0);
  std::vector<trace::BlockingEventRecord> blocks{
      make_block("GC", "Job.0/A.0", 10, 30, 0),
      make_block("GC", "Job.0/A.0", 50, 60, 0)};
  AnalysisConfig config;
  config.timeslice = 10;
  const auto built = f.build(events, blocks, {}, config);
  const InstanceId a = built.trace.find("Job.0/A.0");
  EXPECT_EQ(built.report.blocked.at({a, f.gc}), 30);
  EXPECT_EQ(built.report.bottleneck_time(a, f.gc), 30);
}

TEST(BottleneckTest, SaturationRequiresThreshold) {
  Fixture f;
  f.rules.set(f.a, f.cpu, AttributionRule::variable(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 30);
  add_phase(events, "Job.0/A.0", 0, 30, 0);
  AnalysisConfig config;
  config.timeslice = 10;
  config.saturation_threshold = 0.97;
  // Slice utilizations: 100%, 50%, 100%.
  const auto built = f.build(events, {},
                             {make_sample("cpu", 0, 10, 4.0),
                              make_sample("cpu", 0, 20, 2.0),
                              make_sample("cpu", 0, 30, 4.0)},
                             config);
  const ResourceSaturation* sat = built.report.find_saturation(f.cpu, 0);
  ASSERT_NE(sat, nullptr);
  EXPECT_TRUE(sat->saturated[0]);
  EXPECT_FALSE(sat->saturated[1]);
  EXPECT_TRUE(sat->saturated[2]);
  EXPECT_EQ(sat->total_saturated, 20);
  const InstanceId a = built.trace.find("Job.0/A.0");
  EXPECT_EQ(built.report.saturated.at({a, f.cpu}), 20);
}

TEST(BottleneckTest, MinSaturationRunLengthFiltersBlips) {
  Fixture f;
  f.rules.set(f.a, f.cpu, AttributionRule::variable(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 40);
  add_phase(events, "Job.0/A.0", 0, 40, 0);
  AnalysisConfig config;
  config.timeslice = 10;
  config.min_saturation_slices = 2;  // "extended periods" only
  const auto built = f.build(events, {},
                             {make_sample("cpu", 0, 10, 4.0),
                              make_sample("cpu", 0, 20, 1.0),
                              make_sample("cpu", 0, 30, 4.0),
                              make_sample("cpu", 0, 40, 4.0)},
                             config);
  const ResourceSaturation* sat = built.report.find_saturation(f.cpu, 0);
  ASSERT_NE(sat, nullptr);
  EXPECT_FALSE(sat->saturated[0]);  // single-slice blip dropped
  EXPECT_TRUE(sat->saturated[2]);
  EXPECT_TRUE(sat->saturated[3]);
}

TEST(BottleneckTest, SelfLimitDetectedWithoutSaturation) {
  Fixture f;
  // A is pinned to one core of four.
  f.rules.set(f.a, f.cpu, AttributionRule::exact(1.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 20);
  add_phase(events, "Job.0/A.0", 0, 20, 0);
  AnalysisConfig config;
  config.timeslice = 10;
  // Usage exactly at A's cap (1 core) but far below capacity (4).
  const auto built = f.build(
      events, {},
      {make_sample("cpu", 0, 10, 1.0), make_sample("cpu", 0, 20, 1.0)},
      config);
  const InstanceId a = built.trace.find("Job.0/A.0");
  EXPECT_EQ(built.report.self_limited.at({a, f.cpu}), 20);
  EXPECT_TRUE(built.report.saturated.find({a, f.cpu}) ==
              built.report.saturated.end());
}

TEST(BottleneckTest, NoSelfLimitWhenUsageBelowCap) {
  Fixture f;
  f.rules.set(f.a, f.cpu, AttributionRule::exact(2.0));
  std::vector<trace::PhaseEventRecord> events;
  add_phase(events, "Job.0", 0, 10);
  add_phase(events, "Job.0/A.0", 0, 10, 0);
  AnalysisConfig config;
  config.timeslice = 10;
  const auto built =
      f.build(events, {}, {make_sample("cpu", 0, 10, 1.0)}, config);
  const InstanceId a = built.trace.find("Job.0/A.0");
  EXPECT_TRUE(built.report.self_limited.find({a, f.cpu}) ==
              built.report.self_limited.end());
}

TEST(BottleneckTest, TotalsByResourceAggregates) {
  std::map<std::pair<InstanceId, ResourceId>, DurationNs> m;
  m[{1, 0}] = 10;
  m[{2, 0}] = 20;
  m[{1, 1}] = 5;
  const auto totals = BottleneckReport::totals_by_resource(m);
  EXPECT_EQ(totals.at(0), 30);
  EXPECT_EQ(totals.at(1), 5);
}

}  // namespace
}  // namespace g10::core
