// Shared helpers for hand-building traces in the grade10 tests.
#pragma once

#include <string>
#include <vector>

#include "trace/records.hpp"

namespace g10::core::testing {

inline trace::PhasePath make_path(const std::string& text) {
  auto parsed = trace::parse_phase_path(text);
  if (!parsed) throw std::runtime_error("bad test path: " + text);
  return *parsed;
}

/// Appends a begin/end pair for one phase instance.
inline void add_phase(std::vector<trace::PhaseEventRecord>& events,
                      const std::string& path, TimeNs begin, TimeNs end,
                      trace::MachineId machine = trace::kGlobalMachine) {
  events.push_back({trace::PhaseEventRecord::Kind::Begin, make_path(path),
                    begin, machine});
  events.push_back(
      {trace::PhaseEventRecord::Kind::End, make_path(path), end, machine});
}

inline trace::BlockingEventRecord make_block(
    const std::string& resource, const std::string& path, TimeNs begin,
    TimeNs end, trace::MachineId machine = trace::kGlobalMachine) {
  return {resource, make_path(path), begin, end, machine};
}

inline trace::MonitoringSampleRecord make_sample(
    const std::string& resource, trace::MachineId machine, TimeNs time,
    double value) {
  return {resource, machine, time, value};
}

}  // namespace g10::core::testing
