#include "algorithms/programs.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace g10::algorithms {
namespace {

using graph::GraphBuilder;

TEST(ModeSmallestLabelTest, SingleValue) {
  EXPECT_DOUBLE_EQ(mode_smallest_label({3.0}), 3.0);
}

TEST(ModeSmallestLabelTest, ClearMode) {
  EXPECT_DOUBLE_EQ(mode_smallest_label({1.0, 2.0, 2.0, 3.0}), 2.0);
}

TEST(ModeSmallestLabelTest, TieGoesToSmallest) {
  EXPECT_DOUBLE_EQ(mode_smallest_label({5.0, 5.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(mode_smallest_label({3.0, 2.0, 1.0}), 1.0);
}

TEST(PageRankProgramTest, ConfiguresEngineContract) {
  const PageRank pr(10);
  EXPECT_EQ(pr.combiner(), Combiner::kSum);
  EXPECT_EQ(pr.max_supersteps(), 11);
  EXPECT_EQ(pr.max_iterations(), 10);
  EXPECT_EQ(pr.gather_edges(), GatherEdges::kIn);
  EXPECT_EQ(pr.name(), "PageRank");
}

TEST(PageRankProgramTest, InitialValueIsUniform) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const PageRank pr(5);
  EXPECT_DOUBLE_EQ(pr.initial_value(0, g), 0.25);
}

TEST(PageRankProgramTest, ComputeAppliesDamping) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const PageRank pr(5, 0.85);
  double value = 0.5;
  const double messages[] = {0.4};
  PregelOutbox out;
  pr.compute(0, value, std::span<const double>(messages, 1), 1, g, out);
  EXPECT_NEAR(value, 0.15 / 2 + 0.85 * 0.4, 1e-12);
  EXPECT_TRUE(out.send_to_all_neighbors);
  EXPECT_FALSE(out.vote_to_halt);
  EXPECT_NEAR(out.message, value, 1e-12);  // out-degree 1
}

TEST(PageRankProgramTest, HaltsAfterLastIteration) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const PageRank pr(3);
  double value = 0.5;
  PregelOutbox out;
  pr.compute(0, value, {}, 3, g, out);
  EXPECT_TRUE(out.vote_to_halt);
  EXPECT_FALSE(out.send_to_all_neighbors);
}

TEST(BfsProgramTest, SourceSendsAtSuperstepZero) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const Bfs bfs(0);
  EXPECT_EQ(bfs.combiner(), Combiner::kMin);
  double value = bfs.initial_value(0, g);
  EXPECT_DOUBLE_EQ(value, 0.0);
  PregelOutbox out;
  bfs.compute(0, value, {}, 0, g, out);
  EXPECT_TRUE(out.send_to_all_neighbors);
  EXPECT_DOUBLE_EQ(out.message, 1.0);
  EXPECT_TRUE(out.vote_to_halt);
}

TEST(BfsProgramTest, NonSourceStaysSilentAtZero) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const Bfs bfs(0);
  double value = bfs.initial_value(1, g);
  PregelOutbox out;
  bfs.compute(1, value, {}, 0, g, out);
  EXPECT_FALSE(out.send_to_all_neighbors);
  EXPECT_TRUE(out.vote_to_halt);
}

TEST(BfsProgramTest, ImprovedDistancePropagates) {
  GraphBuilder b(3);
  b.add_edge(1, 2);
  const auto g = b.build({});
  const Bfs bfs(0);
  double value = bfs.initial_value(1, g);
  const double messages[] = {1.0};
  PregelOutbox out;
  bfs.compute(1, value, std::span<const double>(messages, 1), 1, g, out);
  EXPECT_DOUBLE_EQ(value, 1.0);
  EXPECT_TRUE(out.send_to_all_neighbors);
  EXPECT_DOUBLE_EQ(out.message, 2.0);
}

TEST(WccProgramTest, GasApplyTakesMin) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const Wcc wcc;
  const graph::VertexId nbrs[] = {0, 2};
  const double values[] = {5.0, 1.0};
  EXPECT_DOUBLE_EQ(wcc.apply(1, 3.0, nbrs, values, {}, 0, g), 1.0);
  EXPECT_TRUE(wcc.scatter_activates(1, 3.0, 1.0, 0));
  EXPECT_FALSE(wcc.scatter_activates(1, 3.0, 3.0, 0));
}

TEST(CdlpProgramTest, GasApplyTakesModeOrKeepsOwn) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build({});
  const Cdlp cdlp(4);
  const graph::VertexId nbrs[] = {0, 2};
  const double values[] = {7.0, 7.0};
  EXPECT_DOUBLE_EQ(cdlp.apply(1, 1.0, nbrs, values, {}, 0, g), 7.0);
  EXPECT_DOUBLE_EQ(cdlp.apply(1, 1.0, {}, {}, {}, 0, g), 1.0);
  EXPECT_EQ(cdlp.combiner(), Combiner::kNone);
}

}  // namespace
}  // namespace g10::algorithms
