#include "algorithms/reference.hpp"

#include <gtest/gtest.h>

#include <limits>

#include <cmath>

#include "common/check.hpp"
#include "graph/builder.hpp"

namespace g10::algorithms {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

constexpr double kInf = std::numeric_limits<double>::infinity();

Graph chain4() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build({});
}

Graph two_triangles() {
  // {0,1,2} and {3,4,5}, undirected.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  GraphBuilder::Options options;
  options.symmetrize = true;
  return b.build(options);
}

TEST(BfsReferenceTest, ChainDistances) {
  const auto dist = bfs_reference(chain4(), 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
}

TEST(BfsReferenceTest, UnreachableIsInfinite) {
  const auto dist = bfs_reference(chain4(), 2);
  EXPECT_DOUBLE_EQ(dist[2], 0.0);
  EXPECT_DOUBLE_EQ(dist[3], 1.0);
  EXPECT_EQ(dist[0], kInf);
  EXPECT_EQ(dist[1], kInf);
}

TEST(WccReferenceTest, TwoComponents) {
  const auto labels = wcc_reference(two_triangles());
  EXPECT_DOUBLE_EQ(labels[0], 0.0);
  EXPECT_DOUBLE_EQ(labels[1], 0.0);
  EXPECT_DOUBLE_EQ(labels[2], 0.0);
  EXPECT_DOUBLE_EQ(labels[3], 3.0);
  EXPECT_DOUBLE_EQ(labels[4], 3.0);
  EXPECT_DOUBLE_EQ(labels[5], 3.0);
}

TEST(WccReferenceTest, DirectedEdgesStillConnect) {
  // WCC treats edges as undirected even in a directed chain.
  const auto labels = wcc_reference(chain4());
  for (const double l : labels) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(PageRankReferenceTest, UniformOnRing) {
  GraphBuilder b(4);
  for (VertexId v = 0; v < 4; ++v) b.add_edge(v, (v + 1) % 4);
  const auto pr = pagerank_reference(b.build({}), 20);
  for (const double x : pr) EXPECT_NEAR(x, 0.25, 1e-9);
}

TEST(PageRankReferenceTest, SinkAccumulatesMass) {
  // 0 -> 2, 1 -> 2: vertex 2 gets more rank than 0 and 1.
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const auto pr = pagerank_reference(b.build({}), 10);
  EXPECT_GT(pr[2], pr[0]);
  EXPECT_NEAR(pr[0], pr[1], 1e-12);
}

TEST(PageRankReferenceTest, MassIsBoundedByOne) {
  const auto pr = pagerank_reference(two_triangles(), 15);
  double sum = 0.0;
  for (const double x : pr) sum += x;
  // No dangling vertices in this graph: mass conserved.
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankReferenceTest, ZeroIterationsIsInitialValue) {
  const auto pr = pagerank_reference(chain4(), 0);
  for (const double x : pr) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(SsspReferenceTest, WeightedShortcutBeatsDirectEdge) {
  // 0 -> 2 costs 10 directly, but 0 -> 1 -> 2 costs 3.
  GraphBuilder b(3);
  b.add_edge(0, 2, 10.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  const auto dist = sssp_reference(b.build({}), 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
}

TEST(SsspReferenceTest, UnweightedEqualsBfs) {
  const auto g = two_triangles();
  const auto bfs = bfs_reference(g, 0);
  const auto sssp = sssp_reference(g, 0);
  for (std::size_t v = 0; v < bfs.size(); ++v) {
    if (std::isinf(bfs[v])) {
      EXPECT_TRUE(std::isinf(sssp[v]));
    } else {
      EXPECT_DOUBLE_EQ(sssp[v], bfs[v]);
    }
  }
}

TEST(SsspReferenceTest, UnreachableIsInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  const auto dist = sssp_reference(b.build({}), 0);
  EXPECT_EQ(dist[2], kInf);
}

TEST(SsspReferenceTest, RejectsNegativeWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, -1.0);
  EXPECT_THROW(sssp_reference(b.build({}), 0), CheckError);
}

TEST(CdlpReferenceTest, CliquesConvergeToMinLabel) {
  const auto labels = cdlp_reference(two_triangles(), 5);
  EXPECT_DOUBLE_EQ(labels[0], 0.0);
  EXPECT_DOUBLE_EQ(labels[1], 0.0);
  EXPECT_DOUBLE_EQ(labels[2], 0.0);
  EXPECT_DOUBLE_EQ(labels[3], 3.0);
  EXPECT_DOUBLE_EQ(labels[4], 3.0);
  EXPECT_DOUBLE_EQ(labels[5], 3.0);
}

TEST(CdlpReferenceTest, IsolatedVertexKeepsOwnLabel) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto labels = cdlp_reference(b.build({}), 3);
  EXPECT_DOUBLE_EQ(labels[2], 2.0);
}

TEST(CdlpReferenceTest, OneIterationTakesNeighborMode) {
  // 2 has in-neighbors {0, 1}; mode ties to the smallest label (0).
  GraphBuilder b(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const auto labels = cdlp_reference(b.build({}), 1);
  EXPECT_DOUBLE_EQ(labels[2], 0.0);
}

}  // namespace
}  // namespace g10::algorithms
