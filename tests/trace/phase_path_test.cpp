#include "trace/phase_path.hpp"

#include <gtest/gtest.h>

namespace g10::trace {
namespace {

TEST(PhasePathTest, BuildAndFormat) {
  const PhasePath p =
      PhasePath{}.child("Job", 0).child("Superstep", 3).child("Thread", 12);
  EXPECT_EQ(p.to_string(), "Job.0/Superstep.3/Thread.12");
  EXPECT_EQ(p.depth(), 3u);
  EXPECT_EQ(p.leaf().type, "Thread");
  EXPECT_EQ(p.leaf().index, 12);
}

TEST(PhasePathTest, ParentDropsLeaf) {
  const PhasePath p = PhasePath{}.child("A", 0).child("B", 1);
  EXPECT_EQ(p.parent().to_string(), "A.0");
  EXPECT_TRUE(p.parent().parent().empty());
}

TEST(PhasePathTest, ParseRoundTrip) {
  const auto parsed = parse_phase_path("Job.0/Superstep.3/Thread.12");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_string(), "Job.0/Superstep.3/Thread.12");
}

TEST(PhasePathTest, ParseSingleElement) {
  const auto parsed = parse_phase_path("Job.0");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->depth(), 1u);
}

TEST(PhasePathTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_phase_path("").has_value());
  EXPECT_FALSE(parse_phase_path("Job").has_value());
  EXPECT_FALSE(parse_phase_path("Job.").has_value());
  EXPECT_FALSE(parse_phase_path(".0").has_value());
  EXPECT_FALSE(parse_phase_path("Job.-1").has_value());
  EXPECT_FALSE(parse_phase_path("Job.x").has_value());
  EXPECT_FALSE(parse_phase_path("Job.0//B.1").has_value());
}

TEST(PhasePathTest, TypeNamesMayContainDots) {
  // rfind-based parse: the last dot separates the index.
  const auto parsed = parse_phase_path("My.Phase.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->leaf().type, "My.Phase");
  EXPECT_EQ(parsed->leaf().index, 3);
}

TEST(PhasePathTest, Equality) {
  const PhasePath a = PhasePath{}.child("A", 0);
  const PhasePath b = PhasePath{}.child("A", 0);
  const PhasePath c = PhasePath{}.child("A", 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace g10::trace
