#include "trace/log_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace g10::trace {
namespace {

/// Round-trips parsed records back to text so two ParseResults can be
/// compared for record-level equality with one string comparison.
std::string serialize(const ParsedLog& log) {
  std::ostringstream os;
  write_log(os, log.phase_events, log.blocking_events, log.samples);
  return os.str();
}

TEST(LogIoTest, WriteParseRoundTrip) {
  std::vector<PhaseEventRecord> phases;
  phases.push_back({PhaseEventRecord::Kind::Begin,
                    PhasePath{}.child("Job", 0), 0, kGlobalMachine});
  phases.push_back({PhaseEventRecord::Kind::End, PhasePath{}.child("Job", 0),
                    5000, kGlobalMachine});
  std::vector<BlockingEventRecord> blocks;
  blocks.push_back({"GC", PhasePath{}.child("Job", 0).child("T", 2), 10, 20, 1});
  std::vector<MonitoringSampleRecord> samples;
  samples.push_back({"cpu", 0, 1000, 3.25});
  samples.push_back({"network", 1, 2000, 1.5e8});

  std::ostringstream os;
  write_log(os, phases, blocks, samples);
  std::istringstream is(os.str());
  const ParseResult result = parse_log(is);
  ASSERT_TRUE(result.ok()) << result.error->message;

  ASSERT_EQ(result.log.phase_events.size(), 2u);
  EXPECT_EQ(result.log.phase_events[0].kind, PhaseEventRecord::Kind::Begin);
  EXPECT_EQ(result.log.phase_events[1].time, 5000);
  EXPECT_EQ(result.log.phase_events[0].path.to_string(), "Job.0");

  ASSERT_EQ(result.log.blocking_events.size(), 1u);
  EXPECT_EQ(result.log.blocking_events[0].resource, "GC");
  EXPECT_EQ(result.log.blocking_events[0].begin, 10);
  EXPECT_EQ(result.log.blocking_events[0].end, 20);
  EXPECT_EQ(result.log.blocking_events[0].machine, 1);

  ASSERT_EQ(result.log.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(result.log.samples[0].value, 3.25);
  EXPECT_DOUBLE_EQ(result.log.samples[1].value, 1.5e8);
}

TEST(LogIoTest, MetaRecordsRoundTripAndLookUp) {
  std::vector<PhaseEventRecord> phases;
  phases.push_back({PhaseEventRecord::Kind::Begin,
                    PhasePath{}.child("Job", 0), 0, kGlobalMachine});
  std::ostringstream os;
  write_log(os, phases, {}, {},
            {{"faults", "crash:w1@40%"}, {"engine", "pregel"}});
  // META records follow the header, before any PHASE record.
  EXPECT_EQ(os.str().find("META\tfaults\tcrash:w1@40%"),
            os.str().find('\n') + 1);
  const ParseResult result = parse_log_text(os.str());
  ASSERT_TRUE(result.ok()) << result.error->message;
  ASSERT_EQ(result.log.meta.size(), 2u);
  EXPECT_EQ(result.log.meta_value("faults"), "crash:w1@40%");
  EXPECT_EQ(result.log.meta_value("engine"), "pregel");
  EXPECT_EQ(result.log.meta_value("absent"), std::nullopt);
}

TEST(LogIoTest, MetaValueKeepsEmbeddedTabsAndRejectsMissingFields) {
  const ParseResult tabs = parse_log_text("META\tnote\ta\tb\tc\n");
  ASSERT_TRUE(tabs.ok());
  EXPECT_EQ(tabs.log.meta_value("note"), "a\tb\tc");
  EXPECT_FALSE(parse_log_text("META\tonlykey\n").ok());
  EXPECT_FALSE(parse_log_text("META\t\tvalue\n").ok());
}

TEST(LogIoTest, IgnoresCommentsAndBlankLines) {
  std::istringstream is("# comment\n\nPHASE\tB\tJob.0\t0\t-1\n");
  const ParseResult result = parse_log(is);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.log.phase_events.size(), 1u);
}

TEST(LogIoTest, ReportsLineNumberOnError) {
  std::istringstream is("# ok\nPHASE\tB\tJob.0\t0\t-1\nPHASE\tX\tJob.0\t1\t-1\n");
  const ParseResult result = parse_log(is);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line_number, 3u);
  EXPECT_NE(result.error->message.find("B or E"), std::string::npos);
}

TEST(LogIoTest, RejectsBadRecords) {
  const auto fails = [](const std::string& line) {
    std::istringstream is(line);
    return !parse_log(is).ok();
  };
  EXPECT_TRUE(fails("WHAT\tis\tthis\n"));
  EXPECT_TRUE(fails("PHASE\tB\tJob.0\t-5\t-1\n"));        // negative time
  EXPECT_TRUE(fails("PHASE\tB\tJob\t0\t-1\n"));           // bad path
  EXPECT_TRUE(fails("PHASE\tB\tJob.0\t0\n"));             // missing field
  EXPECT_TRUE(fails("BLOCK\tGC\tJob.0\t20\t10\t0\n"));    // end < begin
  EXPECT_TRUE(fails("BLOCK\t\tJob.0\t0\t10\t0\n"));       // empty resource
  EXPECT_TRUE(fails("SAMPLE\tcpu\t0\t100\tnotanumber\n"));
}

TEST(LogIoTest, EmptyLogIsValid) {
  std::istringstream is("");
  EXPECT_TRUE(parse_log(is).ok());
}

// Robustness: arbitrary mutations of a valid log either parse (when the
// mutation hits a comment/number in a compatible way) or fail cleanly with
// a line number — never crash and never produce out-of-range records.
TEST(LogIoTest, MutatedLogsFailCleanly) {
  std::vector<PhaseEventRecord> phases;
  phases.push_back({PhaseEventRecord::Kind::Begin,
                    PhasePath{}.child("Job", 0), 0, -1});
  phases.push_back({PhaseEventRecord::Kind::End, PhasePath{}.child("Job", 0),
                    5000, -1});
  std::ostringstream os;
  write_log(os, phases, {}, {});
  const std::string original = os.str();
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (const char replacement : {'\t', 'x', '-', '0'}) {
      std::string mutated = original;
      mutated[pos] = replacement;
      std::istringstream is(mutated);
      const ParseResult result = parse_log(is);  // must not crash
      if (!result.ok()) {
        EXPECT_GT(result.error->line_number, 0u);
        EXPECT_FALSE(result.error->message.empty());
      } else {
        for (const auto& rec : result.log.phase_events) {
          EXPECT_GE(rec.time, 0);
        }
      }
    }
  }
}

TEST(LogIoTest, ErrorCarriesOffendingLineText) {
  std::istringstream is("PHASE\tX\tJob.0\t1\t-1\n");
  const ParseResult result = parse_log(is);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line, "PHASE\tX\tJob.0\t1\t-1");
}

TEST(LogIoTest, RecoveryModeSkipsBadLinesAndKeepsGoing) {
  std::istringstream is(
      "PHASE\tB\tJob.0\t0\t-1\n"
      "garbage line\n"
      "PHASE\tX\tJob.0\t1\t-1\n"
      "PHASE\tE\tJob.0\t5\t-1\n");
  ParseOptions options;
  options.recover = true;
  const ParseResult result = parse_log(is, options);
  // Good records around the damage are all kept.
  EXPECT_EQ(result.log.phase_events.size(), 2u);
  EXPECT_EQ(result.error_count, 2u);
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0].line_number, 2u);
  EXPECT_EQ(result.errors[1].line_number, 3u);
  // The first error is also surfaced the legacy way.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line_number, 2u);
}

TEST(LogIoTest, RecoveryModeCapsStoredErrors) {
  std::ostringstream os;
  for (int i = 0; i < 50; ++i) os << "junk\t" << i << '\n';
  std::istringstream is(os.str());
  ParseOptions options;
  options.recover = true;
  options.max_errors = 8;
  const ParseResult result = parse_log(is, options);
  EXPECT_EQ(result.errors.size(), 8u);
  EXPECT_EQ(result.error_count, 50u);
}

TEST(LogIoTest, TruncatedLastLineFailsCleanlyInStrictMode) {
  // A crashed writer typically leaves a half-written last line.
  std::istringstream is("PHASE\tB\tJob.0\t0\t-1\nPHASE\tE\tJo");
  const ParseResult result = parse_log(is);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line_number, 2u);
  EXPECT_EQ(result.log.phase_events.size(), 1u);
}

TEST(LogIoTest, HandlesWindowsLineEndings) {
  std::istringstream is("PHASE\tB\tJob.0\t0\t-1\r\nPHASE\tE\tJob.0\t5\t-1\r\n");
  const ParseResult result = parse_log(is);
  ASSERT_TRUE(result.ok()) << result.error->message;
  EXPECT_EQ(result.log.phase_events.size(), 2u);
}

TEST(LogIoTest, FinalLineWithoutNewlineIsParsed) {
  const std::string text = "PHASE\tB\tJob.0\t0\t-1\nPHASE\tE\tJob.0\t5\t-1";
  const ParseResult result = parse_log_text(text);
  ASSERT_TRUE(result.ok()) << result.error->message;
  ASSERT_EQ(result.log.phase_events.size(), 2u);
  EXPECT_EQ(result.log.phase_events[1].time, 5);
}

// ---------------------------------------------------------------------------
// Chunked concurrent parsing. min_chunk_bytes is lowered to force tiny logs
// into many chunks; results must match the serial parse exactly.

/// A log with records on every line and damage at the given 1-based lines.
std::string make_log(std::size_t lines, const std::vector<std::size_t>& bad) {
  std::ostringstream os;
  for (std::size_t i = 1; i <= lines; ++i) {
    if (std::find(bad.begin(), bad.end(), i) != bad.end()) {
      os << "BROKEN\trecord\t" << i << '\n';
    } else if (i % 7 == 0) {
      os << "# comment line " << i << '\n';
    } else if (i % 3 == 0) {
      os << "SAMPLE\tcpu\t0\t" << i * 100 << "\t"
         << 0.25 * static_cast<double>(i) << '\n';
    } else {
      os << "PHASE\t" << (i % 2 ? 'B' : 'E') << "\tJob.0\t" << i * 10
         << "\t-1\n";
    }
  }
  return os.str();
}

TEST(LogIoTest, ChunkedLenientParseMatchesSerialExactly) {
  const std::string text = make_log(500, {40, 41, 333, 499});
  ParseOptions serial_options;
  serial_options.recover = true;
  serial_options.threads = 1;
  const ParseResult serial = parse_log_text(text, serial_options);

  ParseOptions chunked_options = serial_options;
  chunked_options.threads = 4;
  chunked_options.min_chunk_bytes = 64;  // force many chunks
  const ParseResult chunked = parse_log_text(text, chunked_options);

  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));
  EXPECT_EQ(chunked.error_count, serial.error_count);
  ASSERT_EQ(chunked.errors.size(), serial.errors.size());
  for (std::size_t i = 0; i < serial.errors.size(); ++i) {
    EXPECT_EQ(chunked.errors[i].line_number, serial.errors[i].line_number);
    EXPECT_EQ(chunked.errors[i].message, serial.errors[i].message);
    EXPECT_EQ(chunked.errors[i].line, serial.errors[i].line);
  }
  ASSERT_TRUE(chunked.error.has_value());
  EXPECT_EQ(chunked.error->line_number, 40u);
}

TEST(LogIoTest, ChunkedLenientParseKeepsExactLineNumbersPerChunk) {
  // Bad lines placed so that (at 64-byte chunks) they land in different
  // chunks; their reported numbers must still be absolute file positions.
  const std::vector<std::size_t> bad = {5, 120, 121, 250};
  const std::string text = make_log(256, bad);
  ParseOptions options;
  options.recover = true;
  options.threads = 8;
  options.min_chunk_bytes = 64;
  const ParseResult result = parse_log_text(text, options);
  ASSERT_EQ(result.errors.size(), bad.size());
  for (std::size_t i = 0; i < bad.size(); ++i) {
    EXPECT_EQ(result.errors[i].line_number, bad[i]);
  }
  EXPECT_EQ(result.error_count, bad.size());
}

TEST(LogIoTest, ChunkedStrictParseStopsAtTheSameFirstError) {
  const std::string text = make_log(300, {142, 260});
  ParseOptions serial_options;  // strict
  serial_options.threads = 1;
  const ParseResult serial = parse_log_text(text, serial_options);

  ParseOptions chunked_options;
  chunked_options.threads = 4;
  chunked_options.min_chunk_bytes = 64;
  const ParseResult chunked = parse_log_text(text, chunked_options);

  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(chunked.ok());
  EXPECT_EQ(chunked.error->line_number, 142u);
  EXPECT_EQ(chunked.error->line_number, serial.error->line_number);
  EXPECT_EQ(chunked.error->message, serial.error->message);
  // Records kept before the stop are the same prefix at any thread count.
  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));
  EXPECT_EQ(chunked.error_count, serial.error_count);
}

/// Rewrites every "\n" as "\r\n" (CRLF logs from Windows-side tooling).
std::string with_crlf(const std::string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (const char c : text) {
    if (c == '\n') out.push_back('\r');
    out.push_back(c);
  }
  return out;
}

TEST(LogIoTest, CrlfChunkedParseMatchesSerialExactly) {
  const std::string text = with_crlf(make_log(400, {40, 251}));
  ParseOptions serial_options;
  serial_options.recover = true;
  serial_options.threads = 1;
  const ParseResult serial = parse_log_text(text, serial_options);

  ParseOptions chunked_options = serial_options;
  chunked_options.threads = 4;
  chunked_options.min_chunk_bytes = 64;
  const ParseResult chunked = parse_log_text(text, chunked_options);

  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));
  EXPECT_EQ(chunked.error_count, serial.error_count);
  ASSERT_EQ(chunked.errors.size(), serial.errors.size());
  for (std::size_t i = 0; i < serial.errors.size(); ++i) {
    EXPECT_EQ(chunked.errors[i].line_number, serial.errors[i].line_number);
    EXPECT_EQ(chunked.errors[i].line, serial.errors[i].line);
  }
  // CRLF changes bytes, not records: the LF parse yields the same records.
  const ParseResult lf = parse_log_text(make_log(400, {40, 251}),
                                        serial_options);
  EXPECT_EQ(serialize(serial.log), serialize(lf.log));
}

TEST(LogIoTest, MissingFinalNewlineChunkedParseMatchesSerial) {
  std::string text = make_log(300, {});
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();  // crashed writer: last line has no terminator

  const ParseResult serial = parse_log_text(text, {.threads = 1});
  const ParseResult chunked = parse_log_text(
      text, {.threads = 8, .min_chunk_bytes = 64});
  ASSERT_TRUE(serial.ok()) << serial.error->message;
  ASSERT_TRUE(chunked.ok()) << chunked.error->message;
  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));

  // The unterminated record is present, not dropped.
  const ParseResult terminated = parse_log_text(make_log(300, {}),
                                                {.threads = 1});
  EXPECT_EQ(serialize(serial.log), serialize(terminated.log));
}

TEST(LogIoTest, CrlfWithTruncatedFinalLineMatchesSerial) {
  // Both quirks at once: CRLF line endings and a half-written final line.
  std::string text = with_crlf(make_log(200, {}));
  text += "PHASE\tE\tJo";  // no terminator
  ParseOptions serial_options;
  serial_options.recover = true;
  serial_options.threads = 1;
  const ParseResult serial = parse_log_text(text, serial_options);

  ParseOptions chunked_options = serial_options;
  chunked_options.threads = 4;
  chunked_options.min_chunk_bytes = 64;
  const ParseResult chunked = parse_log_text(text, chunked_options);

  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));
  EXPECT_EQ(chunked.error_count, serial.error_count);
  ASSERT_EQ(serial.errors.size(), 1u);
  ASSERT_EQ(chunked.errors.size(), 1u);
  EXPECT_EQ(chunked.errors[0].line_number, serial.errors[0].line_number);
  EXPECT_EQ(chunked.errors[0].line_number, 201u);
}

TEST(LogIoTest, ChunkedParseOfCleanLogMatchesSerial) {
  const std::string text = make_log(1000, {});
  const ParseResult serial = parse_log_text(text, {.threads = 1});
  const ParseResult chunked = parse_log_text(
      text, {.threads = 8, .min_chunk_bytes = 128});
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(serialize(chunked.log), serialize(serial.log));
}

TEST(LogIoTest, ReadLogFileRoundTripsAndReportsMissingFiles) {
  const std::string path = ::testing::TempDir() + "log_io_test_run.log";
  {
    std::ofstream out(path);
    out << make_log(50, {});
  }
  const ParseResult result = read_log_file(path);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.log.phase_events.empty());
  std::remove(path.c_str());

  const ParseResult missing = read_log_file(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error->line_number, 0u);
  EXPECT_NE(missing.error->message.find("cannot open"), std::string::npos);
  EXPECT_EQ(missing.error_count, 1u);
}

}  // namespace
}  // namespace g10::trace
