// The format-independent TraceReader: text-vs-binary identity over the
// golden engine traces, mmap-vs-buffered identity, warm-cache re-reads,
// filter equivalence across formats, corrupt-block strict/lenient
// semantics, and prefetch-on/off determinism.
#include "trace/trace_reader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/g10t_io.hpp"
#include "trace/mapped_file.hpp"

namespace g10::trace {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(G10_GOLDEN_TRACE_DIR) + "/" + name;
}

const std::vector<std::string>& golden_logs() {
  static const std::vector<std::string> logs = {
      "pregel_pagerank_d512_s99.log",
      "gas_pagerank_d512_s99.log",
      "dataflow_3stage_s99.log",
  };
  return logs;
}

std::filesystem::path test_root() {
  static const std::filesystem::path root = [] {
    auto path = std::filesystem::temp_directory_path() /
                ("g10_trace_reader_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
  }();
  return root;
}

std::string render(const ParsedLog& log) {
  std::ostringstream os;
  write_log(os, log.phase_events, log.blocking_events, log.samples, log.meta);
  return os.str();
}

/// Converts a text golden to .g10t once; cached across tests.
std::string binary_of(const std::string& name,
                      std::size_t block_records = 64) {
  const std::string out =
      (test_root() / (name + "." + std::to_string(block_records) + ".g10t"))
          .string();
  if (!std::filesystem::exists(out)) {
    const ParseResult parsed = read_log_file(golden_path(name), {});
    EXPECT_TRUE(parsed.ok());
    G10tWriteOptions options;
    options.block_records = block_records;  // several blocks per kind
    std::string error;
    EXPECT_TRUE(write_g10t_file(out, parsed.log, options, &error)) << error;
  }
  return out;
}

TEST(TraceReaderTest, SniffsFormatsFromBytes) {
  const SniffResult text = sniff_trace_format(golden_path(golden_logs()[0]));
  EXPECT_EQ(text.format, TraceFormat::kText);
  const SniffResult binary =
      sniff_trace_format(binary_of(golden_logs()[0]));
  EXPECT_EQ(binary.format, TraceFormat::kBinary);
}

TEST(TraceReaderTest, BinaryReadIsByteIdenticalToTextForEveryGolden) {
  for (const std::string& name : golden_logs()) {
    const ParseResult text = read_trace_file(golden_path(name));
    ASSERT_TRUE(text.ok()) << name;
    const ParseResult binary = read_trace_file(binary_of(name));
    ASSERT_TRUE(binary.ok()) << name;
    EXPECT_EQ(render(binary.log), render(text.log)) << name;
  }
}

TEST(TraceReaderTest, BufferedReadMatchesMmapForBothFormats) {
  TraceReadOptions buffered;
  buffered.use_mmap = false;
  for (const std::string& path :
       {golden_path(golden_logs()[0]), binary_of(golden_logs()[0])}) {
    const ParseResult mapped = read_trace_file(path);
    const ParseResult plain = read_trace_file(path, buffered);
    ASSERT_TRUE(mapped.ok()) << path;
    ASSERT_TRUE(plain.ok()) << path;
    EXPECT_EQ(render(mapped.log), render(plain.log)) << path;
  }
}

TEST(TraceReaderTest, WarmReadDecodesNothingAndStaysIdentical) {
  TraceReader::OpenResult opened =
      TraceReader::open(binary_of(golden_logs()[1]), {});
  ASSERT_TRUE(opened.ok()) << *opened.error;
  const ParseResult cold = opened.reader->read();
  ASSERT_TRUE(cold.ok());
  const auto cold_stats = opened.reader->stats();
  EXPECT_GT(cold_stats.blocks_decoded, 0u);
  EXPECT_EQ(cold_stats.blocks_total,
            cold_stats.blocks_read + cold_stats.blocks_skipped);

  const ParseResult warm = opened.reader->read();
  const auto warm_stats = opened.reader->stats();
  EXPECT_EQ(warm_stats.blocks_decoded, cold_stats.blocks_decoded)
      << "warm read re-decoded blocks despite the cache";
  EXPECT_GT(warm_stats.cache.hits, 0u);
  EXPECT_EQ(render(warm.log), render(cold.log));
}

TEST(TraceReaderTest, PrefetchOnAndOffProduceIdenticalResults) {
  TraceReadOptions serial;
  serial.threads = 1;
  serial.prefetch_blocks = 0;
  TraceReadOptions prefetching;
  prefetching.threads = 4;
  prefetching.prefetch_blocks = 3;
  for (const std::string& name : golden_logs()) {
    const std::string path = binary_of(name, 16);  // many small blocks
    const ParseResult a = read_trace_file(path, serial);
    const ParseResult b = read_trace_file(path, prefetching);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(render(a.log), render(b.log)) << name;
  }
}

TEST(TraceReaderTest, FiltersMatchAcrossFormats) {
  TraceFilter machines;
  machines.machines = {0, 2};
  TraceFilter window;
  window.time_min = 1'000'000;
  window.time_max = 50'000'000;
  TraceFilter typed;
  typed.phase_types = {"Superstep"};
  typed.ancestor_types = {"Execute", "Job"};
  for (const TraceFilter& filter : {machines, window, typed}) {
    for (const std::string& name : golden_logs()) {
      const ParseResult text = read_trace_file(golden_path(name), {}, filter);
      const ParseResult binary =
          read_trace_file(binary_of(name), {}, filter);
      ASSERT_TRUE(text.ok());
      ASSERT_TRUE(binary.ok());
      EXPECT_EQ(render(binary.log), render(text.log)) << name;
    }
  }
}

TEST(TraceReaderTest, PhaseFilterKeepsSubtreePlusAncestorChainOnly) {
  TraceFilter filter;
  filter.phase_types = {"Superstep"};
  filter.ancestor_types = {"Execute", "Job"};
  const ParseResult sliced = read_trace_file(
      golden_path("pregel_pagerank_d512_s99.log"), {}, filter);
  ASSERT_TRUE(sliced.ok());
  ASSERT_FALSE(sliced.log.phase_events.empty());
  bool saw_superstep = false;
  for (const PhaseEventRecord& rec : sliced.log.phase_events) {
    // Sibling subtrees under the kept ancestors must not leak in.
    EXPECT_EQ(rec.path.to_string().find("LoadGraph"), std::string::npos);
    EXPECT_EQ(rec.path.to_string().find("StoreResults"), std::string::npos);
    for (const PathElement& element : rec.path.elements) {
      saw_superstep |= element.type == "Superstep";
    }
  }
  EXPECT_TRUE(saw_superstep);
}

TEST(TraceReaderTest, FilteredBinaryReadSkipsBlocks) {
  const std::string path = binary_of(golden_logs()[0], 16);
  TraceReader::OpenResult opened = TraceReader::open(path, {});
  ASSERT_TRUE(opened.ok());
  TraceFilter filter;
  filter.time_min = 0;
  filter.time_max = 1;  // virtually nothing overlaps
  const ParseResult result = opened.reader->read(filter);
  ASSERT_TRUE(result.ok());
  const auto stats = opened.reader->stats();
  EXPECT_GT(stats.blocks_total, 1u);
  EXPECT_GT(stats.blocks_skipped, 0u)
      << "index-based seek never rejected a block";
}

TEST(TraceReaderTest, BufferedTinyFileSurvivesMove) {
  // Files below std::string's SSO capacity live in the buffer's inline
  // storage; regression for a move that left the view pointing at the
  // moved-from object's inline bytes.
  const std::string path = (test_root() / "tiny.txt").string();
  const std::string payload = "ab\tc\n";  // well under SSO capacity
  std::ofstream(path, std::ios::binary) << payload;
  MappedFile source;
  ASSERT_FALSE(
      MappedFile::open(path, MappedFile::Options{/*use_mmap=*/false}, source)
          .has_value());
  MappedFile moved(std::move(source));
  MappedFile assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(moved.is_open());
  EXPECT_TRUE(assigned.is_open());
  EXPECT_FALSE(assigned.is_mapped());
  EXPECT_EQ(assigned.bytes(), payload);
}

TEST(TraceReaderTest, MissingFileReportsErrnoText) {
  const ParseResult result =
      read_trace_file((test_root() / "nope.g10t").string());
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->line_number, 0u);
  EXPECT_NE(result.error->message.find("nope.g10t"), std::string::npos);
  EXPECT_NE(result.error->message.find("No such file"), std::string::npos);
}

TEST(TraceReaderTest, CorruptHeaderIsAnOpenError) {
  const std::string path = (test_root() / "corrupt_header.g10t").string();
  std::string bytes;
  {
    std::ifstream in(binary_of(golden_logs()[0]), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  bytes[30] ^= 0x7f;
  std::ofstream(path, std::ios::binary) << bytes;
  TraceReader::OpenResult opened = TraceReader::open(path, {});
  EXPECT_FALSE(opened.ok());
  EXPECT_NE(opened.error->find(path), std::string::npos);
}

/// Corrupts the payload of one middle block; the header and index stay
/// intact so only that block fails to decode.
std::string corrupt_one_block(const std::string& name) {
  const std::string path = (test_root() / (name + ".corrupt.g10t")).string();
  std::string bytes;
  {
    std::ifstream in(binary_of(name, 16), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  EXPECT_TRUE(parsed.ok());
  EXPECT_GT(parsed.structure.index.size(), 2u);
  const IndexEntry& victim =
      parsed.structure.index[parsed.structure.index.size() / 2];
  bytes[victim.offset + victim.encoded_size / 2] ^= 0x33;
  std::ofstream(path, std::ios::binary) << bytes;
  return path;
}

TEST(TraceReaderTest, CorruptBlockStopsAStrictRead) {
  const std::string path = corrupt_one_block(golden_logs()[0]);
  TraceReadOptions strict;
  strict.recover = false;
  const ParseResult result = read_trace_file(path, strict);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_GT(result.error->line_number, 0u)  // 1-based block ordinal
      << "block errors must not masquerade as file-level errors";
  EXPECT_NE(result.error->message.find("block"), std::string::npos);
}

TEST(TraceReaderTest, CorruptBlockIsSkippedWhenRecovering) {
  const std::string name = golden_logs()[0];
  const std::string path = corrupt_one_block(name);
  TraceReadOptions recover;
  recover.recover = true;
  const ParseResult damaged = read_trace_file(path, recover);
  EXPECT_EQ(damaged.error_count, 1u);
  const ParseResult intact = read_trace_file(binary_of(name, 16));
  ASSERT_TRUE(intact.ok());
  // Exactly one block's records are missing; everything else survives.
  EXPECT_LT(damaged.log.phase_events.size() + damaged.log.samples.size(),
            intact.log.phase_events.size() + intact.log.samples.size());
  EXPECT_GT(damaged.log.phase_events.size(), 0u);
}

}  // namespace
}  // namespace g10::trace
