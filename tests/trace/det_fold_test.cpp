// fold_run / fold_samples: the engine-facing half of the determinism
// oracle (DESIGN.md §14). A real engine run folded twice must digest
// identically, and a seeded, injected perturbation of one event must be
// pinpointed at exactly that event's phase path — the property
// `g10_run --det-check` turns into an exit code.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "algorithms/programs.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "trace/det_fold.hpp"

namespace g10::trace {
namespace {

graph::Graph small_graph() {
  graph::DatagenParams params;
  params.vertices = 256;
  params.mean_degree = 6;
  params.seed = 7;
  return generate_datagen_like(params);
}

RunArtifacts run_engine() {
  engine::PregelConfig cfg;
  cfg.cluster.machine_count = 2;
  cfg.cluster.machine.cores = 4;
  cfg.seed = 2020;
  return engine::PregelEngine(cfg).run(small_graph(),
                                       algorithms::PageRank(3));
}

DetSummary digest(const RunArtifacts& artifacts) {
  DetHasher hasher;
  fold_run(hasher, artifacts);
  const auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 100 * kMillisecond, artifacts.makespan);
  fold_samples(hasher, samples);
  return hasher.summary();
}

TEST(DetFold, RepeatedEngineRunsDigestIdentically) {
  const DetSummary first = digest(run_engine());
  const DetSummary second = digest(run_engine());
  EXPECT_EQ(first.overall, second.overall);
  EXPECT_FALSE(first_divergence(first, second).has_value());
  EXPECT_GT(first.phases.size(), 10u);
  EXPECT_GT(first.total_folds, 100u);
}

TEST(DetFold, InjectedEventPerturbationNamesItsPhasePath) {
  const RunArtifacts baseline = run_engine();
  RunArtifacts perturbed = run_engine();
  // Nudge one phase event in the middle of the stream by a nanosecond —
  // the kind of drift a scheduling-dependent engine bug would produce.
  ASSERT_FALSE(perturbed.phase_events.empty());
  PhaseEventRecord& victim =
      perturbed.phase_events[perturbed.phase_events.size() / 2];
  victim.time += 1;
  std::string victim_path;
  victim.path.append_to(victim_path);

  const auto divergence =
      first_divergence(digest(baseline), digest(perturbed));
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, victim_path);
}

TEST(DetFold, VertexValueDriftIsCaught) {
  const RunArtifacts baseline = run_engine();
  RunArtifacts perturbed = run_engine();
  ASSERT_FALSE(perturbed.vertex_values.empty());
  // One ULP of drift in one vertex — bitwise folding must see it.
  perturbed.vertex_values.front() =
      std::nextafter(perturbed.vertex_values.front(), 1e9);
  const auto divergence =
      first_divergence(digest(baseline), digest(perturbed));
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "run/vertex_values");
}

TEST(DetFold, DroppedSampleIsCaught) {
  const RunArtifacts artifacts = run_engine();
  auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, 100 * kMillisecond, artifacts.makespan);
  ASSERT_GT(samples.size(), 1u);

  DetHasher full;
  fold_samples(full, samples);
  samples.pop_back();
  DetHasher truncated;
  fold_samples(truncated, samples);

  const auto divergence =
      first_divergence(full.summary(), truncated.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path.substr(0, 8), "monitor/");
}

}  // namespace
}  // namespace g10::trace
