// The `.g10t` codec: varint/zigzag primitives, header validation (every
// corruption comes back as an error message, never an assert), and
// write/decode round trips over the value edge cases the columnar encoding
// has to survive — deep paths, negative machines and times, exact IEEE-754
// sample bits, and tab-bearing META values.
#include "trace/g10t_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "trace/log_io.hpp"

namespace g10::trace {
namespace {

std::string render(const ParsedLog& log) {
  std::ostringstream os;
  write_log(os, log.phase_events, log.blocking_events, log.samples, log.meta);
  return os.str();
}

std::string encode(const ParsedLog& log, const G10tWriteOptions& options = {}) {
  std::ostringstream os;
  write_g10t(os, log, options);
  return os.str();
}

/// Decodes every block of an encoded stream back into one log.
ParsedLog decode_all(std::string_view bytes) {
  G10tStructureParse parsed = parse_g10t_structure(bytes);
  EXPECT_TRUE(parsed.ok()) << *parsed.error;
  ParsedLog log;
  log.meta = parsed.structure.meta;
  for (const IndexEntry& entry : parsed.structure.index) {
    DecodedBlock block;
    const auto error =
        decode_block(bytes.substr(entry.offset, entry.encoded_size), entry,
                     parsed.structure.symbols, block);
    EXPECT_FALSE(error.has_value()) << *error;
    log.phase_events.insert(log.phase_events.end(), block.phase_events.begin(),
                            block.phase_events.end());
    log.blocking_events.insert(log.blocking_events.end(),
                               block.blocking_events.begin(),
                               block.blocking_events.end());
    log.samples.insert(log.samples.end(), block.samples.begin(),
                       block.samples.end());
  }
  return log;
}

TEST(G10tFormatTest, VarintRoundTrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : values) {
    std::string buffer;
    put_varint(buffer, value);
    ByteCursor cursor(buffer);
    std::uint64_t out = 0;
    ASSERT_TRUE(cursor.read_varint(out));
    EXPECT_EQ(out, value);
    EXPECT_TRUE(cursor.done());
  }
}

TEST(G10tFormatTest, ZigzagRoundTrip) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t value : values) {
    std::string buffer;
    put_zigzag(buffer, value);
    ByteCursor cursor(buffer);
    std::int64_t out = 0;
    ASSERT_TRUE(cursor.read_zigzag(out));
    EXPECT_EQ(out, value);
  }
}

TEST(G10tFormatTest, CursorRejectsTruncation) {
  std::string buffer;
  put_varint(buffer, 1u << 20);
  buffer.pop_back();  // drop the terminating byte
  ByteCursor cursor(buffer);
  std::uint64_t out = 0;
  EXPECT_FALSE(cursor.read_varint(out));

  ByteCursor empty("", 0);
  std::string_view bytes;
  EXPECT_FALSE(empty.read_bytes(1, bytes));
  std::uint64_t u64 = 0;
  EXPECT_FALSE(empty.read_u64(u64));
}

TEST(G10tFormatTest, HeaderRoundTrip) {
  FileHeader header;
  header.symtab_offset = kG10tHeaderSize;
  header.symtab_size = 10;
  header.meta_offset = 98;
  header.meta_size = 1;
  header.index_offset = 99;
  header.index_size = 40;
  header.block_count = 1;
  header.file_size = 139;
  const std::string bytes = encode_header(header);
  ASSERT_EQ(bytes.size(), kG10tHeaderSize);
  const HeaderParse parsed = decode_header(bytes, header.file_size);
  ASSERT_TRUE(parsed.ok()) << *parsed.error;
  EXPECT_EQ(parsed.header.index_offset, 99u);
  EXPECT_EQ(parsed.header.block_count, 1u);
}

TEST(G10tFormatTest, HeaderCorruptionIsAnErrorNotAnAssert) {
  FileHeader header;
  header.file_size = kG10tHeaderSize;
  const std::string good = encode_header(header);

  // Truncated prefix.
  EXPECT_FALSE(decode_header(good.substr(0, 20), 20).ok());
  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_FALSE(decode_header(bad, header.file_size).ok());
  // Flipped byte -> checksum mismatch.
  bad = good;
  bad[12] ^= 0x40;
  EXPECT_FALSE(decode_header(bad, header.file_size).ok());
  // File shorter than the header claims.
  EXPECT_FALSE(decode_header(good, header.file_size - 1).ok());

  // Future major version (re-checksummed so only the version differs).
  FileHeader future = header;
  future.version = kG10tVersion + 1;
  const HeaderParse versioned =
      decode_header(encode_header(future), future.file_size);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.error->find("version"), std::string::npos);

  // Unknown flag bit.
  FileHeader flagged = header;
  flagged.flags = 0x2;
  EXPECT_FALSE(decode_header(encode_header(flagged), flagged.file_size).ok());
}

TEST(G10tIoTest, EmptyLogRoundTrips) {
  const ParsedLog empty;
  const std::string bytes = encode(empty);
  const ParsedLog back = decode_all(bytes);
  EXPECT_EQ(render(back), render(empty));
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.structure.index.empty());
}

ParsedLog edge_case_log() {
  ParsedLog log;
  log.meta.push_back({"faults", "crash:w2@40%"});
  log.meta.push_back({"note", "value with spaces"});

  // A path deeper than anything the engines emit.
  PhasePath deep;
  for (int depth = 0; depth < 12; ++depth) {
    deep = deep.child("L" + std::to_string(depth), depth * 7 - 3);
  }
  log.phase_events.push_back(
      {PhaseEventRecord::Kind::Begin, deep, -500, kGlobalMachine});
  log.phase_events.push_back({PhaseEventRecord::Kind::End, deep,
                              std::numeric_limits<TimeNs>::max() / 2, -7});
  // Non-monotonic timestamps exercise the signed delta coding.
  log.phase_events.push_back({PhaseEventRecord::Kind::Begin,
                              PhasePath{}.child("Job", 0), 1000, 3});
  log.phase_events.push_back({PhaseEventRecord::Kind::End,
                              PhasePath{}.child("Job", 0), 250, 3});

  log.blocking_events.push_back(
      {"GC", PhasePath{}.child("Job", 0).child("W", 2), -10, 20, 1});
  log.blocking_events.push_back(
      {"MessageQueue", PhasePath{}.child("Job", 0), 5, 5, 2});

  log.samples.push_back({"cpu", 0, 0, 0.1});  // 0.1 is inexact in binary
  log.samples.push_back({"cpu", 1, 10, -0.0});
  log.samples.push_back(
      {"network", 2, 20, std::numeric_limits<double>::infinity()});
  log.samples.push_back(
      {"network", 3, 30, std::numeric_limits<double>::denorm_min()});
  log.samples.push_back({"cpu", 4, 40, 1.0 / 3.0});
  return log;
}

TEST(G10tIoTest, EdgeCaseRecordsRoundTripExactly) {
  const ParsedLog log = edge_case_log();
  const ParsedLog back = decode_all(encode(log));
  EXPECT_EQ(render(back), render(log));
  // Sample bits, not just their text rendering.
  ASSERT_EQ(back.samples.size(), log.samples.size());
  for (std::size_t i = 0; i < log.samples.size(); ++i) {
    EXPECT_EQ(std::signbit(back.samples[i].value),
              std::signbit(log.samples[i].value));
    EXPECT_EQ(back.samples[i].value, log.samples[i].value);
  }
}

TEST(G10tIoTest, ManyDistinctSymbolsRoundTripWithUniqueOrdinals) {
  // Hundreds of distinct short (SSO-sized) names force the writer's
  // interning table to grow many times; regression for a use-after-free
  // where map keys were views into a reallocating vector.
  ParsedLog log;
  for (int i = 0; i < 400; ++i) {
    log.phase_events.push_back({PhaseEventRecord::Kind::Begin,
                                PhasePath{}.child("P" + std::to_string(i), i),
                                i * 10, i % 5});
    log.phase_events.push_back({PhaseEventRecord::Kind::End,
                                PhasePath{}.child("P" + std::to_string(i), i),
                                i * 10 + 5, i % 5});
  }
  // Re-intern every name after the table has fully grown: lookups that hit
  // an existing entry are the ones that read the stored key.
  for (int i = 0; i < 400; ++i) {
    log.phase_events.push_back(
        {PhaseEventRecord::Kind::Begin,
         PhasePath{}.child("P" + std::to_string(i), i + 1000), 8000 + i * 10,
         i % 5});
    log.phase_events.push_back(
        {PhaseEventRecord::Kind::End,
         PhasePath{}.child("P" + std::to_string(i), i + 1000),
         8000 + i * 10 + 5, i % 5});
  }
  const std::string bytes = encode(log);
  EXPECT_EQ(render(decode_all(bytes)), render(log));
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  ASSERT_TRUE(parsed.ok());
  std::set<std::string> distinct(parsed.structure.symbols.begin(),
                                 parsed.structure.symbols.end());
  EXPECT_EQ(distinct.size(), parsed.structure.symbols.size());
  EXPECT_EQ(distinct.size(), 400u);
}

TEST(G10tIoTest, SmallBlocksRoundTripAndIndexCoversAllKinds) {
  const ParsedLog log = edge_case_log();
  G10tWriteOptions options;
  options.block_records = 2;  // force several blocks per record kind
  const std::string bytes = encode(log, options);
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.structure.index.size(), 2u + 1u + 3u);
  std::size_t records = 0;
  for (const IndexEntry& entry : parsed.structure.index) {
    records += entry.record_count;
    EXPECT_LE(entry.record_count, 2u);
    EXPECT_LE(entry.time_min, entry.time_max);
    EXPECT_LE(entry.machine_min, entry.machine_max);
  }
  EXPECT_EQ(records, log.phase_events.size() + log.blocking_events.size() +
                         log.samples.size());
  EXPECT_EQ(render(decode_all(bytes)), render(log));
}

TEST(G10tIoTest, IndexRangesAreTight) {
  ParsedLog log;
  log.phase_events.push_back({PhaseEventRecord::Kind::Begin,
                              PhasePath{}.child("Job", 0), 100, 2});
  log.phase_events.push_back(
      {PhaseEventRecord::Kind::End, PhasePath{}.child("Job", 0), 900, 5});
  log.blocking_events.push_back(
      {"GC", PhasePath{}.child("Job", 0), 50, 1200, 3});
  const std::string bytes = encode(log);
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.structure.index.size(), 2u);
  const IndexEntry& phases = parsed.structure.index[0];
  EXPECT_EQ(phases.kind, BlockKind::kPhase);
  EXPECT_EQ(phases.time_min, 100);
  EXPECT_EQ(phases.time_max, 900);
  EXPECT_EQ(phases.machine_min, 2);
  EXPECT_EQ(phases.machine_max, 5);
  EXPECT_NE(phases.name_bloom & name_bloom_bit("Job"), 0u);
  // Blocking entries span [begin, end], and sample-free blocks bloom over
  // the blocking resource name.
  const IndexEntry& blocking = parsed.structure.index[1];
  EXPECT_EQ(blocking.kind, BlockKind::kBlocking);
  EXPECT_EQ(blocking.time_min, 50);
  EXPECT_EQ(blocking.time_max, 1200);
}

TEST(G10tIoTest, CorruptPayloadFailsDecodeCleanly) {
  const ParsedLog log = edge_case_log();
  std::string bytes = encode(log);
  const G10tStructureParse parsed = parse_g10t_structure(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed.structure.index.empty());
  const IndexEntry& entry = parsed.structure.index[0];
  bytes[entry.offset + entry.encoded_size / 2] ^= 0x5a;
  DecodedBlock block;
  const auto error =
      decode_block(std::string_view(bytes).substr(entry.offset,
                                                  entry.encoded_size),
                   entry, parsed.structure.symbols, block);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("hash"), std::string::npos);
}

TEST(G10tIoTest, TruncatedSectionsAreErrors) {
  const std::string bytes = encode(edge_case_log());
  // Every strict prefix must fail with an error, never crash. (Prefixes
  // shorter than the header already fail there; this sweeps the section
  // parsing too.)
  for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                           kG10tHeaderSize + 3, kG10tHeaderSize}) {
    const G10tStructureParse parsed =
        parse_g10t_structure(std::string_view(bytes).substr(0, keep));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << keep << " bytes";
  }
}

TEST(G10tIoTest, LooksLikeG10tSniffsMagicOnly) {
  EXPECT_TRUE(looks_like_g10t(encode(ParsedLog{})));
  EXPECT_FALSE(looks_like_g10t("# grade10 trace log v1\n"));
  EXPECT_FALSE(looks_like_g10t("G10TRC"));  // shorter than the magic
  EXPECT_FALSE(looks_like_g10t(""));
}

}  // namespace
}  // namespace g10::trace
