#include "trace/symbol_table.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace g10::trace {
namespace {

TEST(SymbolTableTest, InternDeduplicates) {
  SymbolTable& table = SymbolTable::global();
  const Symbol a = table.intern("SymbolTableTestPhase");
  const Symbol b = table.intern("SymbolTableTestPhase");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.name(a), "SymbolTableTestPhase");
}

TEST(SymbolTableTest, DistinctNamesGetDistinctSymbols) {
  SymbolTable& table = SymbolTable::global();
  const Symbol a = table.intern("SymbolTableTestA");
  const Symbol b = table.intern("SymbolTableTestB");
  EXPECT_NE(a, b);
}

TEST(PathRefTest, EmptyPath) {
  PathRef path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.depth(), 0u);
  EXPECT_EQ(path.to_string(), "");
  EXPECT_TRUE(path.to_phase_path().empty());
}

TEST(PathRefTest, ChildAndParentMirrorPhasePath) {
  const PathRef path = PathRef{}.child("Job", 0).child("Execute", 0).child(
      "Superstep", 3);
  EXPECT_EQ(path.depth(), 3u);
  EXPECT_EQ(path.to_string(), "Job.0/Execute.0/Superstep.3");
  EXPECT_EQ(path.parent().to_string(), "Job.0/Execute.0");
  EXPECT_EQ(path.parent().parent().to_string(), "Job.0");
  EXPECT_TRUE(path.parent().parent().parent().empty());
  EXPECT_EQ(path.leaf().index, 3);
  EXPECT_EQ(SymbolTable::global().name(path.leaf().type), "Superstep");
}

TEST(PathRefTest, EqualityAndHashTrackContent) {
  const PathRef a = PathRef{}.child("Job", 0).child("Superstep", 1);
  const PathRef b = PathRef{}.child("Job", 0).child("Superstep", 1);
  const PathRef c = PathRef{}.child("Job", 0).child("Superstep", 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == a.parent());
}

TEST(PathRefTest, RoundTripsThroughPhasePathAndString) {
  const PathRef ref = PathRef{}
                          .child("Job", 0)
                          .child("Execute", 0)
                          .child("Superstep", 12)
                          .child("WorkerCompute", 2)
                          .child("ComputeThread", 5);
  const PhasePath path = ref.to_phase_path();
  EXPECT_EQ(path.to_string(), ref.to_string());
  const PathRef back = PathRef::from_phase_path(path);
  EXPECT_EQ(back, ref);
  EXPECT_EQ(back.hash(), ref.hash());

  const auto parsed = parse_phase_path(ref.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(PathRef::from_phase_path(*parsed), ref);
}

TEST(PathRefTest, OverflowBeyondInlineCapacity) {
  // Deeper than kInlineCapacity: entries spill to the heap vector and the
  // path must behave identically (copies, equality, round-trip).
  PathRef ref;
  for (int i = 0; i < 2 * static_cast<int>(PathRef::kInlineCapacity); ++i) {
    ref = ref.child("Level", i);
  }
  EXPECT_EQ(ref.depth(), 2 * PathRef::kInlineCapacity);
  const PathRef copy = ref;  // copy after spilling
  EXPECT_EQ(copy, ref);
  EXPECT_EQ(copy.hash(), ref.hash());
  EXPECT_EQ(PathRef::from_phase_path(ref.to_phase_path()), ref);
  // Walking parents back across the spill boundary stays consistent.
  PathRef up = ref;
  for (std::size_t d = ref.depth(); d > 0; --d) {
    EXPECT_EQ(up.depth(), d);
    EXPECT_EQ(PathRef::from_phase_path(up.to_phase_path()), up);
    up = up.parent();
  }
  EXPECT_TRUE(up.empty());
}

TEST(PathRefTest, PushBuildsIncrementally) {
  PathRef pushed;
  pushed.push("Job", 0);
  pushed.push("Stage", 7);
  const PathRef chained = PathRef{}.child("Job", 0).child("Stage", 7);
  EXPECT_EQ(pushed, chained);
  EXPECT_EQ(pushed.hash(), chained.hash());
}

// Property test: random paths over the phase vocabulary of all three
// engine models round-trip losslessly PathRef -> PhasePath -> string ->
// PhasePath -> PathRef, preserving equality and hashes.
TEST(PathRefTest, RandomCorpusRoundTrips) {
  const std::vector<std::string> types = {
      // Pregel
      "Job", "LoadGraph", "LoadWorker", "Execute", "Superstep",
      "WorkerPrepare", "WorkerCompute", "ComputeThread", "WorkerCommunicate",
      "WorkerBarrier", "GcPause", "Checkpoint", "CheckpointWorker",
      "Recovery", "RecoveryWorker", "StoreResults", "StoreWorker",
      // GAS
      "Iteration", "GatherStep", "WorkerGather", "GatherThread", "ApplyStep",
      "WorkerApply", "ApplyThread", "ScatterStep", "WorkerScatter",
      "ScatterThread", "ExchangeStep", "WorkerExchange",
      // Dataflow
      "Stage", "Task", "ShuffleWrite"};
  Rng rng(20260805);
  std::unordered_set<std::string> rendered;
  for (int trial = 0; trial < 500; ++trial) {
    // Depths straddle the inline capacity; indices include values that do
    // not fit in 32 bits.
    const auto depth = static_cast<std::size_t>(
        1 + rng.next_below(2 * PathRef::kInlineCapacity));
    PathRef ref;
    for (std::size_t d = 0; d < depth; ++d) {
      const auto& type = types[rng.next_below(types.size())];
      auto index = static_cast<std::int64_t>(rng.next_below(1'000'000));
      if (rng.next_bool(0.1)) index *= 1'000'000'000LL;  // > 2^32
      ref = ref.child(type, index);
    }
    ASSERT_EQ(ref.depth(), depth);

    const PhasePath via_path = ref.to_phase_path();
    const std::string text = ref.to_string();
    EXPECT_EQ(via_path.to_string(), text);
    rendered.insert(text);

    const auto parsed = parse_phase_path(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, via_path);
    const PathRef back = PathRef::from_phase_path(*parsed);
    EXPECT_EQ(back, ref) << text;
    EXPECT_EQ(back.hash(), ref.hash()) << text;
  }
  // Sanity: the corpus was actually diverse.
  EXPECT_GT(rendered.size(), 450u);
}

}  // namespace
}  // namespace g10::trace
