// The byte-budgeted LRU block cache: eviction order, the budget invariant
// under a deliberately tiny budget (the forced-eviction regime the CI job
// also runs end to end), and stats bookkeeping.
#include "trace/block_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace g10::trace {
namespace {

/// A decoded block whose approx_bytes() is dominated by `samples` entries;
/// each sample is a few dozen bytes, so `n` scales the footprint.
std::shared_ptr<const DecodedBlock> make_block(std::size_t n) {
  auto block = std::make_shared<DecodedBlock>();
  block->samples.resize(n, MonitoringSampleRecord{"cpu", 0, 0, 1.0});
  return block;
}

TEST(BlockCacheTest, HitAfterPut) {
  BlockCache cache({1 << 20, 4});
  EXPECT_EQ(cache.get(1), nullptr);
  auto block = make_block(4);
  cache.put(1, block);
  EXPECT_EQ(cache.get(1), block);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident_blocks, 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global and observable.
  const std::size_t block_bytes = make_block(8)->approx_bytes();
  BlockCache cache({3 * block_bytes, 1});
  cache.put(1, make_block(8));
  cache.put(2, make_block(8));
  cache.put(3, make_block(8));
  ASSERT_NE(cache.get(1), nullptr);  // refresh 1; 2 is now the LRU tail
  cache.put(4, make_block(8));       // must push something out
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(BlockCacheTest, TinyBudgetNeverExceedsItExceptForTheNewestEntry) {
  // Property test: under a budget that fits ~2 blocks, a long mixed
  // put/get workload keeps resident bytes within budget (the documented
  // exception: a shard always retains its most recent insertion, so a
  // single oversized block may stand above budget alone).
  const std::size_t block_bytes = make_block(16)->approx_bytes();
  BlockCache cache({2 * block_bytes, 1});
  for (std::uint64_t i = 0; i < 200; ++i) {
    cache.put(i % 17, make_block(16));
    cache.get((i * 7) % 17);
    const auto stats = cache.stats();
    EXPECT_LE(stats.resident_bytes,
              std::max(cache.budget_bytes(), block_bytes))
        << "after step " << i;
    EXPECT_LE(stats.resident_blocks, 2u);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 200u);
  EXPECT_GE(stats.evictions, 198u - stats.resident_blocks);
}

TEST(BlockCacheTest, OversizedBlockSurvivesUntilNextInsert) {
  BlockCache cache({16, 1});  // smaller than any real block
  auto huge = make_block(64);
  cache.put(7, huge);
  EXPECT_EQ(cache.get(7), huge);  // most recent entry is never evicted...
  cache.put(8, make_block(64));
  EXPECT_EQ(cache.get(7), nullptr);  // ...until something newer arrives
  EXPECT_NE(cache.get(8), nullptr);
}

TEST(BlockCacheTest, ZeroBudgetCachesNothing) {
  BlockCache cache({0, 4});
  cache.put(1, make_block(4));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().resident_blocks, 0u);
}

TEST(BlockCacheTest, RefreshingAKeyReplacesItsValue) {
  BlockCache cache({1 << 20, 2});
  cache.put(5, make_block(2));
  auto replacement = make_block(3);
  cache.put(5, replacement);
  EXPECT_EQ(cache.get(5), replacement);
  EXPECT_EQ(cache.stats().resident_blocks, 1u);
}

TEST(BlockCacheTest, EvictedBlockStaysAliveWhileHeld) {
  const std::size_t block_bytes = make_block(8)->approx_bytes();
  BlockCache cache({block_bytes, 1});
  auto held = make_block(8);
  cache.put(1, held);
  cache.put(2, make_block(8));  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(held->samples.size(), 8u);  // still valid through our reference
}

TEST(BlockCacheTest, SmallBudgetCollapsesShardsSoTheBudgetHolds) {
  // A sub-64KiB budget over 8 requested shards must behave like one shard:
  // resident bytes stay within max(budget, one block), not 8 pinned blocks.
  const std::size_t block_bytes = make_block(16)->approx_bytes();
  BlockCache cache({48 << 10, 8});
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.put(i, make_block(16));
    EXPECT_LE(cache.stats().resident_bytes,
              std::max(cache.budget_bytes(), block_bytes));
  }
}

TEST(BlockCacheTest, ShardsPartitionKeys) {
  // Across many shards the per-shard budgets still bound the total.
  const std::size_t block_bytes = make_block(8)->approx_bytes();
  BlockCache cache({8 * block_bytes, 8});
  for (std::uint64_t i = 0; i < 64; ++i) cache.put(i, make_block(8));
  const auto stats = cache.stats();
  // Each shard keeps at least its most recent entry.
  EXPECT_GE(stats.resident_blocks, 1u);
  EXPECT_LE(stats.resident_bytes, 8 * block_bytes + 8 * block_bytes);
}

}  // namespace
}  // namespace g10::trace
