#include "monitor/sampler.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injector.hpp"

namespace g10::monitor {
namespace {

trace::GroundTruthSeries make_series() {
  trace::GroundTruthSeries gt;
  gt.resource = "cpu";
  gt.machine = 0;
  gt.capacity = 4.0;
  gt.series.set(0, 2.0);
  gt.series.set(100, 4.0);
  gt.series.set(200, 0.0);
  return gt;
}

TEST(SamplerTest, SamplesAverageRates) {
  const std::vector<trace::GroundTruthSeries> series{make_series()};
  const auto samples = sample_ground_truth(series, 100, 300);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].time, 100);
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].time, 200);
  EXPECT_DOUBLE_EQ(samples[1].value, 4.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 0.0);
  EXPECT_EQ(samples[0].resource, "cpu");
  EXPECT_EQ(samples[0].machine, 0);
}

TEST(SamplerTest, ClipsFinalWindowAtEnd) {
  const std::vector<trace::GroundTruthSeries> series{make_series()};
  const auto samples = sample_ground_truth(series, 100, 250);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[2].time, 250);
  // Window (200, 250]: value 0.
  EXPECT_DOUBLE_EQ(samples[2].value, 0.0);
}

TEST(SamplerTest, MultipleSeriesAllSampled) {
  auto a = make_series();
  auto b = make_series();
  b.resource = "network";
  b.machine = 1;
  const auto samples = sample_ground_truth({a, b}, 100, 200);
  EXPECT_EQ(samples.size(), 4u);
}

TEST(DownsampleTest, FactorOneIsIdentity) {
  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 100, 1.0}, {"cpu", 0, 200, 3.0}};
  const auto out = downsample(samples, 1);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DownsampleTest, MergesAverages) {
  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 100, 1.0},
      {"cpu", 0, 200, 3.0},
      {"cpu", 0, 300, 5.0},
      {"cpu", 0, 400, 7.0}};
  const auto out = downsample(samples, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time, 200);
  EXPECT_DOUBLE_EQ(out[0].value, 2.0);
  EXPECT_EQ(out[1].time, 400);
  EXPECT_DOUBLE_EQ(out[1].value, 6.0);
}

TEST(DownsampleTest, TrailingPartialGroupAveraged) {
  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 100, 2.0}, {"cpu", 0, 200, 4.0}, {"cpu", 0, 300, 9.0}};
  const auto out = downsample(samples, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 3.0);
  EXPECT_DOUBLE_EQ(out[1].value, 9.0);
}

TEST(DownsampleTest, StreamsAreSeparated) {
  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 100, 1.0},
      {"cpu", 1, 100, 10.0},
      {"cpu", 0, 200, 3.0},
      {"cpu", 1, 200, 30.0}};
  const auto out = downsample(samples, 2);
  ASSERT_EQ(out.size(), 2u);
  // One merged sample per machine.
  double m0 = 0.0;
  double m1 = 0.0;
  for (const auto& s : out) {
    (s.machine == 0 ? m0 : m1) = s.value;
  }
  EXPECT_DOUBLE_EQ(m0, 2.0);
  EXPECT_DOUBLE_EQ(m1, 20.0);
}

TEST(SamplerDownsampleConsistencyTest, DownsampledEqualsCoarseSampling) {
  // downsample(sample(fine), k) == sample(coarse) when windows align.
  const std::vector<trace::GroundTruthSeries> series{make_series()};
  const auto fine = sample_ground_truth(series, 50, 400);
  const auto merged = downsample(fine, 2);
  const auto coarse = sample_ground_truth(series, 100, 400);
  ASSERT_EQ(merged.size(), coarse.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].time, coarse[i].time);
    EXPECT_NEAR(merged[i].value, coarse[i].value, 1e-12);
  }
}

TEST(SamplerDropoutTest, DropsSamplesOnlyInsideWindows) {
  // Machine 0's monitoring daemon is down during [100ms, 200ms).
  const auto spec = sim::FaultSpec::parse("drop:w0@100ms+100ms");
  ASSERT_TRUE(spec.has_value());
  sim::FaultInjector faults(*spec, 1);
  faults.resolve(kSecond);

  std::vector<trace::MonitoringSampleRecord> samples{
      {"cpu", 0, 50 * kMillisecond, 1.0},
      {"cpu", 0, 150 * kMillisecond, 2.0},   // dropped
      {"cpu", 1, 150 * kMillisecond, 3.0},   // other machine: kept
      {"cpu", 0, 250 * kMillisecond, 4.0}};
  const auto kept = apply_sampler_dropout(samples, faults);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].value, 1.0);
  EXPECT_DOUBLE_EQ(kept[1].value, 3.0);
  EXPECT_DOUBLE_EQ(kept[2].value, 4.0);
}

}  // namespace
}  // namespace g10::monitor
