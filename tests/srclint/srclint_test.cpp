// srclint: the determinism & concurrency source lint (DESIGN.md §14).
//
// Three layers under test: the lexer (comments/strings/preprocessor lines
// must not leak tokens), the rules D1-D5 against the bad-source fixture
// corpus (each must fire at its known file:line), and the waiver grammar
// (reasoned waivers suppress, bare waivers are errors, stale waivers warn).
// The final tests scan the real shipped tree and assert it is clean — the
// same gate CI's `g10_srclint --werror src tools bench` enforces.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "srclint/source_lexer.hpp"
#include "srclint/srclint.hpp"

namespace g10::srclint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return std::move(buffer).str();
}

lint::LintReport scan_fixture(const std::string& name,
                              ScanStats* stats = nullptr) {
  const std::string path = std::string(G10_SRCLINT_FIXTURE_DIR) + "/" + name;
  return scan_source(slurp(path), path, stats);
}

std::vector<std::size_t> lines_of(const lint::LintReport& report,
                                  std::string_view rule_id) {
  std::vector<std::size_t> lines;
  for (const lint::LintFinding& finding : report.findings()) {
    if (finding.rule_id == rule_id) lines.push_back(finding.location.line);
  }
  return lines;
}

// ---------------------------------------------------------------- lexer --

TEST(SourceLexer, StripsCommentsAndPreprocessorLines) {
  const LexedSource lexed = lex_source(
      "#include <mutex>\n"
      "// std::mutex in a comment\n"
      "int x; /* std::mutex in a block */\n");
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "mutex") << "leaked from line " << token.line;
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_FALSE(lexed.comments[0].code_before);
  EXPECT_TRUE(lexed.comments[1].code_before);
}

TEST(SourceLexer, StringsAndRawStringsAreOpaque) {
  const LexedSource lexed = lex_source(
      "const char* a = \"std::mutex getenv\";\n"
      "const char* b = R\"x(rand() time())x\";\n");
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kString) continue;
    EXPECT_NE(token.text, "mutex");
    EXPECT_NE(token.text, "getenv");
    EXPECT_NE(token.text, "rand");
  }
}

TEST(SourceLexer, TracksLinesAcrossBlockComments) {
  const LexedSource lexed = lex_source("/* one\ntwo\nthree */\nint x;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.front().text, "int");
  EXPECT_EQ(lexed.tokens.front().line, 4u);
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line, 1u);
  EXPECT_EQ(lexed.comments[0].end_line, 3u);
}

// ------------------------------------------------------- fixture corpus --

TEST(SrcLintRules, UnorderedIterFiresAtKnownLine) {
  const lint::LintReport report = scan_fixture("unordered_iter.cpp");
  EXPECT_EQ(lines_of(report, "src-unordered-iter"),
            (std::vector<std::size_t>{9}));
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(SrcLintRules, RawEntropyFiresAtKnownLines) {
  const lint::LintReport report = scan_fixture("raw_entropy.cpp");
  EXPECT_EQ(lines_of(report, "src-raw-entropy"),
            (std::vector<std::size_t>{6, 7, 8}));
  EXPECT_EQ(report.error_count(), 3u);
}

TEST(SrcLintRules, RawMutexFiresAtKnownLines) {
  const lint::LintReport report = scan_fixture("raw_mutex.cpp");
  // Line 6 declares a lock_guard *of* a std::mutex: two raw uses.
  EXPECT_EQ(lines_of(report, "src-raw-mutex"),
            (std::vector<std::size_t>{5, 6, 6}));
}

TEST(SrcLintRules, PointerKeyFiresAtKnownLines) {
  const lint::LintReport report = scan_fixture("pointer_key.cpp");
  EXPECT_EQ(lines_of(report, "src-pointer-key"),
            (std::vector<std::size_t>{8, 9}));
}

TEST(SrcLintRules, FpParallelReduceFiresAtKnownLines) {
  const lint::LintReport report = scan_fixture("fp_parallel_reduce.cpp");
  EXPECT_EQ(lines_of(report, "src-fp-parallel-reduce"),
            (std::vector<std::size_t>{14, 15}));
}

TEST(SrcLintRules, CleanFixtureIsClean) {
  const lint::LintReport report = scan_fixture("clean.cpp");
  EXPECT_TRUE(report.clean()) << report.findings().size() << " finding(s)";
}

TEST(SrcLintRules, EntropyIsExemptInToolMainsAndRngHome) {
  const std::string text = "#include <cstdlib>\n"
                           "int f() { return std::rand(); }\n";
  EXPECT_TRUE(scan_source(text, "tools/run_workload.cpp").clean());
  EXPECT_TRUE(scan_source(text, "src/common/rng.cpp").clean());
  EXPECT_FALSE(scan_source(text, "src/engine/foo.cpp").clean());
}

TEST(SrcLintRules, MemberTimeCallsAreNotEntropy) {
  // clock.time() is a method call, not ::time(); only the free call fires.
  const std::string text =
      "int f(Clock& clock) { return clock.time() + time(nullptr); }\n";
  const lint::LintReport report = scan_source(text, "src/x.cpp");
  EXPECT_EQ(lines_of(report, "src-raw-entropy").size(), 1u);
}

TEST(SrcLintRules, PointerValueIsNotAPointerKey) {
  // Pointer *values* are fine; only pointer keys order by address.
  const std::string text = "#include <map>\n"
                           "std::map<int, Node*> by_id;\n";
  EXPECT_TRUE(scan_source(text, "src/x.cpp").clean());
}

// ----------------------------------------------------------- waivers --

TEST(SrcLintWaivers, ReasonedWaiversSuppressEveryRule) {
  ScanStats stats;
  const lint::LintReport report = scan_fixture("waivers.cpp", &stats);
  // Only the stale waiver survives, as a warning.
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(lines_of(report, "src-waiver-unused"),
            (std::vector<std::size_t>{33}));
  EXPECT_EQ(stats.waivers, 6u);
  EXPECT_EQ(stats.suppressed, 5u);
  EXPECT_EQ(stats.bare_waivers, 0u);
}

TEST(SrcLintWaivers, BareWaiverIsAnErrorAndSuppressesNothing) {
  ScanStats stats;
  const lint::LintReport report = scan_fixture("bare_waiver.cpp", &stats);
  EXPECT_EQ(lines_of(report, "src-waiver-bare"),
            (std::vector<std::size_t>{5}));
  // The finding the bare waiver pretended to excuse still fires.
  EXPECT_EQ(lines_of(report, "src-raw-entropy"),
            (std::vector<std::size_t>{5}));
  EXPECT_EQ(stats.bare_waivers, 1u);
  EXPECT_EQ(stats.suppressed, 0u);
}

TEST(SrcLintWaivers, EmptyReasonIsBare) {
  const std::string text =
      "#include <cstdlib>\n"
      "int f() { return std::rand(); }  // srclint: entropy-ok(  )\n";
  const lint::LintReport report = scan_source(text, "src/x.cpp");
  EXPECT_TRUE(report.has_rule("src-waiver-bare"));
}

TEST(SrcLintWaivers, UnknownTagIsAnError) {
  const std::string text = "int x;  // srclint: sloppy-ok(not a real tag)\n";
  const lint::LintReport report = scan_source(text, "src/x.cpp");
  EXPECT_TRUE(report.has_rule("src-waiver-unknown"));
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(SrcLintWaivers, ProseMentionOfTheGrammarIsNotAWaiver) {
  const std::string text =
      "// suppress with a trailing // srclint: entropy-ok(reason) comment\n"
      "int x;\n";
  EXPECT_TRUE(scan_source(text, "src/x.cpp").clean());
}

TEST(SrcLintWaivers, OwnLineWaiverTargetsTheNextLine) {
  const std::string text =
      "#include <cstdlib>\n"
      "// srclint: entropy-ok(covers the call below)\n"
      "int f() { return std::rand(); }\n";
  ScanStats stats;
  const lint::LintReport report = scan_source(text, "src/x.cpp", &stats);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(stats.suppressed, 1u);
}

// ------------------------------------------------------------- catalog --

TEST(SrcLintCatalog, SortedUniqueAndPrefixed) {
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id.substr(0, 4), "src-");
    if (i > 0) EXPECT_LT(catalog[i - 1].id, catalog[i].id);
  }
}

// ------------------------------------------------------- self-scan gate --

/// Scans a real repo directory the way the CLI does.
void scan_tree(const std::string& root, lint::LintReport& report,
               ScanStats& stats) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() &&
        (name == "build" || (name.size() > 1 && name.front() == '.'))) {
      it.disable_recursion_pending();
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (it->is_regular_file() &&
        (ext == ".cpp" || ext == ".hpp" || ext == ".h")) {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    report.merge(scan_source(slurp(path), path, &stats));
  }
}

TEST(SrcLintSelfScan, ShippedTreeIsClean) {
  lint::LintReport report;
  ScanStats stats;
  scan_tree(G10_REPO_SRC_DIR, report, stats);
  scan_tree(G10_REPO_TOOLS_DIR, report, stats);
  scan_tree(G10_REPO_BENCH_DIR, report, stats);
  std::ostringstream rendered;
  lint::render_text(rendered, report);
  EXPECT_TRUE(report.clean()) << rendered.str();
  EXPECT_EQ(stats.bare_waivers, 0u) << rendered.str();
  EXPECT_GT(stats.files, 100u) << "tree walk found too few files";
  // Every live waiver must actually suppress something (no stale excuses),
  // and the suppression count is pinned so new waivers show up in review.
  EXPECT_EQ(stats.waivers, stats.suppressed);
}

}  // namespace
}  // namespace g10::srclint
