// Clean fixture: nothing here may fire.
#include <map>
#include <string>

int clean_lookup() {
  std::map<std::string, int> ranks;
  ranks["a"] = 1;
  int total = 0;
  for (const auto& [key, value] : ranks) {
    total += value;
  }
  return total;
}
