// D1 fixture: range-for over an unordered container must fire.
#include <string>
#include <unordered_map>

int count_entries() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}
