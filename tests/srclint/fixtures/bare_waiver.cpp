// Bare-waiver fixture: a reasonless suppression is malformed input.
#include <cstdlib>

int bare() {
  return std::rand();  // srclint: entropy-ok
}
