// Waiver fixture: every finding below is suppressed with a reasoned
// waiver; the final waiver is stale and must be reported unused.
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

template <typename Body>
void parallel_for(int n, Body body) {
  for (int i = 0; i < n; ++i) body(i);
}

struct Node {};

int all_waived() {
  std::unordered_map<std::string, int> counts;
  int total = 0;
  // srclint: unordered-ok(totals are order-independent sums)
  for (const auto& [key, value] : counts) {
    total += value;
  }
  total += std::rand();  // srclint: entropy-ok(fixture exercises inline waivers)
  static std::mutex guard;  // srclint: mutex-ok(fixture; no guarded state)
  guard.lock();
  guard.unlock();
  // srclint: pointer-key-ok(keys are never iterated in order)
  std::map<Node*, int> ranks;
  double sum = 0.0;
  // srclint: fp-ok(single-threaded test double)
  parallel_for(3, [&](int i) { sum += static_cast<double>(i); });
  // srclint: unordered-ok(stale waiver, nothing to suppress)
  return total + static_cast<int>(sum) + static_cast<int>(ranks.size());
}
