// D5 fixture: floating-point accumulation inside parallel_for must fire.
#include <cstddef>
#include <vector>

template <typename Body>
void parallel_for(std::size_t n, Body body) {
  for (std::size_t i = 0; i < n; ++i) body(i);
}

double unsafe_sum(const std::vector<double>& values) {
  double total = 0.0;
  std::vector<double> partial(4, 0.0);
  parallel_for(values.size(), [&](std::size_t i) {
    total += values[i];
    partial[i % 4] += values[i];
  });
  return total + partial[0];
}
