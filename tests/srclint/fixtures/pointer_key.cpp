// D4 fixture: pointer-typed keys in ordered containers must fire.
#include <map>
#include <set>

struct Node {};

int pointer_keys() {
  std::map<Node*, int> ranks;
  std::set<const Node*> seen;
  return static_cast<int>(ranks.size() + seen.size());
}
