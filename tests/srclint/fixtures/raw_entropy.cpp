// D2 fixture: ambient entropy/time/environment sources must fire.
#include <cstdlib>
#include <ctime>

long seed_from_environment() {
  long seed = std::rand();
  seed += std::time(nullptr);
  const char* env = std::getenv("SEED");
  return seed + (env != nullptr ? env[0] : 0);
}
