// D3 fixture: raw standard mutexes and locks must fire.
#include <mutex>

int locked_increment() {
  static std::mutex guard;
  const std::lock_guard<std::mutex> lock(guard);
  static int counter = 0;
  return ++counter;
}
