#include "sim/failure_detector.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injector.hpp"

namespace g10::sim {
namespace {

FailureDetectorConfig config_with_seed(std::uint64_t seed) {
  FailureDetectorConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(FailureDetectorTest, HeartbeatsAreStrictlyIncreasing) {
  const FailureDetector fd(config_with_seed(3), nullptr);
  for (int m = 0; m < 3; ++m) {
    TimeNs prev = -1;
    for (int k = 0; k < 200; ++k) {
      const TimeNs t = fd.heartbeat_time(m, k);
      EXPECT_GT(t, prev) << "machine " << m << " beat " << k;
      prev = t;
    }
  }
}

TEST(FailureDetectorTest, HeartbeatScheduleIsDeterministicPerSeed) {
  const FailureDetector a(config_with_seed(7), nullptr);
  const FailureDetector b(config_with_seed(7), nullptr);
  const FailureDetector c(config_with_seed(8), nullptr);
  bool any_differs = false;
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(a.heartbeat_time(0, k), b.heartbeat_time(0, k));
    if (a.heartbeat_time(0, k) != c.heartbeat_time(0, k)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(FailureDetectorTest, LastHeartbeatLookupMatchesSchedule) {
  const FailureDetector fd(config_with_seed(5), nullptr);
  const TimeNs t3 = fd.heartbeat_time(1, 3);
  const TimeNs t4 = fd.heartbeat_time(1, 4);
  EXPECT_EQ(fd.last_heartbeat_at_or_before(1, t3), t3);
  EXPECT_EQ(fd.last_heartbeat_at_or_before(1, t4 - 1), t3);
  EXPECT_EQ(fd.last_heartbeat_at_or_before(1, fd.heartbeat_time(1, 0) - 1), 0);
}

TEST(FailureDetectorTest, DetectionLagsCrashByBoundedSilenceWindow) {
  FailureDetectorConfig cfg = config_with_seed(11);
  const FailureDetector fd(cfg, nullptr);
  const TimeNs timeout =
      static_cast<TimeNs>(cfg.timeout_seconds * static_cast<double>(kSecond));
  const TimeNs max_gap = static_cast<TimeNs>(
      cfg.interval_seconds * (1.0 + cfg.jitter) * static_cast<double>(kSecond));
  for (TimeNs crash = kSecond / 10; crash < 2 * kSecond;
       crash += kSecond / 7) {
    const TimeNs detect = fd.detect_time(0, crash);
    // The coordinator cannot know before the crash, and must notice within
    // one heartbeat gap plus the timeout.
    EXPECT_GE(detect, crash);
    EXPECT_LE(detect, crash + max_gap + timeout);
  }
}

TEST(FailureDetectorTest, PairwisePartitionRaisesNoSuspicion) {
  const auto spec = FaultSpec::parse("part:w0-w2@1s+2s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  const FailureDetector fd(config_with_seed(3), &inj);
  EXPECT_TRUE(fd.suspicion_windows(0).empty());
  EXPECT_TRUE(fd.suspicion_windows(2).empty());
}

TEST(FailureDetectorTest, IsolationPartitionOpensSuspicionUntilHeal) {
  const auto spec = FaultSpec::parse("part:w1-w*@2s+1s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  const FailureDetector fd(config_with_seed(3), &inj);
  const auto windows = fd.suspicion_windows(1);
  ASSERT_EQ(windows.size(), 1u);
  // Suspicion opens a timeout after the last pre-partition heartbeat and is
  // refuted by the first post-heal heartbeat.
  EXPECT_GT(windows[0].first, 2 * kSecond);
  EXPECT_GE(windows[0].second, 3 * kSecond);
  EXPECT_LT(windows[0].first, windows[0].second);
  EXPECT_TRUE(fd.suspicion_windows(0).empty());
}

}  // namespace
}  // namespace g10::sim
