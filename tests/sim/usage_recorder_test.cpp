#include "sim/usage_recorder.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::sim {
namespace {

TEST(UsageRecorderTest, TracksAddsAndUtilization) {
  UsageRecorder cpu("cpu", 4.0);
  cpu.add(0, 2.0);
  cpu.add(kSecond, 2.0);   // 4 cores busy
  cpu.add(2 * kSecond, -4.0);
  EXPECT_DOUBLE_EQ(cpu.current(), 0.0);
  // [0,1s) at 2, [1s,2s) at 4 -> average 3 of 4 = 75%.
  EXPECT_DOUBLE_EQ(cpu.utilization(0, 2 * kSecond), 0.75);
  EXPECT_DOUBLE_EQ(cpu.capacity(), 4.0);
  EXPECT_EQ(cpu.name(), "cpu");
}

TEST(UsageRecorderTest, SetOverrides) {
  UsageRecorder r("net", 100.0);
  r.set(0, 50.0);
  r.set(kSecond, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization(0, kSecond), 0.5);
  EXPECT_DOUBLE_EQ(r.utilization(kSecond, 2 * kSecond), 0.0);
}

TEST(UsageRecorderTest, RejectsNonPositiveCapacity) {
  EXPECT_THROW(UsageRecorder("bad", 0.0), CheckError);
}

}  // namespace
}  // namespace g10::sim
