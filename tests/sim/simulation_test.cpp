#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace g10::sim {
namespace {

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<TimeNs> times;
  sim.schedule_at(5, [&] {
    times.push_back(sim.now());
    sim.schedule_after(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeNs>{5, 15}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelUnknownIdIsNoop) {
  Simulation sim;
  sim.cancel(12345);
  bool ran = false;
  sim.schedule_at(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), CheckError);
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulationTest, PendingEventCountTracksCancels) {
  Simulation sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, CancelHeavyWorkloadFiresOnlySurvivors) {
  // Timer-wheel pattern the engines produce: arm many timeouts, cancel most
  // of them before they fire. All survivors must run, in time order, and
  // the pool must recycle cancelled slots without unbounded growth.
  Simulation sim;
  constexpr int kRounds = 64;
  constexpr int kPerRound = 256;
  std::vector<TimeNs> fired;
  TimeNs base = 1;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventId> ids;
    ids.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      const TimeNs t = base + i;
      ids.push_back(sim.schedule_at(t, [&fired, &sim] {
        fired.push_back(sim.now());
      }));
    }
    for (int i = 0; i < kPerRound; ++i) {
      if (i % 16 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    base += kPerRound;
  }
  EXPECT_EQ(sim.pending_events(),
            static_cast<std::size_t>(kRounds * kPerRound / 16));
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kRounds * kPerRound / 16));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, StaleHandleAfterSlotReuseIsNoop) {
  // A cancelled (or fired) event's slot is recycled for later schedulings.
  // The old handle carries the old generation, so cancelling it again must
  // not kill the new occupant of the slot.
  Simulation sim;
  const EventId stale = sim.schedule_at(1, [] {});
  sim.cancel(stale);
  sim.schedule_at(2, [] {});  // drains the lazily-deleted heap entry
  sim.run();

  // The freelist now holds the recycled slots; new events reuse them.
  bool survivor_ran = false;
  const EventId fresh = sim.schedule_at(10, [&] { survivor_ran = true; });
  EXPECT_NE(fresh, stale);
  sim.cancel(stale);  // stale generation: must not touch the new event
  sim.run();
  EXPECT_TRUE(survivor_ran);
}

TEST(SimulationTest, CancelAlreadyFiredIdIsNoop) {
  Simulation sim;
  int count = 0;
  const EventId a = sim.schedule_at(1, [&] { ++count; });
  sim.run();
  sim.cancel(a);  // already fired
  bool ran = false;
  sim.schedule_at(2, [&] { ran = true; });  // likely reuses a's slot
  sim.cancel(a);  // still stale after reuse
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, CancelInsideCallbackCancelsPeer) {
  Simulation sim;
  bool peer_ran = false;
  EventId peer = 0;
  sim.schedule_at(1, [&] { sim.cancel(peer); });
  peer = sim.schedule_at(2, [&] { peer_ran = true; });
  sim.run();
  EXPECT_FALSE(peer_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, CancelledEventDropsCallbackState) {
  // Cancellation must release the callback immediately (not at pop time):
  // captured shared state is freed as soon as the event dies.
  Simulation sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id = sim.schedule_at(5, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  sim.cancel(id);
  EXPECT_TRUE(watch.expired());
  sim.run();
}

}  // namespace
}  // namespace g10::sim
