#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace g10::sim {
namespace {

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<TimeNs> times;
  sim.schedule_at(5, [&] {
    times.push_back(sim.now());
    sim.schedule_after(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeNs>{5, 15}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelUnknownIdIsNoop) {
  Simulation sim;
  sim.cancel(12345);
  bool ran = false;
  sim.schedule_at(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), CheckError);
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulationTest, PendingEventCountTracksCancels) {
  Simulation sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace g10::sim
