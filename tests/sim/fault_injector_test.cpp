#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace g10::sim {
namespace {

TEST(FaultSpecTest, ParsesCrashEvent) {
  const auto spec = FaultSpec::parse("crash:w2@40%");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->events.size(), 1u);
  const FaultEvent& e = spec->events[0];
  EXPECT_EQ(e.kind, FaultKind::kCrash);
  EXPECT_EQ(e.machine, 2);
  EXPECT_TRUE(e.at.percent);
  EXPECT_DOUBLE_EQ(e.at.value, 0.4);
}

TEST(FaultSpecTest, ParsesMultipleEvents) {
  const auto spec =
      FaultSpec::parse("slow:w1@2s+3s:x0.5, nic:w0@10%+30%:x0.25:loss=0.2; "
                       "drop:w3@30%+20%");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->events.size(), 3u);
  EXPECT_EQ(spec->events[0].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(spec->events[0].at.value, 2.0);
  EXPECT_FALSE(spec->events[0].at.percent);
  EXPECT_DOUBLE_EQ(spec->events[0].factor, 0.5);
  EXPECT_EQ(spec->events[1].kind, FaultKind::kNicDegrade);
  EXPECT_DOUBLE_EQ(spec->events[1].loss, 0.2);
  EXPECT_EQ(spec->events[2].kind, FaultKind::kSampleDrop);
  EXPECT_TRUE(spec->has_kind(FaultKind::kSlowdown));
  EXPECT_FALSE(spec->has_kind(FaultKind::kCrash));
}

TEST(FaultSpecTest, ParsesAllMachinesAndOpenEndedWindows) {
  const auto spec = FaultSpec::parse("slow:w*@50%:x0.25");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->events[0].machine, FaultEvent::kAllMachines);
  EXPECT_TRUE(spec->events[0].open_ended);
}

TEST(FaultSpecTest, RoundTripsThroughToString) {
  const std::string text =
      "crash:w2@40%,slow:w1@2s+3s:x0.5,nic:w0@10%+30%:x0.25:loss=0.2,"
      "drop:w3@30%+20%";
  const auto spec = FaultSpec::parse(text);
  ASSERT_TRUE(spec.has_value());
  const auto again = FaultSpec::parse(spec->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(spec->to_string(), again->to_string());
  EXPECT_EQ(spec->events.size(), again->events.size());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("explode:w0@1s", &error).has_value());
  EXPECT_FALSE(error.empty());
  // A crash needs a specific victim.
  EXPECT_FALSE(FaultSpec::parse("crash:w*@40%").has_value());
  // A crash is a point event.
  EXPECT_FALSE(FaultSpec::parse("crash:w0@40%+10%").has_value());
  // A slowdown needs its factor.
  EXPECT_FALSE(FaultSpec::parse("slow:w0@1s+1s").has_value());
  // Loss applies only to nic events, and must be a probability below 1.
  EXPECT_FALSE(FaultSpec::parse("slow:w0@1s+1s:x0.5:loss=0.1").has_value());
  EXPECT_FALSE(FaultSpec::parse("nic:w0@1s+1s:x0.5:loss=1.5").has_value());
  EXPECT_FALSE(FaultSpec::parse("slow:w0@1s+1s:x0").has_value());
  EXPECT_FALSE(FaultSpec::parse("garbage").has_value());
}

TEST(FaultSpecTest, ValidateChecksMachineIndices) {
  const auto spec = FaultSpec::parse("crash:w5@40%");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NO_THROW(spec->validate(6));
  EXPECT_THROW(spec->validate(4), CheckError);
}

TEST(FaultSpecTest, ParsesPartitionEvents) {
  const auto spec = FaultSpec::parse("part:w0-w2@30%+20%,part:w1-w*@2s+1s");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->events.size(), 2u);
  EXPECT_EQ(spec->events[0].kind, FaultKind::kPartition);
  EXPECT_EQ(spec->events[0].machine, 0);
  EXPECT_EQ(spec->events[0].machine_b, 2);
  EXPECT_TRUE(spec->events[0].at.percent);
  EXPECT_EQ(spec->events[1].machine, 1);
  EXPECT_EQ(spec->events[1].machine_b, FaultEvent::kAllMachines);
  EXPECT_TRUE(spec->has_kind(FaultKind::kPartition));
}

TEST(FaultSpecTest, RejectsMalformedPartitions) {
  // A partition needs two endpoints, a bounded window, and a concrete
  // first endpoint; an endpoint cannot be partitioned from itself.
  EXPECT_FALSE(FaultSpec::parse("part:w0@1s+1s").has_value());
  EXPECT_FALSE(FaultSpec::parse("part:w0-w1@1s").has_value());
  EXPECT_FALSE(FaultSpec::parse("part:w*-w1@1s+1s").has_value());
  EXPECT_FALSE(FaultSpec::parse("part:w1-w1@1s+1s").has_value());
  EXPECT_FALSE(FaultSpec::parse("part:w0-w1@1s+1s:x0.5").has_value());
  EXPECT_FALSE(FaultSpec::parse("part:w0-w1@1s+1s:loss=0.5").has_value());
}

TEST(FaultSpecTest, PartitionValidateChecksBothEndpoints) {
  const auto spec = FaultSpec::parse("part:w0-w5@1s+1s");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NO_THROW(spec->validate(6));
  EXPECT_THROW(spec->validate(5), CheckError);
}

// Property test: rendering a parsed spec and re-parsing it must reproduce
// the spec exactly (operator==), across a generated grammar corpus.
TEST(FaultSpecTest, ParseToStringRoundTripProperty) {
  Rng rng(20260805);
  const auto render_time = [&](bool percent, double value) {
    std::string out = std::to_string(value);
    out += percent ? "%" : "s";
    return out;
  };
  for (int i = 0; i < 300; ++i) {
    const int kind = static_cast<int>(rng.next_double() * 5.0);
    const int a = static_cast<int>(rng.next_double() * 4.0);
    const bool percent = rng.next_bool(0.5);
    const double at = rng.next_double() * (percent ? 0.9 : 30.0);
    const double dur = 0.1 + rng.next_double() * (percent ? 0.5 : 10.0);
    const bool open_ended = rng.next_bool(0.3);
    std::string text;
    switch (kind) {
      case 0:
        text = "crash:w" + std::to_string(a) + "@" + render_time(percent, at);
        break;
      case 1:
        text = "slow:w" + std::to_string(a) + "@" + render_time(percent, at);
        if (!open_ended) text += "+" + render_time(percent, dur);
        text += ":x0." + std::to_string(1 + static_cast<int>(
                                                rng.next_double() * 8.0));
        break;
      case 2:
        text = "nic:w" + std::to_string(a) + "@" + render_time(percent, at);
        if (!open_ended) text += "+" + render_time(percent, dur);
        text += ":x0.5";
        if (rng.next_bool(0.5)) text += ":loss=0.25";
        break;
      case 3:
        text = "drop:w" + std::to_string(a) + "@" + render_time(percent, at);
        if (!open_ended) text += "+" + render_time(percent, dur);
        break;
      default: {
        const int b = (a + 1 + static_cast<int>(rng.next_double() * 3.0)) % 8;
        text = "part:w" + std::to_string(a) + "-w" + std::to_string(b) + "@" +
               render_time(percent, at) + "+" + render_time(percent, dur);
        break;
      }
    }
    const auto spec = FaultSpec::parse(text);
    ASSERT_TRUE(spec.has_value()) << text;
    const auto again = FaultSpec::parse(spec->to_string());
    ASSERT_TRUE(again.has_value()) << spec->to_string();
    EXPECT_EQ(*spec, *again) << text << " -> " << spec->to_string();
  }
}

TEST(FaultInjectorTest, PartitionQueriesAndHealTime) {
  const auto spec = FaultSpec::parse("part:w0-w2@1s+2s,part:w0-w2@3s+1s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_FALSE(inj.partitioned(0, 2, kSecond / 2));
  EXPECT_TRUE(inj.partitioned(0, 2, 2 * kSecond));
  EXPECT_TRUE(inj.partitioned(2, 0, 2 * kSecond));  // symmetric
  EXPECT_FALSE(inj.partitioned(0, 1, 2 * kSecond));  // other pair
  // Chained windows are walked through: [1s,3s) then [3s,4s).
  EXPECT_EQ(inj.partition_heal_time(0, 2, 2 * kSecond), 4 * kSecond);
  EXPECT_EQ(inj.partition_heal_time(0, 2, 5 * kSecond), 5 * kSecond);
  EXPECT_FALSE(inj.partitioned(0, 2, 4 * kSecond));
}

TEST(FaultInjectorTest, IsolationWindowsComeFromWildcardPartitions) {
  const auto spec = FaultSpec::parse("part:w1-w*@2s+1s,part:w0-w2@1s+1s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  const auto isolated = inj.isolation_windows(1);
  ASSERT_EQ(isolated.size(), 1u);
  EXPECT_EQ(isolated[0].first, 2 * kSecond);
  EXPECT_EQ(isolated[0].second, 3 * kSecond);
  // A pairwise partition does not isolate either endpoint.
  EXPECT_TRUE(inj.isolation_windows(0).empty());
  EXPECT_TRUE(inj.partitioned(1, 3, 2 * kSecond + 1));  // wildcard peer
}

TEST(FaultInjectorTest, ResolvesPercentTimesAgainstHorizon) {
  const auto spec = FaultSpec::parse("crash:w1@50%");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  const auto t = inj.next_crash_time();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 5 * kSecond);
}

TEST(FaultInjectorTest, CrashIsConsumedOnce) {
  const auto spec = FaultSpec::parse("crash:w1@1s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_FALSE(inj.take_crash(kSecond / 2).has_value());
  const auto victim = inj.take_crash(2 * kSecond);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1);
  EXPECT_FALSE(inj.take_crash(3 * kSecond).has_value());
  EXPECT_FALSE(inj.next_crash_time().has_value());
}

TEST(FaultInjectorTest, SpeedFactorOnlyInsideWindow) {
  const auto spec = FaultSpec::parse("slow:w1@2s+3s:x0.5");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_DOUBLE_EQ(inj.speed_factor(1, kSecond), 1.0);
  EXPECT_DOUBLE_EQ(inj.speed_factor(1, 3 * kSecond), 0.5);
  EXPECT_DOUBLE_EQ(inj.speed_factor(0, 3 * kSecond), 1.0);  // other machine
  EXPECT_DOUBLE_EQ(inj.speed_factor(1, 6 * kSecond), 1.0);  // window over
}

TEST(FaultInjectorTest, AllMachinesWindowAppliesEverywhere) {
  const auto spec = FaultSpec::parse("slow:w*@1s+1s:x0.25");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  for (int m = 0; m < 4; ++m) {
    EXPECT_DOUBLE_EQ(inj.speed_factor(m, kSecond + kSecond / 2), 0.25);
  }
}

TEST(FaultInjectorTest, OverlappingWindowsMultiply) {
  const auto spec = FaultSpec::parse("slow:w0@1s+4s:x0.5,slow:w0@2s+1s:x0.5");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_DOUBLE_EQ(inj.speed_factor(0, kSecond + kSecond / 2), 0.5);
  EXPECT_DOUBLE_EQ(inj.speed_factor(0, 2 * kSecond + kSecond / 2), 0.25);
}

TEST(FaultInjectorTest, NicFactorAndChangeTimes) {
  const auto spec = FaultSpec::parse("nic:w0@1s+2s:x0.25");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_DOUBLE_EQ(inj.nic_factor(0, kSecond / 2), 1.0);
  EXPECT_DOUBLE_EQ(inj.nic_factor(0, kSecond + 1), 0.25);
  EXPECT_DOUBLE_EQ(inj.nic_factor(0, 4 * kSecond), 1.0);
  const auto times = inj.nic_change_times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], kSecond);
  EXPECT_EQ(times[1], 3 * kSecond);
}

TEST(FaultInjectorTest, SendFailsNeverDrawsWithoutLossWindow) {
  const auto spec = FaultSpec::parse("nic:w0@1s+2s:x0.5");  // no loss
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.send_fails(0, kSecond + 1));
  }
}

TEST(FaultInjectorTest, SendFailuresAreDeterministicPerSeed) {
  const auto spec = FaultSpec::parse("nic:w0@0s+10s:x1:loss=0.5");
  ASSERT_TRUE(spec.has_value());
  FaultInjector a(*spec, 42);
  FaultInjector b(*spec, 42);
  a.resolve(10 * kSecond);
  b.resolve(10 * kSecond);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.send_fails(0, kSecond);
    EXPECT_EQ(fa, b.send_fails(0, kSecond));
    if (fa) ++failures;
  }
  // Roughly half should fail.
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST(FaultInjectorTest, SampleDropWindows) {
  const auto spec = FaultSpec::parse("drop:w3@1s+2s");
  ASSERT_TRUE(spec.has_value());
  FaultInjector inj(*spec, 7);
  inj.resolve(10 * kSecond);
  EXPECT_FALSE(inj.sample_dropped(3, kSecond / 2));
  EXPECT_TRUE(inj.sample_dropped(3, 2 * kSecond));
  EXPECT_FALSE(inj.sample_dropped(2, 2 * kSecond));
  EXPECT_FALSE(inj.sample_dropped(3, 4 * kSecond));
}

TEST(FaultInjectorTest, QueriesOnEmptySpecNeedNoResolve) {
  FaultInjector inj;
  EXPECT_TRUE(inj.empty());
  EXPECT_DOUBLE_EQ(inj.speed_factor(0, kSecond), 1.0);
  EXPECT_DOUBLE_EQ(inj.nic_factor(0, kSecond), 1.0);
  EXPECT_FALSE(inj.send_fails(0, kSecond));
  EXPECT_FALSE(inj.sample_dropped(0, kSecond));
  EXPECT_FALSE(inj.next_crash_time().has_value());
}


// Property corpus for FaultSpec::sample (the ensemble's fault axis): every
// sampled spec must be non-empty, valid for the cluster it was drawn for,
// and survive a parse <-> to_string round trip exactly. sample() builds
// canonical grammar text and parses it, so sampled values take the same
// code path as hand-written specs.
TEST(FaultSpecSampleTest, SampledSpecsRoundTripAndValidate) {
  Rng rng(20260808);
  FaultSampleRanges ranges;
  ranges.machine_count = 4;
  ranges.min_events = 1;
  ranges.max_events = 4;
  for (int i = 0; i < 500; ++i) {
    const FaultSpec spec = FaultSpec::sample(rng, ranges);
    EXPECT_FALSE(spec.empty());
    EXPECT_NO_THROW(spec.validate(ranges.machine_count));
    const std::string text = spec.to_string();
    const auto reparsed = FaultSpec::parse(text);
    ASSERT_TRUE(reparsed.has_value()) << text;
    EXPECT_EQ(*reparsed, spec) << text;
    EXPECT_EQ(reparsed->to_string(), text);
  }
}

TEST(FaultSpecSampleTest, IsDeterministicInTheRng) {
  FaultSampleRanges ranges;
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(FaultSpec::sample(a, ranges), FaultSpec::sample(b, ranges));
  }
}

TEST(FaultSpecSampleTest, SingleMachineClusterNeverDrawsPartitions) {
  Rng rng(7);
  FaultSampleRanges ranges;
  ranges.machine_count = 1;
  for (int i = 0; i < 200; ++i) {
    const FaultSpec spec = FaultSpec::sample(rng, ranges);
    EXPECT_FALSE(spec.has_kind(FaultKind::kPartition));
    EXPECT_NO_THROW(spec.validate(1));
  }
}

TEST(FaultSpecSampleTest, HonorsTheKindRestrictionAndEventBounds) {
  Rng rng(11);
  FaultSampleRanges ranges;
  ranges.kinds = {FaultKind::kSlowdown, FaultKind::kNicDegrade};
  ranges.min_events = 2;
  ranges.max_events = 3;
  for (int i = 0; i < 200; ++i) {
    const FaultSpec spec = FaultSpec::sample(rng, ranges);
    EXPECT_GE(spec.events.size(), 2u);
    EXPECT_LE(spec.events.size(), 3u);
    for (const FaultEvent& event : spec.events) {
      EXPECT_TRUE(event.kind == FaultKind::kSlowdown ||
                  event.kind == FaultKind::kNicDegrade);
    }
  }
}

TEST(FaultSpecSampleTest, AtMostOneCrashPerSpec) {
  Rng rng(13);
  FaultSampleRanges ranges;
  ranges.min_events = 3;
  ranges.max_events = 5;
  for (int i = 0; i < 200; ++i) {
    const FaultSpec spec = FaultSpec::sample(rng, ranges);
    int crashes = 0;
    for (const FaultEvent& event : spec.events) {
      if (event.kind == FaultKind::kCrash) ++crashes;
    }
    EXPECT_LE(crashes, 1);
  }
}

}  // namespace
}  // namespace g10::sim
