#include "sim/fluid_queue.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10::sim {
namespace {

TEST(FluidQueueTest, DrainsLinearly) {
  FluidQueue q(100.0);  // 100 units per second
  q.enqueue(0, 50.0);
  EXPECT_DOUBLE_EQ(q.level(0), 50.0);
  EXPECT_NEAR(q.level(kSecond / 4), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.level(kSecond), 0.0);
}

TEST(FluidQueueTest, TimeUntilLevel) {
  FluidQueue q(100.0);
  q.enqueue(0, 100.0);
  // Drops to 50 after 0.5 s.
  EXPECT_NEAR(static_cast<double>(q.time_until_level(0, 50.0)),
              0.5 * kSecond, 1e3);
  EXPECT_NEAR(static_cast<double>(q.time_empty(0)),
              1.0 * kSecond, 1e3);
  // Already below target.
  EXPECT_EQ(q.time_until_level(0, 200.0), 0);
}

TEST(FluidQueueTest, MultipleEnqueuesAccumulate) {
  FluidQueue q(100.0);
  q.enqueue(0, 30.0);
  q.enqueue(kSecond / 10, 30.0);  // 20 left + 30 = 50
  EXPECT_NEAR(q.level(kSecond / 10), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.total_enqueued(), 60.0);
}

TEST(FluidQueueTest, RateSeriesConservesMass) {
  FluidQueue q(200.0);
  q.enqueue(0, 100.0);
  q.enqueue(kSecond, 60.0);  // queue idle in between
  const TimeNs end = 3 * kSecond;
  StepFunction rate = q.finalize_rate_series(end);
  // Integral of the drain rate over the busy spans equals the enqueued mass.
  const double drained = rate.integrate(0, end) / static_cast<double>(kSecond);
  EXPECT_NEAR(drained, 160.0, 1e-3);
}

TEST(FluidQueueTest, RateSeriesIsBusyDuringDrain) {
  FluidQueue q(100.0);
  q.enqueue(0, 100.0);  // busy for exactly 1 s
  StepFunction rate = q.finalize_rate_series(2 * kSecond);
  EXPECT_DOUBLE_EQ(rate.value_at(kSecond / 2), 100.0);
  EXPECT_DOUBLE_EQ(rate.value_at(kSecond + kSecond / 2), 0.0);
}

TEST(FluidQueueTest, OverlappingBusySpansMerge) {
  FluidQueue q(100.0);
  q.enqueue(0, 100.0);
  q.enqueue(kSecond / 2, 100.0);  // arrives while still draining
  StepFunction rate = q.finalize_rate_series(3 * kSecond);
  const double drained = rate.integrate(0, 3 * kSecond) /
                         static_cast<double>(kSecond);
  EXPECT_NEAR(drained, 200.0, 1e-3);
  // Continuously busy from 0 to 2 s.
  EXPECT_DOUBLE_EQ(rate.value_at(kSecond), 100.0);
}

TEST(FluidQueueTest, ZeroEnqueueIsNoop) {
  FluidQueue q(100.0);
  q.enqueue(0, 0.0);
  EXPECT_DOUBLE_EQ(q.level(0), 0.0);
  StepFunction rate = q.finalize_rate_series(kSecond);
  EXPECT_DOUBLE_EQ(rate.integrate(0, kSecond), 0.0);
}

TEST(FluidQueueTest, SetRateChangesDrainSpeed) {
  FluidQueue q(100.0);
  q.enqueue(0, 100.0);
  q.set_rate(kSecond / 2, 50.0);  // 50 units left, now draining at 50/s
  EXPECT_NEAR(q.level(kSecond / 2), 50.0, 1e-9);
  EXPECT_NEAR(q.level(kSecond), 25.0, 1e-9);
  // 50 units at 50/s: empty one second after the rate change.
  EXPECT_NEAR(static_cast<double>(q.time_empty(kSecond / 2)),
              1.5 * kSecond, 1e3);
}

TEST(FluidQueueTest, ClearDiscardsQueuedContent) {
  FluidQueue q(100.0);
  q.enqueue(0, 100.0);
  q.clear(kSecond / 2);
  EXPECT_DOUBLE_EQ(q.level(kSecond / 2), 0.0);
  EXPECT_EQ(q.time_empty(kSecond / 2), kSecond / 2);  // already empty
  // Mass drained before the clear still shows up in the rate series.
  StepFunction rate = q.finalize_rate_series(kSecond);
  const double drained = rate.integrate(0, kSecond) /
                         static_cast<double>(kSecond);
  EXPECT_NEAR(drained, 50.0, 1e-3);
}

TEST(FluidQueueTest, RejectsInvalidUse) {
  EXPECT_THROW(FluidQueue(0.0), CheckError);
  FluidQueue q(10.0);
  q.enqueue(100, 5.0);
  EXPECT_THROW(q.enqueue(50, 5.0), CheckError);  // time went backwards
}

}  // namespace
}  // namespace g10::sim
