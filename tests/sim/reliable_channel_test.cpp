#include "sim/reliable_channel.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injector.hpp"

namespace g10::sim {
namespace {

FaultInjector make_injector(const char* spec_text, std::uint64_t seed = 7) {
  const auto spec = FaultSpec::parse(spec_text);
  EXPECT_TRUE(spec.has_value()) << spec_text;
  FaultInjector inj(*spec, seed);
  inj.resolve(10 * kSecond);
  return inj;
}

TEST(ReliableChannelTest, TrivialWithoutFaultEvents) {
  ReliableChannel none;
  EXPECT_TRUE(none.trivial());
  FaultInjector empty;
  ReliableChannel ch(ReliableChannelConfig{}, &empty, 2);
  EXPECT_TRUE(ch.trivial());
  const auto plan = ch.plan_send(0, 1, kSecond);
  ASSERT_EQ(plan.attempts.size(), 1u);
  EXPECT_EQ(plan.attempts[0].at, kSecond);
  EXPECT_FALSE(plan.attempts[0].lost);
  EXPECT_EQ(plan.complete, kSecond);
  EXPECT_FALSE(plan.waited());
  EXPECT_FALSE(plan.gave_up);
}

TEST(ReliableChannelTest, SequenceNumbersArePerDirectedPair) {
  FaultInjector empty;
  ReliableChannel ch(ReliableChannelConfig{}, &empty, 3);
  EXPECT_EQ(ch.plan_send(0, 1, 0).seq, 0u);
  EXPECT_EQ(ch.plan_send(0, 1, 0).seq, 1u);
  EXPECT_EQ(ch.plan_send(1, 0, 0).seq, 0u);
  EXPECT_EQ(ch.plan_send(0, 2, 0).seq, 0u);
}

TEST(ReliableChannelTest, LossCausesBackoffRetransmits) {
  // Near-total loss inside the window (the grammar caps loss below 1):
  // some plan in a deterministic batch exhausts its budget, retries with
  // growing gaps, and is finally forced through when the budget ends.
  auto inj = make_injector("nic:w0@0s+10s:x1:loss=0.95");
  ReliableChannelConfig cfg;
  cfg.max_attempts = 3;
  ReliableChannel ch(cfg, &inj, 2);
  EXPECT_FALSE(ch.trivial());
  ReliableChannel::SendPlan exhausted;
  for (int i = 0; i < 200 && exhausted.attempts.empty(); ++i) {
    const auto plan = ch.plan_send(0, 1, i * kMillisecond);
    if (plan.attempts.size() == 4u) exhausted = plan;
  }
  // max_attempts lost transmissions plus the forced final delivery.
  ASSERT_EQ(exhausted.attempts.size(), 4u);
  EXPECT_TRUE(exhausted.attempts[0].lost);
  EXPECT_TRUE(exhausted.waited());
  EXPECT_EQ(exhausted.complete, exhausted.attempts.back().at);
  EXPECT_FALSE(exhausted.gave_up);
  // Exponential backoff: gaps grow monotonically.
  const TimeNs gap1 = exhausted.attempts[1].at - exhausted.attempts[0].at;
  const TimeNs gap2 = exhausted.attempts[2].at - exhausted.attempts[1].at;
  EXPECT_GT(gap2, gap1);
  EXPECT_GT(ch.stats(0).forced, 0);
  EXPECT_GT(ch.stats(0).losses, 0);
}

TEST(ReliableChannelTest, PlansAreDeterministic) {
  auto a = make_injector("nic:w*@0s+10s:x1:loss=0.5", 42);
  auto b = make_injector("nic:w*@0s+10s:x1:loss=0.5", 42);
  ReliableChannel ca(ReliableChannelConfig{}, &a, 2);
  ReliableChannel cb(ReliableChannelConfig{}, &b, 2);
  for (int i = 0; i < 50; ++i) {
    const auto pa = ca.plan_send(0, 1, i * kMillisecond);
    const auto pb = cb.plan_send(0, 1, i * kMillisecond);
    ASSERT_EQ(pa.attempts.size(), pb.attempts.size());
    EXPECT_EQ(pa.complete, pb.complete);
    EXPECT_EQ(pa.duplicates, pb.duplicates);
  }
}

TEST(ReliableChannelTest, PartitionIsRiddenOutPastTheBudget) {
  auto inj = make_injector("part:w0-w1@1s+2s");
  ReliableChannelConfig cfg;
  cfg.max_attempts = 2;
  ReliableChannel ch(cfg, &inj, 2);
  const auto plan = ch.plan_send(0, 1, kSecond + 1);
  // The transfer completes only after the partition heals at t=3s, without
  // giving up, and the sender blocked the whole time.
  EXPECT_FALSE(plan.gave_up);
  EXPECT_GE(plan.complete, 3 * kSecond);
  EXPECT_TRUE(plan.waited());
  EXPECT_FALSE(plan.attempts.back().lost);
  // Traffic on an unaffected pair is untouched (and draws no RNG).
  ReliableChannel other(cfg, &inj, 3);
  const auto fine = other.plan_send(0, 2, kSecond + 1);
  EXPECT_EQ(fine.attempts.size(), 1u);
  EXPECT_EQ(fine.complete, kSecond + 1);
}

TEST(ReliableChannelTest, DeadPeerExhaustsBudgetAndGivesUp) {
  auto inj = make_injector("crash:w1@1s");
  ReliableChannelConfig cfg;
  cfg.max_attempts = 3;
  ReliableChannel ch(cfg, &inj, 2);
  ch.set_dead(1, true);
  const auto plan = ch.plan_send(0, 1, 2 * kSecond);
  EXPECT_TRUE(plan.gave_up);
  EXPECT_EQ(plan.attempts.size(), 3u);
  for (const auto& attempt : plan.attempts) EXPECT_TRUE(attempt.lost);
  // Revived peer: sends succeed immediately again.
  ch.set_dead(1, false);
  const auto after = ch.plan_send(0, 1, 5 * kSecond);
  EXPECT_FALSE(after.gave_up);
  EXPECT_EQ(after.attempts.size(), 1u);
}

TEST(ReliableChannelTest, LostAckCausesDuplicateDelivery) {
  // Loss applies to the receiver's outbound acks too (send_fails(dst, t)):
  // the payload arrives (no loss window on w0), the ack from w1 is usually
  // lost, and the retransmit that follows is deduped at the receiver.
  auto inj = make_injector("nic:w1@0s+10s:x1:loss=0.95");
  ReliableChannelConfig cfg;
  cfg.max_attempts = 2;
  ReliableChannel ch(cfg, &inj, 2);
  int duplicates = 0;
  for (int i = 0; i < 200; ++i) {
    duplicates += ch.plan_send(0, 1, i * kMillisecond).duplicates;
  }
  EXPECT_GT(duplicates, 0);
  EXPECT_EQ(ch.stats(0).duplicates_dropped, duplicates);
}

}  // namespace
}  // namespace g10::sim
