#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace g10 {
namespace {

TEST(ThreadPoolTest, ResolveThreadsExplicitRequestWins) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
}

TEST(ThreadPoolTest, ResolveThreadsReadsEnvironment) {
  ::setenv("G10_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 5u);
  // An explicit request still beats the environment.
  EXPECT_EQ(ThreadPool::resolve_threads(2), 2u);
  // Garbage and non-positive values fall through to hardware concurrency.
  ::setenv("G10_THREADS", "banana", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  ::setenv("G10_THREADS", "-4", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  ::unsetenv("G10_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int calls = 0;
  pool.submit([&] { ++calls; });  // runs inline with no workers
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(pool.try_submit([&] { ++calls; }));
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{16}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, grain, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelMapPlacesResultsByInputIndex) {
  ThreadPool pool(4);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<std::string> mapped = parallel_map(
      &pool, items, [](int v) { return std::to_string(v * v); });
  ASSERT_EQ(mapped.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(mapped[i], std::to_string(static_cast<int>(i * i)));
  }
}

TEST(ThreadPoolTest, FreeFunctionWithNullPoolRunsSerially) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 10, 3, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);  // strictly in-order: fully inline
}

TEST(ThreadPoolTest, RethrowsLowestIndexedChunkException) {
  ThreadPool pool(4);
  // Two failing iterations; the lower index must win regardless of which
  // worker reaches its chunk first.
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      pool.parallel_for(100, 1, [&](std::size_t i) {
        if (i == 17 || i == 83) {
          throw std::runtime_error("bad " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "bad 17");
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForMakesProgress) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(8, 1, [&](std::size_t outer) {
    pool.parallel_for(32, 4, [&](std::size_t inner) {
      sum += static_cast<long>(outer * 100 + inner);
    });
  });
  long expected = 0;
  for (long outer = 0; outer < 8; ++outer) {
    for (long inner = 0; inner < 32; ++inner) expected += outer * 100 + inner;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, SubmitAndWaitIdleRunsEverything) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, TinyQueueCapacityStillCompletesAllWork) {
  // submit() must block (not drop) at the bound, so nothing is lost.
  ThreadPool pool(ThreadPool::Options{4, 2});
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ParallelForResultsMatchSerialBitForBit) {
  // Floating-point per-index results must be identical to the serial loop
  // because each index is computed independently and placed by index.
  const auto value = [](std::size_t i) {
    double x = 1.0;
    for (std::size_t k = 0; k < i % 17; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  std::vector<double> serial(500);
  for (std::size_t i = 0; i < serial.size(); ++i) serial[i] = value(i);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(serial.size());
    pool.parallel_for(parallel.size(), 7,
                      [&](std::size_t i) { parallel[i] = value(i); });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace g10
