// Exercises the fork/exec spawn wrapper: exit/signal classification,
// process-group kills that reach grandchildren, rlimit sandboxes, and the
// dup_fds plumbing used for the supervisor's status pipe.
#include "common/subprocess.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace g10 {
namespace {

std::vector<std::string> sh(const std::string& script) {
  return {"/bin/sh", "-c", script};
}

TEST(ExitStatusTest, DescribeIsStable) {
  ExitStatus exited;
  exited.exited = true;
  exited.code = 3;
  EXPECT_EQ(exited.describe(), "exited with code 3");
  ExitStatus killed;
  killed.signaled = true;
  killed.signal_number = SIGSEGV;
  EXPECT_EQ(killed.describe(), "killed by SIGSEGV");
}

TEST(SignalNameTest, CommonSignalsAndFallback) {
  EXPECT_EQ(signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(signal_name(SIGTERM), "SIGTERM");
  EXPECT_EQ(signal_name(SIGXCPU), "SIGXCPU");
  EXPECT_EQ(signal_name(63), "signal 63");
}

TEST(SubprocessTest, NormalExitCodeIsCaptured) {
  Subprocess child = Subprocess::spawn(sh("exit 7"));
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 7);
  EXPECT_FALSE(status.success());
  EXPECT_FALSE(child.running());
}

TEST(SubprocessTest, SignalDeathIsClassified) {
  Subprocess child = Subprocess::spawn(sh("kill -SEGV $$"));
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.signal_number, SIGSEGV);
  EXPECT_EQ(status.describe(), "killed by SIGSEGV");
}

TEST(SubprocessTest, ExecFailureIs127) {
  Subprocess child = Subprocess::spawn({"/nonexistent/binary"});
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 127);
}

TEST(SubprocessTest, PollIsNonBlockingAndCaches) {
  Subprocess child = Subprocess::spawn(sh("sleep 30"));
  EXPECT_FALSE(child.poll().has_value());
  EXPECT_TRUE(child.running());
  child.kill(SIGKILL);
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.signal_number, SIGKILL);
  // Cached after reaping: repeat polls return the same status.
  const auto again = child.poll();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->signal_number, SIGKILL);
}

TEST(SubprocessTest, GroupKillReachesGrandchildren) {
  // The worker leaks a grandchild that writes to the pipe when it dies;
  // SIGKILL to the group must take the whole tree down, so the pipe read
  // end must reach EOF promptly rather than after the grandchild's 30s nap.
  Pipe pipe;
  SpawnOptions options;
  options.dup_fds.push_back({pipe.write_fd(), 3});
  Subprocess child =
      Subprocess::spawn(sh("sleep 30 >&3 & sleep 30"), options);
  pipe.close_write();
  child.kill(SIGKILL);
  EXPECT_TRUE(child.wait().signaled);
  // EOF on the pipe proves no group member still holds fd 3 open.
  char byte;
  ssize_t n;
  do {
    n = ::read(pipe.read_fd(), &byte, 1);
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0);
}

TEST(SubprocessTest, DupFdsWiresThePipe) {
  Pipe pipe;
  SpawnOptions options;
  options.dup_fds.push_back({pipe.write_fd(), 3});
  Subprocess child = Subprocess::spawn(sh("echo hello >&3"), options);
  pipe.close_write();
  std::string received;
  char chunk[64];
  ssize_t n;
  while ((n = ::read(pipe.read_fd(), chunk, sizeof(chunk))) > 0) {
    received.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(received, "hello\n");
  EXPECT_TRUE(child.wait().success());
}

TEST(SubprocessTest, AddressSpaceLimitContainsAllocation) {
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#endif
#endif
  // 64 MiB of address space cannot hold a 256 MiB allocation: dd into a
  // shell variable would be slow, so use head -c into a subshell that
  // tries to slurp it into memory via sh's read of a huge line. Simpler
  // and portable: python isn't guaranteed, so use dd to /dev/null with a
  // huge block size — dd allocates the block buffer up front.
  SpawnOptions options;
  options.limits.address_space_bytes = 64ull * 1024 * 1024;
  Subprocess child = Subprocess::spawn(
      sh("dd if=/dev/zero of=/dev/null bs=256M count=1 2>/dev/null"),
      options);
  const ExitStatus status = child.wait();
  // dd fails to allocate its buffer: nonzero exit (or an abort signal),
  // but never success — the kernel refused the address space.
  EXPECT_FALSE(status.success());
#endif
}

TEST(SubprocessTest, CpuLimitKillsASpinner) {
  // Soft RLIMIT_CPU delivers SIGXCPU after ~1s of CPU time; the spinner
  // burns CPU as fast as it can, so this terminates promptly.
  SpawnOptions options;
  options.limits.cpu_seconds = 1.0;
  Subprocess child = Subprocess::spawn(sh("while :; do :; done"), options);
  const ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_TRUE(status.signal_number == SIGXCPU ||
              status.signal_number == SIGKILL)
      << status.describe();
}

TEST(PipeTest, ReleaseTransfersOwnership) {
  int raw;
  {
    Pipe pipe;
    raw = pipe.release_read();
    EXPECT_GE(raw, 0);
  }  // destructor must not close the released fd
  // Still a valid descriptor: write end is closed, so read returns EOF
  // rather than EBADF.
  char byte;
  ssize_t n;
  do {
    n = ::read(raw, &byte, 1);
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0);
  ::close(raw);
}

}  // namespace
}  // namespace g10
