#include "common/time.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace g10 {
namespace {

TEST(TimesliceGridTest, SliceOfFloors) {
  TimesliceGrid grid(10);
  EXPECT_EQ(grid.slice_of(0), 0);
  EXPECT_EQ(grid.slice_of(9), 0);
  EXPECT_EQ(grid.slice_of(10), 1);
  EXPECT_EQ(grid.slice_of(25), 2);
}

TEST(TimesliceGridTest, SliceCeil) {
  TimesliceGrid grid(10);
  EXPECT_EQ(grid.slice_ceil(0), 0);
  EXPECT_EQ(grid.slice_ceil(1), 1);
  EXPECT_EQ(grid.slice_ceil(10), 1);
  EXPECT_EQ(grid.slice_ceil(11), 2);
}

TEST(TimesliceGridTest, StartEndRoundTrip) {
  TimesliceGrid grid(10 * kMillisecond);
  EXPECT_EQ(grid.start_of(3), 30 * kMillisecond);
  EXPECT_EQ(grid.end_of(3), 40 * kMillisecond);
  EXPECT_EQ(grid.slice_of(grid.start_of(7)), 7);
}

TEST(TimesliceGridTest, SliceCount) {
  TimesliceGrid grid(10);
  EXPECT_EQ(grid.slice_count(0), 0);
  EXPECT_EQ(grid.slice_count(1), 1);
  EXPECT_EQ(grid.slice_count(10), 1);
  EXPECT_EQ(grid.slice_count(11), 2);
}

TEST(TimesliceGridTest, RejectsNonPositiveDuration) {
  EXPECT_THROW(TimesliceGrid(0), CheckError);
  EXPECT_THROW(TimesliceGrid(-5), CheckError);
}

TEST(IntervalTest, OverlapAndContains) {
  const Interval i{10, 20};
  EXPECT_EQ(i.length(), 10);
  EXPECT_FALSE(i.empty());
  EXPECT_TRUE(i.contains(10));
  EXPECT_FALSE(i.contains(20));
  EXPECT_EQ(i.overlap(0, 15), 5);
  EXPECT_EQ(i.overlap(15, 30), 5);
  EXPECT_EQ(i.overlap(12, 18), 6);
  EXPECT_EQ(i.overlap(20, 30), 0);
  EXPECT_EQ(i.overlap(0, 10), 0);
}

TEST(IntervalTest, EmptyInterval) {
  const Interval i{5, 5};
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(i.overlap(0, 100), 0);
}

TEST(TimeConversionTest, SecondsAndMillis) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 0.001);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_millis(kMicrosecond), 0.001);
}

}  // namespace
}  // namespace g10
