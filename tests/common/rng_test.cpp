#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace g10 {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64_next(state);
  const std::uint64_t b = splitmix64_next(state);
  EXPECT_NE(a, b);
  // Reference values of SplitMix64 seeded with 0.
  std::uint64_t check = 0;
  EXPECT_EQ(splitmix64_next(check), a);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.next_int(-2, 3);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -2);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(10);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(RngTest, NextBoolFrequencyTracksP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanIsCorrect) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, NormalMomentsAreCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, ValuesInRangeAndSkewed) {
  const double s = GetParam();
  Rng rng(42);
  const std::uint64_t n = 100;
  std::vector<int> counts(n, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = rng.next_zipf(n, s);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Rank 0 must dominate rank 9 roughly like (10)^s.
  EXPECT_GT(counts[0], counts[9]);
  const double expected_ratio = std::pow(10.0, s);
  const double observed_ratio =
      static_cast<double>(counts[0]) / std::max(1, counts[9]);
  EXPECT_GT(observed_ratio, expected_ratio * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest, ::testing::Values(0.5, 1.0, 1.5));

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_zipf(1, 1.2), 0u);
}

TEST(RngTest, NextBelowIsUnbiasedAtBoundary) {
  Rng rng(21);
  // All values below bound; both halves populated.
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], 2000, 300) << "bucket " << k;
  }
}

}  // namespace
}  // namespace g10
