#include "common/step_function.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace g10 {
namespace {

TEST(StepFunctionTest, EmptyFunctionIsZero) {
  StepFunction f;
  EXPECT_DOUBLE_EQ(f.value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(f.value_at(1000), 0.0);
  EXPECT_DOUBLE_EQ(f.integrate(0, 1000), 0.0);
  EXPECT_TRUE(f.empty());
}

TEST(StepFunctionTest, AddAccumulates) {
  StepFunction f;
  f.add(10, 2.0);
  f.add(20, 3.0);
  f.add(30, -2.0);
  EXPECT_DOUBLE_EQ(f.value_at(5), 0.0);
  EXPECT_DOUBLE_EQ(f.value_at(10), 2.0);
  EXPECT_DOUBLE_EQ(f.value_at(25), 5.0);
  EXPECT_DOUBLE_EQ(f.value_at(30), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(1000), 3.0);
}

TEST(StepFunctionTest, IntegrateAcrossBreakpoints) {
  StepFunction f;
  f.add(0, 1.0);
  f.add(10, 1.0);  // value 2 from t=10
  // [0,10) at 1, [10,20) at 2 -> 10 + 20 = 30.
  EXPECT_DOUBLE_EQ(f.integrate(0, 20), 30.0);
  EXPECT_DOUBLE_EQ(f.integrate(5, 15), 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(f.average(0, 20), 1.5);
}

TEST(StepFunctionTest, IntegratePartiallyBeforeFirstBreakpoint) {
  StepFunction f;
  f.add(100, 4.0);
  EXPECT_DOUBLE_EQ(f.integrate(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(f.integrate(50, 150), 200.0);
}

TEST(StepFunctionTest, SetOverridesValue) {
  StepFunction f;
  f.set(0, 5.0);
  f.set(10, 0.0);
  f.set(20, 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(5), 5.0);
  EXPECT_DOUBLE_EQ(f.value_at(15), 0.0);
  EXPECT_DOUBLE_EQ(f.value_at(25), 3.0);
  EXPECT_DOUBLE_EQ(f.integrate(0, 30), 50.0 + 0.0 + 30.0);
}

TEST(StepFunctionTest, OutOfOrderAddShiftsSuffix) {
  StepFunction f;
  f.add(10, 1.0);
  f.add(30, 1.0);
  f.add(20, 5.0);  // out of order
  EXPECT_DOUBLE_EQ(f.value_at(10), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(20), 6.0);
  EXPECT_DOUBLE_EQ(f.value_at(30), 7.0);
}

TEST(StepFunctionTest, OutOfOrderAddAtExistingBreakpoint) {
  StepFunction f;
  f.add(10, 1.0);
  f.add(30, 1.0);
  f.add(10, 2.0);  // merge into existing breakpoint... via out-of-order path
  EXPECT_DOUBLE_EQ(f.value_at(10), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(30), 4.0);
}

TEST(StepFunctionTest, MaxOverWindow) {
  StepFunction f;
  f.set(0, 1.0);
  f.set(10, 7.0);
  f.set(20, 3.0);
  EXPECT_DOUBLE_EQ(f.max_over(0, 30), 7.0);
  EXPECT_DOUBLE_EQ(f.max_over(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(f.max_over(15, 30), 7.0);  // value at 15 is 7
  EXPECT_DOUBLE_EQ(f.max_over(20, 30), 3.0);
}

TEST(StepFunctionTest, CompactMergesEqualRuns) {
  StepFunction f;
  f.set(0, 1.0);
  f.set(10, 1.0);
  f.set(20, 2.0);
  f.set(30, 2.0);
  f.compact();
  EXPECT_EQ(f.breakpoint_count(), 2u);
  EXPECT_DOUBLE_EQ(f.value_at(15), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(35), 2.0);
}

TEST(StepFunctionTest, LastChange) {
  StepFunction f;
  EXPECT_EQ(f.last_change(), 0);
  f.add(42, 1.0);
  EXPECT_EQ(f.last_change(), 42);
}

TEST(StepFunctionTest, ClampedSumMergesAndClamps) {
  StepFunction a;
  a.set(0, 2.0);
  a.set(20, 0.0);
  StepFunction b;
  b.set(10, 3.0);
  b.set(30, 1.0);
  const StepFunction sum = StepFunction::clamped_sum(a, b, 4.0);
  EXPECT_DOUBLE_EQ(sum.value_at(5), 2.0);
  EXPECT_DOUBLE_EQ(sum.value_at(15), 4.0);  // 2 + 3 clamped to 4
  EXPECT_DOUBLE_EQ(sum.value_at(25), 3.0);  // 0 + 3
  EXPECT_DOUBLE_EQ(sum.value_at(35), 1.0);  // 0 + 1
}

TEST(StepFunctionTest, ClampedSumWithEmptyOperand) {
  StepFunction a;
  a.set(0, 1.5);
  const StepFunction sum = StepFunction::clamped_sum(a, StepFunction(), 4.0);
  EXPECT_DOUBLE_EQ(sum.value_at(10), 1.5);
  const StepFunction sum2 =
      StepFunction::clamped_sum(StepFunction(), StepFunction(), 4.0);
  EXPECT_DOUBLE_EQ(sum2.value_at(0), 0.0);
}

class ClampedSumPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClampedSumPropertyTest, MatchesPointwiseDefinition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  StepFunction a;
  StepFunction b;
  TimeNs ta = 0;
  TimeNs tb = 0;
  for (int i = 0; i < 30; ++i) {
    ta += rng.next_int(1, 10);
    tb += rng.next_int(1, 10);
    a.set(ta, rng.next_double(0.0, 5.0));
    b.set(tb, rng.next_double(0.0, 5.0));
  }
  const double cap = 6.0;
  const StepFunction sum = StepFunction::clamped_sum(a, b, cap);
  for (TimeNs t = 0; t < 300; t += 3) {
    EXPECT_NEAR(sum.value_at(t),
                std::min(a.value_at(t) + b.value_at(t), cap), 1e-12)
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClampedSumPropertyTest, ::testing::Range(1, 6));

// Property: integrate() computed on random functions matches a brute-force
// per-unit-time sum.
class StepFunctionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StepFunctionPropertyTest, IntegralMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  StepFunction f;
  TimeNs t = 0;
  for (int i = 0; i < 50; ++i) {
    t += rng.next_int(1, 20);
    f.add(t, rng.next_double(-2.0, 3.0));
  }
  const TimeNs horizon = t + 10;
  for (int trial = 0; trial < 20; ++trial) {
    const TimeNs a = rng.next_int(0, horizon - 1);
    const TimeNs b = rng.next_int(a + 1, horizon);
    double brute = 0.0;
    for (TimeNs u = a; u < b; ++u) brute += f.value_at(u);
    EXPECT_NEAR(f.integrate(a, b), brute, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionPropertyTest,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace g10
