#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace g10 {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_FALSE(starts_with("hello", "el"));
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int(" 13 ").value(), 13);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("x12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0").value(), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5abc").has_value());
}

TEST(FormatTest, FixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_percent(0.1234, 2), "12.34%");
}

}  // namespace
}  // namespace g10
