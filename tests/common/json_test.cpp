#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace g10 {
namespace {

std::string write_sample() {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value("run \"7\"\n");
  w.key("count").value(std::int64_t{-3});
  w.key("big").value(std::uint64_t{18446744073709551615ull});
  w.key("ok").value(true);
  w.key("ratio").value(0.1);
  w.key("nothing").null();
  w.key("list").begin_array();
  w.value(1.5);
  w.value("x");
  w.begin_object();
  w.key("nested").value(false);
  w.end_object();
  w.end_array();
  w.end_object();
  return std::move(os).str();
}

TEST(JsonWriterTest, EmitsSeparatorsAndEscapes) {
  const std::string text = write_sample();
  EXPECT_NE(text.find("\"name\":\"run \\\"7\\\"\\n\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"big\":18446744073709551615"), std::string::npos);
  EXPECT_NE(text.find("\"nothing\":null"), std::string::npos);
  EXPECT_NE(text.find("\"list\":[1.5,\"x\",{\"nested\":false}]"),
            std::string::npos);
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  std::string in = "a\tb";
  in.push_back('\x01');  // appended separately: "\x01c" would parse as \x1c
  in += "c";
  std::string out;
  json_escape(out, in);
  EXPECT_EQ(out, "\"a\\tb\\u0001c\"");
}

TEST(JsonDoubleTest, ShortestRoundTrip) {
  EXPECT_EQ(json_double(0.1), "0.1");
  EXPECT_EQ(json_double(1.0), "1");
  EXPECT_EQ(json_double(-2.5), "-2.5");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
}

TEST(JsonValueTest, ParsesWriterOutput) {
  const auto v = JsonValue::parse(write_sample());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->get_string("name"), "run \"7\"\n");
  EXPECT_EQ(v->get_int("count"), -3);
  EXPECT_EQ(v->get_uint("big"), 18446744073709551615ull);
  EXPECT_TRUE(v->get_bool("ok"));
  EXPECT_DOUBLE_EQ(v->get_double("ratio"), 0.1);
  const JsonValue* nothing = v->find("nothing");
  ASSERT_NE(nothing, nullptr);
  EXPECT_TRUE(nothing->is_null());
  const JsonValue* list = v->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_DOUBLE_EQ(list->items()[0].as_double(), 1.5);
  EXPECT_EQ(list->items()[1].as_string(), "x");
  EXPECT_FALSE(list->items()[2].get_bool("nested", true));
}

TEST(JsonValueTest, DoubleSurvivesWriteParseBitExactly) {
  // The byte-identical --resume guarantee rests on this property.
  double probes[] = {0.1, 1.0 / 3.0, 1e-300, 123456.789, 5e17, 0.0};
  for (const double x : probes) {
    const auto v = JsonValue::parse(json_double(x));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->as_double(), x);
    EXPECT_EQ(json_double(v->as_double()), json_double(x));
  }
}

TEST(JsonValueTest, RejectsDamage) {
  std::string error;
  // The shapes a torn journal tail takes: truncated mid-token.
  EXPECT_FALSE(JsonValue::parse("{\"a\":1", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("tru", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("", &error).has_value());
  // Trailing garbage after a complete document.
  EXPECT_FALSE(JsonValue::parse("{} {}", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("1 2", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonValueTest, DepthLimitStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(JsonValue::parse(deep).has_value());
}

TEST(JsonValueTest, UnicodeEscapes) {
  const auto v = JsonValue::parse("\"\\u0041\\u00e9\\u4e2d\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonValueTest, TypedAccessorsCheckKind) {
  const auto v = JsonValue::parse("{\"s\":\"x\"}");
  ASSERT_TRUE(v.has_value());
  EXPECT_THROW(v->as_double(), CheckError);
  EXPECT_THROW(v->find("s")->as_bool(), CheckError);
  // Typed lookups fall back on kind mismatch instead of throwing.
  EXPECT_DOUBLE_EQ(v->get_double("s", 7.0), 7.0);
  EXPECT_EQ(v->get_string("missing", "d"), "d");
}

}  // namespace
}  // namespace g10
