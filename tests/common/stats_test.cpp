#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace g10 {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats s;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1: sum of squared deviations = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(PercentileTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(PercentileTest, MedianInterpolatesEvenCount) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, LinearInterpolation) {
  // p25 of {0, 10, 20, 30}: position 0.75 -> 7.5.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0, 20.0, 30.0}, 0.25), 7.5);
}

TEST(CoefficientOfVariationTest, UniformIsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({2.0, 2.0, 2.0}), 0.0);
}

TEST(CoefficientOfVariationTest, KnownValue) {
  // mean 2, sample stddev sqrt(2) for {1,3} -> cv = sqrt(2)/2.
  EXPECT_NEAR(coefficient_of_variation({1.0, 3.0}), std::sqrt(2.0) / 2.0,
              1e-12);
}

TEST(RelativeL1ErrorTest, IdenticalSeriesIsZero) {
  EXPECT_DOUBLE_EQ(relative_l1_error({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(RelativeL1ErrorTest, KnownValue) {
  // |1-2| + |2-2| = 1, reference mass 4 -> 0.25.
  EXPECT_DOUBLE_EQ(relative_l1_error({1.0, 2.0}, {2.0, 2.0}), 0.25);
}

TEST(RelativeL1ErrorTest, ZeroReference) {
  EXPECT_DOUBLE_EQ(relative_l1_error({0.0, 0.0}, {0.0, 0.0}), 0.0);
  EXPECT_GT(relative_l1_error({1.0, 0.0}, {0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace g10
