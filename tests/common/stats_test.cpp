#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace g10 {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats s;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance with n-1: sum of squared deviations = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(PercentileTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(PercentileTest, MedianInterpolatesEvenCount) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, LinearInterpolation) {
  // p25 of {0, 10, 20, 30}: position 0.75 -> 7.5.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0, 20.0, 30.0}, 0.25), 7.5);
}

TEST(CoefficientOfVariationTest, UniformIsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({2.0, 2.0, 2.0}), 0.0);
}

TEST(CoefficientOfVariationTest, KnownValue) {
  // mean 2, sample stddev sqrt(2) for {1,3} -> cv = sqrt(2)/2.
  EXPECT_NEAR(coefficient_of_variation({1.0, 3.0}), std::sqrt(2.0) / 2.0,
              1e-12);
}

TEST(RelativeL1ErrorTest, IdenticalSeriesIsZero) {
  EXPECT_DOUBLE_EQ(relative_l1_error({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(RelativeL1ErrorTest, KnownValue) {
  // |1-2| + |2-2| = 1, reference mass 4 -> 0.25.
  EXPECT_DOUBLE_EQ(relative_l1_error({1.0, 2.0}, {2.0, 2.0}), 0.25);
}

TEST(RelativeL1ErrorTest, ZeroReference) {
  EXPECT_DOUBLE_EQ(relative_l1_error({0.0, 0.0}, {0.0, 0.0}), 0.0);
  EXPECT_GT(relative_l1_error({1.0, 0.0}, {0.0, 0.0}), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSingleStream) {
  const double values[] = {2.0, -4.0, 4.5, 4.0, 5.0, 0.0, 7.25, 9.0, -1.0};
  RunningStats whole;
  for (double v : values) whole.add(v);
  // Every split point, including the degenerate 0/9 and 9/0 ones.
  for (int split = 0; split <= 9; ++split) {
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < split; ++i) left.add(values[i]);
    for (int i = split; i < 9; ++i) right.add(values[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-12);
  }
}

TEST(RunningStatsTest, MergeEmptyIntoEmptyStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(QuantilesTest, EmptyInputYieldsZeros) {
  const auto qs = quantiles({}, {0.0, 0.5, 1.0});
  ASSERT_EQ(qs.size(), 3u);
  for (double q : qs) EXPECT_DOUBLE_EQ(q, 0.0);
}

TEST(QuantilesTest, SingleValueIsEveryQuantile) {
  const auto qs = quantiles({3.5}, {0.0, 0.25, 0.5, 1.0});
  for (double q : qs) EXPECT_DOUBLE_EQ(q, 3.5);
}

TEST(QuantilesTest, AllEqualValues) {
  const auto qs = quantiles({2.0, 2.0, 2.0, 2.0}, {0.1, 0.5, 0.9});
  for (double q : qs) EXPECT_DOUBLE_EQ(q, 2.0);
}

TEST(QuantilesTest, MatchesPercentileFromOneSort) {
  const std::vector<double> v{5.0, 1.0, 3.0, 8.0, 2.0};
  const std::vector<double> probes{0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  const auto qs = quantiles(v, probes);
  ASSERT_EQ(qs.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_DOUBLE_EQ(qs[i], percentile(v, probes[i]));
  }
}

TEST(WilsonIntervalTest, NoTrialsIsVacuous) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(WilsonIntervalTest, SingleTrialStaysInsideUnitInterval) {
  const auto hit = wilson_interval(1, 1);
  EXPECT_GE(hit.low, 0.0);
  EXPECT_LT(hit.low, 1.0);  // one success is not certainty
  EXPECT_DOUBLE_EQ(hit.high, 1.0);
  const auto miss = wilson_interval(0, 1);
  EXPECT_DOUBLE_EQ(miss.low, 0.0);
  EXPECT_GT(miss.high, 0.0);
  EXPECT_LE(miss.high, 1.0);
}

TEST(WilsonIntervalTest, ExtremeProportionsDoNotCollapse) {
  // Unlike the normal approximation, 0/n and n/n keep a nonzero width.
  const auto none = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);
  EXPECT_LT(none.high, 0.1);
  const auto all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  EXPECT_GT(all.low, 0.9);
  EXPECT_LT(all.low, 1.0);
}

TEST(WilsonIntervalTest, KnownValue) {
  // 8/10 at z=1.96: standard worked example, center ~0.7166, +-0.2134...
  const auto ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.low, 0.4902, 5e-4);
  EXPECT_NEAR(ci.high, 0.9433, 5e-4);
}

TEST(WilsonIntervalTest, IntervalContainsThePointEstimate) {
  for (std::size_t n : {1u, 2u, 7u, 100u}) {
    for (std::size_t k = 0; k <= n; ++k) {
      const auto ci = wilson_interval(k, n);
      const double p = static_cast<double>(k) / static_cast<double>(n);
      // At k=0 / k=n the bound equals p exactly in real arithmetic; allow
      // for the last-ulp rounding of the floating-point evaluation.
      EXPECT_LE(ci.low, p + 1e-12);
      EXPECT_GE(ci.high, p - 1e-12);
      EXPECT_LT(ci.low, ci.high);
    }
  }
}

}  // namespace
}  // namespace g10
