// DetHasher / DetSummary: the determinism oracle's digest layer
// (DESIGN.md §14). Folding the same stream twice must be bit-identical;
// any reorder, drop, or value change must surface as a first_divergence
// that names the right phase path.
#include <gtest/gtest.h>

#include "common/det_hash.hpp"

namespace g10 {
namespace {

DetSummary fold_abc() {
  DetHasher hasher;
  hasher.fold_u64("phase/a", 1);
  hasher.fold_u64("phase/b", 2);
  hasher.fold_double("phase/a", 3.5);
  hasher.fold_bytes("phase/c", "payload");
  return hasher.summary();
}

TEST(DetHasher, IdenticalStreamsFoldIdentically) {
  const DetSummary lhs = fold_abc();
  const DetSummary rhs = fold_abc();
  EXPECT_EQ(lhs.overall, rhs.overall);
  EXPECT_EQ(lhs.total_folds, rhs.total_folds);
  ASSERT_EQ(lhs.phases.size(), rhs.phases.size());
  for (std::size_t i = 0; i < lhs.phases.size(); ++i) {
    EXPECT_EQ(lhs.phases[i].path, rhs.phases[i].path);
    EXPECT_EQ(lhs.phases[i].hash, rhs.phases[i].hash);
    EXPECT_EQ(lhs.phases[i].count, rhs.phases[i].count);
  }
  EXPECT_FALSE(first_divergence(lhs, rhs).has_value());
}

TEST(DetHasher, PhasesKeepFirstSeenOrder) {
  const DetSummary summary = fold_abc();
  ASSERT_EQ(summary.phases.size(), 3u);
  EXPECT_EQ(summary.phases[0].path, "phase/a");
  EXPECT_EQ(summary.phases[1].path, "phase/b");
  EXPECT_EQ(summary.phases[2].path, "phase/c");
  EXPECT_EQ(summary.phases[0].count, 2u);
  EXPECT_EQ(summary.total_folds, 4u);
}

TEST(DetHasher, ValueChangePinpointsThePhase) {
  DetHasher hasher;
  hasher.fold_u64("phase/a", 1);
  hasher.fold_u64("phase/b", 99);  // differs from fold_abc
  hasher.fold_double("phase/a", 3.5);
  hasher.fold_bytes("phase/c", "payload");
  const auto divergence = first_divergence(fold_abc(), hasher.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "phase/b");
  EXPECT_NE(divergence->lhs, divergence->rhs);
}

TEST(DetHasher, FoldOrderWithinAPhaseMatters) {
  DetHasher forward;
  forward.fold_u64("p", 1);
  forward.fold_u64("p", 2);
  DetHasher backward;
  backward.fold_u64("p", 2);
  backward.fold_u64("p", 1);
  const auto divergence =
      first_divergence(forward.summary(), backward.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "p");
}

TEST(DetHasher, StreamOrderMatters) {
  DetHasher ab;
  ab.fold_u64("a", 1);
  ab.fold_u64("b", 1);
  DetHasher ba;
  ba.fold_u64("b", 1);
  ba.fold_u64("a", 1);
  const auto divergence = first_divergence(ab.summary(), ba.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "a");  // first entry in stream order
}

TEST(DetHasher, MissingPhaseIsReported) {
  DetHasher full;
  full.fold_u64("a", 1);
  full.fold_u64("b", 1);
  DetHasher partial;
  partial.fold_u64("a", 1);
  const auto divergence = first_divergence(full.summary(),
                                           partial.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "b");
}

TEST(DetHasher, ExtraFoldOnAPhaseIsReported) {
  DetHasher once;
  once.fold_u64("a", 1);
  DetHasher twice;
  twice.fold_u64("a", 1);
  twice.fold_u64("a", 1);
  const auto divergence = first_divergence(once.summary(), twice.summary());
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->path, "a");
}

TEST(DetHasher, SignedZeroAndNanPayloadsAreDistinguished) {
  DetHasher pos;
  pos.fold_double("p", 0.0);
  DetHasher neg;
  neg.fold_double("p", -0.0);
  EXPECT_TRUE(first_divergence(pos.summary(), neg.summary()).has_value());
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Classic FNV-1a test vectors ("a", "foobar") from the reference spec.
  EXPECT_EQ(fnv1a64(kFnvOffsetBasis, "a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64(kFnvOffsetBasis, "foobar", 6), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace g10
