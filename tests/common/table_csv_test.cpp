#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace g10 {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, RejectsMismatchedRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), CheckError);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), CheckError);
}

TEST(CsvWriterTest, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "/g10_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row(std::vector<std::string>{"plain", "with,comma", "with\"quote"});
    csv.write_row(std::vector<double>{1.5, 2.0}, 1);
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "1.5,2.0");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace g10
