# Empty dependencies file for g10_algorithms.
# This may be replaced when dependencies are built.
