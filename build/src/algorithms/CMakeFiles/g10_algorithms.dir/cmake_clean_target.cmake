file(REMOVE_RECURSE
  "libg10_algorithms.a"
)
