file(REMOVE_RECURSE
  "CMakeFiles/g10_algorithms.dir/programs.cpp.o"
  "CMakeFiles/g10_algorithms.dir/programs.cpp.o.d"
  "CMakeFiles/g10_algorithms.dir/reference.cpp.o"
  "CMakeFiles/g10_algorithms.dir/reference.cpp.o.d"
  "libg10_algorithms.a"
  "libg10_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
