# Empty dependencies file for g10_engine.
# This may be replaced when dependencies are built.
