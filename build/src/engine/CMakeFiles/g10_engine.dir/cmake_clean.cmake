file(REMOVE_RECURSE
  "CMakeFiles/g10_engine.dir/dataflow/dataflow_engine.cpp.o"
  "CMakeFiles/g10_engine.dir/dataflow/dataflow_engine.cpp.o.d"
  "CMakeFiles/g10_engine.dir/gas/gas_engine.cpp.o"
  "CMakeFiles/g10_engine.dir/gas/gas_engine.cpp.o.d"
  "CMakeFiles/g10_engine.dir/phase_logger.cpp.o"
  "CMakeFiles/g10_engine.dir/phase_logger.cpp.o.d"
  "CMakeFiles/g10_engine.dir/pregel/pregel_engine.cpp.o"
  "CMakeFiles/g10_engine.dir/pregel/pregel_engine.cpp.o.d"
  "libg10_engine.a"
  "libg10_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
