file(REMOVE_RECURSE
  "libg10_engine.a"
)
