file(REMOVE_RECURSE
  "libg10_core.a"
)
