# Empty dependencies file for g10_core.
# This may be replaced when dependencies are built.
