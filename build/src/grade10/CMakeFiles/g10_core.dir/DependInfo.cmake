
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grade10/attribution/attributor.cpp" "src/grade10/CMakeFiles/g10_core.dir/attribution/attributor.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/attribution/attributor.cpp.o.d"
  "/root/repo/src/grade10/attribution/demand.cpp" "src/grade10/CMakeFiles/g10_core.dir/attribution/demand.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/attribution/demand.cpp.o.d"
  "/root/repo/src/grade10/attribution/upsample.cpp" "src/grade10/CMakeFiles/g10_core.dir/attribution/upsample.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/attribution/upsample.cpp.o.d"
  "/root/repo/src/grade10/bottleneck/bottleneck.cpp" "src/grade10/CMakeFiles/g10_core.dir/bottleneck/bottleneck.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/bottleneck/bottleneck.cpp.o.d"
  "/root/repo/src/grade10/issues/issue_detector.cpp" "src/grade10/CMakeFiles/g10_core.dir/issues/issue_detector.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/issues/issue_detector.cpp.o.d"
  "/root/repo/src/grade10/issues/replay_simulator.cpp" "src/grade10/CMakeFiles/g10_core.dir/issues/replay_simulator.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/issues/replay_simulator.cpp.o.d"
  "/root/repo/src/grade10/model/attribution_rules.cpp" "src/grade10/CMakeFiles/g10_core.dir/model/attribution_rules.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/model/attribution_rules.cpp.o.d"
  "/root/repo/src/grade10/model/execution_model.cpp" "src/grade10/CMakeFiles/g10_core.dir/model/execution_model.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/model/execution_model.cpp.o.d"
  "/root/repo/src/grade10/model/model_io.cpp" "src/grade10/CMakeFiles/g10_core.dir/model/model_io.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/model/model_io.cpp.o.d"
  "/root/repo/src/grade10/model/resource_model.cpp" "src/grade10/CMakeFiles/g10_core.dir/model/resource_model.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/model/resource_model.cpp.o.d"
  "/root/repo/src/grade10/models/dataflow_model.cpp" "src/grade10/CMakeFiles/g10_core.dir/models/dataflow_model.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/models/dataflow_model.cpp.o.d"
  "/root/repo/src/grade10/models/gas_model.cpp" "src/grade10/CMakeFiles/g10_core.dir/models/gas_model.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/models/gas_model.cpp.o.d"
  "/root/repo/src/grade10/models/pregel_model.cpp" "src/grade10/CMakeFiles/g10_core.dir/models/pregel_model.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/models/pregel_model.cpp.o.d"
  "/root/repo/src/grade10/pipeline.cpp" "src/grade10/CMakeFiles/g10_core.dir/pipeline.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/grade10/report/diagnostics.cpp" "src/grade10/CMakeFiles/g10_core.dir/report/diagnostics.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/report/diagnostics.cpp.o.d"
  "/root/repo/src/grade10/report/phase_profile.cpp" "src/grade10/CMakeFiles/g10_core.dir/report/phase_profile.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/report/phase_profile.cpp.o.d"
  "/root/repo/src/grade10/report/report.cpp" "src/grade10/CMakeFiles/g10_core.dir/report/report.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/report/report.cpp.o.d"
  "/root/repo/src/grade10/report/timeline_export.cpp" "src/grade10/CMakeFiles/g10_core.dir/report/timeline_export.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/report/timeline_export.cpp.o.d"
  "/root/repo/src/grade10/trace/execution_trace.cpp" "src/grade10/CMakeFiles/g10_core.dir/trace/execution_trace.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/trace/execution_trace.cpp.o.d"
  "/root/repo/src/grade10/trace/resource_trace.cpp" "src/grade10/CMakeFiles/g10_core.dir/trace/resource_trace.cpp.o" "gcc" "src/grade10/CMakeFiles/g10_core.dir/trace/resource_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/g10_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
