file(REMOVE_RECURSE
  "libg10_sim.a"
)
