# Empty compiler generated dependencies file for g10_sim.
# This may be replaced when dependencies are built.
