file(REMOVE_RECURSE
  "CMakeFiles/g10_sim.dir/fluid_queue.cpp.o"
  "CMakeFiles/g10_sim.dir/fluid_queue.cpp.o.d"
  "CMakeFiles/g10_sim.dir/simulation.cpp.o"
  "CMakeFiles/g10_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/g10_sim.dir/usage_recorder.cpp.o"
  "CMakeFiles/g10_sim.dir/usage_recorder.cpp.o.d"
  "libg10_sim.a"
  "libg10_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
