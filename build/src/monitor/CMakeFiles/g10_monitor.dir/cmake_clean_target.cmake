file(REMOVE_RECURSE
  "libg10_monitor.a"
)
