file(REMOVE_RECURSE
  "CMakeFiles/g10_monitor.dir/sampler.cpp.o"
  "CMakeFiles/g10_monitor.dir/sampler.cpp.o.d"
  "libg10_monitor.a"
  "libg10_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
