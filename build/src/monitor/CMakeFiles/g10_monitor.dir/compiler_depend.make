# Empty compiler generated dependencies file for g10_monitor.
# This may be replaced when dependencies are built.
