# Empty compiler generated dependencies file for g10_common.
# This may be replaced when dependencies are built.
