file(REMOVE_RECURSE
  "CMakeFiles/g10_common.dir/csv.cpp.o"
  "CMakeFiles/g10_common.dir/csv.cpp.o.d"
  "CMakeFiles/g10_common.dir/rng.cpp.o"
  "CMakeFiles/g10_common.dir/rng.cpp.o.d"
  "CMakeFiles/g10_common.dir/stats.cpp.o"
  "CMakeFiles/g10_common.dir/stats.cpp.o.d"
  "CMakeFiles/g10_common.dir/step_function.cpp.o"
  "CMakeFiles/g10_common.dir/step_function.cpp.o.d"
  "CMakeFiles/g10_common.dir/strings.cpp.o"
  "CMakeFiles/g10_common.dir/strings.cpp.o.d"
  "CMakeFiles/g10_common.dir/table.cpp.o"
  "CMakeFiles/g10_common.dir/table.cpp.o.d"
  "libg10_common.a"
  "libg10_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
