file(REMOVE_RECURSE
  "libg10_common.a"
)
