
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/g10_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/g10_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/degree_stats.cpp" "src/graph/CMakeFiles/g10_graph.dir/degree_stats.cpp.o" "gcc" "src/graph/CMakeFiles/g10_graph.dir/degree_stats.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/g10_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/g10_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/g10_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/g10_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/g10_graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/g10_graph.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/g10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
