file(REMOVE_RECURSE
  "libg10_graph.a"
)
