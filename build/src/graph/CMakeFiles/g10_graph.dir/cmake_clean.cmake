file(REMOVE_RECURSE
  "CMakeFiles/g10_graph.dir/builder.cpp.o"
  "CMakeFiles/g10_graph.dir/builder.cpp.o.d"
  "CMakeFiles/g10_graph.dir/degree_stats.cpp.o"
  "CMakeFiles/g10_graph.dir/degree_stats.cpp.o.d"
  "CMakeFiles/g10_graph.dir/generators.cpp.o"
  "CMakeFiles/g10_graph.dir/generators.cpp.o.d"
  "CMakeFiles/g10_graph.dir/graph.cpp.o"
  "CMakeFiles/g10_graph.dir/graph.cpp.o.d"
  "CMakeFiles/g10_graph.dir/partition.cpp.o"
  "CMakeFiles/g10_graph.dir/partition.cpp.o.d"
  "libg10_graph.a"
  "libg10_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
