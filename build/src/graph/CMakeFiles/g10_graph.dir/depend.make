# Empty dependencies file for g10_graph.
# This may be replaced when dependencies are built.
