file(REMOVE_RECURSE
  "CMakeFiles/g10_trace.dir/log_io.cpp.o"
  "CMakeFiles/g10_trace.dir/log_io.cpp.o.d"
  "CMakeFiles/g10_trace.dir/phase_path.cpp.o"
  "CMakeFiles/g10_trace.dir/phase_path.cpp.o.d"
  "libg10_trace.a"
  "libg10_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
