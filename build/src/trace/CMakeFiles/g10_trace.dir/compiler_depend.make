# Empty compiler generated dependencies file for g10_trace.
# This may be replaced when dependencies are built.
