file(REMOVE_RECURSE
  "libg10_trace.a"
)
