file(REMOVE_RECURSE
  "CMakeFiles/fluid_queue_test.dir/sim/fluid_queue_test.cpp.o"
  "CMakeFiles/fluid_queue_test.dir/sim/fluid_queue_test.cpp.o.d"
  "fluid_queue_test"
  "fluid_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
