# Empty dependencies file for fluid_queue_test.
# This may be replaced when dependencies are built.
