# Empty compiler generated dependencies file for pregel_engine_test.
# This may be replaced when dependencies are built.
