# Empty compiler generated dependencies file for replay_simulator_test.
# This may be replaced when dependencies are built.
