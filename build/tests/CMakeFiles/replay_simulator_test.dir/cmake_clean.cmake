file(REMOVE_RECURSE
  "CMakeFiles/replay_simulator_test.dir/grade10/replay_simulator_test.cpp.o"
  "CMakeFiles/replay_simulator_test.dir/grade10/replay_simulator_test.cpp.o.d"
  "replay_simulator_test"
  "replay_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
