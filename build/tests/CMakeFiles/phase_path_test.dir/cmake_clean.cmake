file(REMOVE_RECURSE
  "CMakeFiles/phase_path_test.dir/trace/phase_path_test.cpp.o"
  "CMakeFiles/phase_path_test.dir/trace/phase_path_test.cpp.o.d"
  "phase_path_test"
  "phase_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
