# Empty dependencies file for phase_path_test.
# This may be replaced when dependencies are built.
