# Empty dependencies file for resource_trace_test.
# This may be replaced when dependencies are built.
