file(REMOVE_RECURSE
  "CMakeFiles/resource_trace_test.dir/grade10/resource_trace_test.cpp.o"
  "CMakeFiles/resource_trace_test.dir/grade10/resource_trace_test.cpp.o.d"
  "resource_trace_test"
  "resource_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
