file(REMOVE_RECURSE
  "CMakeFiles/phase_logger_test.dir/engine/phase_logger_test.cpp.o"
  "CMakeFiles/phase_logger_test.dir/engine/phase_logger_test.cpp.o.d"
  "phase_logger_test"
  "phase_logger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_logger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
