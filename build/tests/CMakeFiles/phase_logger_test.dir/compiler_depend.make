# Empty compiler generated dependencies file for phase_logger_test.
# This may be replaced when dependencies are built.
