# Empty dependencies file for dataflow_engine_test.
# This may be replaced when dependencies are built.
