file(REMOVE_RECURSE
  "CMakeFiles/dataflow_engine_test.dir/engine/dataflow_engine_test.cpp.o"
  "CMakeFiles/dataflow_engine_test.dir/engine/dataflow_engine_test.cpp.o.d"
  "dataflow_engine_test"
  "dataflow_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
