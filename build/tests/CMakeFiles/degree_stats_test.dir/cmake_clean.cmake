file(REMOVE_RECURSE
  "CMakeFiles/degree_stats_test.dir/graph/degree_stats_test.cpp.o"
  "CMakeFiles/degree_stats_test.dir/graph/degree_stats_test.cpp.o.d"
  "degree_stats_test"
  "degree_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
