# Empty dependencies file for degree_stats_test.
# This may be replaced when dependencies are built.
