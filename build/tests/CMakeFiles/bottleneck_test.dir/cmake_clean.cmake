file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_test.dir/grade10/bottleneck_test.cpp.o"
  "CMakeFiles/bottleneck_test.dir/grade10/bottleneck_test.cpp.o.d"
  "bottleneck_test"
  "bottleneck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
