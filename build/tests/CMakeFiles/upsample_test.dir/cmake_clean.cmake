file(REMOVE_RECURSE
  "CMakeFiles/upsample_test.dir/grade10/upsample_test.cpp.o"
  "CMakeFiles/upsample_test.dir/grade10/upsample_test.cpp.o.d"
  "upsample_test"
  "upsample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
