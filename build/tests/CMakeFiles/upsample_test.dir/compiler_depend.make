# Empty compiler generated dependencies file for upsample_test.
# This may be replaced when dependencies are built.
