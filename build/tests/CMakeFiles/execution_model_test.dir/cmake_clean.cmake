file(REMOVE_RECURSE
  "CMakeFiles/execution_model_test.dir/grade10/execution_model_test.cpp.o"
  "CMakeFiles/execution_model_test.dir/grade10/execution_model_test.cpp.o.d"
  "execution_model_test"
  "execution_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
