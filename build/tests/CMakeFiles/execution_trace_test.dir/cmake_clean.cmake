file(REMOVE_RECURSE
  "CMakeFiles/execution_trace_test.dir/grade10/execution_trace_test.cpp.o"
  "CMakeFiles/execution_trace_test.dir/grade10/execution_trace_test.cpp.o.d"
  "execution_trace_test"
  "execution_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
