# Empty compiler generated dependencies file for step_function_test.
# This may be replaced when dependencies are built.
