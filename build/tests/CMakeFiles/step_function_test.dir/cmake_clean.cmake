file(REMOVE_RECURSE
  "CMakeFiles/step_function_test.dir/common/step_function_test.cpp.o"
  "CMakeFiles/step_function_test.dir/common/step_function_test.cpp.o.d"
  "step_function_test"
  "step_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
