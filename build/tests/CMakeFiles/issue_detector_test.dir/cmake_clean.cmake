file(REMOVE_RECURSE
  "CMakeFiles/issue_detector_test.dir/grade10/issue_detector_test.cpp.o"
  "CMakeFiles/issue_detector_test.dir/grade10/issue_detector_test.cpp.o.d"
  "issue_detector_test"
  "issue_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/issue_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
