# Empty dependencies file for issue_detector_test.
# This may be replaced when dependencies are built.
