file(REMOVE_RECURSE
  "CMakeFiles/phase_profile_test.dir/grade10/phase_profile_test.cpp.o"
  "CMakeFiles/phase_profile_test.dir/grade10/phase_profile_test.cpp.o.d"
  "phase_profile_test"
  "phase_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
