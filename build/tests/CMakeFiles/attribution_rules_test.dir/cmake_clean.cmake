file(REMOVE_RECURSE
  "CMakeFiles/attribution_rules_test.dir/grade10/attribution_rules_test.cpp.o"
  "CMakeFiles/attribution_rules_test.dir/grade10/attribution_rules_test.cpp.o.d"
  "attribution_rules_test"
  "attribution_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribution_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
