# Empty dependencies file for attribution_rules_test.
# This may be replaced when dependencies are built.
