# Empty dependencies file for usage_recorder_test.
# This may be replaced when dependencies are built.
