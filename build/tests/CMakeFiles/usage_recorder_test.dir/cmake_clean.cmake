file(REMOVE_RECURSE
  "CMakeFiles/usage_recorder_test.dir/sim/usage_recorder_test.cpp.o"
  "CMakeFiles/usage_recorder_test.dir/sim/usage_recorder_test.cpp.o.d"
  "usage_recorder_test"
  "usage_recorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
