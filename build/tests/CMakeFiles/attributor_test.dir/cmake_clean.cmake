file(REMOVE_RECURSE
  "CMakeFiles/attributor_test.dir/grade10/attributor_test.cpp.o"
  "CMakeFiles/attributor_test.dir/grade10/attributor_test.cpp.o.d"
  "attributor_test"
  "attributor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attributor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
