# Empty compiler generated dependencies file for attributor_test.
# This may be replaced when dependencies are built.
