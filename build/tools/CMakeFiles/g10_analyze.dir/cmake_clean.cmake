file(REMOVE_RECURSE
  "CMakeFiles/g10_analyze.dir/analyze.cpp.o"
  "CMakeFiles/g10_analyze.dir/analyze.cpp.o.d"
  "g10_analyze"
  "g10_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
