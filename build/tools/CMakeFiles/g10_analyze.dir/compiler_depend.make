# Empty compiler generated dependencies file for g10_analyze.
# This may be replaced when dependencies are built.
