file(REMOVE_RECURSE
  "CMakeFiles/g10_run.dir/run_workload.cpp.o"
  "CMakeFiles/g10_run.dir/run_workload.cpp.o.d"
  "g10_run"
  "g10_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
