# Empty dependencies file for g10_run.
# This may be replaced when dependencies are built.
