# Empty compiler generated dependencies file for characterize_pagerank.
# This may be replaced when dependencies are built.
