file(REMOVE_RECURSE
  "CMakeFiles/characterize_pagerank.dir/characterize_pagerank.cpp.o"
  "CMakeFiles/characterize_pagerank.dir/characterize_pagerank.cpp.o.d"
  "characterize_pagerank"
  "characterize_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
