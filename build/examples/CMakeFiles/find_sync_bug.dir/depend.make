# Empty dependencies file for find_sync_bug.
# This may be replaced when dependencies are built.
