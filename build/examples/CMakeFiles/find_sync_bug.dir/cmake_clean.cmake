file(REMOVE_RECURSE
  "CMakeFiles/find_sync_bug.dir/find_sync_bug.cpp.o"
  "CMakeFiles/find_sync_bug.dir/find_sync_bug.cpp.o.d"
  "find_sync_bug"
  "find_sync_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_sync_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
