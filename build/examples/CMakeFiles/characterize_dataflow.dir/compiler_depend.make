# Empty compiler generated dependencies file for characterize_dataflow.
# This may be replaced when dependencies are built.
