file(REMOVE_RECURSE
  "CMakeFiles/characterize_dataflow.dir/characterize_dataflow.cpp.o"
  "CMakeFiles/characterize_dataflow.dir/characterize_dataflow.cpp.o.d"
  "characterize_dataflow"
  "characterize_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
