file(REMOVE_RECURSE
  "CMakeFiles/fig5_imbalance_impact.dir/fig5_imbalance_impact.cpp.o"
  "CMakeFiles/fig5_imbalance_impact.dir/fig5_imbalance_impact.cpp.o.d"
  "fig5_imbalance_impact"
  "fig5_imbalance_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_imbalance_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
