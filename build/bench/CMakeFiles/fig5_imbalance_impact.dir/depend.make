# Empty dependencies file for fig5_imbalance_impact.
# This may be replaced when dependencies are built.
