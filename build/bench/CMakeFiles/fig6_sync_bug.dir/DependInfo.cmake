
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_sync_bug.cpp" "bench/CMakeFiles/fig6_sync_bug.dir/fig6_sync_bug.cpp.o" "gcc" "bench/CMakeFiles/fig6_sync_bug.dir/fig6_sync_bug.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/g10_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/grade10/CMakeFiles/g10_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/g10_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/g10_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/g10_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/g10_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/g10_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/g10_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/g10_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
