file(REMOVE_RECURSE
  "CMakeFiles/fig6_sync_bug.dir/fig6_sync_bug.cpp.o"
  "CMakeFiles/fig6_sync_bug.dir/fig6_sync_bug.cpp.o.d"
  "fig6_sync_bug"
  "fig6_sync_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sync_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
