# Empty compiler generated dependencies file for fig6_sync_bug.
# This may be replaced when dependencies are built.
