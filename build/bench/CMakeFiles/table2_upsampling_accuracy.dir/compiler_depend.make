# Empty compiler generated dependencies file for table2_upsampling_accuracy.
# This may be replaced when dependencies are built.
