file(REMOVE_RECURSE
  "../lib/libg10_bench_support.a"
)
