# Empty dependencies file for g10_bench_support.
# This may be replaced when dependencies are built.
