file(REMOVE_RECURSE
  "../lib/libg10_bench_support.a"
  "../lib/libg10_bench_support.pdb"
  "CMakeFiles/g10_bench_support.dir/support/experiment.cpp.o"
  "CMakeFiles/g10_bench_support.dir/support/experiment.cpp.o.d"
  "CMakeFiles/g10_bench_support.dir/support/workloads.cpp.o"
  "CMakeFiles/g10_bench_support.dir/support/workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g10_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
