# Empty dependencies file for fig3_attribution_rules.
# This may be replaced when dependencies are built.
