file(REMOVE_RECURSE
  "CMakeFiles/fig3_attribution_rules.dir/fig3_attribution_rules.cpp.o"
  "CMakeFiles/fig3_attribution_rules.dir/fig3_attribution_rules.cpp.o.d"
  "fig3_attribution_rules"
  "fig3_attribution_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_attribution_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
