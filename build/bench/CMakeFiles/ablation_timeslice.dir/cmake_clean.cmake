file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeslice.dir/ablation_timeslice.cpp.o"
  "CMakeFiles/ablation_timeslice.dir/ablation_timeslice.cpp.o.d"
  "ablation_timeslice"
  "ablation_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
