# Empty compiler generated dependencies file for fig4_resource_bottlenecks.
# This may be replaced when dependencies are built.
