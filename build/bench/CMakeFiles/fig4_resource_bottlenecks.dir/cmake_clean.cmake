file(REMOVE_RECURSE
  "CMakeFiles/fig4_resource_bottlenecks.dir/fig4_resource_bottlenecks.cpp.o"
  "CMakeFiles/fig4_resource_bottlenecks.dir/fig4_resource_bottlenecks.cpp.o.d"
  "fig4_resource_bottlenecks"
  "fig4_resource_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resource_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
