# Empty dependencies file for micro_attribution.
# This may be replaced when dependencies are built.
