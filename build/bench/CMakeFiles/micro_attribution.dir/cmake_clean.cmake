file(REMOVE_RECURSE
  "CMakeFiles/micro_attribution.dir/micro_attribution.cpp.o"
  "CMakeFiles/micro_attribution.dir/micro_attribution.cpp.o.d"
  "micro_attribution"
  "micro_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
