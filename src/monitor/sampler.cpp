#include "monitor/sampler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.hpp"

namespace g10::monitor {

using trace::MonitoringSampleRecord;

std::vector<MonitoringSampleRecord> sample_ground_truth(
    const std::vector<trace::GroundTruthSeries>& series, DurationNs interval,
    TimeNs end) {
  G10_CHECK(interval > 0);
  G10_CHECK(end > 0);
  std::vector<MonitoringSampleRecord> out;
  for (const auto& gt : series) {
    for (TimeNs t = interval; t - interval < end; t += interval) {
      const TimeNs window_end = std::min(t, end);
      MonitoringSampleRecord rec;
      rec.resource = gt.resource;
      rec.machine = gt.machine;
      rec.time = window_end;
      rec.value = gt.series.average(t - interval, window_end);
      out.push_back(std::move(rec));
      if (window_end == end) break;
    }
  }
  return out;
}

std::vector<MonitoringSampleRecord> downsample(
    const std::vector<MonitoringSampleRecord>& samples, int factor) {
  G10_CHECK(factor >= 1);
  if (factor == 1) return samples;

  // Group by stream, preserving per-stream order.
  std::map<std::pair<std::string, trace::MachineId>,
           std::vector<const MonitoringSampleRecord*>>
      streams;
  for (const auto& rec : samples) {
    streams[{rec.resource, rec.machine}].push_back(&rec);
  }
  std::vector<MonitoringSampleRecord> out;
  for (auto& [key, recs] : streams) {
    std::sort(recs.begin(), recs.end(),
              [](const auto* a, const auto* b) { return a->time < b->time; });
    for (std::size_t i = 0; i < recs.size(); i += static_cast<std::size_t>(factor)) {
      const std::size_t end =
          std::min(recs.size(), i + static_cast<std::size_t>(factor));
      double sum = 0.0;
      for (std::size_t j = i; j < end; ++j) sum += recs[j]->value;
      MonitoringSampleRecord merged;
      merged.resource = key.first;
      merged.machine = key.second;
      merged.time = recs[end - 1]->time;
      merged.value = sum / static_cast<double>(end - i);
      out.push_back(std::move(merged));
    }
  }
  return out;
}

std::vector<MonitoringSampleRecord> apply_sampler_dropout(
    const std::vector<MonitoringSampleRecord>& samples,
    const sim::FaultInjector& faults) {
  if (faults.empty()) return samples;
  std::vector<MonitoringSampleRecord> out;
  out.reserve(samples.size());
  for (const auto& rec : samples) {
    if (rec.machine != trace::kGlobalMachine &&
        faults.sample_dropped(rec.machine, rec.time)) {
      continue;
    }
    out.push_back(rec);
  }
  return out;
}

}  // namespace g10::monitor
