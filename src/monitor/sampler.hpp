// Monitoring substrate (Ganglia stand-in, paper §III-C).
//
// Samples the simulator's perfect usage signals into the periodic
// average-rate records a real cluster monitor produces. Each sample at time
// t is the average consumption rate over (t - interval, t]. Downsampling
// merges consecutive fine samples — the methodology of the Table II
// upsampling-accuracy experiment (ground truth at 50 ms, coarse traces at
// 2x..64x).
#pragma once

#include <vector>

#include "common/time.hpp"
#include "sim/fault_injector.hpp"
#include "trace/records.hpp"

namespace g10::monitor {

/// Samples every ground-truth series at a fixed interval, covering [0, end)
/// (the last window is clipped at `end`). Sample times are interval-aligned.
std::vector<trace::MonitoringSampleRecord> sample_ground_truth(
    const std::vector<trace::GroundTruthSeries>& series, DurationNs interval,
    TimeNs end);

/// Merges every `factor` consecutive samples of each (resource, machine)
/// stream into one, preserving the average-rate semantics. Sample times must
/// be evenly spaced per stream; a trailing partial group is averaged over
/// the samples it has.
std::vector<trace::MonitoringSampleRecord> downsample(
    const std::vector<trace::MonitoringSampleRecord>& samples, int factor);

/// Drops every sample whose (machine, time) falls inside one of the
/// injector's sampler-dropout windows — the monitoring daemon on that
/// machine was down. The injector must be resolved. Grade10's resource
/// traces tolerate the gaps (the next surviving sample's window simply
/// covers more time).
std::vector<trace::MonitoringSampleRecord> apply_sampler_dropout(
    const std::vector<trace::MonitoringSampleRecord>& samples,
    const sim::FaultInjector& faults);

}  // namespace g10::monitor
