// A lightweight C++ lexer for the source-level lint pass (DESIGN.md §14).
//
// srclint's rules are token-shape rules ("a range-for over a variable
// declared as std::unordered_map", "the identifier getenv outside its
// sanctioned homes"), so a full parser — let alone a compiler frontend — is
// not needed. This lexer produces exactly what the rules consume:
//
//  - a token stream (identifiers, numbers, literals, punctuators) with
//    1-based line numbers, comments and preprocessor lines stripped;
//  - the comment list, preserved verbatim with line extents, because
//    suppression waivers (`// srclint: unordered-ok(<reason>)`) live there.
//
// Handled: //- and /**/-comments, string/char literals with escapes, raw
// string literals with custom delimiters, line continuations inside
// preprocessor directives, and the two-character punctuators the rules care
// about (::, ->, +=, -=, and friends). Not handled (not needed): trigraphs,
// UCNs, digraphs.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace g10::srclint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (no distinction needed)
  kNumber,
  kString,  ///< string literal, including raw strings (text excludes quotes)
  kChar,
  kPunct,
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;  ///< view into the lexed buffer
  std::size_t line = 0;   ///< 1-based line of the token's first character
};

struct Comment {
  std::string_view text;        ///< contents without the // or /* */ markers
  std::size_t line = 0;         ///< 1-based line the comment starts on
  std::size_t end_line = 0;     ///< 1-based line the comment ends on
  bool code_before = false;     ///< a token precedes it on its start line
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. The returned views alias `source`, which must
/// outlive the result.
LexedSource lex_source(std::string_view source);

}  // namespace g10::srclint
