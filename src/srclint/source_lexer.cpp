#include "srclint/source_lexer.hpp"

#include <cctype>

namespace g10::srclint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Two-character punctuators the rules distinguish. Longer ones (<<=, ...)
/// lex as two tokens, which no rule cares about.
bool is_two_char_punct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '=' || b == '-';
    case '+': return b == '=' || b == '+';
    case '*': case '/': case '%': case '!': case '^': return b == '=';
    case '=': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    default: return false;
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  LexedSource run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_has_token_ = false;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (c == '#' && !line_has_token_) {
        preprocessor_line();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  void add_token(TokenKind kind, std::size_t begin, std::size_t end,
                 std::size_t line) {
    out_.tokens.push_back(Token{kind, src_.substr(begin, end - begin), line});
    line_has_token_ = true;
  }

  void line_comment() {
    const std::size_t line = line_;
    const bool code_before = line_has_token_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(Comment{src_.substr(begin, pos_ - begin), line,
                                    line, code_before});
  }

  void block_comment() {
    const std::size_t line = line_;
    const bool code_before = line_has_token_;
    pos_ += 2;
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    out_.comments.push_back(Comment{src_.substr(begin, end - begin), line,
                                    line_, code_before});
  }

  /// Skips a whole preprocessor directive, including backslash-continued
  /// lines — `#include <mutex>` must not leak a `mutex` identifier.
  void preprocessor_line() {
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // main loop counts the newline
      ++pos_;
    }
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const std::string_view text = src_.substr(begin, pos_ - begin);
    // Raw string literal: R"delim(...)delim" (also u8R", LR", uR", UR").
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "LR" || text == "uR" ||
         text == "UR")) {
      raw_string_literal();
      return;
    }
    add_token(TokenKind::kIdentifier, begin, pos_, line_);
  }

  void number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() &&
           (is_ident_char(src_[pos_]) || src_[pos_] == '.' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > begin &&
             (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
              src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    add_token(TokenKind::kNumber, begin, pos_, line_);
  }

  void string_literal() {
    const std::size_t line = line_;
    ++pos_;  // opening quote
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      ++pos_;
    }
    add_token(TokenKind::kString, begin, pos_, line);
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void raw_string_literal() {
    const std::size_t line = line_;
    ++pos_;  // opening quote
    const std::size_t delim_begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    const std::string_view delim = src_.substr(delim_begin,
                                               pos_ - delim_begin);
    if (pos_ < src_.size()) ++pos_;  // opening paren
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == ')' &&
          src_.compare(pos_ + 1, delim.size(), delim) == 0 &&
          pos_ + 1 + delim.size() < src_.size() &&
          src_[pos_ + 1 + delim.size()] == '"') {
        end = pos_;
        pos_ += 2 + delim.size();
        break;
      }
      ++pos_;
    }
    add_token(TokenKind::kString, begin, end, line);
  }

  void char_literal() {
    const std::size_t line = line_;
    ++pos_;  // opening quote
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      ++pos_;
    }
    add_token(TokenKind::kChar, begin, pos_, line);
    if (pos_ < src_.size()) ++pos_;  // closing quote
  }

  void punct() {
    const std::size_t begin = pos_;
    if (pos_ + 1 < src_.size() && is_two_char_punct(src_[pos_],
                                                    src_[pos_ + 1])) {
      pos_ += 2;
    } else {
      ++pos_;
    }
    add_token(TokenKind::kPunct, begin, pos_, line_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  bool line_has_token_ = false;
  LexedSource out_;
};

}  // namespace

LexedSource lex_source(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace g10::srclint
