#include "srclint/srclint.hpp"

#include <algorithm>
#include <vector>

#include "srclint/source_lexer.hpp"

namespace g10::srclint {
namespace {

constexpr std::string_view kUnorderedIter = "src-unordered-iter";
constexpr std::string_view kRawEntropy = "src-raw-entropy";
constexpr std::string_view kRawMutex = "src-raw-mutex";
constexpr std::string_view kPointerKey = "src-pointer-key";
constexpr std::string_view kFpParallelReduce = "src-fp-parallel-reduce";
constexpr std::string_view kWaiverBare = "src-waiver-bare";
constexpr std::string_view kWaiverUnknown = "src-waiver-unknown";
constexpr std::string_view kWaiverUnused = "src-waiver-unused";

/// Waiver tag (the part before "-ok") for each suppressible rule.
std::string_view waiver_tag(std::string_view rule_id) {
  if (rule_id == kUnorderedIter) return "unordered";
  if (rule_id == kRawEntropy) return "entropy";
  if (rule_id == kRawMutex) return "mutex";
  if (rule_id == kPointerKey) return "pointer-key";
  if (rule_id == kFpParallelReduce) return "fp";
  return {};
}

bool known_tag(std::string_view tag) {
  return tag == "unordered" || tag == "entropy" || tag == "mutex" ||
         tag == "pointer-key" || tag == "fp";
}

struct Waiver {
  std::string_view tag;
  std::string_view reason;
  std::size_t target_line = 0;  ///< line the waiver applies to
  std::size_t line = 0;         ///< line the waiver comment starts on
  bool bare = false;            ///< missing or empty reason
  bool used = false;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses `// srclint: <tag>-ok(<reason>)` out of a comment. A comment on a
/// code line waives that line; a comment on its own line waives the line
/// after the comment ends.
std::vector<Waiver> parse_waivers(const std::vector<Comment>& comments) {
  std::vector<Waiver> waivers;
  for (const Comment& comment : comments) {
    // The waiver must lead the comment — prose that merely *mentions* the
    // grammar ("suppress with // srclint: ...") is not a suppression.
    std::string_view body = comment.text;
    while (!body.empty() && (body.front() == ' ' || body.front() == '\t')) {
      body.remove_prefix(1);
    }
    if (body.substr(0, 8) != "srclint:") continue;
    std::string_view rest = trim(body.substr(8));
    // Tag runs up to "-ok"; everything srclint understands is lowercase
    // letters and dashes.
    std::size_t tag_end = 0;
    while (tag_end < rest.size() &&
           ((rest[tag_end] >= 'a' && rest[tag_end] <= 'z') ||
            rest[tag_end] == '-')) {
      ++tag_end;
    }
    std::string_view tag = rest.substr(0, tag_end);
    if (tag.size() < 3 || tag.substr(tag.size() - 3) != "-ok") {
      // "srclint:" with no parseable tag: treat as a bare waiver so typos
      // fail loudly instead of silently suppressing nothing.
      Waiver waiver;
      waiver.tag = tag;
      waiver.line = comment.line;
      waiver.bare = true;
      waiver.target_line =
          comment.code_before ? comment.line : comment.end_line + 1;
      waivers.push_back(waiver);
      continue;
    }
    tag.remove_suffix(3);
    Waiver waiver;
    waiver.tag = tag;
    waiver.line = comment.line;
    waiver.target_line =
        comment.code_before ? comment.line : comment.end_line + 1;
    std::string_view after = trim(rest.substr(tag_end));
    if (after.size() >= 2 && after.front() == '(') {
      const std::size_t close = after.rfind(')');
      if (close != std::string_view::npos && close > 0) {
        waiver.reason = trim(after.substr(1, close - 1));
      }
    }
    waiver.bare = waiver.reason.empty();
    waivers.push_back(waiver);
  }
  return waivers;
}

/// The scanner proper: one instance per file.
class Scanner {
 public:
  Scanner(std::string_view text, const std::string& path)
      : path_(path), lexed_(lex_source(text)) {}

  lint::LintReport run(ScanStats* stats) {
    waivers_ = parse_waivers(lexed_.comments);
    collect_declared_names();
    scan_unordered_iteration();
    scan_entropy();
    scan_raw_mutex();
    scan_pointer_keys();
    scan_fp_parallel_reduce();
    finish_waivers();
    if (stats != nullptr) {
      ++stats->files;
      for (const Waiver& waiver : waivers_) {
        if (waiver.bare) {
          ++stats->bare_waivers;
        } else {
          ++stats->waivers;
        }
      }
      stats->suppressed += suppressed_;
    }
    return std::move(report_);
  }

 private:
  const std::vector<Token>& tokens() const { return lexed_.tokens; }

  std::string_view text_at(std::size_t i) const {
    return i < tokens().size() ? tokens()[i].text : std::string_view{};
  }

  bool is_ident(std::size_t i, std::string_view name) const {
    return i < tokens().size() &&
           tokens()[i].kind == TokenKind::kIdentifier &&
           tokens()[i].text == name;
  }

  bool path_contains(std::string_view needle) const {
    return path_.find(needle) != std::string::npos;
  }

  /// Emits a finding unless a matching waiver targets its line.
  void emit(std::string_view rule_id, std::size_t line, std::string context,
            std::string message) {
    const std::string_view tag = waiver_tag(rule_id);
    for (Waiver& waiver : waivers_) {
      if (waiver.bare || waiver.tag != tag) continue;
      if (waiver.target_line != line) continue;
      waiver.used = true;
      ++suppressed_;
      return;
    }
    const lint::RuleInfo* info = find_src_rule(rule_id);
    report_.add(std::string(rule_id),
                info != nullptr ? info->severity : lint::Severity::kError,
                lint::Location{path_, line, std::move(context)},
                std::move(message));
  }

  static const lint::RuleInfo* find_src_rule(std::string_view rule_id) {
    for (const lint::RuleInfo& info : rule_catalog()) {
      if (info.id == rule_id) return &info;
    }
    return nullptr;
  }

  /// Index just past a balanced template-argument list whose '<' is at
  /// `open`. '>>' closes two levels (the lexer fuses it).
  std::size_t skip_template_args(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < tokens().size(); ++i) {
      const std::string_view t = tokens()[i].text;
      if (t == "<" || t == "<<") depth += t.size();
      if (t == ">" || t == ">>") {
        depth -= static_cast<int>(t.size());
        if (depth <= 0) return i + 1;
      }
    }
    return tokens().size();
  }

  /// Index just past a balanced parenthesis group whose '(' is at `open`.
  std::size_t skip_parens(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < tokens().size(); ++i) {
      if (tokens()[i].text == "(") ++depth;
      if (tokens()[i].text == ")") {
        --depth;
        if (depth == 0) return i + 1;
      }
    }
    return tokens().size();
  }

  /// Records which identifiers this file declares with an unordered
  /// container type, a float/double type, or a vector<float/double> type.
  /// Intra-file and flow-insensitive — exactly the precision a token-shape
  /// scanner can honestly claim — but it covers locals, members, and
  /// parameters, which is where every real finding lives.
  void collect_declared_names() {
    const auto declared_name = [&](std::size_t i) -> std::string_view {
      while (i < tokens().size() &&
             (text_at(i) == "&" || text_at(i) == "*" ||
              is_ident(i, "const"))) {
        ++i;
      }
      if (i < tokens().size() &&
          tokens()[i].kind == TokenKind::kIdentifier) {
        return tokens()[i].text;
      }
      return {};
    };
    for (std::size_t i = 0; i < tokens().size(); ++i) {
      const std::string_view t = text_at(i);
      if (tokens()[i].kind != TokenKind::kIdentifier) continue;
      if (t == "unordered_map" || t == "unordered_set" ||
          t == "unordered_multimap" || t == "unordered_multiset") {
        std::size_t j = i + 1;
        if (text_at(j) == "<") j = skip_template_args(j);
        const std::string_view name = declared_name(j);
        if (!name.empty()) unordered_names_.push_back(name);
      } else if (t == "double" || t == "float") {
        const std::string_view name = declared_name(i + 1);
        // A following '(' means a function declaration, not a variable.
        if (!name.empty() && !next_is(i, name, "(")) {
          fp_names_.push_back(name);
        }
      } else if (t == "vector" && text_at(i + 1) == "<" &&
                 (is_ident(i + 2, "double") || is_ident(i + 2, "float"))) {
        const std::size_t j = skip_template_args(i + 1);
        const std::string_view name = declared_name(j);
        if (!name.empty()) fp_names_.push_back(name);
      }
    }
  }

  /// True when the declared identifier `name` found after position i is
  /// immediately followed by `punct` (helper for the function-decl filter).
  bool next_is(std::size_t type_index, std::string_view name,
               std::string_view punct) const {
    for (std::size_t j = type_index + 1; j < tokens().size(); ++j) {
      if (tokens()[j].text == name) return text_at(j + 1) == punct;
    }
    return false;
  }

  bool is_unordered_name(std::string_view name) const {
    return std::find(unordered_names_.begin(), unordered_names_.end(),
                     name) != unordered_names_.end();
  }

  bool is_fp_name(std::string_view name) const {
    return std::find(fp_names_.begin(), fp_names_.end(), name) !=
           fp_names_.end();
  }

  // D1: range-for over a variable declared as std::unordered_*.
  void scan_unordered_iteration() {
    for (std::size_t i = 0; i + 1 < tokens().size(); ++i) {
      if (!is_ident(i, "for") || text_at(i + 1) != "(") continue;
      const std::size_t close = skip_parens(i + 1) - 1;
      // Top-level ':' marks a range-for (':' from '::' is fused by the
      // lexer, and the ternary '?:' cannot appear at depth 1 in a for).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const std::string_view t = tokens()[j].text;
        if (t == "(") ++depth;
        if (t == ")") --depth;
        if (t == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      // The iterated expression: take its final identifier that is not a
      // call — `pending`, `replay.entries`, `*open_` all resolve to the
      // container name.
      std::string_view candidate;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (tokens()[j].kind == TokenKind::kIdentifier &&
            text_at(j + 1) != "(") {
          candidate = tokens()[j].text;
        }
      }
      if (!candidate.empty() && is_unordered_name(candidate)) {
        emit(kUnorderedIter, tokens()[i].line, std::string(candidate),
             "range-for over unordered container '" + std::string(candidate) +
                 "': hash order is nondeterministic across platforms and "
                 "runs; sort at the output boundary or waive with "
                 "unordered-ok(<reason>)");
      }
    }
  }

  // D2: ambient entropy/time/environment reads outside common/rng and tool
  // mains.
  void scan_entropy() {
    if (path_contains("common/rng") || path_contains("tools/")) return;
    for (std::size_t i = 0; i < tokens().size(); ++i) {
      if (tokens()[i].kind != TokenKind::kIdentifier) continue;
      const std::string_view t = tokens()[i].text;
      const bool named = t == "rand" || t == "srand" ||
                         t == "random_device" || t == "getenv" ||
                         t == "system_clock";
      const bool time_call =
          t == "time" && text_at(i + 1) == "(" &&
          (i == 0 || (text_at(i - 1) != "." && text_at(i - 1) != "->"));
      if (!named && !time_call) continue;
      std::string message = "'";
      message += t;
      message +=
          "' is an ambient entropy/time/environment source; route "
          "randomness through common/rng and configuration through "
          "explicit parameters, or waive with entropy-ok(<reason>)";
      emit(kRawEntropy, tokens()[i].line, std::string(t),
           std::move(message));
    }
  }

  // D3: raw standard mutexes/locks instead of the annotated g10 wrappers.
  void scan_raw_mutex() {
    if (path_contains("common/mutex.hpp")) return;  // the wrapper itself
    for (std::size_t i = 0; i + 2 < tokens().size(); ++i) {
      if (!is_ident(i, "std") || text_at(i + 1) != "::") continue;
      const std::string_view t = text_at(i + 2);
      if (t != "mutex" && t != "recursive_mutex" && t != "timed_mutex" &&
          t != "recursive_timed_mutex" && t != "shared_mutex" &&
          t != "shared_timed_mutex" && t != "lock_guard" &&
          t != "unique_lock" && t != "scoped_lock" && t != "shared_lock") {
        continue;
      }
      emit(kRawMutex, tokens()[i].line, "std::" + std::string(t),
           "raw 'std::" + std::string(t) +
               "' evades Clang thread-safety analysis; use the annotated "
               "g10::Mutex/g10::MutexLock (common/mutex.hpp), or waive "
               "with mutex-ok(<reason>)");
    }
  }

  // D4: pointer-typed keys in ordered containers (address order is ASLR-
  // and allocation-order-dependent).
  void scan_pointer_keys() {
    for (std::size_t i = 0; i + 3 < tokens().size(); ++i) {
      if (!is_ident(i, "std") || text_at(i + 1) != "::") continue;
      const std::string_view t = text_at(i + 2);
      if (t != "map" && t != "set" && t != "multimap" && t != "multiset") {
        continue;
      }
      if (text_at(i + 3) != "<") continue;
      // First top-level template argument: up to a depth-0 ',' or the close.
      int depth = 0;
      std::string_view last;
      for (std::size_t j = i + 3; j < tokens().size(); ++j) {
        const std::string_view tok = tokens()[j].text;
        if (tok == "<" || tok == "<<") depth += tok.size();
        if (tok == ">" || tok == ">>") {
          depth -= static_cast<int>(tok.size());
          if (depth <= 0) break;
        }
        if (tok == "," && depth == 1) break;
        if (j > i + 3) last = tok;
      }
      if (last == "*") {
        emit(kPointerKey, tokens()[i].line, "std::" + std::string(t),
             "pointer-typed key in ordered 'std::" + std::string(t) +
                 "': iteration order depends on allocation addresses; key "
                 "on a stable id, or waive with pointer-key-ok(<reason>)");
      }
    }
  }

  // D5: floating-point accumulation inside a parallel_for body.
  void scan_fp_parallel_reduce() {
    for (std::size_t i = 0; i + 1 < tokens().size(); ++i) {
      if (!is_ident(i, "parallel_for") || text_at(i + 1) != "(") continue;
      const std::size_t end = skip_parens(i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        const std::string_view op = tokens()[j].text;
        if (op != "+=" && op != "-=") continue;
        // Resolve the accumulation target: the identifier directly before
        // the operator, stepping back over a subscript if present.
        std::size_t k = j;
        if (k > 0 && text_at(k - 1) == "]") {
          int depth = 0;
          while (k > 0) {
            --k;
            if (text_at(k) == "]") ++depth;
            if (text_at(k) == "[") {
              if (--depth == 0) break;
            }
          }
        }
        if (k == 0 || tokens()[k - 1].kind != TokenKind::kIdentifier) {
          continue;
        }
        const std::string_view target = text_at(k - 1);
        if (!is_fp_name(target)) continue;
        emit(kFpParallelReduce, tokens()[j].line, std::string(target),
             "floating-point accumulation into '" + std::string(target) +
                 "' inside a parallel_for body: summation order (and thus "
                 "rounding) depends on the schedule; reduce into per-index "
                 "slots and fold serially, or waive with fp-ok(<reason>)");
      }
    }
  }

  /// Bare/unknown/unused waiver findings, after every rule has run.
  void finish_waivers() {
    for (const Waiver& waiver : waivers_) {
      if (waiver.bare) {
        report_.add(std::string(kWaiverBare), lint::Severity::kError,
                    lint::Location{path_, waiver.line,
                                   std::string(waiver.tag)},
                    "suppression waiver without a reason: every waiver must "
                    "say why, e.g. // srclint: " +
                        std::string(waiver.tag.empty() ? "unordered"
                                                       : waiver.tag) +
                        "-ok(<reason>)");
      } else if (!known_tag(waiver.tag)) {
        report_.add(std::string(kWaiverUnknown), lint::Severity::kError,
                    lint::Location{path_, waiver.line,
                                   std::string(waiver.tag)},
                    "unknown waiver tag '" + std::string(waiver.tag) +
                        "-ok'; known tags: unordered, entropy, mutex, "
                        "pointer-key, fp");
      } else if (!waiver.used) {
        report_.add(std::string(kWaiverUnused), lint::Severity::kWarning,
                    lint::Location{path_, waiver.line,
                                   std::string(waiver.tag)},
                    "waiver suppresses nothing on line " +
                        std::to_string(waiver.target_line) +
                        "; remove it or move it next to the finding it "
                        "excuses");
      }
    }
  }

  const std::string& path_;
  LexedSource lexed_;
  std::vector<Waiver> waivers_;
  std::vector<std::string_view> unordered_names_;
  std::vector<std::string_view> fp_names_;
  lint::LintReport report_;
  std::size_t suppressed_ = 0;
};

}  // namespace

lint::LintReport scan_source(std::string_view text, const std::string& path,
                             ScanStats* stats) {
  return Scanner(text, path).run(stats);
}

const std::vector<lint::RuleInfo>& rule_catalog() {
  static const std::vector<lint::RuleInfo> kCatalog = {
      {"src-fp-parallel-reduce", lint::Severity::kError,
       "floating-point += / -= inside a parallel_for body; summation order "
       "depends on the schedule, breaking bit-exact thread-count sweeps"},
      {"src-pointer-key", lint::Severity::kError,
       "pointer-typed key in std::map/std::set; iteration order follows "
       "allocation addresses, which differ across runs (ASLR)"},
      {"src-raw-entropy", lint::Severity::kError,
       "rand/srand/std::random_device/time()/system_clock/getenv outside "
       "common/rng and tool mains; ambient entropy breaks replayability"},
      {"src-raw-mutex", lint::Severity::kError,
       "raw std::mutex/lock_guard/unique_lock (and friends) instead of the "
       "annotated g10::Mutex/MutexLock; evades -Werror=thread-safety"},
      {"src-unordered-iter", lint::Severity::kError,
       "range-for over a std::unordered_map/unordered_set variable; hash "
       "order may leak into trace output, reports, or hashes"},
      {"src-waiver-bare", lint::Severity::kError,
       "a srclint suppression waiver carries no reason string"},
      {"src-waiver-unknown", lint::Severity::kError,
       "a srclint waiver names a tag the scanner does not know"},
      {"src-waiver-unused", lint::Severity::kWarning,
       "a srclint waiver suppresses nothing; stale suppressions must not "
       "outlive the code they excused"},
  };
  return kCatalog;
}

}  // namespace g10::srclint
