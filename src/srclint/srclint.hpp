// srclint — determinism & concurrency lint over this repository's own C++
// sources (DESIGN.md §14).
//
// Grade10's headline guarantee is bit-exact reproducibility: golden trace
// fixtures, 1/2/8-thread identity sweeps, and byte-identical --resume
// journals all pin it at runtime. Nothing, however, *statically* stops the
// next change from introducing an unordered-container iteration that leaks
// hash order into a report, a stray std::random_device, or an unannotated
// std::mutex that Clang's thread-safety analysis cannot see. srclint is a
// lightweight, no-LLVM static pass (a token-shape scanner over
// source_lexer.hpp's stream) enforcing the project invariants clang-tidy
// cannot express:
//
//   D1 src-unordered-iter      range-for over a std::unordered_* variable
//                              (hash order may leak into output/hashing)
//   D2 src-raw-entropy         rand()/std::random_device/time()/
//                              system_clock/getenv outside common/rng and
//                              tool mains
//   D3 src-raw-mutex           raw std::mutex/lock_guard/unique_lock/...
//                              instead of the annotated g10::Mutex/MutexLock
//   D4 src-pointer-key         pointer-typed key in std::map/std::set
//                              (address-dependent ordering)
//   D5 src-fp-parallel-reduce  float/double += inside a parallel_for body
//                              (schedule-dependent rounding)
//
// A finding is waived with a reasoned comment on (or immediately above) the
// offending line; the waiver must lead the comment (prose that merely
// mentions the grammar is not a suppression). Tags: unordered, entropy,
// mutex, pointer-key, fp. Example:
//
//   foo();  // srclint: unordered-ok(<reason>)
//
// A waiver without a reason is itself an error (src-waiver-bare) and makes
// the CLI exit with the bad-args code: suppressions are part of the tool's
// input grammar, and an unexplained one is malformed input. Unused waivers
// are reported (src-waiver-unused) so suppressions cannot outlive the code
// they excuse.
//
// Findings reuse the PR 3 lint infrastructure (lint::LintFinding /
// lint::LintReport and its text/JSON emitters); this header adds the rule
// catalog for the src-* ids and the per-scan suppression accounting.
#pragma once

#include <string>
#include <string_view>

#include "grade10/lint/lint.hpp"

namespace g10::srclint {

/// Suppression accounting for one or more scans.
struct ScanStats {
  std::size_t files = 0;
  std::size_t waivers = 0;      ///< well-formed waivers encountered
  std::size_t suppressed = 0;   ///< findings silenced by a waiver
  std::size_t bare_waivers = 0; ///< waivers missing their reason (errors)

  void merge(const ScanStats& other) {
    files += other.files;
    waivers += other.waivers;
    suppressed += other.suppressed;
    bare_waivers += other.bare_waivers;
  }
};

/// Scans one file's contents. `path` is used for finding locations and for
/// the path-based exemptions (D2 skips common/rng* and tool mains under
/// tools/; D3 skips the annotated wrapper common/mutex.hpp itself).
lint::LintReport scan_source(std::string_view text, const std::string& path,
                             ScanStats* stats = nullptr);

/// Every src-* rule the scanner can emit, sorted by id (for --rules and
/// the docs; same shape as lint::rule_catalog()).
const std::vector<lint::RuleInfo>& rule_catalog();

}  // namespace g10::srclint
