#include "ensemble/run_grade10.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "algorithms/programs.hpp"
#include "common/check.hpp"
#include "common/mutex.hpp"
#include "common/strings.hpp"
#include "engine/gas/gas_engine.hpp"
#include "engine/pregel/pregel_engine.hpp"
#include "grade10/models/gas_model.hpp"
#include "grade10/models/pregel_model.hpp"
#include "grade10/pipeline.hpp"
#include "grade10/report/phase_profile.hpp"
#include "graph/generators.hpp"
#include "monitor/sampler.hpp"
#include "sim/fault_injector.hpp"

namespace g10::ensemble {
namespace {

/// Graphs are deterministic functions of the dataset spec and expensive to
/// build, so the whole ensemble shares one immutable instance per spec.
std::shared_ptr<const graph::Graph> cached_dataset(const std::string& spec) {
  static Mutex mutex;
  static std::unordered_map<std::string, std::shared_ptr<const graph::Graph>>
      cache G10_GUARDED_BY(mutex);

  MutexLock lock(mutex);
  auto& slot = cache[spec];
  if (slot == nullptr) {
    const auto parts = split(spec, ':');
    if (parts.size() == 2 && parts[0] == "rmat") {
      graph::RmatParams params;
      const auto scale = parse_int(parts[1]);
      G10_CHECK_MSG(scale.has_value() && *scale > 0,
                    "bad rmat dataset spec: " + spec);
      params.scale = static_cast<int>(*scale);
      slot = std::make_shared<const graph::Graph>(generate_rmat(params));
    } else if (parts.size() == 2 && parts[0] == "datagen") {
      graph::DatagenParams params;
      const auto vertices = parse_int(parts[1]);
      G10_CHECK_MSG(vertices.has_value() && *vertices > 0,
                    "bad datagen dataset spec: " + spec);
      params.vertices = static_cast<graph::VertexId>(*vertices);
      slot = std::make_shared<const graph::Graph>(
          generate_datagen_like(params));
    } else {
      G10_CHECK_MSG(false, "unknown dataset spec: " + spec);
    }
  }
  return slot;
}

struct Programs {
  algorithms::PageRank pagerank;
  algorithms::Bfs bfs{1};
  algorithms::Wcc wcc;
  algorithms::Cdlp cdlp;
  algorithms::Sssp sssp{1};

  explicit Programs(int iterations) : pagerank(iterations), cdlp(iterations) {}

  template <typename Program>
  const Program* find(const std::string& algorithm) const {
    const std::map<std::string, const Program*> by_name{
        {"pagerank", &pagerank}, {"bfs", &bfs}, {"wcc", &wcc},
        {"cdlp", &cdlp},         {"sssp", &sssp}};
    const auto it = by_name.find(algorithm);
    G10_CHECK_MSG(it != by_name.end(), "unknown algorithm: " + algorithm);
    return it->second;
  }
};

RunAttempt cancelled_attempt() {
  RunAttempt attempt;
  attempt.outcome = RunOutcome::kTimeout;
  attempt.error = "cancelled at stage boundary";
  return attempt;
}

RunAttempt run_scenario(const Scenario& scenario, const CancelToken& token,
                        const Grade10RunnerOptions& options) {
  // Stage 1: dataset (cached after the first run per spec).
  const auto base_graph = cached_dataset(scenario.dataset);
  const graph::Graph* graph = base_graph.get();
  graph::Graph weighted;
  if (scenario.algorithm == "sssp") {
    weighted = *base_graph;
    graph::assign_random_weights(weighted, 1.0, 10.0, scenario.seed);
    graph = &weighted;
  }
  if (token.cancelled()) return cancelled_attempt();

  const Programs programs(scenario.iterations);

  // Stage 2: engine run under the scenario's faults + cost jitter.
  trace::RunArtifacts artifacts;
  core::FrameworkModel framework;
  TimeNs fault_horizon = 0;
  if (scenario.engine == "pregel") {
    engine::PregelConfig cfg;
    cfg.cluster.machine_count = scenario.workers;
    cfg.cluster.machine.cores = scenario.cores;
    cfg.cluster.machine.core_work_per_sec *= scenario.jitter.core_speed;
    cfg.cluster.machine.nic_bandwidth_bps *= scenario.jitter.nic_bandwidth;
    cfg.cluster.faults = scenario.faults;
    cfg.seed = scenario.seed;
    const engine::PregelEngine engine(cfg);
    const auto* program =
        programs.find<algorithms::PregelProgram>(scenario.algorithm);
    fault_horizon = engine.estimate_horizon(*graph, *program);
    artifacts = engine.run(*graph, *program);
    core::PregelModelParams params;
    params.cores = scenario.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    framework = core::make_pregel_model(params);
  } else if (scenario.engine == "gas") {
    engine::GasConfig cfg;
    cfg.cluster.machine_count = scenario.workers;
    cfg.cluster.machine.cores = scenario.cores;
    cfg.cluster.machine.core_work_per_sec *= scenario.jitter.core_speed;
    cfg.cluster.machine.nic_bandwidth_bps *= scenario.jitter.nic_bandwidth;
    cfg.cluster.faults = scenario.faults;
    cfg.seed = scenario.seed;
    cfg.sync_bug.enabled = scenario.sync_bug;
    cfg.sync_bug.probability = options.sync_bug_probability;
    const engine::GasEngine engine(cfg);
    const auto* program =
        programs.find<algorithms::GasProgram>(scenario.algorithm);
    fault_horizon = engine.estimate_horizon(*graph, *program);
    artifacts = engine.run(*graph, *program);
    core::GasModelParams params;
    params.cores = scenario.cores;
    params.threads = cfg.effective_threads();
    params.network_capacity = cfg.cluster.machine.nic_bytes_per_sec();
    framework = core::make_gas_model(params);
  } else {
    throw std::runtime_error("unknown engine: " + scenario.engine);
  }
  if (token.cancelled()) return cancelled_attempt();

  // Stage 3: monitoring samples (with fault-driven dropout, like g10_run).
  auto samples = monitor::sample_ground_truth(
      artifacts.ground_truth, options.monitor_interval, artifacts.makespan);
  if (scenario.faults.has_kind(sim::FaultKind::kSampleDrop)) {
    sim::FaultInjector dropout(scenario.faults, scenario.seed);
    dropout.resolve(fault_horizon);
    samples = monitor::apply_sampler_dropout(samples, dropout);
  }
  if (token.cancelled()) return cancelled_attempt();

  // Stage 4: characterization.
  core::CharacterizationInput input;
  input.model = &framework.execution;
  input.resources = &framework.resources;
  input.rules = &framework.tuned_rules;
  input.phase_events = artifacts.phase_events;
  input.blocking_events = artifacts.blocking_events;
  input.samples = samples;
  input.config.timeslice = options.timeslice;
  input.config.min_issue_impact = options.min_issue_impact;
  // Serial analysis: the ensemble's parallelism is across scenarios, and
  // nested pools would oversubscribe the machine.
  input.config.threads = 1;
  const core::CheckedCharacterization checked =
      core::characterize_checked(input);
  if (token.cancelled()) return cancelled_attempt();
  if (!checked.status.ok() || !checked.result.has_value()) {
    RunAttempt attempt;
    attempt.outcome = RunOutcome::kAnalysisFailed;
    attempt.error = checked.status.errors.empty()
                        ? "characterization produced no result"
                        : join(checked.status.errors, "; ");
    return attempt;
  }
  const core::CharacterizationResult& result = *checked.result;

  // Stage 5: reduce to the deterministic per-run digest.
  RunAttempt attempt;
  attempt.outcome = RunOutcome::kOk;
  RunReport& report = attempt.report;
  report.makespan_seconds = to_seconds(artifacts.makespan);

  for (const core::PerformanceIssue& issue : result.issues) {
    RunReport::Issue out;
    switch (issue.kind) {
      case core::IssueKind::kResourceBottleneck:
        out.label =
            "bottleneck:" + framework.resources.resource(issue.resource).name;
        break;
      case core::IssueKind::kImbalance: {
        const std::string& phase =
            framework.execution.type(issue.phase_type).name;
        out.label = "imbalance:" + phase;
        if (starts_with(phase, "Gather") &&
            issue.impact >= options.rediscovery_min_impact) {
          report.sync_bug_rediscovered = true;
        }
        break;
      }
      case core::IssueKind::kFaultRecovery:
        out.label = "fault-recovery";
        break;
    }
    out.impact = issue.impact;
    report.issues.push_back(std::move(out));
  }

  const auto profile = core::build_phase_profile(
      result.trace, result.usage, result.bottlenecks, result.grid);
  for (const core::PhaseTypeStats& stats : profile) {
    if (stats.bottlenecked.empty()) continue;
    // Dominant resource: largest bottlenecked time, lowest id on ties
    // (map order) — deterministic either way.
    auto dominant = stats.bottlenecked.begin();
    for (auto it = stats.bottlenecked.begin(); it != stats.bottlenecked.end();
         ++it) {
      if (it->second > dominant->second) dominant = it;
    }
    RunReport::PhaseBottleneck out;
    out.phase = framework.execution.type(stats.type).name;
    out.resource = framework.resources.resource(dominant->first).name;
    out.seconds = to_seconds(dominant->second);
    report.phase_bottlenecks.push_back(std::move(out));
  }
  return attempt;
}

}  // namespace

RunFn make_grade10_runner(const Grade10RunnerOptions& options) {
  return [options](const Scenario& scenario, const CancelToken& token) {
    return run_scenario(scenario, token, options);
  };
}

}  // namespace g10::ensemble
