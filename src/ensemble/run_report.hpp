// Per-run analysis digest the ensemble aggregates over. Deliberately small
// and fully deterministic: only values that are bit-identical across
// re-executions of the same scenario belong here, because the aggregate
// report must be byte-identical whether a run was freshly computed or
// replayed from the journal. Wall-clock timings live on the journal entry,
// outside this struct, and never enter the aggregate.
#pragma once

#include <string>
#include <vector>

namespace g10::ensemble {

struct RunReport {
  /// Simulated makespan of the run, in seconds.
  double makespan_seconds = 0.0;

  /// Dominant bottleneck per phase type: the resource with the largest
  /// total bottlenecked time over all instances of the type (phases whose
  /// instances were never bottlenecked are absent).
  struct PhaseBottleneck {
    std::string phase;     ///< phase type name, e.g. "GatherStep"
    std::string resource;  ///< resource name, e.g. "network"
    double seconds = 0.0;  ///< total bottlenecked time on that resource
  };
  std::vector<PhaseBottleneck> phase_bottlenecks;

  /// Detected performance issues, labeled "<kind>:<subject>" (e.g.
  /// "imbalance:GatherThread", "bottleneck:network", "fault-recovery"),
  /// with the replay-estimated makespan impact fraction.
  struct Issue {
    std::string label;
    double impact = 0.0;
  };
  std::vector<Issue> issues;

  /// §IV-D headline: the analysis surfaced a Gather-phase imbalance issue
  /// above the rediscovery threshold — the injected sync bug was found.
  bool sync_bug_rediscovered = false;
};

}  // namespace g10::ensemble
