// Robust run execution for the ensemble driver: a per-run deadline watchdog
// with cooperative cancellation, outcome classification, and retries with
// capped exponential backoff.
//
// The run function is a plain callable — the Grade10 engine+analyze runner
// in production, a synthetic one in tests — that receives a CancelToken and
// is expected to poll it at stage boundaries. Cancellation is cooperative:
// the watchdog never kills a thread (that would corrupt shared state and
// wedge the ThreadPool); it flips the token, and the executor classifies
// the attempt as a timeout when the flag was raised, regardless of what the
// run reported. A run that ignores its token still gets classified
// correctly once it returns; only a run that never returns can hold its
// pool slot, which is why every built-in runner stage polls.
//
// Outcome taxonomy (journaled, documented in DESIGN.md §12):
//   ok              run + analysis completed
//   timeout         the per-run deadline fired before the run finished
//   run_failed      the engine run threw / reported failure
//   analysis_failed the run produced artifacts but characterization failed
//   skipped         never attempted (ensemble stopping / --limit reached)
//
// Retry policy: timeouts and failed runs are transient in a real fleet and
// are retried up to max_attempts with capped exponential backoff; analysis
// failures are deterministic functions of the artifacts and are not retried
// by default. A run that exhausts its attempts keeps its last outcome —
// the ensemble aggregates partial fleets and stamps the coverage fraction
// instead of failing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "ensemble/run_report.hpp"
#include "ensemble/scenario.hpp"

namespace g10::ensemble {

enum class RunOutcome {
  kOk,
  kTimeout,
  kRunFailed,
  kAnalysisFailed,
  kSkipped,
};

/// Journal/report tag ("ok", "timeout", "run_failed", ...).
std::string_view outcome_name(RunOutcome outcome);
std::optional<RunOutcome> parse_outcome(std::string_view name);

/// Cooperative cancellation flag shared between a run and the watchdog.
/// A token may additionally be linked to an external stop flag (a SIGTERM
/// handler's, a worker's orphan detector's): cancelled() then reports both,
/// so an in-flight run winds down at its next poll, while fired() keeps
/// reporting only the watchdog's own deadline verdict — the executor must
/// not classify a shutdown as a timeout.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  void link(const std::atomic<bool>* external) { external_ = external; }
  bool cancelled() const {
    return fired() || (external_ != nullptr &&
                       external_->load(std::memory_order_acquire));
  }
  /// The watchdog deadline (or an explicit cancel()) fired — excludes the
  /// linked external stop.
  bool fired() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
  const std::atomic<bool>* external_ = nullptr;
};

/// One ensemble-wide deadline thread. arm() registers a token with an
/// absolute deadline; if the deadline passes before the returned guard is
/// disarmed, the token is cancelled. Guards disarm on destruction, so a
/// throwing run function cannot leak an armed deadline.
class Watchdog {
 public:
  Watchdog();
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept { *this = std::move(other); }
    Guard& operator=(Guard&& other) noexcept;
    ~Guard() { disarm(); }

    /// Unregisters the deadline; idempotent. After disarm() returns the
    /// watchdog will never touch the token again.
    void disarm();

   private:
    friend class Watchdog;
    Watchdog* watchdog_ = nullptr;
    std::uint64_t id_ = 0;
  };

  Guard arm(std::shared_ptr<CancelToken> token,
            std::chrono::steady_clock::duration timeout);

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<CancelToken> token;
  };

  void loop();
  void remove(std::uint64_t id);

  Mutex mutex_;
  std::condition_variable_any cv_;
  std::map<std::uint64_t, Entry> entries_ G10_GUARDED_BY(mutex_);
  std::uint64_t next_id_ G10_GUARDED_BY(mutex_) = 1;
  bool stop_ G10_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

struct RetryPolicy {
  int max_attempts = 2;
  /// Per-attempt deadline; <= 0 disables the watchdog.
  double deadline_seconds = 0.0;
  /// Capped exponential backoff between attempts.
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double backoff_factor = 2.0;

  bool retry_timeout = true;
  bool retry_run_failed = true;
  bool retry_analysis_failed = false;

  bool retries(RunOutcome outcome) const;
  /// Backoff before attempt `next_attempt` (2-based), capped.
  double backoff_seconds(int next_attempt) const;
};

/// What one attempt of the run function reports back.
struct RunAttempt {
  RunOutcome outcome = RunOutcome::kRunFailed;
  RunReport report;
  std::string error;
};

using RunFn = std::function<RunAttempt(const Scenario&, const CancelToken&)>;

/// Final classified result of a scenario after retries.
struct RunResult {
  RunOutcome outcome = RunOutcome::kSkipped;
  int attempts = 0;
  double wall_ms = 0.0;  ///< total across attempts; journaled, not aggregated
  std::string error;
  RunReport report;  ///< meaningful when outcome == kOk
};

class RunExecutor {
 public:
  /// `watchdog` may be null when policy.deadline_seconds <= 0.
  RunExecutor(RunFn fn, RetryPolicy policy, Watchdog* watchdog);

  /// Runs the scenario to a final classified outcome. When `stop` is set
  /// before the first attempt the scenario is skipped; when it is raised
  /// between attempts, remaining retries are abandoned and the last
  /// attempt's outcome stands. Never throws for run-induced failures.
  RunResult execute(const Scenario& scenario,
                    const std::atomic<bool>* stop = nullptr) const;

 private:
  RunFn fn_;
  RetryPolicy policy_;
  Watchdog* watchdog_;
};

}  // namespace g10::ensemble
