#include "ensemble/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/check.hpp"
#include "ensemble/journal.hpp"
#include "ensemble/worker.hpp"

namespace g10::ensemble {
namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Everything the supervisor tracks about one scenario's crash history.
struct ScenarioState {
  int attempts = 0;      ///< worker deaths charged to this scenario
  int crashes = 0;       ///< of those, hard crashes (vs wedge kills)
  bool wedged_last = false;
  std::string last_death;  ///< "killed by SIGSEGV" — ExitStatus::describe()
};

/// One worker slot: a shard and whatever process currently serves it.
struct Slot {
  std::size_t shard = 0;
  std::size_t pending = 0;  ///< pending scenarios at fleet start
  Subprocess child;
  int status_fd = -1;
  std::string buffer;  ///< partial status line carried across reads

  Clock::time_point last_heard;
  std::optional<std::uint64_t> current;  ///< last `start` without a `done`
  Clock::time_point current_since;

  enum class KillReason { kNone, kWedge, kShutdown };
  KillReason kill_reason = KillReason::kNone;
  bool term_sent = false;
  Clock::time_point sigkill_at;  ///< escalation deadline once term_sent

  bool progressed = false;  ///< any `done` since this spawn
  int idle_respawns = 0;    ///< consecutive spawns that died without progress
  double backoff_s = 0.0;   ///< next respawn delay (0 = start of ladder)
  bool waiting_respawn = false;
  Clock::time_point respawn_at;

  std::vector<std::uint64_t> defer;  ///< crashed keys, re-queued to the back
  bool done = false;       ///< shard finished (worker exited 0) or abandoned
  bool abandoned = false;  ///< hit the respawn cap with no progress
};

}  // namespace

SupervisorStats run_supervised(const ScenarioMatrix& matrix,
                               const SupervisorOptions& options) {
  G10_CHECK_MSG(!options.journal_path.empty(),
                "supervisor needs a journal path");
  G10_CHECK_MSG(options.jobs >= 1, "supervisor needs at least one job");
  G10_CHECK_MSG(static_cast<bool>(options.command),
                "supervisor needs a worker command builder");

  const std::vector<Scenario> scenarios = matrix.expand();
  const JournalReplay existing = read_journal(options.journal_path);
  G10_CHECK_MSG(options.resume || (existing.entries.empty() &&
                                   existing.dropped_lines == 0),
                "journal '" + options.journal_path +
                    "' already has entries; pass resume to continue it");

  // std::map (not unordered): the supervisor iterates these, and iteration
  // order must be deterministic.
  std::map<std::uint64_t, const Scenario*> by_key;
  std::set<std::uint64_t> done_keys;
  for (const Scenario& s : scenarios) by_key[s.hash()] = &s;
  for (const JournalEntry& entry : existing.entries)
    done_keys.insert(entry.key);

  SupervisorStats stats;
  std::map<std::uint64_t, ScenarioState> state;
  std::vector<Slot> slots(options.jobs);
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i].shard = i;
  for (const auto& [key, scenario] : by_key) {
    if (!done_keys.contains(key)) ++slots[key % options.jobs].pending;
  }

  const auto event = [&options](const std::string& message) {
    if (options.on_event) options.on_event(message);
  };

  // Opened lazily: most fleets never need the supervisor to journal anything
  // itself, and JournalWriter creation has side effects (creates the file).
  std::unique_ptr<JournalWriter> writer;

  // Journals a verdict for a scenario whose attempts/crash budget is spent.
  // The worker may have appended the entry and died before its `done`
  // message made it out, so re-check the journal first — double entries
  // would break resume byte-identity.
  const auto finalize = [&](std::uint64_t key, RunOutcome outcome,
                            const std::string& error) {
    const JournalReplay replay = read_journal(options.journal_path);
    for (const JournalEntry& entry : replay.entries) {
      if (entry.key == key) {
        done_keys.insert(key);
        return;
      }
    }
    const auto it = by_key.find(key);
    if (it == by_key.end()) return;  // a worker's lie about an unknown key
    JournalEntry entry;
    entry.key = key;
    entry.scenario = it->second->key();
    entry.outcome = outcome;
    entry.attempts = state[key].attempts;
    entry.error = error;
    if (!writer)
      writer = std::make_unique<JournalWriter>(options.journal_path);
    writer->append(entry);
    done_keys.insert(key);
    ++stats.finalized;
    if (outcome == RunOutcome::kSkipped) ++stats.poisoned;
    event("journaled " + std::string(outcome_name(outcome)) + " for '" +
          entry.scenario + "': " + error);
  };

  const auto spawn = [&](Slot& slot) {
    Pipe pipe;
    SpawnOptions spawn_options;
    spawn_options.limits = options.limits;
    // The worker writes status lines to fd 3; dup2 clears O_CLOEXEC on the
    // target, so only this child inherits this pipe's write end.
    spawn_options.dup_fds.push_back({pipe.write_fd(), 3});
    const std::vector<std::string> argv =
        options.command(slot.shard, 3, slot.defer);
    slot.child = Subprocess::spawn(argv, spawn_options);
    pipe.close_write();
    slot.status_fd = pipe.release_read();
    const int flags = ::fcntl(slot.status_fd, F_GETFL);
    G10_CHECK_MSG(flags >= 0 && ::fcntl(slot.status_fd, F_SETFL,
                                        flags | O_NONBLOCK) == 0,
                  "fcntl(O_NONBLOCK) on status pipe failed");
    slot.buffer.clear();
    slot.last_heard = Clock::now();
    slot.current.reset();
    slot.kill_reason = Slot::KillReason::kNone;
    slot.term_sent = false;
    slot.progressed = false;
    slot.waiting_respawn = false;
    ++stats.spawned;
    event("worker " + std::to_string(slot.shard) + " spawned (pid " +
          std::to_string(slot.child.pid()) + ", " +
          std::to_string(slot.defer.size()) + " deferred)");
  };

  bool shutting_down = false;

  const auto handle_status = [&](Slot& slot, const StatusEvent& ev) {
    slot.last_heard = Clock::now();
    switch (ev.kind) {
      case StatusEvent::Kind::kHeartbeat:
        break;
      case StatusEvent::Kind::kStart:
        slot.current = ev.key;
        slot.current_since = Clock::now();
        break;
      case StatusEvent::Kind::kDone:
        done_keys.insert(ev.key);
        if (slot.current == ev.key) slot.current.reset();
        slot.progressed = true;
        slot.idle_respawns = 0;
        slot.backoff_s = 0.0;  // progress resets the backoff ladder
        break;
    }
  };

  // Reaps a dead worker and classifies the death. A `start` without a
  // matching `done` makes the crash attributable: that scenario is charged
  // and either re-queued (deferred, backoff) or finalized when its budget
  // is spent.
  const auto handle_death = [&](Slot& slot) {
    ::close(slot.status_fd);
    slot.status_fd = -1;
    // EOF means the worker's last handle on the pipe is gone, i.e. the
    // process is exiting — but SIGKILL the group anyway so grandchildren a
    // wedged run may have leaked cannot outlive their slot (orphan
    // reaping). A zombie leader keeps its real exit status.
    slot.child.kill(SIGKILL);
    const ExitStatus status = slot.child.wait();

    if (shutting_down) {
      slot.done = true;
      return;
    }
    if (status.success()) {
      slot.done = true;
      event("worker " + std::to_string(slot.shard) + " finished its shard");
      return;
    }

    const bool wedge = slot.kill_reason == Slot::KillReason::kWedge;
    if (wedge) {
      ++stats.wedges;
    } else {
      ++stats.crashes;
    }
    event("worker " + std::to_string(slot.shard) + " " + status.describe() +
          (wedge ? " (liveness escalation)" : "") +
          (slot.current ? " while running " + format_key(*slot.current)
                        : " while idle"));

    if (slot.current && done_keys.contains(*slot.current)) {
      // Crashed on a scenario that is already settled (journaled by a
      // sibling or finalized by us) — a sane worker would have skipped it.
      // Treat like an idle death so the respawn cap bounds the loop.
      slot.current.reset();
    }
    if (slot.current) {
      const std::uint64_t key = *slot.current;
      ScenarioState& sc = state[key];
      ++sc.attempts;
      if (!wedge) ++sc.crashes;
      sc.wedged_last = wedge;
      sc.last_death = status.describe();
      slot.idle_respawns = 0;
      if (sc.crashes >= options.crash_budget) {
        // Poisonous: it keeps killing workers; journal skipped and move on
        // rather than burning the rest of the attempt budget on corpses.
        finalize(key, RunOutcome::kSkipped,
                 "poisonous scenario: crashed " +
                     std::to_string(sc.crashes) + " worker(s), last " +
                     sc.last_death);
      } else if (sc.attempts >= options.max_attempts) {
        finalize(key,
                 wedge ? RunOutcome::kTimeout : RunOutcome::kRunFailed,
                 (wedge ? "worker wedged, " : "worker crashed, ") +
                     sc.last_death + " (attempt " +
                     std::to_string(sc.attempts) + "/" +
                     std::to_string(options.max_attempts) + ")");
      } else {
        // Re-queue behind the shard's healthy scenarios so a replacement
        // worker makes progress before retrying the suspect.
        if (std::find(slot.defer.begin(), slot.defer.end(), key) ==
            slot.defer.end()) {
          slot.defer.push_back(key);
        }
      }
    } else if (!slot.progressed) {
      // Died idle without ever finishing a scenario: nothing to charge.
      // A few of these in a row means the worker cannot even start (bad
      // binary, unsatisfiable rlimit) — abandon the shard instead of
      // fork-bombing.
      if (++slot.idle_respawns >= options.respawn_cap) {
        slot.done = true;
        slot.abandoned = true;
        ++stats.abandoned_shards;
        event("worker " + std::to_string(slot.shard) + " abandoned after " +
              std::to_string(slot.idle_respawns) +
              " respawns without progress; its scenarios stay missing");
        return;
      }
    }

    slot.backoff_s = slot.backoff_s <= 0.0
                         ? options.backoff_initial_s
                         : std::min(slot.backoff_s * options.backoff_factor,
                                    options.backoff_max_s);
    slot.respawn_at = Clock::now() + seconds(slot.backoff_s);
    slot.waiting_respawn = true;
  };

  // Drains everything currently readable from a slot's status pipe.
  // Returns false when the pipe hit EOF (worker death already handled).
  const auto drain = [&](Slot& slot) -> bool {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::read(slot.status_fd, chunk, sizeof(chunk));
      if (n > 0) {
        slot.buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = slot.buffer.find('\n')) != std::string::npos) {
          const std::string line = slot.buffer.substr(0, newline);
          slot.buffer.erase(0, newline + 1);
          if (const auto ev = parse_status_line(line)) {
            handle_status(slot, *ev);
          }
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      handle_death(slot);  // EOF, or an unreadable pipe — same response
      return false;
    }
  };

  // Workers are only spawned for shards with pending work; an all-reused
  // resume spawns nothing and goes straight to returning.
  for (Slot& slot : slots) {
    if (slot.pending == 0) {
      slot.done = true;
    } else {
      spawn(slot);
    }
  }

  while (true) {
    if (!shutting_down && options.stop != nullptr &&
        options.stop->load(std::memory_order_acquire)) {
      shutting_down = true;
      event("shutdown requested: terminating workers");
      for (Slot& slot : slots) {
        if (slot.waiting_respawn) {
          slot.waiting_respawn = false;
          slot.done = true;
        }
        if (slot.status_fd >= 0 && slot.child.running()) {
          slot.child.kill(SIGTERM);
          slot.term_sent = true;
          slot.kill_reason = Slot::KillReason::kShutdown;
          slot.sigkill_at = Clock::now() + seconds(options.kill_grace_s);
        }
      }
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].status_fd >= 0) {
        fds.push_back({slots[i].status_fd, POLLIN, 0});
        fd_slot.push_back(i);
      }
    }
    const bool any_respawn_pending =
        std::any_of(slots.begin(), slots.end(),
                    [](const Slot& s) { return s.waiting_respawn; });
    if (fds.empty() && !any_respawn_pending) break;

    if (fds.empty()) {
      ::poll(nullptr, 0, 50);  // backoff nap — only respawns are pending
    } else {
      const int rc =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
      if (rc > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents != 0) drain(slots[fd_slot[i]]);
        }
      }
    }

    const Clock::time_point now = Clock::now();
    for (Slot& slot : slots) {
      if (slot.status_fd < 0) {
        if (slot.waiting_respawn && !shutting_down &&
            now >= slot.respawn_at) {
          spawn(slot);
        }
        continue;
      }
      if (slot.term_sent) {
        if (now >= slot.sigkill_at) {
          slot.child.kill(SIGKILL);
          slot.sigkill_at = now + seconds(3600.0);  // sent; EOF follows
        }
        continue;
      }
      if (shutting_down) continue;
      const bool silent =
          now - slot.last_heard > seconds(options.heartbeat_timeout_s);
      const bool stuck =
          options.wedge_timeout_s > 0.0 && slot.current.has_value() &&
          now - slot.current_since > seconds(options.wedge_timeout_s);
      if (silent || stuck) {
        event("worker " + std::to_string(slot.shard) +
              (silent ? " stopped heartbeating" : " wedged on a scenario") +
              "; escalating SIGTERM then SIGKILL");
        slot.child.kill(SIGTERM);
        slot.term_sent = true;
        slot.kill_reason = Slot::KillReason::kWedge;
        slot.sigkill_at = now + seconds(options.kill_grace_s);
      }
    }
  }

  stats.interrupted = shutting_down;
  return stats;
}

}  // namespace g10::ensemble
