#include "ensemble/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "ensemble/journal.hpp"

namespace g10::ensemble {

std::string format_status(const StatusEvent& event) {
  switch (event.kind) {
    case StatusEvent::Kind::kHeartbeat:
      return "hb";
    case StatusEvent::Kind::kStart:
      return "start " + format_key(event.key);
    case StatusEvent::Kind::kDone:
      return "done " + format_key(event.key) + " " +
             std::string(outcome_name(event.outcome));
  }
  return "hb";
}

std::optional<StatusEvent> parse_status_line(std::string_view line) {
  StatusEvent event;
  if (line == "hb") return event;
  const auto word = [&line]() -> std::string_view {
    const std::size_t space = line.find(' ');
    const std::string_view head = line.substr(0, space);
    line.remove_prefix(space == std::string_view::npos ? line.size()
                                                       : space + 1);
    return head;
  };
  const std::string_view verb = word();
  const auto key = parse_key(word());
  if (!key) return std::nullopt;
  event.key = *key;
  if (verb == "start") {
    if (!line.empty()) return std::nullopt;
    event.kind = StatusEvent::Kind::kStart;
    return event;
  }
  if (verb == "done") {
    const auto outcome = parse_outcome(word());
    if (!outcome || !line.empty()) return std::nullopt;
    event.kind = StatusEvent::Kind::kDone;
    event.outcome = *outcome;
    return event;
  }
  return std::nullopt;
}

StatusChannel::StatusChannel(int fd) : fd_(fd) {}

StatusChannel::~StatusChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void StatusChannel::send(const StatusEvent& event) {
  if (fd_ < 0 || peer_gone()) return;
  std::string line = format_status(event);
  line += '\n';
  // One short write(2): atomic below PIPE_BUF, so the heartbeat thread and
  // the run thread can share the pipe without a lock.
  ssize_t n;
  do {
    n = ::write(fd_, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0) peer_gone_.store(true, std::memory_order_release);
}

Heartbeat::Heartbeat(StatusChannel* channel, double interval_seconds,
                     std::atomic<bool>* stop_on_orphan)
    : channel_(channel), stop_on_orphan_(stop_on_orphan),
      thread_([this, interval_seconds] { loop(interval_seconds); }) {}

Heartbeat::~Heartbeat() {
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void Heartbeat::loop(double interval_seconds) {
  using clock = std::chrono::steady_clock;
  auto next = clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    if (clock::now() >= next) {
      channel_->heartbeat();
      if (channel_->peer_gone() && stop_on_orphan_ != nullptr) {
        // The supervisor is dead: raise the worker's stop flag so in-flight
        // work cancels at its next poll, then stop beating.
        stop_on_orphan_->store(true, std::memory_order_release);
        return;
      }
      next = clock::now() +
             std::chrono::duration_cast<clock::duration>(
                 std::chrono::duration<double>(interval_seconds));
    }
    // Short naps keep destruction prompt without busy-waiting.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace g10::ensemble
