// Distributional aggregation of an ensemble's journal.
//
// aggregate() joins the expanded scenario list against the journal entries
// by scenario hash (first occurrence wins; later duplicates are counted but
// ignored) and reduces the per-run reports into a fleet-level view:
// outcome counts and coverage, the sync-bug rediscovery rate with a Wilson
// 95% interval, per-issue detection rates and impact quantiles, per-phase
// dominant-bottleneck frequencies, and makespan statistics.
//
// Everything here is a pure function of (scenarios, journal entries) and
// every container is deterministically ordered, so the rendered report is
// byte-identical whether the journal was written in one uninterrupted
// execution or stitched together across --resume restarts. Wall-clock
// fields on journal entries are deliberately never read.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "ensemble/journal.hpp"
#include "ensemble/scenario.hpp"

namespace g10::ensemble {

/// A binomial proportion with its Wilson 95% interval.
struct RateEstimate {
  std::size_t hits = 0;
  std::size_t trials = 0;
  ConfidenceInterval ci;  ///< [0, 1] when trials == 0

  double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(hits) /
                                   static_cast<double>(trials);
  }
};

/// Five-number summary over the ok runs' values.
struct ValueSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// One detected-issue label across the fleet.
struct IssueSummary {
  std::string label;   ///< e.g. "imbalance:GatherThread"
  RateEstimate rate;   ///< runs where the label appeared, over ok runs
  ValueSummary impact; ///< impact fraction across occurrences
};

/// Dominant-bottleneck frequency for one phase type.
struct PhaseBottleneckSummary {
  std::string phase;
  struct ResourceShare {
    std::string resource;
    std::size_t runs = 0;  ///< ok runs where this resource dominated
  };
  /// Sorted by runs desc, resource name asc.
  std::vector<ResourceShare> resources;
  std::size_t runs_with_bottleneck = 0;
};

struct AggregateReport {
  std::size_t scenario_count = 0;

  // Journal hygiene.
  std::size_t matched_entries = 0;    ///< journal lines joined to a scenario
  std::size_t duplicate_entries = 0;  ///< same key seen again (ignored)
  std::size_t unknown_entries = 0;    ///< key not in this matrix (ignored)
  std::size_t dropped_lines = 0;      ///< torn/corrupt lines in the journal

  // Outcome distribution over the scenario list. `missing` counts scenarios
  // with no journal entry at all (killed before completion, --limit).
  std::size_t ok = 0;
  std::size_t timeout = 0;
  std::size_t run_failed = 0;
  std::size_t analysis_failed = 0;
  std::size_t skipped = 0;
  std::size_t missing = 0;

  /// ok / scenario_count — the fraction of the fleet the distributional
  /// numbers below actually describe.
  double coverage = 0.0;

  /// Headline: injected sync bug rediscovered, over ok runs.
  RateEstimate sync_bug;

  ValueSummary makespan_seconds;

  /// Sorted by hits desc, label asc.
  std::vector<IssueSummary> issues;
  /// Sorted by phase name asc.
  std::vector<PhaseBottleneckSummary> phase_bottlenecks;
};

/// Joins scenarios to journal entries and reduces. Pure and deterministic.
AggregateReport aggregate(const std::vector<Scenario>& scenarios,
                          const JournalReplay& replay);

/// Human-readable report (stable layout, deterministic formatting).
std::string render_text(const AggregateReport& report);

/// Machine-readable report. Doubles use shortest-round-trip rendering, so
/// equal reports serialize to byte-identical JSON.
std::string render_json(const AggregateReport& report);

}  // namespace g10::ensemble
