#include "ensemble/scenario.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace g10::ensemble {
namespace {

// Renders a jitter factor exactly: factors are quantized to 4 decimals at
// sampling time, so 4-decimal fixed rendering is lossless.
std::string jitter_factor(double f) {
  std::string s = format_fixed(f, 4);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

// Uniform factor in [1 - width, 1 + width], quantized to 4 decimals.
double sample_factor(Rng& rng, double width) {
  const double raw = rng.next_double(1.0 - width, 1.0 + width);
  return std::round(raw * 1e4) / 1e4;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Scenario::key() const {
  std::string out;
  out.reserve(160);
  out += "engine=";
  out += engine;
  out += " algo=";
  out += algorithm;
  out += " dataset=";
  out += dataset;
  out += " workers=";
  out += std::to_string(workers);
  out += " cores=";
  out += std::to_string(cores);
  out += " iters=";
  out += std::to_string(iterations);
  out += " seed=";
  out += std::to_string(seed);
  out += " sync_bug=";
  out += sync_bug ? '1' : '0';
  out += " jitter=";
  out += jitter_factor(jitter.core_speed);
  out += 'x';
  out += jitter_factor(jitter.nic_bandwidth);
  out += " faults=";
  const std::string faults_text = faults.to_string();
  out += faults_text.empty() ? "none" : faults_text;
  return out;
}

std::uint64_t Scenario::hash() const { return fnv1a64(key()); }

void ScenarioMatrix::seed_range(std::uint64_t base, int count) {
  G10_CHECK_MSG(count > 0, "seed count must be positive");
  seeds.clear();
  seeds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    seeds.push_back(base + static_cast<std::uint64_t>(i));
  }
}

std::vector<Scenario> ScenarioMatrix::expand() const {
  G10_CHECK_MSG(!engines.empty(), "scenario matrix needs at least one engine");
  G10_CHECK_MSG(!seeds.empty(), "scenario matrix needs at least one seed");
  G10_CHECK_MSG(workers > 0 && cores > 0 && iterations > 0,
                "scenario matrix needs a positive cluster shape");
  G10_CHECK_MSG(jitter >= 0.0 && jitter < 1.0,
                "cost-model jitter must be in [0, 1)");
  G10_CHECK_MSG(sampled_fault_specs >= 0, "sampled fault count is negative");

  std::vector<Scenario> out;
  const std::size_t per_cell =
      std::max<std::size_t>(1, fault_specs.size()) +
      static_cast<std::size_t>(sampled_fault_specs);
  out.reserve(engines.size() * seeds.size() * per_cell);

  for (const std::string& engine : engines) {
    for (const std::uint64_t seed : seeds) {
      // The per-cell fault axis: the explicit specs, plus sampled ones
      // derived from the seed alone (the same seed draws the same specs on
      // every expansion, which --resume relies on).
      std::vector<sim::FaultSpec> cell_faults = fault_specs;
      if (cell_faults.empty()) cell_faults.emplace_back();
      if (sampled_fault_specs > 0) {
        sim::FaultSampleRanges ranges = sample_ranges;
        ranges.machine_count = workers;
        Rng sampler(fnv1a64("fault-axis") ^ seed);
        for (int i = 0; i < sampled_fault_specs; ++i) {
          cell_faults.push_back(sim::FaultSpec::sample(sampler, ranges));
        }
      }

      for (const sim::FaultSpec& spec : cell_faults) {
        Scenario s;
        s.engine = engine;
        s.algorithm = algorithm;
        s.dataset = dataset;
        s.workers = workers;
        s.cores = cores;
        s.iterations = iterations;
        s.seed = seed;
        s.faults = spec;
        s.sync_bug = sync_bug;
        if (jitter > 0.0) {
          // Jitter depends on the seed only, not on the fault axis: the
          // same simulated hardware runs every fault pattern, so shifts in
          // the bottleneck distribution are attributable to the faults.
          Rng jitter_rng(fnv1a64("cost-jitter") ^ seed);
          s.jitter.core_speed = sample_factor(jitter_rng, jitter);
          s.jitter.nic_bandwidth = sample_factor(jitter_rng, jitter);
        }
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

}  // namespace g10::ensemble
