#include "ensemble/driver.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "ensemble/run_report.hpp"

namespace g10::ensemble {

EnsembleOutcome run_ensemble(const ScenarioMatrix& matrix, const RunFn& fn,
                             const EnsembleOptions& options) {
  G10_CHECK_MSG(!options.journal_path.empty(), "ensemble needs a journal path");
  G10_CHECK_MSG(options.shard_count == 0 ||
                    options.shard_index < options.shard_count,
                "shard index out of range");
  const std::vector<Scenario> scenarios = matrix.expand();

  const JournalReplay existing = read_journal(options.journal_path);
  G10_CHECK_MSG(options.resume || (existing.entries.empty() &&
                                   existing.dropped_lines == 0),
                "journal '" + options.journal_path +
                    "' already has entries; pass resume to continue it");

  std::unordered_set<std::uint64_t> done;
  done.reserve(existing.entries.size());
  for (const JournalEntry& entry : existing.entries) done.insert(entry.key);

  std::vector<const Scenario*> pending;
  pending.reserve(scenarios.size());
  EnsembleOutcome outcome;
  for (const Scenario& s : scenarios) {
    if (done.contains(s.hash())) {
      ++outcome.reused;
    } else if (options.shard_count != 0 &&
               s.hash() % options.shard_count != options.shard_index) {
      ++outcome.remaining;  // another shard's work
    } else {
      pending.push_back(&s);
    }
  }
  if (options.limit > 0 && pending.size() > options.limit) {
    outcome.remaining += pending.size() - options.limit;
    pending.resize(options.limit);
  }
  if (!options.defer_keys.empty()) {
    // Suspect scenarios (they crashed a worker) run after the healthy rest
    // of the queue; relative order within each group is preserved.
    const std::unordered_set<std::uint64_t> defer(options.defer_keys.begin(),
                                                  options.defer_keys.end());
    std::stable_partition(pending.begin(), pending.end(),
                          [&](const Scenario* s) {
                            return !defer.contains(s->hash());
                          });
  }

  if (!pending.empty()) {
    JournalWriter writer(options.journal_path);
    Watchdog watchdog;
    const RunExecutor executor(fn, options.retry, &watchdog);
    ThreadPool pool(options.threads);
    std::atomic<std::size_t> journaled{0};
    std::atomic<std::size_t> cancelled{0};
    // Grain 1: scenarios vary wildly in cost (fault recovery can multiply a
    // run's length), so work stealing needs single-run granularity.
    parallel_for(&pool, pending.size(), 1, [&](std::size_t i) {
      const Scenario& scenario = *pending[i];
      const bool stopping_before =
          options.stop != nullptr &&
          options.stop->load(std::memory_order_acquire);
      if (!stopping_before && options.on_start) options.on_start(scenario);
      const RunResult result = executor.execute(scenario, options.stop);
      // A shutdown must leave the journal resumable: a scenario the stop
      // flag skipped outright (attempts == 0) or cancelled mid-run (any
      // non-ok outcome once stop is raised) stays missing rather than
      // being journaled with a shutdown-tainted outcome.
      const bool stopping = options.stop != nullptr &&
                            options.stop->load(std::memory_order_acquire);
      if ((result.outcome == RunOutcome::kSkipped && result.attempts == 0) ||
          (stopping && result.outcome != RunOutcome::kOk)) {
        cancelled.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      JournalEntry entry;
      entry.key = scenario.hash();
      entry.scenario = scenario.key();
      entry.outcome = result.outcome;
      entry.attempts = result.attempts;
      entry.wall_ms = result.wall_ms;
      entry.error = result.error;
      entry.report = result.report;
      writer.append(entry);
      journaled.fetch_add(1, std::memory_order_relaxed);
      if (options.on_run) options.on_run(entry);
    });
    outcome.executed = journaled.load(std::memory_order_relaxed);
    outcome.remaining += cancelled.load(std::memory_order_relaxed);
  }

  // The aggregate is always computed from a fresh read of the journal file,
  // never from in-memory results: a resumed ensemble and an uninterrupted
  // one reduce the exact same bytes, so their reports are byte-identical.
  outcome.report = aggregate(scenarios, read_journal(options.journal_path));
  return outcome;
}

}  // namespace g10::ensemble
