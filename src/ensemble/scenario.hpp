// Scenario matrix for the Monte-Carlo ensemble driver (g10_ensemble).
//
// A Scenario is one fully-specified engine-run-plus-analysis: engine,
// algorithm, dataset, cluster shape, seed, fault schedule, sync-bug flag,
// and a multiplicative cost-model jitter. ScenarioMatrix describes the axes
// (engines × seeds × fault specs × jitter) and expands into the concrete
// scenario list in a deterministic order.
//
// Every scenario has a canonical one-line key() — the complete recipe in
// text — and a stable 64-bit hash of it. The journal stores both: the hash
// keys resume lookups, the text makes journal lines self-describing and
// guards against hash collisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"

namespace g10::ensemble {

/// Multiplicative perturbation of the cluster's cost model. Factors are
/// quantized to 4 decimals so the canonical key renders them exactly.
struct CostJitter {
  double core_speed = 1.0;     ///< scales MachineSpec::core_work_per_sec
  double nic_bandwidth = 1.0;  ///< scales MachineSpec::nic_bandwidth_bps

  bool identity() const { return core_speed == 1.0 && nic_bandwidth == 1.0; }
  bool operator==(const CostJitter&) const = default;
};

struct Scenario {
  std::string engine = "pregel";     ///< "pregel" | "gas"
  std::string algorithm = "pagerank";
  std::string dataset = "rmat:8";    ///< g10_run dataset grammar
  int workers = 4;
  int cores = 8;
  int iterations = 10;
  std::uint64_t seed = 1;
  sim::FaultSpec faults;
  bool sync_bug = false;
  CostJitter jitter;

  /// Canonical one-line description; equal scenarios render equal keys.
  std::string key() const;

  /// FNV-1a 64-bit hash of key(). Stable across processes and platforms.
  std::uint64_t hash() const;
};

/// Stable FNV-1a 64-bit hash (journal keys; not for adversarial input).
std::uint64_t fnv1a64(std::string_view text);

struct ScenarioMatrix {
  std::vector<std::string> engines = {"pregel"};
  std::string algorithm = "pagerank";
  std::string dataset = "rmat:8";
  int workers = 4;
  int cores = 8;
  int iterations = 10;
  /// Seed axis; expand() fails on an empty list.
  std::vector<std::uint64_t> seeds;
  /// Explicit fault-spec axis. An empty list means one fault-free run per
  /// (engine, seed) cell; include an empty FaultSpec to mix clean runs into
  /// a non-empty axis.
  std::vector<sim::FaultSpec> fault_specs;
  /// Additionally draw this many sampled fault specs per (engine, seed)
  /// cell via FaultSpec::sample, derived deterministically from the seed.
  int sampled_fault_specs = 0;
  sim::FaultSampleRanges sample_ranges;
  /// Relative half-width of the cost-model perturbation: core speed and NIC
  /// bandwidth are scaled by factors drawn uniformly from [1 - jitter,
  /// 1 + jitter], derived deterministically from the scenario seed.
  double jitter = 0.0;
  bool sync_bug = false;

  /// Expands to the concrete scenario list (engines × seeds × fault axis),
  /// deterministic in both content and order. Throws CheckError on an
  /// empty/invalid matrix. Scenario keys are unique within one expansion.
  std::vector<Scenario> expand() const;

  /// Convenience: seeds = {base, base+1, ..., base+count-1}.
  void seed_range(std::uint64_t base, int count);
};

}  // namespace g10::ensemble
