// Process-isolated ensemble fan-out: the supervisor (DESIGN.md §15).
//
// `g10_ensemble --jobs N [--isolate]` runs the fleet under this loop
// instead of the in-process ThreadPool. Pending scenarios are sharded
// deterministically by canonical scenario hash (hash % jobs); each shard is
// executed by a worker *process* (the same binary re-entered through the
// hidden --worker-shard flag) that appends finished runs to the shared
// O_APPEND journal and reports liveness over a status pipe. Because every
// worker derives its own work list from (matrix, journal, shard), the
// supervisor never ships scenarios over IPC — a respawned worker re-reads
// the journal and continues exactly where its predecessor died.
//
// What real process isolation buys over the in-process watchdog:
//   - crash containment: a SIGSEGV/OOM-kill takes one worker, not the
//     fleet; the supervisor charges the crash to the in-flight scenario
//     (the last `start` without a `done`), re-queues it under capped
//     exponential backoff, and respawns the shard's worker;
//   - resource sandboxes: --isolate installs RLIMIT_AS / RLIMIT_CPU in the
//     child, so runaway memory or CPU is stopped by the kernel;
//   - hard liveness: a worker that stops heartbeating, or sits on one
//     scenario past the wedge ceiling, is escalated SIGTERM → (grace) →
//     SIGKILL of its whole process group — the kill the cooperative
//     CancelToken can never deliver;
//   - graceful degradation: a scenario that exhausts its attempts is
//     journaled run_failed/timeout with the killing signal recorded; one
//     that kills crash_budget workers is journaled skipped ("poisonous").
//     Either way the fleet finishes and the report is stamped DEGRADED
//     with its coverage, exactly like --resume over a partial journal.
//
// The aggregate is still reduced from a fresh journal read, so --jobs 1,
// --jobs 8, and kill-9-then---resume all render byte-identical reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/subprocess.hpp"
#include "ensemble/scenario.hpp"

namespace g10::ensemble {

struct SupervisorOptions {
  std::string journal_path;
  /// Worker process count (shard count). Must be >= 1.
  std::size_t jobs = 1;
  /// Reuse existing journal entries (same contract as EnsembleOptions).
  bool resume = false;

  // Liveness and escalation.
  /// A worker silent on its status pipe for this long is presumed wedged.
  double heartbeat_timeout_s = 5.0;
  /// A worker sitting on one scenario for this long is presumed wedged on
  /// it even if heartbeats still flow (a spinning run that ignores its
  /// CancelToken keeps the heartbeat thread alive). 0 disables.
  double wedge_timeout_s = 0.0;
  /// SIGTERM → this grace → SIGKILL of the worker's process group.
  double kill_grace_s = 2.0;

  // Crash containment policy.
  /// Total attempts a scenario gets across worker deaths (crashes and
  /// wedge kills each consume one). Exhaustion journals the last verdict
  /// (run_failed with the signal, or timeout for a wedge).
  int max_attempts = 2;
  /// Dead workers a single scenario may cost before it is declared
  /// poisonous and journaled `skipped` with the crash signal recorded —
  /// the early-out for --max-attempts fleets that would otherwise burn a
  /// worker per retry.
  int crash_budget = 3;
  /// Capped exponential backoff before respawning a shard whose worker a
  /// scenario just killed.
  double backoff_initial_s = 0.25;
  double backoff_max_s = 5.0;
  double backoff_factor = 2.0;
  /// Consecutive respawns of one shard without a single `done` before the
  /// shard is abandoned (its scenarios stay missing; report DEGRADED).
  int respawn_cap = 5;

  /// Sandboxes applied to every worker (zeros = none).
  SpawnLimits limits;

  /// Builds the worker argv for `shard`. `status_fd` is the child-side fd
  /// number the worker must write its status lines to; `defer` lists the
  /// scenario keys the worker should run last.
  std::function<std::vector<std::string>(
      std::size_t shard, int status_fd,
      const std::vector<std::uint64_t>& defer)>
      command;

  /// Progress/diagnostic lines ("worker 2 killed by SIGSEGV ..."); null
  /// disables.
  std::function<void(const std::string&)> on_event;

  /// Cooperative shutdown: when raised, workers get SIGTERM, stragglers
  /// SIGKILL after the grace, and the fleet returns with interrupted set.
  /// In-flight scenarios stay missing (resumable), never journaled.
  const std::atomic<bool>* stop = nullptr;
};

struct SupervisorStats {
  std::size_t spawned = 0;    ///< worker processes started (incl. respawns)
  std::size_t crashes = 0;    ///< workers that died by signal / bad exit
  std::size_t wedges = 0;     ///< workers killed by the liveness escalation
  std::size_t finalized = 0;  ///< scenarios the supervisor journaled itself
  std::size_t poisoned = 0;   ///< of those, journaled `skipped` (budget)
  std::size_t abandoned_shards = 0;  ///< shards that hit the respawn cap
  bool interrupted = false;
};

/// Runs (or resumes) the fleet under process supervision. Throws CheckError
/// on an invalid matrix/options or a fresh start over a non-empty journal;
/// worker deaths never throw — they are contained, retried, and journaled.
SupervisorStats run_supervised(const ScenarioMatrix& matrix,
                               const SupervisorOptions& options);

}  // namespace g10::ensemble
