#include "ensemble/aggregate.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace g10::ensemble {
namespace {

ValueSummary summarize(std::vector<double> values) {
  ValueSummary out;
  out.count = values.size();
  if (values.empty()) return out;
  RunningStats stats;
  for (const double v : values) stats.add(v);
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.min = stats.min();
  out.max = stats.max();
  const auto qs = quantiles(std::move(values), {0.5, 0.95});
  out.p50 = qs[0];
  out.p95 = qs[1];
  return out;
}

RateEstimate rate_of(std::size_t hits, std::size_t trials) {
  RateEstimate rate;
  rate.hits = hits;
  rate.trials = trials;
  rate.ci = wilson_interval(hits, trials);
  return rate;
}

std::string percent(double fraction) { return format_percent(fraction, 1); }

std::string rate_line(const RateEstimate& rate) {
  std::string out = std::to_string(rate.hits) + "/" +
                    std::to_string(rate.trials) + " = " +
                    percent(rate.rate());
  out += " (95% CI " + percent(rate.ci.low) + " - " + percent(rate.ci.high) +
         ")";
  return out;
}

void write_rate(JsonWriter& w, const RateEstimate& rate) {
  w.begin_object();
  w.key("hits").value(rate.hits);
  w.key("trials").value(rate.trials);
  w.key("rate").value(rate.rate());
  w.key("ci_low").value(rate.ci.low);
  w.key("ci_high").value(rate.ci.high);
  w.end_object();
}

void write_summary(JsonWriter& w, const ValueSummary& summary) {
  w.begin_object();
  w.key("count").value(summary.count);
  w.key("mean").value(summary.mean);
  w.key("stddev").value(summary.stddev);
  w.key("min").value(summary.min);
  w.key("p50").value(summary.p50);
  w.key("p95").value(summary.p95);
  w.key("max").value(summary.max);
  w.end_object();
}

}  // namespace

AggregateReport aggregate(const std::vector<Scenario>& scenarios,
                          const JournalReplay& replay) {
  AggregateReport report;
  report.scenario_count = scenarios.size();
  report.dropped_lines = replay.dropped_lines;

  std::unordered_set<std::uint64_t> wanted;
  wanted.reserve(scenarios.size());
  for (const Scenario& s : scenarios) wanted.insert(s.hash());

  // First occurrence wins: a --resume journal may hold a second entry for a
  // scenario whose first entry landed just before the kill.
  std::unordered_map<std::uint64_t, const JournalEntry*> by_key;
  by_key.reserve(replay.entries.size());
  for (const JournalEntry& entry : replay.entries) {
    if (!wanted.contains(entry.key)) {
      ++report.unknown_entries;
      continue;
    }
    if (!by_key.emplace(entry.key, &entry).second) {
      ++report.duplicate_entries;
      continue;
    }
    ++report.matched_entries;
  }

  std::vector<double> makespans;
  struct IssueAccumulator {
    std::size_t runs = 0;
    std::vector<double> impacts;
  };
  std::map<std::string, IssueAccumulator> issues;
  // phase -> resource -> runs where that resource dominated the phase
  std::map<std::string, std::map<std::string, std::size_t>> phases;
  std::size_t sync_bug_hits = 0;

  for (const Scenario& scenario : scenarios) {
    const auto it = by_key.find(scenario.hash());
    if (it == by_key.end()) {
      ++report.missing;
      continue;
    }
    const JournalEntry& entry = *it->second;
    switch (entry.outcome) {
      case RunOutcome::kOk:
        ++report.ok;
        break;
      case RunOutcome::kTimeout:
        ++report.timeout;
        continue;
      case RunOutcome::kRunFailed:
        ++report.run_failed;
        continue;
      case RunOutcome::kAnalysisFailed:
        ++report.analysis_failed;
        continue;
      case RunOutcome::kSkipped:
        ++report.skipped;
        continue;
    }

    makespans.push_back(entry.report.makespan_seconds);
    if (entry.report.sync_bug_rediscovered) ++sync_bug_hits;

    std::unordered_set<std::string_view> seen_labels;
    for (const RunReport::Issue& issue : entry.report.issues) {
      IssueAccumulator& acc = issues[issue.label];
      acc.impacts.push_back(issue.impact);
      if (seen_labels.insert(issue.label).second) ++acc.runs;
    }
    for (const RunReport::PhaseBottleneck& pb :
         entry.report.phase_bottlenecks) {
      ++phases[pb.phase][pb.resource];
    }
  }

  report.coverage =
      report.scenario_count == 0
          ? 0.0
          : static_cast<double>(report.ok) /
                static_cast<double>(report.scenario_count);
  report.sync_bug = rate_of(sync_bug_hits, report.ok);
  report.makespan_seconds = summarize(std::move(makespans));

  for (auto& [label, acc] : issues) {
    IssueSummary summary;
    summary.label = label;
    summary.rate = rate_of(acc.runs, report.ok);
    summary.impact = summarize(std::move(acc.impacts));
    report.issues.push_back(std::move(summary));
  }
  std::sort(report.issues.begin(), report.issues.end(),
            [](const IssueSummary& a, const IssueSummary& b) {
              if (a.rate.hits != b.rate.hits) return a.rate.hits > b.rate.hits;
              return a.label < b.label;
            });

  for (const auto& [phase, resources] : phases) {
    PhaseBottleneckSummary summary;
    summary.phase = phase;
    for (const auto& [resource, runs] : resources) {
      summary.resources.push_back({resource, runs});
      summary.runs_with_bottleneck += runs;
    }
    std::sort(summary.resources.begin(), summary.resources.end(),
              [](const PhaseBottleneckSummary::ResourceShare& a,
                 const PhaseBottleneckSummary::ResourceShare& b) {
                if (a.runs != b.runs) return a.runs > b.runs;
                return a.resource < b.resource;
              });
    report.phase_bottlenecks.push_back(std::move(summary));
  }

  return report;
}

std::string render_text(const AggregateReport& report) {
  std::ostringstream os;
  os << "=== g10_ensemble aggregate report ===\n";
  os << "scenarios:       " << report.scenario_count << "\n";
  os << "coverage:        " << percent(report.coverage) << " (" << report.ok
     << " ok";
  if (report.coverage < 1.0) os << ", DEGRADED";
  os << ")\n";
  os << "outcomes:        ok=" << report.ok << " timeout=" << report.timeout
     << " run_failed=" << report.run_failed
     << " analysis_failed=" << report.analysis_failed
     << " skipped=" << report.skipped << " missing=" << report.missing
     << "\n";
  if (report.duplicate_entries > 0 || report.unknown_entries > 0 ||
      report.dropped_lines > 0) {
    os << "journal:         duplicates=" << report.duplicate_entries
       << " unknown=" << report.unknown_entries
       << " torn_lines=" << report.dropped_lines << "\n";
  }
  os << "sync-bug rediscovery: " << rate_line(report.sync_bug) << "\n";
  os << "\nmakespan (s): n=" << report.makespan_seconds.count
     << " mean=" << format_fixed(report.makespan_seconds.mean, 3)
     << " sd=" << format_fixed(report.makespan_seconds.stddev, 3)
     << " min=" << format_fixed(report.makespan_seconds.min, 3)
     << " p50=" << format_fixed(report.makespan_seconds.p50, 3)
     << " p95=" << format_fixed(report.makespan_seconds.p95, 3)
     << " max=" << format_fixed(report.makespan_seconds.max, 3) << "\n";

  os << "\nissues (rate over ok runs, impact over occurrences):\n";
  if (report.issues.empty()) os << "  (none detected)\n";
  for (const IssueSummary& issue : report.issues) {
    os << "  " << issue.label << ": " << rate_line(issue.rate)
       << "; impact p50=" << percent(issue.impact.p50)
       << " p95=" << percent(issue.impact.p95)
       << " max=" << percent(issue.impact.max) << "\n";
  }

  os << "\ndominant bottleneck per phase (ok runs):\n";
  if (report.phase_bottlenecks.empty()) os << "  (none recorded)\n";
  for (const PhaseBottleneckSummary& phase : report.phase_bottlenecks) {
    os << "  " << phase.phase << ":";
    for (const auto& share : phase.resources) {
      os << " " << share.resource << "=" << share.runs;
    }
    os << "\n";
  }
  return std::move(os).str();
}

std::string render_json(const AggregateReport& report) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("scenarios").value(report.scenario_count);
  w.key("coverage").value(report.coverage);
  w.key("outcomes").begin_object();
  w.key("ok").value(report.ok);
  w.key("timeout").value(report.timeout);
  w.key("run_failed").value(report.run_failed);
  w.key("analysis_failed").value(report.analysis_failed);
  w.key("skipped").value(report.skipped);
  w.key("missing").value(report.missing);
  w.end_object();
  w.key("journal").begin_object();
  w.key("matched").value(report.matched_entries);
  w.key("duplicates").value(report.duplicate_entries);
  w.key("unknown").value(report.unknown_entries);
  w.key("torn_lines").value(report.dropped_lines);
  w.end_object();
  w.key("sync_bug_rediscovery");
  write_rate(w, report.sync_bug);
  w.key("makespan_seconds");
  write_summary(w, report.makespan_seconds);
  w.key("issues").begin_array();
  for (const IssueSummary& issue : report.issues) {
    w.begin_object();
    w.key("label").value(issue.label);
    w.key("rate");
    write_rate(w, issue.rate);
    w.key("impact");
    write_summary(w, issue.impact);
    w.end_object();
  }
  w.end_array();
  w.key("phase_bottlenecks").begin_array();
  for (const PhaseBottleneckSummary& phase : report.phase_bottlenecks) {
    w.begin_object();
    w.key("phase").value(phase.phase);
    w.key("runs").value(phase.runs_with_bottleneck);
    w.key("resources").begin_array();
    for (const auto& share : phase.resources) {
      w.begin_object();
      w.key("resource").value(share.resource);
      w.key("runs").value(share.runs);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = std::move(os).str();
  out += '\n';
  return out;
}

}  // namespace g10::ensemble
