// The ensemble driver: expands a ScenarioMatrix, fans the pending runs
// across a work-stealing ThreadPool through the robust RunExecutor, journals
// every completed run, and aggregates the (re-read) journal into the
// distributional report.
//
// Resume semantics: the journal is the single source of truth. A fresh
// start requires an absent/empty journal (refusing to silently mix fleets);
// with `resume` set the existing entries are reused and only scenarios
// without an entry are executed. Because the aggregate is always computed
// from a fresh read of the journal file — never from in-memory state — a
// resumed ensemble renders a byte-identical report to an uninterrupted one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ensemble/aggregate.hpp"
#include "ensemble/executor.hpp"
#include "ensemble/journal.hpp"
#include "ensemble/scenario.hpp"

namespace g10::ensemble {

struct EnsembleOptions {
  std::string journal_path;
  /// Reuse existing journal entries and run only the missing scenarios.
  /// Without it, a non-empty journal is an error (refuses to mix fleets).
  bool resume = false;
  /// Pool concurrency (0 = auto via ThreadPool::resolve_threads).
  std::size_t threads = 0;
  /// Per-run deadline/retry policy for the RunExecutor.
  RetryPolicy retry;
  /// Execute at most this many pending runs this invocation (0 = all);
  /// the rest stay missing in the journal, resumable later. Gives tests
  /// and the CI kill-and-resume check a deterministic partial journal.
  std::size_t limit = 0;
  /// Deterministic sharding for multi-process fan-out: when shard_count is
  /// nonzero, only pending scenarios with hash() % shard_count ==
  /// shard_index are executed here; the rest are someone else's and count
  /// as remaining. The split keys off the canonical scenario hash, so every
  /// worker derives the same partition independently.
  std::size_t shard_count = 0;
  std::size_t shard_index = 0;
  /// Scenario keys moved to the back of this invocation's queue (relative
  /// order otherwise preserved). The supervisor defers scenarios that
  /// crashed a worker so a replacement makes progress on the healthy rest
  /// of the shard before retrying the suspect.
  std::vector<std::uint64_t> defer_keys;
  /// Cooperative shutdown (SIGTERM handler, orphaned-worker detector).
  /// Once raised: unstarted scenarios are not attempted, in-flight runs are
  /// cancelled via their CancelToken, and anything that did not finish ok
  /// stays *missing* in the journal (resumable) instead of being journaled
  /// with a shutdown-tainted outcome.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked from the executing pool thread just before a scenario's first
  /// attempt (the worker announces `start` on its status channel here).
  std::function<void(const Scenario&)> on_start;
  /// Progress callback, invoked after each journaled run (may be called
  /// from pool threads; null disables).
  std::function<void(const JournalEntry&)> on_run;
};

struct EnsembleOutcome {
  std::size_t executed = 0;  ///< runs computed and journaled here
  std::size_t reused = 0;    ///< scenarios satisfied from the journal
  std::size_t remaining = 0; ///< pending runs left unexecuted (limit,
                             ///< foreign shards, or a raised stop flag)
  AggregateReport report;    ///< aggregate over the full scenario list
};

/// Runs (or resumes) the ensemble. Throws CheckError on an invalid matrix,
/// an unwritable journal, or a fresh start over a non-empty journal;
/// individual run failures never throw — they are journaled outcomes.
EnsembleOutcome run_ensemble(const ScenarioMatrix& matrix, const RunFn& fn,
                             const EnsembleOptions& options);

}  // namespace g10::ensemble
