// The ensemble driver: expands a ScenarioMatrix, fans the pending runs
// across a work-stealing ThreadPool through the robust RunExecutor, journals
// every completed run, and aggregates the (re-read) journal into the
// distributional report.
//
// Resume semantics: the journal is the single source of truth. A fresh
// start requires an absent/empty journal (refusing to silently mix fleets);
// with `resume` set the existing entries are reused and only scenarios
// without an entry are executed. Because the aggregate is always computed
// from a fresh read of the journal file — never from in-memory state — a
// resumed ensemble renders a byte-identical report to an uninterrupted one.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "ensemble/aggregate.hpp"
#include "ensemble/executor.hpp"
#include "ensemble/journal.hpp"
#include "ensemble/scenario.hpp"

namespace g10::ensemble {

struct EnsembleOptions {
  std::string journal_path;
  /// Reuse existing journal entries and run only the missing scenarios.
  /// Without it, a non-empty journal is an error (refuses to mix fleets).
  bool resume = false;
  /// Pool concurrency (0 = auto via ThreadPool::resolve_threads).
  std::size_t threads = 0;
  /// Per-run deadline/retry policy for the RunExecutor.
  RetryPolicy retry;
  /// Execute at most this many pending runs this invocation (0 = all);
  /// the rest stay missing in the journal, resumable later. Gives tests
  /// and the CI kill-and-resume check a deterministic partial journal.
  std::size_t limit = 0;
  /// Progress callback, invoked after each journaled run (may be called
  /// from pool threads; null disables).
  std::function<void(const JournalEntry&)> on_run;
};

struct EnsembleOutcome {
  std::size_t executed = 0;  ///< runs computed by this invocation
  std::size_t reused = 0;    ///< scenarios satisfied from the journal
  std::size_t remaining = 0; ///< pending runs left unexecuted (limit)
  AggregateReport report;    ///< aggregate over the full scenario list
};

/// Runs (or resumes) the ensemble. Throws CheckError on an invalid matrix,
/// an unwritable journal, or a fresh start over a non-empty journal;
/// individual run failures never throw — they are journaled outcomes.
EnsembleOutcome run_ensemble(const ScenarioMatrix& matrix, const RunFn& fn,
                             const EnsembleOptions& options);

}  // namespace g10::ensemble
