#include "ensemble/executor.hpp"

#include <algorithm>
#include <exception>

#include "common/check.hpp"

namespace g10::ensemble {

std::string_view outcome_name(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kTimeout:
      return "timeout";
    case RunOutcome::kRunFailed:
      return "run_failed";
    case RunOutcome::kAnalysisFailed:
      return "analysis_failed";
    case RunOutcome::kSkipped:
      return "skipped";
  }
  return "?";
}

std::optional<RunOutcome> parse_outcome(std::string_view name) {
  if (name == "ok") return RunOutcome::kOk;
  if (name == "timeout") return RunOutcome::kTimeout;
  if (name == "run_failed") return RunOutcome::kRunFailed;
  if (name == "analysis_failed") return RunOutcome::kAnalysisFailed;
  if (name == "skipped") return RunOutcome::kSkipped;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog() : thread_([this] { loop(); }) {}

Watchdog::~Watchdog() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Watchdog::Guard& Watchdog::Guard::operator=(Guard&& other) noexcept {
  if (this != &other) {
    disarm();
    watchdog_ = other.watchdog_;
    id_ = other.id_;
    other.watchdog_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Watchdog::Guard::disarm() {
  if (watchdog_ != nullptr) {
    watchdog_->remove(id_);
    watchdog_ = nullptr;
    id_ = 0;
  }
}

Watchdog::Guard Watchdog::arm(std::shared_ptr<CancelToken> token,
                              std::chrono::steady_clock::duration timeout) {
  G10_CHECK(token != nullptr);
  Guard guard;
  guard.watchdog_ = this;
  {
    MutexLock lock(mutex_);
    guard.id_ = next_id_++;
    entries_[guard.id_] =
        Entry{std::chrono::steady_clock::now() + timeout, std::move(token)};
  }
  cv_.notify_all();
  return guard;
}

void Watchdog::remove(std::uint64_t id) {
  MutexLock lock(mutex_);
  entries_.erase(id);
}

void Watchdog::loop() {
  MutexLock lock(mutex_);
  while (!stop_) {
    // Fire every expired deadline, then sleep until the next one (or until
    // arm()/shutdown pokes the condition variable). Tokens are cancelled
    // while the lock is held, so a disarmed entry is never fired: disarm
    // removes it under the same mutex.
    const auto now = std::chrono::steady_clock::now();
    std::optional<std::chrono::steady_clock::time_point> next;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.deadline <= now) {
        it->second.token->cancel();
        it = entries_.erase(it);
      } else {
        if (!next || it->second.deadline < *next) next = it->second.deadline;
        ++it;
      }
    }
    if (next) {
      cv_.wait_until(mutex_, *next);
    } else {
      cv_.wait(mutex_);
    }
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy / RunExecutor
// ---------------------------------------------------------------------------

bool RetryPolicy::retries(RunOutcome outcome) const {
  switch (outcome) {
    case RunOutcome::kTimeout:
      return retry_timeout;
    case RunOutcome::kRunFailed:
      return retry_run_failed;
    case RunOutcome::kAnalysisFailed:
      return retry_analysis_failed;
    case RunOutcome::kOk:
    case RunOutcome::kSkipped:
      return false;
  }
  return false;
}

double RetryPolicy::backoff_seconds(int next_attempt) const {
  double backoff = backoff_initial_seconds;
  for (int i = 2; i < next_attempt; ++i) {
    backoff *= backoff_factor;
    if (backoff >= backoff_max_seconds) break;
  }
  return std::min(backoff, backoff_max_seconds);
}

RunExecutor::RunExecutor(RunFn fn, RetryPolicy policy, Watchdog* watchdog)
    : fn_(std::move(fn)), policy_(policy), watchdog_(watchdog) {
  G10_CHECK_MSG(policy_.max_attempts >= 1, "need at least one attempt");
  G10_CHECK_MSG(policy_.deadline_seconds <= 0.0 || watchdog_ != nullptr,
                "a per-run deadline needs a watchdog");
}

RunResult RunExecutor::execute(const Scenario& scenario,
                               const std::atomic<bool>* stop) const {
  RunResult result;
  if (stop != nullptr && stop->load(std::memory_order_acquire)) {
    result.outcome = RunOutcome::kSkipped;
    result.error = "ensemble stopping";
    return result;
  }

  const auto started = std::chrono::steady_clock::now();
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    // A fresh token per attempt: a deadline that fired during attempt k
    // must not poison attempt k+1. The ensemble-wide stop flag is linked in
    // so a SIGTERM also cancels the in-flight attempt at its next poll.
    auto token = std::make_shared<CancelToken>();
    if (stop != nullptr) token->link(stop);
    Watchdog::Guard guard;
    if (policy_.deadline_seconds > 0.0) {
      guard = watchdog_->arm(
          token, std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(policy_.deadline_seconds)));
    }
    RunAttempt attempt_result;
    try {
      attempt_result = fn_(scenario, *token);
    } catch (const std::exception& e) {
      attempt_result.outcome = RunOutcome::kRunFailed;
      attempt_result.error = e.what();
    } catch (...) {
      attempt_result.outcome = RunOutcome::kRunFailed;
      attempt_result.error = "unknown exception";
    }
    // The deadline verdict outranks whatever the run reported: a cancelled
    // attempt's partial output is untrustworthy by definition. fired()
    // deliberately excludes a linked stop flag — a shutdown is not a
    // timeout, and the driver discards non-ok results once stop is raised.
    const bool timed_out = token->fired();
    guard.disarm();

    result.outcome =
        timed_out ? RunOutcome::kTimeout : attempt_result.outcome;
    result.attempts = attempt;
    result.error = timed_out ? "deadline exceeded" : attempt_result.error;
    result.report = result.outcome == RunOutcome::kOk ? attempt_result.report
                                                      : RunReport{};

    if (!policy_.retries(result.outcome) ||
        attempt >= policy_.max_attempts) {
      break;
    }
    if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        policy_.backoff_seconds(attempt + 1)));
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

}  // namespace g10::ensemble
