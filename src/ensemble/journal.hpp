// Crash-safe run journal for the ensemble driver.
//
// Every completed run is appended as one JSON line keyed by its scenario
// hash, written with a single write(2) and fsync'd before the executor
// moves on. After a kill -9, `g10_ensemble --resume` replays the journal:
// fully-written lines are reusable verbatim, a torn final line (the write
// the crash interrupted) fails to parse and is dropped, and only the
// missing scenarios are recomputed. Because the per-run payload is fully
// deterministic (see run_report.hpp) and doubles are serialized with
// shortest-round-trip rendering, the aggregate computed from a resumed
// journal is byte-identical to an uninterrupted execution's.
//
// Line schema (one object per line):
//   {"key":"<hex scenario hash>","scenario":"<canonical key text>",
//    "outcome":"ok","attempts":1,"wall_ms":12.5,"error":"",
//    "report":{"makespan_s":1.25,
//              "phase_bottlenecks":[{"phase":"...","resource":"...","s":0.1}],
//              "issues":[{"label":"imbalance:GatherThread","impact":0.18}],
//              "sync_bug":true}}
//
// wall_ms and attempts are diagnostics: they are journaled for forensics
// but never enter the aggregate (they differ across re-executions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "ensemble/executor.hpp"

namespace g10::ensemble {

struct JournalEntry {
  std::uint64_t key = 0;  ///< Scenario::hash()
  std::string scenario;   ///< Scenario::key() — self-describing journal
  RunOutcome outcome = RunOutcome::kSkipped;
  int attempts = 0;
  double wall_ms = 0.0;
  std::string error;
  RunReport report;
};

/// 16-digit lowercase-hex rendering of a scenario key — the journal's and
/// the worker status protocol's shared key encoding.
std::string format_key(std::uint64_t key);
std::optional<std::uint64_t> parse_key(std::string_view text);

/// Serializes one journal line (no trailing newline).
std::string journal_line(const JournalEntry& entry);

/// Parses one journal line; nullopt (with a diagnostic) on damage.
std::optional<JournalEntry> parse_journal_line(std::string_view line,
                                               std::string* error = nullptr);

/// Append-only journal writer. Thread-safe: entries arrive from every pool
/// worker as runs complete. Each append is one write(2) of the full line
/// followed by fsync(2), so a crash can tear at most the final line.
class JournalWriter {
 public:
  /// Opens (creating if needed) for append. Throws CheckError on failure.
  explicit JournalWriter(const std::string& path);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const JournalEntry& entry);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mutex mutex_;
  int fd_ G10_GUARDED_BY(mutex_) = -1;
};

struct JournalReplay {
  std::vector<JournalEntry> entries;  ///< parseable lines, in file order
  std::size_t dropped_lines = 0;      ///< torn/corrupt lines skipped
};

/// Reads a journal back; a missing file is an empty replay, damaged lines
/// are counted and skipped (the interrupted write at the tail, forensics
/// edits). Never throws for data-dependent reasons.
JournalReplay read_journal(const std::string& path);

}  // namespace g10::ensemble
