// The production RunFn: one Scenario → engine run → monitoring sampling →
// Grade10 characterization → RunReport digest, all in-process (no g10_run
// subprocess — the ensemble runs hundreds of these across the ThreadPool).
//
// The runner polls its CancelToken at stage boundaries (after graph
// construction, the engine run, sampling, and characterization), so a run
// whose deadline fires releases its pool slot at the next boundary instead
// of wedging the fleet. Graphs are cached per dataset spec and shared
// across runs; SSSP re-weights a copy per seed.
#pragma once

#include "common/time.hpp"
#include "ensemble/executor.hpp"

namespace g10::ensemble {

struct Grade10RunnerOptions {
  /// Monitoring-sample cadence fed to the analysis.
  DurationNs monitor_interval = 100 * kMillisecond;
  /// Analysis timeslice (paper §III-C).
  DurationNs timeslice = 20 * kMillisecond;
  /// Issues below this impact fraction are dropped from the report.
  double min_issue_impact = 0.02;
  /// GAS sync-bug reproduction probability when Scenario::sync_bug is set.
  double sync_bug_probability = 0.25;
  /// The injected sync bug counts as rediscovered when a Gather-phase
  /// imbalance issue clears this impact fraction.
  double rediscovery_min_impact = 0.02;
};

/// Builds the Grade10 run function. The returned callable is thread-safe
/// and stateless apart from the shared graph cache.
RunFn make_grade10_runner(const Grade10RunnerOptions& options = {});

}  // namespace g10::ensemble
