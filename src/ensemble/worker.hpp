// Worker side of the supervisor/worker protocol (DESIGN.md §15).
//
// A worker process talks to its supervisor over a single inherited pipe fd
// with a newline-delimited text protocol; every message is far below
// PIPE_BUF, so concurrent writes from the worker's main thread (start/done)
// and its heartbeat thread never interleave mid-line:
//
//   hb                       liveness heartbeat (every interval)
//   start <hex16-key>        about to attempt this scenario
//   done <hex16-key> <outcome>   scenario journaled with this outcome
//
// `start` is what makes crash containment attributable: when the process
// dies between a `start` and its `done`, the supervisor knows exactly which
// scenario was in flight and charges the crash to it.
//
// The pipe doubles as an orphan detector. If the supervisor dies, the read
// end closes and the next write fails with EPIPE; the channel latches
// peer_gone and the heartbeat thread raises the worker's stop flag, so an
// orphaned worker cancels in-flight work and exits (kExitInterrupted)
// instead of running on unsupervised. Workers must ignore SIGPIPE for the
// EPIPE path to be reachable.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "ensemble/executor.hpp"

namespace g10::ensemble {

struct StatusEvent {
  enum class Kind { kHeartbeat, kStart, kDone };
  Kind kind = Kind::kHeartbeat;
  std::uint64_t key = 0;                    ///< start/done
  RunOutcome outcome = RunOutcome::kSkipped; ///< done only
};

/// One protocol line, no trailing newline.
std::string format_status(const StatusEvent& event);
/// Parses one protocol line; nullopt on anything malformed (a supervisor
/// never trusts a crashing worker's last gasp).
std::optional<StatusEvent> parse_status_line(std::string_view line);

/// Worker-side writer for the status pipe. Thread-safe by construction:
/// each send is a single write(2) of one short line. Never throws on a
/// dead peer — it latches peer_gone instead.
class StatusChannel {
 public:
  /// fd < 0 disables the channel (a worker run by hand, not a supervisor).
  /// Takes ownership of the fd.
  explicit StatusChannel(int fd);
  ~StatusChannel();

  StatusChannel(const StatusChannel&) = delete;
  StatusChannel& operator=(const StatusChannel&) = delete;

  void send(const StatusEvent& event);
  void heartbeat() { send({StatusEvent::Kind::kHeartbeat, 0, {}}); }
  void start(std::uint64_t key) {
    send({StatusEvent::Kind::kStart, key, {}});
  }
  void done(std::uint64_t key, RunOutcome outcome) {
    send({StatusEvent::Kind::kDone, key, outcome});
  }

  bool enabled() const { return fd_ >= 0; }
  /// The supervisor's read end is gone (EPIPE/EBADF on a send).
  bool peer_gone() const {
    return peer_gone_.load(std::memory_order_acquire);
  }

 private:
  int fd_ = -1;
  std::atomic<bool> peer_gone_{false};
};

/// Background liveness beacon: sends `hb` on the channel every interval
/// until destroyed. When the channel reports the peer gone, raises
/// `stop_on_orphan` (once) so the worker winds down cooperatively.
class Heartbeat {
 public:
  Heartbeat(StatusChannel* channel, double interval_seconds,
            std::atomic<bool>* stop_on_orphan);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  void loop(double interval_seconds);

  StatusChannel* channel_;
  std::atomic<bool>* stop_on_orphan_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace g10::ensemble
