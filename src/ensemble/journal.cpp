#include "ensemble/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace g10::ensemble {

std::string format_key(std::uint64_t key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[key & 0xF];
    key >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_key(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t key = 0;
  for (const char c : text) {
    key <<= 4;
    if (c >= '0' && c <= '9') {
      key |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return key;
}

std::string journal_line(const JournalEntry& entry) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("key").value(format_key(entry.key));
  w.key("scenario").value(entry.scenario);
  w.key("outcome").value(outcome_name(entry.outcome));
  w.key("attempts").value(entry.attempts);
  w.key("wall_ms").value(entry.wall_ms);
  if (!entry.error.empty()) w.key("error").value(entry.error);
  w.key("report").begin_object();
  w.key("makespan_s").value(entry.report.makespan_seconds);
  w.key("phase_bottlenecks").begin_array();
  for (const auto& pb : entry.report.phase_bottlenecks) {
    w.begin_object();
    w.key("phase").value(pb.phase);
    w.key("resource").value(pb.resource);
    w.key("s").value(pb.seconds);
    w.end_object();
  }
  w.end_array();
  w.key("issues").begin_array();
  for (const auto& issue : entry.report.issues) {
    w.begin_object();
    w.key("label").value(issue.label);
    w.key("impact").value(issue.impact);
    w.end_object();
  }
  w.end_array();
  w.key("sync_bug").value(entry.report.sync_bug_rediscovered);
  w.end_object();  // report
  w.end_object();
  return std::move(os).str();
}

std::optional<JournalEntry> parse_journal_line(std::string_view line,
                                               std::string* error) {
  const auto fail = [error](std::string_view message) {
    if (error != nullptr) *error = std::string(message);
    return std::nullopt;
  };

  const auto json = JsonValue::parse(line, error);
  if (!json || !json->is_object()) return std::nullopt;

  JournalEntry entry;
  const auto key = parse_key(json->get_string("key"));
  if (!key) return fail("bad or missing scenario key");
  entry.key = *key;
  entry.scenario = json->get_string("scenario");
  if (entry.scenario.empty()) return fail("missing scenario text");
  const auto outcome = parse_outcome(json->get_string("outcome"));
  if (!outcome) return fail("bad or missing outcome");
  entry.outcome = *outcome;
  entry.attempts = static_cast<int>(json->get_int("attempts"));
  entry.wall_ms = json->get_double("wall_ms");
  entry.error = json->get_string("error");

  const JsonValue* report = json->find("report");
  if (report == nullptr || !report->is_object()) {
    return fail("missing report object");
  }
  entry.report.makespan_seconds = report->get_double("makespan_s");
  entry.report.sync_bug_rediscovered = report->get_bool("sync_bug");
  if (const JsonValue* pbs = report->find("phase_bottlenecks");
      pbs != nullptr && pbs->is_array()) {
    for (const JsonValue& pb : pbs->items()) {
      if (!pb.is_object()) return fail("bad phase_bottleneck element");
      RunReport::PhaseBottleneck out;
      out.phase = pb.get_string("phase");
      out.resource = pb.get_string("resource");
      out.seconds = pb.get_double("s");
      entry.report.phase_bottlenecks.push_back(std::move(out));
    }
  }
  if (const JsonValue* issues = report->find("issues");
      issues != nullptr && issues->is_array()) {
    for (const JsonValue& issue : issues->items()) {
      if (!issue.is_object()) return fail("bad issue element");
      RunReport::Issue out;
      out.label = issue.get_string("label");
      out.impact = issue.get_double("impact");
      entry.report.issues.push_back(std::move(out));
    }
  }
  return entry;
}

JournalWriter::JournalWriter(const std::string& path) : path_(path) {
  MutexLock lock(mutex_);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  G10_CHECK_MSG(fd_ >= 0, "cannot open journal '" + path +
                              "': " + std::strerror(errno));
  // Heal a torn tail: a kill -9 mid-append can leave the file without a
  // final newline. Terminate that fragment now so the next append starts a
  // fresh line instead of fusing with (and destroying) the fragment — the
  // fragment itself stays in place and is dropped as unparseable on read.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    char last = '\n';
    if (::pread(fd_, &last, 1, size - 1) == 1 && last != '\n') {
      G10_CHECK_MSG(::write(fd_, "\n", 1) == 1,
                    "cannot terminate torn journal line in '" + path + "'");
    }
  }
}

JournalWriter::~JournalWriter() {
  MutexLock lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalEntry& entry) {
  std::string line = journal_line(entry);
  line += '\n';
  MutexLock lock(mutex_);
  G10_CHECK_MSG(fd_ >= 0, "journal is closed");
  // Exactly one write(2) for the whole line, never a resumed remainder:
  // under O_APPEND each write lands atomically at the current end of file,
  // so concurrent writer *processes* interleave at line granularity. If a
  // first write were short (disk full, RLIMIT_FSIZE) and we issued the rest
  // as a second write, another writer's complete line could land in between
  // and both records would be destroyed — cross-writer corruption the
  // resume path could not heal. A short write therefore aborts this writer:
  // the fragment is a torn line, terminated by the next reopen and dropped
  // by the reader, exactly like a kill -9 mid-append.
  ssize_t n;
  do {
    n = ::write(fd_, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  G10_CHECK_MSG(n >= 0, "journal write failed: " +
                            std::string(std::strerror(errno)));
  G10_CHECK_MSG(static_cast<std::size_t>(n) == line.size(),
                "short journal append (" + std::to_string(n) + " of " +
                    std::to_string(line.size()) +
                    " bytes); the fragment will be healed as a torn line");
  G10_CHECK_MSG(::fsync(fd_) == 0,
                "journal fsync failed: " + std::string(std::strerror(errno)));
}

JournalReplay read_journal(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) return replay;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = parse_journal_line(line);
    if (entry) {
      replay.entries.push_back(std::move(*entry));
    } else {
      ++replay.dropped_lines;
    }
  }
  return replay;
}

}  // namespace g10::ensemble
