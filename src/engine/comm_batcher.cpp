#include "engine/comm_batcher.hpp"

#include "common/check.hpp"

namespace g10::engine {

CommBatcher::CommBatcher(const CommBatcherConfig& config, int workers)
    : config_(config), workers_(workers) {
  G10_CHECK(workers >= 0);
  G10_CHECK(config.max_batch_bytes >= 0.0);
  const auto n = static_cast<std::size_t>(workers);
  buffers_.assign(n * n, 0.0);
  pending_.assign(n, 0.0);
}

CommBatcher::Deposit CommBatcher::deposit(int src, int dst, double bytes) {
  G10_CHECK(bytes >= 0.0);
  Deposit result;
  if (bytes == 0.0) return result;
  result.first_pending = pending_[static_cast<std::size_t>(src)] == 0.0;
  double& buf = buffer(src, dst);
  buf += bytes;
  pending_[static_cast<std::size_t>(src)] += bytes;
  ++stats_.deposits;
  stats_.bytes_deposited += bytes;
  result.crossed = buf >= config_.max_batch_bytes;
  return result;
}

double CommBatcher::take(int src, int dst, FlushCause cause) {
  double& buf = buffer(src, dst);
  const double bytes = buf;
  if (bytes == 0.0) return 0.0;
  buf = 0.0;
  // Recompute the per-src total rather than subtracting: mixed-order
  // add/subtract could otherwise leave pending() at a stray epsilon when
  // every buffer is empty, and pending() == 0 gates the flush timers.
  double total = 0.0;
  for (int d = 0; d < workers_; ++d) total += buffer(src, d);
  pending_[static_cast<std::size_t>(src)] = total;
  count_flush(cause, bytes);
  return bytes;
}

void CommBatcher::take_all(int src, FlushCause cause,
                           std::vector<Flush>& out) {
  out.clear();
  for (int dst = 0; dst < workers_; ++dst) {
    double& buf = buffer(src, dst);
    if (buf == 0.0) continue;
    out.push_back(Flush{dst, buf});
    count_flush(cause, buf);
    buf = 0.0;
  }
  pending_[static_cast<std::size_t>(src)] = 0.0;
}

void CommBatcher::clear(int src) {
  for (int dst = 0; dst < workers_; ++dst) {
    double& buf = buffer(src, dst);
    if (buf != 0.0) ++stats_.dropped_buffers;
    buf = 0.0;
  }
  pending_[static_cast<std::size_t>(src)] = 0.0;
}

void CommBatcher::count_flush(FlushCause cause, double bytes) {
  switch (cause) {
    case FlushCause::kSize:
      ++stats_.size_flushes;
      break;
    case FlushCause::kTimer:
      ++stats_.timer_flushes;
      break;
    case FlushCause::kBarrier:
      ++stats_.barrier_flushes;
      break;
  }
  stats_.bytes_flushed += bytes;
}

}  // namespace g10::engine
