// GAS (gather/apply/scatter) engine — the PowerGraph stand-in (DESIGN.md §1).
//
// Synchronous GAS execution over a vertex-cut partitioning: every iteration
// runs four globally-barriered steps — Gather (per-partition partial gathers
// over local edges), Apply (masters compute new values), Scatter (signal
// neighbors over local edges), and Exchange (mirror/master value and
// accumulator traffic over the network). Being a C++ system, there is no
// garbage collector and no bounded-queue stall; its characteristic
// performance issues are *imbalance* (vertex-cut skew) and the §IV-D barrier
// synchronization bug, which this engine reproduces by injection: with a
// configurable probability, one thread per gather step keeps processing a
// late stream of messages while its sibling threads idle at the barrier.
//
// Phase hierarchy emitted:
//   Job.0
//   ├── LoadGraph.0              └── LoadWorker.w
//   ├── Execute.0
//   │   ├── (Iteration.i)
//   │   │   ├── GatherStep.0     └── WorkerGather.w  └── (GatherThread.t)
//   │   │   ├── ApplyStep.0      └── WorkerApply.w   └── (ApplyThread.t)
//   │   │   ├── ScatterStep.0    └── WorkerScatter.w └── (ScatterThread.t)
//   │   │   └── ExchangeStep.0   └── WorkerExchange.w
//   │   ├── (Checkpoint.k)       └── CheckpointWorker.w  (under faults)
//   │   └── (Recovery.r)         └── RecoveryWorker.w    (after a crash)
//   └── StoreResults.0           └── StoreWorker.w
//
// Consumable resources recorded: "cpu", "network" (per machine). Blocking
// resources appear only under fault injection: "Retry" (reliable-channel
// retransmit backoff during Exchange) and "Recovery" (checkpoint-restart
// downtime after a crash).
//
// Fault injection (ClusterSpec::faults): exchange traffic travels through a
// sim::ReliableChannel, so NIC loss windows and `part:` partitions cost
// retransmit time, never correctness. Crashes are detected by heartbeat
// timeout (sim::FailureDetector) and recovered by restoring the last
// snapshot and re-ingesting the victim's edge partition; checkpointing is
// armed only when the spec contains a crash, so fault-free runs stay
// byte-identical. Iteration path indices keep counting across
// re-executions, exactly like the Pregel engine's Superstep indices.
#pragma once

#include <cstdint>

#include "algorithms/gas_program.hpp"
#include "engine/comm_batcher.hpp"
#include "engine/fault_tolerance.hpp"
#include "engine/phase_logger.hpp"
#include "graph/graph.hpp"
#include "sim/cluster.hpp"
#include "sim/failure_detector.hpp"
#include "trace/records.hpp"

namespace g10::engine {

/// Work-unit costs for the C++ engine; an order of magnitude below the
/// Pregel/JVM engine per edge, per the paper's observation that PowerGraph's
/// compute is lean but never saturates all cores either.
struct GasCostModel {
  double work_per_gather_edge = 26.0;
  double work_per_apply = 70.0;
  double work_per_scatter_edge = 14.0;
  double work_per_exchange_value = 6.0;  ///< serialization CPU per value
  double bytes_per_value = 16.0;         ///< wire bytes per exchanged value
  double work_per_load_edge = 24.0;
  double work_per_store_vertex = 60.0;
  double bytes_per_load_edge = 12.0;
  double step_barrier_seconds = 0.0008;  ///< per-step global barrier cost
  double work_jitter = 0.06;
  /// Per-chunk CPU intensity in [cpu_intensity_min, 1]; native C++ code
  /// runs much closer to a full core than the JVM engine.
  double cpu_intensity_min = 0.85;
};

/// Unmodeled background CPU (OS daemons); smaller than the JVM engine's.
struct GasNoiseConfig {
  bool enabled = true;
  DurationNs interval = 25 * kMillisecond;
  double max_cores = 0.4;
  double sigma = 0.1;
};

/// Reproduction of the §IV-D synchronization bug. When a gather step on a
/// worker triggers the bug, one thread receives a message stream right as
/// the others reach the barrier and keeps processing: its duration grows by
/// a factor drawn uniformly from [min_extra, max_extra] of its own gather
/// time, while sibling threads idle.
struct SyncBugConfig {
  bool enabled = false;
  double probability = 0.12;  ///< per (gather step, worker)
  double min_extra = 0.15;    ///< extra duration as a fraction of own time
  double max_extra = 1.5;
};

/// Vertex-cut strategy used to place edges on workers.
enum class VertexCutStrategy {
  kHashSource,   ///< cheap hashing; mildly skewed under power laws
  kRangeSource,  ///< input-file-split placement; strongly skewed (realistic)
  kGreedy,       ///< greedy heuristic; balanced (ablation baseline)
  kRandom,       ///< uniform random edge placement
};

struct GasConfig {
  sim::ClusterSpec cluster;
  int threads_per_worker = 0;  ///< 0 = one per core
  int chunk_edges = 2048;      ///< gather/scatter work per scheduling chunk
  GasCostModel costs;
  /// Per-destination exchange coalescing (on by default; max_batch_bytes = 0
  /// disables it). The exchange step is already one bulk barrier, so here
  /// batching only changes how the drained buffers reach the channel.
  CommBatcherConfig batch;
  GasNoiseConfig noise;
  SyncBugConfig sync_bug;
  VertexCutStrategy partitioning = VertexCutStrategy::kHashSource;
  CheckpointConfig checkpoint;
  RetryConfig retry;
  /// Heartbeat failure detection; its seed is folded with `seed` so two runs
  /// differing only in the engine seed also shift their detection latency.
  sim::FailureDetectorConfig heartbeat;
  CrashLogStyle crash_log = CrashLogStyle::kReconciled;
  std::uint64_t seed = 42;

  int effective_threads() const {
    return threads_per_worker > 0 ? threads_per_worker
                                  : cluster.machine.cores;
  }
};

namespace gas_names {
inline constexpr const char* kCpu = "cpu";
inline constexpr const char* kNetwork = "network";
inline constexpr const char* kRetry = "Retry";
inline constexpr const char* kRecovery = "Recovery";
}  // namespace gas_names

class GasEngine {
 public:
  explicit GasEngine(GasConfig config);

  trace::RunArtifacts run(const graph::Graph& graph,
                          const algorithms::GasProgram& program) const;

  /// Deterministic closed-form makespan estimate, used to resolve
  /// percent-based fault times (see PregelEngine::estimate_horizon).
  TimeNs estimate_horizon(const graph::Graph& graph,
                          const algorithms::GasProgram& program) const;

  const GasConfig& config() const { return config_; }

 private:
  GasConfig config_;
};

}  // namespace g10::engine
