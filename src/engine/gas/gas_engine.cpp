#include "engine/gas/gas_engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "graph/partition.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using algorithms::GasProgram;
using algorithms::GatherEdges;
using graph::EdgeIndex;
using graph::Graph;

// Matches the Pregel engine's salt: fault decisions draw from a forked RNG
// stream so they never perturb the engine's own sequence.
constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Deterministic closed-form makespan estimate; anchors percent-based fault
/// times. Capped at 64 iterations for convergence-bounded programs.
TimeNs gas_nominal_horizon(const GasConfig& cfg, const Graph& g,
                           const algorithms::GasProgram& prog) {
  const double n = static_cast<double>(g.vertex_count());
  const double m = static_cast<double>(g.edge_count());
  const double cluster_rate = static_cast<double>(cfg.cluster.machine_count) *
                              static_cast<double>(cfg.cluster.machine.cores) *
                              cfg.cluster.machine.core_work_per_sec;
  const int steps = std::min(prog.max_iterations(), 64);
  const double step_work =
      n * cfg.costs.work_per_apply +
      m * (cfg.costs.work_per_gather_edge + cfg.costs.work_per_scatter_edge);
  const double total_work = m * cfg.costs.work_per_load_edge +
                            n * cfg.costs.work_per_store_vertex +
                            static_cast<double>(steps) * step_work;
  const double seconds =
      total_work / cluster_rate +
      static_cast<double>(steps) * 4.0 * cfg.costs.step_barrier_seconds;
  return std::max<TimeNs>(
      kMillisecond,
      static_cast<TimeNs>(seconds * static_cast<double>(kSecond)));
}
using graph::VertexId;
using trace::PhasePath;

class GasRun {
 public:
  GasRun(const GasConfig& cfg, const Graph& g, const GasProgram& prog)
      : cfg_(cfg),
        g_(g),
        prog_(prog),
        rng_(cfg.seed),
        faults_(cfg.cluster.faults, cfg.seed ^ kFaultSeedSalt),
        workers_(cfg.cluster.machine_count),
        threads_(cfg.effective_threads()) {
    cfg_.cluster.validate();
    G10_CHECK(g_.vertex_count() > 0);
    G10_CHECK_MSG(threads_ <= cfg_.cluster.machine.cores,
                  "threads per worker must not exceed cores");
    // The GAS engine has no checkpoint/restart or retry machinery (yet):
    // only slowdown and sampler-dropout faults are meaningful here.
    G10_CHECK_MSG(!faults_.has_kind(sim::FaultKind::kCrash) &&
                      !faults_.has_kind(sim::FaultKind::kNicDegrade),
                  "gas engine supports only slow/drop fault kinds");
  }

  trace::RunArtifacts execute();

 private:
  struct WorkerState {
    std::unique_ptr<sim::FluidQueue> nic;
    std::unique_ptr<sim::UsageRecorder> cpu;
    StepFunction noise;  ///< unmodeled background CPU
    double noise_level = 0.0;
    std::vector<VertexId> masters;
  };

  /// One barriered compute step (gather/apply/scatter) in flight.
  struct StepRuntime {
    PhasePath step_path;
    std::string worker_type;
    std::string thread_type;
    std::vector<std::vector<DurationNs>> chunks;  ///< per-worker queues
    std::vector<std::size_t> next_chunk;
    std::vector<int> threads_left;
    std::vector<TimeNs> worker_begin;
    std::vector<double> bug_extra;  ///< 0 = this worker has no injected bug
    std::vector<TimeNs> worker_end;
    int workers_left = 0;
    std::function<void(TimeNs)> on_done;
  };

  double speed() const { return cfg_.cluster.machine.core_work_per_sec; }
  DurationNs ns_for_work(double work) const {
    return static_cast<DurationNs>(work / speed() *
                                   static_cast<double>(kSecond));
  }
  static DurationNs ns_from_seconds(double s) {
    return static_cast<DurationNs>(s * static_cast<double>(kSecond));
  }
  double jitter(double magnitude) {
    return 1.0 + magnitude * (2.0 * rng_.next_double() - 1.0);
  }

  /// Splits `total_work` units into chunk durations of roughly
  /// chunk_edges-equivalent work, with multiplicative jitter per chunk.
  std::vector<DurationNs> make_chunks(double total_work, double chunk_work);

  void noise_tick(int w);
  void load_graph();
  void start_iteration(TimeNs t);
  void compute_iteration_effects();  ///< correctness: apply + activation
  void run_compute_step(TimeNs t, const char* step_type,
                        const char* worker_type, const char* thread_type,
                        std::vector<double> per_worker_work, bool allow_bug,
                        std::function<void(TimeNs)> on_done);
  void step_thread_continue(int w, int th);
  void step_worker_finished(int w, TimeNs t);
  void run_exchange(TimeNs t, std::function<void(TimeNs)> on_done);
  void finish_iteration(TimeNs t);
  void finish_execute(TimeNs t);

  PhasePath iteration_path() const {
    return PhasePath{}
        .child("Job", 0)
        .child("Execute", 0)
        .child("Iteration", iteration_);
  }

  GasConfig cfg_;
  const Graph& g_;
  const GasProgram& prog_;
  Rng rng_;
  sim::FaultInjector faults_;
  int workers_;
  int threads_;

  sim::Simulation sim_;
  PhaseLogger log_;
  graph::VertexCutPartition cut_;
  std::vector<WorkerState> ws_;

  std::vector<double> value_;
  std::vector<double> new_value_;
  std::vector<char> active_;
  std::vector<char> next_active_;
  std::vector<char> changed_;

  // Per-iteration work aggregates (recomputed each iteration).
  std::vector<double> gather_work_;
  std::vector<double> apply_work_;
  std::vector<double> scatter_work_;
  std::vector<double> exchange_bytes_;
  std::vector<double> exchange_values_;

  StepRuntime step_;
  int iteration_ = 0;
  bool execute_finished_ = false;
  TimeNs makespan_ = 0;
};

std::vector<DurationNs> GasRun::make_chunks(double total_work,
                                            double chunk_work) {
  std::vector<DurationNs> chunks;
  double remaining = total_work;
  while (remaining > 0.0) {
    const double piece = std::min(remaining, chunk_work);
    remaining -= piece;
    chunks.push_back(std::max<DurationNs>(
        1, ns_for_work(piece * jitter(cfg_.costs.work_jitter))));
  }
  return chunks;
}

void GasRun::noise_tick(int w) {
  if (execute_finished_) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  state.noise_level = std::clamp(
      state.noise_level + rng_.next_normal(0.0, cfg_.noise.sigma), 0.0,
      cfg_.noise.max_cores);
  state.noise.set(sim_.now(), state.noise_level);
  sim_.schedule_after(cfg_.noise.interval, [this, w] { noise_tick(w); });
}

void GasRun::load_graph() {
  switch (cfg_.partitioning) {
    case VertexCutStrategy::kHashSource:
      cut_ = graph::partition_vertex_cut_hash_source(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kRangeSource:
      cut_ = graph::partition_vertex_cut_range_source(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kGreedy:
      cut_ = graph::partition_vertex_cut_greedy(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kRandom:
      cut_ = graph::partition_vertex_cut_random(
          g_, static_cast<std::uint32_t>(workers_), cfg_.seed ^ 0x9E37);
      break;
  }

  const VertexId n = g_.vertex_count();
  ws_.resize(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
    state.cpu = std::make_unique<sim::UsageRecorder>(
        gas_names::kCpu, static_cast<double>(cfg_.cluster.machine.cores));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!cut_.replicas[v].empty()) {
      ws_[cut_.master[v]].masters.push_back(v);
    } else {
      // Isolated vertices are mastered on a hash-chosen worker.
      ws_[v % static_cast<VertexId>(workers_)].masters.push_back(v);
      cut_.master[v] = v % static_cast<VertexId>(workers_);
    }
  }

  value_.resize(n);
  for (VertexId v = 0; v < n; ++v) value_[v] = prog_.initial_value(v, g_);
  new_value_ = value_;
  active_.assign(n, 0);
  next_active_.assign(n, 0);
  changed_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    active_[v] = prog_.initially_active(v, g_) ? 1 : 0;
  }

  const PhasePath job = PhasePath{}.child("Job", 0);
  const PhasePath load = job.child("LoadGraph", 0);
  log_.begin(job, 0, trace::kGlobalMachine);
  log_.begin(load, 0, trace::kGlobalMachine);
  const auto per_worker_edges = cut_.edge_counts();
  TimeNs load_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto edges =
        static_cast<double>(per_worker_edges[static_cast<std::size_t>(w)]);
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        edges * cfg_.costs.work_per_load_edge / cores * jitter(0.05) /
        faults_.speed_factor(w, 0));
    state.nic->enqueue(0, edges * cfg_.costs.bytes_per_load_edge);
    state.cpu->add(0, cores);
    state.cpu->add(duration, -cores);
    const PhasePath worker_load = load.child("LoadWorker", w);
    log_.begin(worker_load, 0, w);
    const TimeNs done = std::max(duration, state.nic->time_empty(duration));
    log_.end(worker_load, done, w);
    load_end = std::max(load_end, done);
  }
  log_.end(load, load_end, trace::kGlobalMachine);
  log_.begin(job.child("Execute", 0), load_end, trace::kGlobalMachine);
  if (cfg_.noise.enabled) {
    for (int w = 0; w < workers_; ++w) {
      sim_.schedule_at(0, [this, w] { noise_tick(w); });
    }
  }
  sim_.schedule_at(load_end, [this] { start_iteration(sim_.now()); });
}

void GasRun::compute_iteration_effects() {
  const VertexId n = g_.vertex_count();
  std::fill(changed_.begin(), changed_.end(), 0);
  std::fill(next_active_.begin(), next_active_.end(), 0);
  std::vector<VertexId> nbr_ids;
  std::vector<double> nbr_values;
  std::vector<double> nbr_weights;
  for (VertexId v = 0; v < n; ++v) {
    if (!active_[v]) {
      new_value_[v] = value_[v];
      continue;
    }
    nbr_ids.clear();
    nbr_values.clear();
    nbr_weights.clear();
    const auto push_in = [&] {
      const auto nbrs = g_.in_neighbors(v);
      for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
        nbr_ids.push_back(nbrs[i]);
        nbr_values.push_back(value_[nbrs[i]]);
        nbr_weights.push_back(g_.in_weight(v, i));
      }
    };
    const auto push_out = [&] {
      const auto nbrs = g_.out_neighbors(v);
      for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
        nbr_ids.push_back(nbrs[i]);
        nbr_values.push_back(value_[nbrs[i]]);
        nbr_weights.push_back(g_.edge_weight(g_.edge_id(v, i)));
      }
    };
    switch (prog_.gather_edges()) {
      case GatherEdges::kIn:
        push_in();
        break;
      case GatherEdges::kOut:
        push_out();
        break;
      case GatherEdges::kBoth:
        push_in();
        push_out();
        break;
    }
    new_value_[v] = prog_.apply(v, value_[v], nbr_ids, nbr_values,
                                nbr_weights, iteration_, g_);
    if (prog_.scatter_activates(v, value_[v], new_value_[v], iteration_)) {
      changed_[v] = 1;
      for (VertexId u : g_.out_neighbors(v)) next_active_[u] = 1;
    }
  }

  // Per-worker work aggregates for the timed steps.
  gather_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  apply_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  scatter_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  exchange_bytes_.assign(static_cast<std::size_t>(workers_), 0.0);
  exchange_values_.assign(static_cast<std::size_t>(workers_), 0.0);

  const bool gather_in = prog_.gather_edges() != GatherEdges::kOut;
  const bool gather_out = prog_.gather_edges() != GatherEdges::kIn;
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g_.out_neighbors(u);
    for (EdgeIndex i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      const auto owner = cut_.edge_owner[g_.edge_id(u, i)];
      if (gather_in && active_[v]) {
        gather_work_[owner] += cfg_.costs.work_per_gather_edge;
      }
      if (gather_out && active_[u]) {
        gather_work_[owner] += cfg_.costs.work_per_gather_edge;
      }
      if (changed_[u]) {
        scatter_work_[owner] += cfg_.costs.work_per_scatter_edge;
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (active_[v]) {
      apply_work_[cut_.master[v]] += cfg_.costs.work_per_apply;
      // Mirrors push partial gather accumulators to the master.
      for (const auto r : cut_.replicas[v]) {
        if (r != cut_.master[v]) {
          exchange_bytes_[r] += cfg_.costs.bytes_per_value;
          exchange_values_[r] += 1.0;
        }
      }
    }
    if (changed_[v] && !cut_.replicas[v].empty()) {
      // Master broadcasts the new value to every mirror.
      const double mirrors =
          static_cast<double>(cut_.replicas[v].size()) - 1.0;
      exchange_bytes_[cut_.master[v]] += mirrors * cfg_.costs.bytes_per_value;
      exchange_values_[cut_.master[v]] += mirrors;
    }
  }
}

void GasRun::start_iteration(TimeNs t) {
  bool any_active = false;
  for (char a : active_) {
    if (a) {
      any_active = true;
      break;
    }
  }
  if (!any_active || iteration_ >= prog_.max_iterations()) {
    finish_execute(t);
    return;
  }
  compute_iteration_effects();
  log_.begin(iteration_path(), t, trace::kGlobalMachine);
  run_compute_step(
      t, "GatherStep", "WorkerGather", "GatherThread", gather_work_,
      cfg_.sync_bug.enabled, [this](TimeNs t1) {
        run_compute_step(
            t1, "ApplyStep", "WorkerApply", "ApplyThread", apply_work_, false,
            [this](TimeNs t2) {
              run_compute_step(t2, "ScatterStep", "WorkerScatter",
                               "ScatterThread", scatter_work_, false,
                               [this](TimeNs t3) {
                                 run_exchange(t3, [this](TimeNs t4) {
                                   finish_iteration(t4);
                                 });
                               });
            });
      });
}

void GasRun::run_compute_step(TimeNs t, const char* step_type,
                              const char* worker_type, const char* thread_type,
                              std::vector<double> per_worker_work,
                              bool allow_bug,
                              std::function<void(TimeNs)> on_done) {
  step_ = StepRuntime{};
  step_.step_path = iteration_path().child(step_type, 0);
  step_.worker_type = worker_type;
  step_.thread_type = thread_type;
  step_.on_done = std::move(on_done);
  step_.workers_left = workers_;
  step_.chunks.resize(static_cast<std::size_t>(workers_));
  step_.next_chunk.assign(static_cast<std::size_t>(workers_), 0);
  step_.threads_left.assign(static_cast<std::size_t>(workers_), threads_);
  step_.worker_begin.assign(static_cast<std::size_t>(workers_), t);
  step_.worker_end.assign(static_cast<std::size_t>(workers_), t);
  step_.bug_extra.assign(static_cast<std::size_t>(workers_), 0.0);

  log_.begin(step_.step_path, t, trace::kGlobalMachine);
  const double chunk_work = static_cast<double>(cfg_.chunk_edges) *
                            cfg_.costs.work_per_gather_edge;
  for (int w = 0; w < workers_; ++w) {
    step_.chunks[static_cast<std::size_t>(w)] =
        make_chunks(per_worker_work[static_cast<std::size_t>(w)], chunk_work);
    if (allow_bug && rng_.next_bool(cfg_.sync_bug.probability)) {
      step_.bug_extra[static_cast<std::size_t>(w)] = rng_.next_double(
          cfg_.sync_bug.min_extra, cfg_.sync_bug.max_extra);
    }
    log_.begin(step_.step_path.child(step_.worker_type, w), t, w);
    for (int th = 0; th < threads_; ++th) {
      log_.begin(
          step_.step_path.child(step_.worker_type, w).child(thread_type, th),
          t, w);
      sim_.schedule_at(t, [this, w, th] { step_thread_continue(w, th); });
    }
  }
}

void GasRun::step_thread_continue(int w, int th) {
  const TimeNs now = sim_.now();
  auto& chunks = step_.chunks[static_cast<std::size_t>(w)];
  auto& cursor = step_.next_chunk[static_cast<std::size_t>(w)];
  auto& state = ws_[static_cast<std::size_t>(w)];
  if (cursor < chunks.size()) {
    const double intensity =
        rng_.next_double(cfg_.costs.cpu_intensity_min, 1.0);
    // An active slowdown window stretches the chunk (sampled at dispatch).
    const DurationNs duration = std::max<DurationNs>(
        1, static_cast<DurationNs>(static_cast<double>(chunks[cursor++]) /
                                   intensity /
                                   faults_.speed_factor(w, now)));
    state.cpu->add(now, intensity);
    sim_.schedule_after(duration, [this, w, th, intensity] {
      ws_[static_cast<std::size_t>(w)].cpu->add(sim_.now(), -intensity);
      step_thread_continue(w, th);
    });
    return;
  }
  // No work left for this thread.
  auto& left = step_.threads_left[static_cast<std::size_t>(w)];
  const PhasePath thread_path =
      step_.step_path.child(step_.worker_type, w).child(step_.thread_type, th);
  const double bug = step_.bug_extra[static_cast<std::size_t>(w)];
  if (left == 1 && bug > 0.0) {
    // §IV-D bug: the last thread to reach the barrier finds a late message
    // stream and keeps processing while its siblings idle.
    step_.bug_extra[static_cast<std::size_t>(w)] = 0.0;
    const auto extra = static_cast<DurationNs>(
        bug * static_cast<double>(
                  now - step_.worker_begin[static_cast<std::size_t>(w)]));
    if (extra > 0) {
      state.cpu->add(now, 1.0);
      sim_.schedule_after(extra, [this, w, th] {
        ws_[static_cast<std::size_t>(w)].cpu->add(sim_.now(), -1.0);
        step_thread_continue(w, th);
      });
      return;
    }
  }
  log_.end(thread_path, now, w);
  if (--left == 0) step_worker_finished(w, now);
}

void GasRun::step_worker_finished(int w, TimeNs t) {
  log_.end(step_.step_path.child(step_.worker_type, w), t, w);
  step_.worker_end[static_cast<std::size_t>(w)] = t;
  if (--step_.workers_left == 0) {
    TimeNs barrier = 0;
    for (const TimeNs end : step_.worker_end) barrier = std::max(barrier, end);
    barrier += ns_from_seconds(cfg_.costs.step_barrier_seconds);
    log_.end(step_.step_path, barrier, trace::kGlobalMachine);
    sim_.schedule_at(barrier, [this, cb = std::move(step_.on_done)]() mutable {
      cb(sim_.now());
    });
  }
}

void GasRun::run_exchange(TimeNs t, std::function<void(TimeNs)> on_done) {
  const PhasePath step = iteration_path().child("ExchangeStep", 0);
  log_.begin(step, t, trace::kGlobalMachine);
  TimeNs latest = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto bytes = exchange_bytes_[static_cast<std::size_t>(w)];
    const auto values = exchange_values_[static_cast<std::size_t>(w)];
    const DurationNs serialize = ns_for_work(
        values * cfg_.costs.work_per_exchange_value * jitter(0.05));
    state.cpu->add(t, 1.0);
    state.cpu->add(t + serialize, -1.0);
    state.nic->enqueue(t, bytes);
    const TimeNs end =
        std::max(t + serialize, state.nic->time_empty(t + serialize));
    const PhasePath worker = step.child("WorkerExchange", w);
    log_.begin(worker, t, w);
    log_.end(worker, end, w);
    latest = std::max(latest, end);
  }
  latest += ns_from_seconds(cfg_.costs.step_barrier_seconds);
  log_.end(step, latest, trace::kGlobalMachine);
  sim_.schedule_at(latest,
                   [cb = std::move(on_done), this]() mutable { cb(sim_.now()); });
}

void GasRun::finish_iteration(TimeNs t) {
  log_.end(iteration_path(), t, trace::kGlobalMachine);
  value_ = new_value_;
  active_.swap(next_active_);
  ++iteration_;
  start_iteration(t);
}

void GasRun::finish_execute(TimeNs t) {
  const PhasePath job = PhasePath{}.child("Job", 0);
  log_.end(job.child("Execute", 0), t, trace::kGlobalMachine);
  const PhasePath store = job.child("StoreResults", 0);
  log_.begin(store, t, trace::kGlobalMachine);
  TimeNs store_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto vertices =
        static_cast<double>(state.masters.size());
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        vertices * cfg_.costs.work_per_store_vertex / cores * jitter(0.05) /
        faults_.speed_factor(w, t));
    state.cpu->add(t, cores);
    state.cpu->add(t + duration, -cores);
    const PhasePath worker_store = store.child("StoreWorker", w);
    log_.begin(worker_store, t, w);
    log_.end(worker_store, t + duration, w);
    store_end = std::max(store_end, t + duration);
  }
  log_.end(store, store_end, trace::kGlobalMachine);
  log_.end(job, store_end, trace::kGlobalMachine);
  makespan_ = store_end;
  execute_finished_ = true;
}

trace::RunArtifacts GasRun::execute() {
  if (!faults_.empty()) {
    faults_.resolve(gas_nominal_horizon(cfg_, g_, prog_));
  }
  load_graph();
  sim_.run();
  G10_CHECK_MSG(execute_finished_, "simulation ended before the job finished");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.vertex_values = value_;
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    trace::GroundTruthSeries cpu;
    cpu.resource = gas_names::kCpu;
    cpu.machine = w;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = StepFunction::clamped_sum(state.cpu->series(), state.noise,
                                           cpu.capacity);
    artifacts.ground_truth.push_back(std::move(cpu));

    trace::GroundTruthSeries net;
    net.resource = gas_names::kNetwork;
    net.machine = w;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = state.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

GasEngine::GasEngine(GasConfig config) : config_(std::move(config)) {
  config_.cluster.validate();
  G10_CHECK(config_.chunk_edges > 0);
}

trace::RunArtifacts GasEngine::run(const graph::Graph& graph,
                                   const algorithms::GasProgram& program) const {
  GasRun run(config_, graph, program);
  return run.execute();
}

TimeNs GasEngine::estimate_horizon(const graph::Graph& graph,
                                   const algorithms::GasProgram& program) const {
  return gas_nominal_horizon(config_, graph, program);
}

}  // namespace g10::engine
