#include "engine/gas/gas_engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "graph/partition.hpp"
#include "sim/failure_detector.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/reliable_channel.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using algorithms::GasProgram;
using algorithms::GatherEdges;
using graph::EdgeIndex;
using graph::Graph;

// Matches the Pregel engine's salt: fault decisions draw from a forked RNG
// stream so they never perturb the engine's own sequence.
constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Deterministic closed-form makespan estimate; anchors percent-based fault
/// times. Capped at 64 iterations for convergence-bounded programs.
TimeNs gas_nominal_horizon(const GasConfig& cfg, const Graph& g,
                           const algorithms::GasProgram& prog) {
  const double n = static_cast<double>(g.vertex_count());
  const double m = static_cast<double>(g.edge_count());
  const double cluster_rate = static_cast<double>(cfg.cluster.machine_count) *
                              static_cast<double>(cfg.cluster.machine.cores) *
                              cfg.cluster.machine.core_work_per_sec;
  const int steps = std::min(prog.max_iterations(), 64);
  const double step_work =
      n * cfg.costs.work_per_apply +
      m * (cfg.costs.work_per_gather_edge + cfg.costs.work_per_scatter_edge);
  const double total_work = m * cfg.costs.work_per_load_edge +
                            n * cfg.costs.work_per_store_vertex +
                            static_cast<double>(steps) * step_work;
  const double seconds =
      total_work / cluster_rate +
      static_cast<double>(steps) * 4.0 * cfg.costs.step_barrier_seconds;
  return std::max<TimeNs>(
      kMillisecond,
      static_cast<TimeNs>(seconds * static_cast<double>(kSecond)));
}
using graph::VertexId;
using trace::PathRef;

/// Phase-type names interned once per process; the engine then builds paths
/// from symbols without touching the symbol table's mutex.
struct GasSymbols {
  trace::Symbol job, load_graph, load_worker, execute, iteration, gather_step,
      worker_gather, gather_thread, apply_step, worker_apply, apply_thread,
      scatter_step, worker_scatter, scatter_thread, exchange_step,
      worker_exchange, checkpoint, checkpoint_worker, recovery,
      recovery_worker, store_results, store_worker;
};

const GasSymbols& gas_symbols() {
  static const GasSymbols symbols = [] {
    auto& table = trace::SymbolTable::global();
    GasSymbols s;
    s.job = table.intern("Job");
    s.load_graph = table.intern("LoadGraph");
    s.load_worker = table.intern("LoadWorker");
    s.execute = table.intern("Execute");
    s.iteration = table.intern("Iteration");
    s.gather_step = table.intern("GatherStep");
    s.worker_gather = table.intern("WorkerGather");
    s.gather_thread = table.intern("GatherThread");
    s.apply_step = table.intern("ApplyStep");
    s.worker_apply = table.intern("WorkerApply");
    s.apply_thread = table.intern("ApplyThread");
    s.scatter_step = table.intern("ScatterStep");
    s.worker_scatter = table.intern("WorkerScatter");
    s.scatter_thread = table.intern("ScatterThread");
    s.exchange_step = table.intern("ExchangeStep");
    s.worker_exchange = table.intern("WorkerExchange");
    s.checkpoint = table.intern("Checkpoint");
    s.checkpoint_worker = table.intern("CheckpointWorker");
    s.recovery = table.intern("Recovery");
    s.recovery_worker = table.intern("RecoveryWorker");
    s.store_results = table.intern("StoreResults");
    s.store_worker = table.intern("StoreWorker");
    return s;
  }();
  return symbols;
}

class GasRun {
 public:
  GasRun(const GasConfig& cfg, const Graph& g, const GasProgram& prog)
      : cfg_(cfg),
        g_(g),
        prog_(prog),
        rng_(cfg.seed),
        faults_(cfg.cluster.faults, cfg.seed ^ kFaultSeedSalt),
        workers_(cfg.cluster.machine_count),
        threads_(cfg.effective_threads()) {
    cfg_.cluster.validate();
    G10_CHECK(g_.vertex_count() > 0);
    G10_CHECK_MSG(threads_ <= cfg_.cluster.machine.cores,
                  "threads per worker must not exceed cores");
    G10_CHECK_MSG(cfg_.checkpoint.interval_steps > 0,
                  "checkpoint interval must be positive");
  }

  trace::RunArtifacts execute();

 private:
  struct WorkerState {
    std::unique_ptr<sim::FluidQueue> nic;
    std::unique_ptr<sim::UsageRecorder> cpu;
    StepFunction noise;  ///< unmodeled background CPU
    double noise_level = 0.0;
    std::vector<VertexId> masters;
  };

  /// One barriered compute step (gather/apply/scatter) in flight.
  struct StepRuntime {
    PathRef step_path;
    std::vector<PathRef> worker_paths;  ///< cached step_path/WorkerX.w
    trace::Symbol worker_type = 0;
    trace::Symbol thread_type = 0;
    std::vector<std::vector<DurationNs>> chunks;  ///< per-worker queues
    std::vector<std::size_t> next_chunk;
    std::vector<int> threads_left;
    std::vector<TimeNs> worker_begin;
    std::vector<double> bug_extra;  ///< 0 = this worker has no injected bug
    std::vector<TimeNs> worker_end;
    int workers_left = 0;
    std::function<void(TimeNs)> on_done;
    // Crash-teardown bookkeeping: what is still open / charged to the CPU.
    bool active = false;
    std::vector<double> running;  ///< in-flight CPU intensity per thread slot
    std::vector<char> thread_open;
    std::vector<char> worker_open;
  };

  /// Schedules `fn` at `t`, cancelled implicitly when a crash bumps the
  /// epoch: every event belonging to the aborted execution attempt carries
  /// the epoch it was scheduled in and becomes a no-op once stale.
  template <typename Fn>
  void schedule_epoch(TimeNs t, Fn fn) {
    sim_.schedule_at(t, [this, e = epoch_, fn = std::move(fn)]() mutable {
      if (e == epoch_) fn();
    });
  }

  double speed() const { return cfg_.cluster.machine.core_work_per_sec; }
  DurationNs ns_for_work(double work) const {
    return static_cast<DurationNs>(work / speed() *
                                   static_cast<double>(kSecond));
  }
  static DurationNs ns_from_seconds(double s) {
    return static_cast<DurationNs>(s * static_cast<double>(kSecond));
  }
  double jitter(double magnitude) {
    return 1.0 + magnitude * (2.0 * rng_.next_double() - 1.0);
  }

  /// Splits `total_work` units into chunk durations of roughly
  /// chunk_edges-equivalent work, with multiplicative jitter per chunk.
  std::vector<DurationNs> make_chunks(double total_work, double chunk_work);

  void noise_tick(int w);
  void load_graph();
  void start_iteration(TimeNs t);
  void compute_iteration_effects();  ///< correctness: apply + activation
  void run_compute_step(TimeNs t, trace::Symbol step_type,
                        trace::Symbol worker_type, trace::Symbol thread_type,
                        std::vector<double> per_worker_work, bool allow_bug,
                        std::function<void(TimeNs)> on_done);
  void step_thread_continue(int w, int th);
  void step_worker_finished(int w, TimeNs t);
  void run_exchange(TimeNs t, std::function<void(TimeNs)> on_done);
  void finalize_exchange_worker(int w, TimeNs begin, TimeNs send_done);
  void finish_iteration(TimeNs t);
  void finish_execute(TimeNs t);

  // ---- fault tolerance ----------------------------------------------------
  void save_checkpoint_state();
  void restore_checkpoint_state();
  TimeNs write_checkpoint(TimeNs t);
  void complete_checkpoint();
  void abort_checkpoint(int victim, TimeNs now);
  void schedule_next_crash(TimeNs floor);
  void schedule_nic_changes();
  void fire_crash();
  void detect_and_recover();
  void teardown_worker(int w, TimeNs now, bool truncate);
  void close_or_abandon(const PathRef& path, bool truncate, TimeNs now,
                        trace::MachineId machine);

  PathRef iteration_path() const {
    // Paths use the monotonic instance counter, not the logical iteration:
    // after a crash the re-executed iteration gets a fresh index, keeping
    // every path in the log unique. The two counters coincide fault-free.
    return exec_path_.child(gas_symbols().iteration, iteration_instance_);
  }

  GasConfig cfg_;
  const Graph& g_;
  const GasProgram& prog_;
  Rng rng_;
  sim::FaultInjector faults_;
  int workers_;
  int threads_;

  sim::Simulation sim_;
  PhaseLogger log_;
  const PathRef job_path_ = PathRef{}.child(gas_symbols().job, 0);
  const PathRef exec_path_ = job_path_.child(gas_symbols().execute, 0);
  graph::VertexCutPartition cut_;
  std::vector<WorkerState> ws_;

  std::vector<double> value_;
  std::vector<double> new_value_;
  std::vector<char> active_;
  std::vector<char> next_active_;
  std::vector<char> changed_;

  // Per-iteration work aggregates (recomputed each iteration).
  std::vector<double> gather_work_;
  std::vector<double> apply_work_;
  std::vector<double> scatter_work_;
  std::vector<double> exchange_bytes_;
  std::vector<double> exchange_values_;

  /// Per-vertex edge-ownership CSR: for each vertex, the distinct owning
  /// partitions of its out- (or in-) edges and how many edges each owns.
  /// Built once at load — edge placement is static — so the per-iteration
  /// work aggregation walks one entry per (vertex, partition) instead of
  /// resolving edge_owner per edge.
  struct OwnerCsr {
    std::vector<std::uint64_t> off;  ///< size n+1
    std::vector<std::uint32_t> part;
    std::vector<std::uint32_t> cnt;
  };
  OwnerCsr out_owner_;
  OwnerCsr in_owner_;  ///< built only when the program gathers over in-edges

  // Reused gather scratch for compute_iteration_effects (values always,
  // ids/weights only when a span over graph storage cannot be used).
  std::vector<VertexId> nbr_id_buf_;
  std::vector<double> nbr_val_buf_;
  std::vector<double> nbr_wt_buf_;

  // Per-destination exchange coalescing (DESIGN.md §13) plus the run's
  // logical communication counters reported through RunArtifacts::comm.
  CommBatcher batcher_;
  std::vector<CommBatcher::Flush> flush_scratch_;
  trace::CommStats comm_;

  StepRuntime step_;
  int iteration_ = 0;
  int iteration_instance_ = 0;  ///< monotonic Iteration path index
  bool execute_finished_ = false;
  TimeNs makespan_ = 0;

  // ---- fault tolerance state ----
  std::uint64_t epoch_ = 0;
  bool checkpointing_ = false;  ///< armed only when the spec has a crash
  sim::FailureDetector detector_;
  sim::ReliableChannel channel_;
  std::vector<char> dead_;
  bool any_dead_ = false;
  int crash_victim_ = -1;
  TimeNs crash_time_ = 0;
  std::vector<double> worker_edges_;  ///< edge-partition sizes (re-ingestion)
  /// Latest END logged ahead of simulated time within the current iteration
  /// (step barriers, drained exchange ends): the abort close of the
  /// Iteration must cover every such child END.
  TimeNs logged_end_floor_ = 0;

  struct Snapshot {
    int iteration = 0;
    std::vector<double> value;
    std::vector<char> active;
  };
  Snapshot snapshot_;
  bool checkpoint_active_ = false;
  int checkpoint_seq_ = 0;
  int recovery_seq_ = 0;
  PathRef checkpoint_path_;
  std::vector<TimeNs> checkpoint_wend_;

  // ---- event-driven exchange (non-trivial channel only) ----
  PathRef exchange_path_;
  bool exchange_active_ = false;
  int exchange_left_ = 0;
  TimeNs exchange_latest_ = 0;
  std::vector<char> exchange_open_;
  std::function<void(TimeNs)> exchange_on_done_;
  /// Per-(src,dst) exchange bytes, row-major workers x workers; filled when
  /// sends travel through the reliable channel or feed the batcher
  /// (otherwise the aggregate per-src totals suffice). Flat and reused
  /// across iterations instead of a per-iteration vector-of-vectors.
  std::vector<double> exchange_by_dst_;

  double& exchange_to(int src, int dst) {
    return exchange_by_dst_[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(workers_) +
                            static_cast<std::size_t>(dst)];
  }
};

std::vector<DurationNs> GasRun::make_chunks(double total_work,
                                            double chunk_work) {
  std::vector<DurationNs> chunks;
  double remaining = total_work;
  while (remaining > 0.0) {
    const double piece = std::min(remaining, chunk_work);
    remaining -= piece;
    chunks.push_back(std::max<DurationNs>(
        1, ns_for_work(piece * jitter(cfg_.costs.work_jitter))));
  }
  return chunks;
}

void GasRun::noise_tick(int w) {
  if (execute_finished_) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  state.noise_level = std::clamp(
      state.noise_level + rng_.next_normal(0.0, cfg_.noise.sigma), 0.0,
      cfg_.noise.max_cores);
  // The walk keeps drawing while a machine is down (RNG stream stability),
  // but a dead machine reports no background CPU.
  state.noise.set(sim_.now(),
                  dead_[static_cast<std::size_t>(w)] != 0 ? 0.0
                                                          : state.noise_level);
  sim_.schedule_after(cfg_.noise.interval, [this, w] { noise_tick(w); });
}

void GasRun::load_graph() {
  switch (cfg_.partitioning) {
    case VertexCutStrategy::kHashSource:
      cut_ = graph::partition_vertex_cut_hash_source(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kRangeSource:
      cut_ = graph::partition_vertex_cut_range_source(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kGreedy:
      cut_ = graph::partition_vertex_cut_greedy(
          g_, static_cast<std::uint32_t>(workers_));
      break;
    case VertexCutStrategy::kRandom:
      cut_ = graph::partition_vertex_cut_random(
          g_, static_cast<std::uint32_t>(workers_), cfg_.seed ^ 0x9E37);
      break;
  }

  const VertexId n = g_.vertex_count();
  ws_.resize(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
    state.cpu = std::make_unique<sim::UsageRecorder>(
        gas_names::kCpu, static_cast<double>(cfg_.cluster.machine.cores));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!cut_.replicas[v].empty()) {
      ws_[cut_.master[v]].masters.push_back(v);
    } else {
      // Isolated vertices are mastered on a hash-chosen worker.
      ws_[v % static_cast<VertexId>(workers_)].masters.push_back(v);
      cut_.master[v] = v % static_cast<VertexId>(workers_);
    }
  }

  // Edge-ownership CSRs: resolve each edge's owning partition once, here,
  // instead of per edge per iteration in the work aggregation.
  out_owner_.off.assign(static_cast<std::size_t>(n) + 1, 0);
  out_owner_.part.clear();
  out_owner_.cnt.clear();
  const bool need_in = prog_.gather_edges() != GatherEdges::kOut;
  in_owner_.off.assign(need_in ? static_cast<std::size_t>(n) + 1 : 0, 0);
  in_owner_.part.clear();
  in_owner_.cnt.clear();
  std::vector<std::uint32_t> owner_count(static_cast<std::size_t>(workers_),
                                         0);
  const auto emit_owner_row = [&](OwnerCsr& csr, VertexId v) {
    for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(workers_); ++p) {
      if (owner_count[p] == 0) continue;
      csr.part.push_back(p);
      csr.cnt.push_back(owner_count[p]);
      owner_count[p] = 0;
    }
    csr.off[static_cast<std::size_t>(v) + 1] = csr.part.size();
  };
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex deg = g_.out_degree(v);
    for (EdgeIndex i = 0; i < deg; ++i) {
      ++owner_count[cut_.edge_owner[g_.edge_id(v, i)]];
    }
    emit_owner_row(out_owner_, v);
    if (need_in) {
      for (const EdgeIndex id : g_.in_edge_ids(v)) {
        ++owner_count[cut_.edge_owner[id]];
      }
      emit_owner_row(in_owner_, v);
    }
  }

  value_.resize(n);
  for (VertexId v = 0; v < n; ++v) value_[v] = prog_.initial_value(v, g_);
  new_value_ = value_;
  active_.assign(n, 0);
  next_active_.assign(n, 0);
  changed_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    active_[v] = prog_.initially_active(v, g_) ? 1 : 0;
  }

  const PathRef load = job_path_.child(gas_symbols().load_graph, 0);
  log_.begin(job_path_, 0, trace::kGlobalMachine);
  log_.begin(load, 0, trace::kGlobalMachine);
  const auto per_worker_edges = cut_.edge_counts();
  worker_edges_.assign(static_cast<std::size_t>(workers_), 0.0);
  TimeNs load_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto edges =
        static_cast<double>(per_worker_edges[static_cast<std::size_t>(w)]);
    worker_edges_[static_cast<std::size_t>(w)] = edges;
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        edges * cfg_.costs.work_per_load_edge / cores * jitter(0.05) /
        faults_.speed_factor(w, 0));
    state.nic->enqueue(0, edges * cfg_.costs.bytes_per_load_edge);
    state.cpu->add(0, cores);
    state.cpu->add(duration, -cores);
    const PathRef worker_load = load.child(gas_symbols().load_worker, w);
    log_.begin(worker_load, 0, w);
    const TimeNs done = std::max(duration, state.nic->time_empty(duration));
    log_.end(worker_load, done, w);
    load_end = std::max(load_end, done);
  }
  log_.end(load, load_end, trace::kGlobalMachine);
  log_.begin(exec_path_, load_end, trace::kGlobalMachine);
  if (cfg_.noise.enabled) {
    for (int w = 0; w < workers_; ++w) {
      sim_.schedule_at(0, [this, w] { noise_tick(w); });
    }
  }
  schedule_epoch(load_end, [this] { start_iteration(sim_.now()); });
  if (checkpointing_) save_checkpoint_state();
  schedule_next_crash(load_end);
  schedule_nic_changes();
}

void GasRun::compute_iteration_effects() {
  const VertexId n = g_.vertex_count();
  std::fill(changed_.begin(), changed_.end(), 0);
  std::fill(next_active_.begin(), next_active_.end(), 0);
  const GatherEdges mode = prog_.gather_edges();
  const bool weighted = g_.weighted();
  for (VertexId v = 0; v < n; ++v) {
    if (!active_[v]) {
      new_value_[v] = value_[v];
      continue;
    }
    // Gather directly over graph storage: neighbor ids and (out-)weights are
    // spans into the CSR arrays; only values — and, on weighted graphs,
    // in-edge weights — are copied into reused scratch. An empty weight span
    // means every edge weighs 1 (see GasProgram::apply).
    std::span<const VertexId> ids;
    std::span<const double> values;
    std::span<const double> weights;
    switch (mode) {
      case GatherEdges::kIn: {
        ids = g_.in_neighbors(v);
        nbr_val_buf_.clear();
        for (const VertexId u : ids) nbr_val_buf_.push_back(value_[u]);
        values = nbr_val_buf_;
        if (weighted) {
          nbr_wt_buf_.clear();
          for (const EdgeIndex id : g_.in_edge_ids(v)) {
            nbr_wt_buf_.push_back(g_.edge_weight(id));
          }
          weights = nbr_wt_buf_;
        }
        break;
      }
      case GatherEdges::kOut: {
        ids = g_.out_neighbors(v);
        nbr_val_buf_.clear();
        for (const VertexId u : ids) nbr_val_buf_.push_back(value_[u]);
        values = nbr_val_buf_;
        weights = g_.out_weights(v);
        break;
      }
      case GatherEdges::kBoth: {
        const auto in = g_.in_neighbors(v);
        const auto out = g_.out_neighbors(v);
        nbr_id_buf_.clear();
        nbr_id_buf_.insert(nbr_id_buf_.end(), in.begin(), in.end());
        nbr_id_buf_.insert(nbr_id_buf_.end(), out.begin(), out.end());
        nbr_val_buf_.clear();
        for (const VertexId u : nbr_id_buf_) {
          nbr_val_buf_.push_back(value_[u]);
        }
        if (weighted) {
          nbr_wt_buf_.clear();
          for (const EdgeIndex id : g_.in_edge_ids(v)) {
            nbr_wt_buf_.push_back(g_.edge_weight(id));
          }
          const auto wts = g_.out_weights(v);
          nbr_wt_buf_.insert(nbr_wt_buf_.end(), wts.begin(), wts.end());
          weights = nbr_wt_buf_;
        }
        ids = nbr_id_buf_;
        values = nbr_val_buf_;
        break;
      }
    }
    new_value_[v] =
        prog_.apply(v, value_[v], ids, values, weights, iteration_, g_);
    if (prog_.scatter_activates(v, value_[v], new_value_[v], iteration_)) {
      changed_[v] = 1;
      for (const VertexId u : g_.out_neighbors(v)) next_active_[u] = 1;
    }
  }

  // Per-worker work aggregates for the timed steps, computed from the
  // ownership CSRs: one entry per (vertex, owning partition) instead of an
  // edge_owner lookup per edge. The default work constants are exact binary
  // integers, so count * cost regroups the old per-edge sums bit-for-bit.
  gather_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  apply_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  scatter_work_.assign(static_cast<std::size_t>(workers_), 0.0);
  exchange_bytes_.assign(static_cast<std::size_t>(workers_), 0.0);
  exchange_values_.assign(static_cast<std::size_t>(workers_), 0.0);
  // Per-destination breakdown is needed when exchange traffic travels
  // through the reliable channel or feeds the coalescing buffers.
  const bool split_dst = !channel_.trivial() || batcher_.enabled();
  if (split_dst) {
    exchange_by_dst_.assign(static_cast<std::size_t>(workers_) *
                                static_cast<std::size_t>(workers_),
                            0.0);
  }

  const bool gather_in = mode != GatherEdges::kOut;
  const bool gather_out = mode != GatherEdges::kIn;
  for (VertexId v = 0; v < n; ++v) {
    if (gather_in && active_[v]) {
      for (std::uint64_t k = in_owner_.off[v]; k < in_owner_.off[v + 1];
           ++k) {
        gather_work_[in_owner_.part[k]] +=
            cfg_.costs.work_per_gather_edge *
            static_cast<double>(in_owner_.cnt[k]);
      }
    }
    const bool out_gathers = gather_out && active_[v];
    if (out_gathers || changed_[v]) {
      for (std::uint64_t k = out_owner_.off[v]; k < out_owner_.off[v + 1];
           ++k) {
        const double cnt = static_cast<double>(out_owner_.cnt[k]);
        if (out_gathers) {
          gather_work_[out_owner_.part[k]] +=
              cfg_.costs.work_per_gather_edge * cnt;
        }
        if (changed_[v]) {
          scatter_work_[out_owner_.part[k]] +=
              cfg_.costs.work_per_scatter_edge * cnt;
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (active_[v]) {
      apply_work_[cut_.master[v]] += cfg_.costs.work_per_apply;
      // Mirrors push partial gather accumulators to the master.
      for (const auto r : cut_.replicas[v]) {
        if (r != cut_.master[v]) {
          exchange_bytes_[r] += cfg_.costs.bytes_per_value;
          exchange_values_[r] += 1.0;
          if (split_dst) {
            exchange_to(static_cast<int>(r),
                        static_cast<int>(cut_.master[v])) +=
                cfg_.costs.bytes_per_value;
          }
        }
      }
    }
    if (changed_[v] && !cut_.replicas[v].empty()) {
      // Master broadcasts the new value to every mirror.
      const double mirrors =
          static_cast<double>(cut_.replicas[v].size()) - 1.0;
      exchange_bytes_[cut_.master[v]] += mirrors * cfg_.costs.bytes_per_value;
      exchange_values_[cut_.master[v]] += mirrors;
      if (split_dst) {
        for (const auto r : cut_.replicas[v]) {
          if (r != cut_.master[v]) {
            exchange_to(static_cast<int>(cut_.master[v]),
                        static_cast<int>(r)) += cfg_.costs.bytes_per_value;
          }
        }
      }
    }
  }

  // Exchange traffic enters the coalescing buffers now; the exchange step
  // drains them as one barriered flush per destination. The exchange is
  // already a bulk transfer, so size crossings never flush early here.
  if (batcher_.enabled()) {
    for (int w = 0; w < workers_; ++w) {
      for (int dst = 0; dst < workers_; ++dst) {
        const double bytes = exchange_to(w, dst);
        if (bytes > 0.0 && dst != w) batcher_.deposit(w, dst, bytes);
      }
    }
  }
}

void GasRun::start_iteration(TimeNs t) {
  if (any_dead_) return;  // recovery owns the timeline until it completes
  logged_end_floor_ = 0;
  bool any_active = false;
  for (char a : active_) {
    if (a) {
      any_active = true;
      break;
    }
  }
  if (!any_active || iteration_ >= prog_.max_iterations()) {
    finish_execute(t);
    return;
  }
  compute_iteration_effects();
  log_.begin(iteration_path(), t, trace::kGlobalMachine);
  const GasSymbols& sym = gas_symbols();
  run_compute_step(
      t, sym.gather_step, sym.worker_gather, sym.gather_thread, gather_work_,
      cfg_.sync_bug.enabled, [this](TimeNs t1) {
        const GasSymbols& s = gas_symbols();
        run_compute_step(
            t1, s.apply_step, s.worker_apply, s.apply_thread, apply_work_,
            false, [this](TimeNs t2) {
              const GasSymbols& s2 = gas_symbols();
              run_compute_step(t2, s2.scatter_step, s2.worker_scatter,
                               s2.scatter_thread, scatter_work_, false,
                               [this](TimeNs t3) {
                                 run_exchange(t3, [this](TimeNs t4) {
                                   finish_iteration(t4);
                                 });
                               });
            });
      });
}

void GasRun::run_compute_step(TimeNs t, trace::Symbol step_type,
                              trace::Symbol worker_type,
                              trace::Symbol thread_type,
                              std::vector<double> per_worker_work,
                              bool allow_bug,
                              std::function<void(TimeNs)> on_done) {
  step_ = StepRuntime{};
  step_.step_path = iteration_path().child(step_type, 0);
  step_.worker_type = worker_type;
  step_.thread_type = thread_type;
  step_.on_done = std::move(on_done);
  step_.workers_left = workers_;
  step_.chunks.resize(static_cast<std::size_t>(workers_));
  step_.next_chunk.assign(static_cast<std::size_t>(workers_), 0);
  step_.threads_left.assign(static_cast<std::size_t>(workers_), threads_);
  step_.worker_begin.assign(static_cast<std::size_t>(workers_), t);
  step_.worker_end.assign(static_cast<std::size_t>(workers_), t);
  step_.bug_extra.assign(static_cast<std::size_t>(workers_), 0.0);
  step_.active = true;
  step_.running.assign(static_cast<std::size_t>(workers_ * threads_), 0.0);
  step_.thread_open.assign(static_cast<std::size_t>(workers_ * threads_), 1);
  step_.worker_open.assign(static_cast<std::size_t>(workers_), 1);

  log_.begin(step_.step_path, t, trace::kGlobalMachine);
  const double chunk_work = static_cast<double>(cfg_.chunk_edges) *
                            cfg_.costs.work_per_gather_edge;
  step_.worker_paths.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    step_.chunks[static_cast<std::size_t>(w)] =
        make_chunks(per_worker_work[static_cast<std::size_t>(w)], chunk_work);
    if (allow_bug && rng_.next_bool(cfg_.sync_bug.probability)) {
      step_.bug_extra[static_cast<std::size_t>(w)] = rng_.next_double(
          cfg_.sync_bug.min_extra, cfg_.sync_bug.max_extra);
    }
    step_.worker_paths.push_back(step_.step_path.child(worker_type, w));
    const PathRef& worker = step_.worker_paths.back();
    log_.begin(worker, t, w);
    for (int th = 0; th < threads_; ++th) {
      log_.begin(worker.child(thread_type, th), t, w);
      schedule_epoch(t, [this, w, th] { step_thread_continue(w, th); });
    }
  }
}

void GasRun::step_thread_continue(int w, int th) {
  if (dead_[static_cast<std::size_t>(w)] != 0) return;
  const TimeNs now = sim_.now();
  const auto slot = static_cast<std::size_t>(w * threads_ + th);
  auto& chunks = step_.chunks[static_cast<std::size_t>(w)];
  auto& cursor = step_.next_chunk[static_cast<std::size_t>(w)];
  auto& state = ws_[static_cast<std::size_t>(w)];
  if (cursor < chunks.size()) {
    const double intensity =
        rng_.next_double(cfg_.costs.cpu_intensity_min, 1.0);
    // An active slowdown window stretches the chunk (sampled at dispatch).
    const DurationNs duration = std::max<DurationNs>(
        1, static_cast<DurationNs>(static_cast<double>(chunks[cursor++]) /
                                   intensity /
                                   faults_.speed_factor(w, now)));
    state.cpu->add(now, intensity);
    step_.running[slot] = intensity;
    schedule_epoch(now + duration, [this, w, th, slot, intensity] {
      if (dead_[static_cast<std::size_t>(w)] != 0) return;
      ws_[static_cast<std::size_t>(w)].cpu->add(sim_.now(), -intensity);
      step_.running[slot] = 0.0;
      step_thread_continue(w, th);
    });
    return;
  }
  // No work left for this thread.
  auto& left = step_.threads_left[static_cast<std::size_t>(w)];
  const PathRef thread_path =
      step_.worker_paths[static_cast<std::size_t>(w)].child(step_.thread_type,
                                                            th);
  const double bug = step_.bug_extra[static_cast<std::size_t>(w)];
  if (left == 1 && bug > 0.0) {
    // §IV-D bug: the last thread to reach the barrier finds a late message
    // stream and keeps processing while its siblings idle.
    step_.bug_extra[static_cast<std::size_t>(w)] = 0.0;
    const auto extra = static_cast<DurationNs>(
        bug * static_cast<double>(
                  now - step_.worker_begin[static_cast<std::size_t>(w)]));
    if (extra > 0) {
      state.cpu->add(now, 1.0);
      step_.running[slot] = 1.0;
      schedule_epoch(now + extra, [this, w, th, slot] {
        if (dead_[static_cast<std::size_t>(w)] != 0) return;
        ws_[static_cast<std::size_t>(w)].cpu->add(sim_.now(), -1.0);
        step_.running[slot] = 0.0;
        step_thread_continue(w, th);
      });
      return;
    }
  }
  log_.end(thread_path, now, w);
  step_.thread_open[slot] = 0;
  if (--left == 0) step_worker_finished(w, now);
}

void GasRun::step_worker_finished(int w, TimeNs t) {
  log_.end(step_.worker_paths[static_cast<std::size_t>(w)], t, w);
  step_.worker_open[static_cast<std::size_t>(w)] = 0;
  step_.worker_end[static_cast<std::size_t>(w)] = t;
  if (--step_.workers_left == 0) {
    TimeNs barrier = 0;
    for (const TimeNs end : step_.worker_end) barrier = std::max(barrier, end);
    barrier += ns_from_seconds(cfg_.costs.step_barrier_seconds);
    log_.end(step_.step_path, barrier, trace::kGlobalMachine);
    step_.active = false;
    logged_end_floor_ = std::max(logged_end_floor_, barrier);
    schedule_epoch(barrier, [this, cb = std::move(step_.on_done)]() mutable {
      cb(sim_.now());
    });
  }
}

void GasRun::run_exchange(TimeNs t, std::function<void(TimeNs)> on_done) {
  const PathRef step = iteration_path().child(gas_symbols().exchange_step, 0);
  log_.begin(step, t, trace::kGlobalMachine);
  if (channel_.trivial()) {
    // Fault-free fast path: the whole exchange resolves synchronously and
    // stays byte-identical to runs produced before the reliable channel
    // existed.
    TimeNs latest = t;
    for (int w = 0; w < workers_; ++w) {
      auto& state = ws_[static_cast<std::size_t>(w)];
      double bytes = exchange_bytes_[static_cast<std::size_t>(w)];
      if (batcher_.enabled()) {
        // Drain the coalescing buffers instead; with the default exact
        // byte costs the drained total regroups to the same value.
        batcher_.take_all(w, FlushCause::kBarrier, flush_scratch_);
        bytes = 0.0;
        for (const auto& f : flush_scratch_) bytes += f.bytes;
      }
      const auto values = exchange_values_[static_cast<std::size_t>(w)];
      const DurationNs serialize = ns_for_work(
          values * cfg_.costs.work_per_exchange_value * jitter(0.05));
      state.cpu->add(t, 1.0);
      state.cpu->add(t + serialize, -1.0);
      state.nic->enqueue(t, bytes);
      const TimeNs end =
          std::max(t + serialize, state.nic->time_empty(t + serialize));
      const PathRef worker = step.child(gas_symbols().worker_exchange, w);
      log_.begin(worker, t, w);
      log_.end(worker, end, w);
      latest = std::max(latest, end);
    }
    latest += ns_from_seconds(cfg_.costs.step_barrier_seconds);
    log_.end(step, latest, trace::kGlobalMachine);
    sim_.schedule_at(
        latest, [cb = std::move(on_done), this]() mutable { cb(sim_.now()); });
    return;
  }

  // Under fault injection every (src, dst) transfer is planned through the
  // reliable channel: each attempt costs bytes on the sender's NIC, and the
  // retransmit backoff the sender blocks through surfaces as a "Retry"
  // blocking event once the wait completes. The step becomes event-driven;
  // each worker finalizes independently and the last one closes the step.
  exchange_path_ = step;
  exchange_active_ = true;
  exchange_left_ = workers_;
  exchange_latest_ = t;
  exchange_open_.assign(static_cast<std::size_t>(workers_), 1);
  exchange_on_done_ = std::move(on_done);
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto values = exchange_values_[static_cast<std::size_t>(w)];
    const DurationNs serialize = ns_for_work(
        values * cfg_.costs.work_per_exchange_value * jitter(0.05));
    state.cpu->add(t, 1.0);
    state.cpu->add(t + serialize, -1.0);
    log_.begin(step.child(gas_symbols().worker_exchange, w), t, w);
    TimeNs send_done = t;
    const auto plan_one = [&](int dst, double bytes) {
      const auto plan = channel_.plan_send(w, dst, t);
      ++comm_.channel_plans;
      for (const auto& attempt : plan.attempts) {
        if (attempt.at <= t) {
          state.nic->enqueue(t, bytes);
        } else {
          schedule_epoch(attempt.at, [this, w, bytes] {
            if (dead_[static_cast<std::size_t>(w)] != 0) return;
            ws_[static_cast<std::size_t>(w)].nic->enqueue(sim_.now(), bytes);
          });
        }
      }
      send_done = std::max(send_done, plan.complete);
    };
    if (batcher_.enabled()) {
      // Drained ascending by destination — the same deterministic order as
      // the unbatched loop below, so the plan sequence is identical.
      batcher_.take_all(w, FlushCause::kBarrier, flush_scratch_);
      for (const auto& f : flush_scratch_) plan_one(f.dst, f.bytes);
    } else {
      for (int dst = 0; dst < workers_; ++dst) {
        const double bytes = exchange_to(w, dst);
        if (bytes <= 0.0) continue;
        plan_one(dst, bytes);
      }
    }
    const TimeNs finalize_at = std::max(send_done, t + serialize);
    schedule_epoch(finalize_at, [this, w, t, send_done] {
      finalize_exchange_worker(w, t, send_done);
    });
  }
}

void GasRun::finalize_exchange_worker(int w, TimeNs begin, TimeNs send_done) {
  if (dead_[static_cast<std::size_t>(w)] != 0) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  const TimeNs end = std::max(now, state.nic->time_empty(now));
  const PathRef worker = exchange_path_.child(gas_symbols().worker_exchange, w);
  if (send_done > begin) {
    log_.block(gas_names::kRetry, worker, begin, send_done, w);
  }
  log_.end(worker, end, w);
  exchange_open_[static_cast<std::size_t>(w)] = 0;
  logged_end_floor_ = std::max(logged_end_floor_, end);
  exchange_latest_ = std::max(exchange_latest_, end);
  if (--exchange_left_ == 0) {
    exchange_active_ = false;
    const TimeNs latest =
        exchange_latest_ + ns_from_seconds(cfg_.costs.step_barrier_seconds);
    log_.end(exchange_path_, latest, trace::kGlobalMachine);
    logged_end_floor_ = std::max(logged_end_floor_, latest);
    schedule_epoch(latest,
                   [this, cb = std::move(exchange_on_done_)]() mutable {
                     cb(sim_.now());
                   });
  }
}

void GasRun::finish_iteration(TimeNs t) {
  log_.end(iteration_path(), t, trace::kGlobalMachine);
  double step_values = 0.0;
  double step_bytes = 0.0;
  for (int w = 0; w < workers_; ++w) {
    step_values += exchange_values_[static_cast<std::size_t>(w)];
    step_bytes += exchange_bytes_[static_cast<std::size_t>(w)];
  }
  comm_.messages_per_step.push_back(static_cast<std::uint64_t>(step_values));
  comm_.remote_bytes_total += step_bytes;
  // Every entry of new_value_ is written each iteration (inactive vertices
  // copy their old value), so promoting it by swap is safe and skips the
  // full O(n) copy.
  value_.swap(new_value_);
  active_.swap(next_active_);
  ++iteration_;
  ++iteration_instance_;
  if (checkpointing_ && iteration_ % cfg_.checkpoint.interval_steps == 0) {
    const TimeNs cp_end = write_checkpoint(t);
    schedule_epoch(cp_end, [this] {
      // A crash inside the window aborts the write (detect_and_recover);
      // the snapshot falls back to the previous complete one.
      if (any_dead_) return;
      complete_checkpoint();
      start_iteration(sim_.now());
    });
    return;
  }
  start_iteration(t);
}

void GasRun::finish_execute(TimeNs t) {
  log_.end(exec_path_, t, trace::kGlobalMachine);
  const PathRef store = job_path_.child(gas_symbols().store_results, 0);
  log_.begin(store, t, trace::kGlobalMachine);
  TimeNs store_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const auto vertices =
        static_cast<double>(state.masters.size());
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        vertices * cfg_.costs.work_per_store_vertex / cores * jitter(0.05) /
        faults_.speed_factor(w, t));
    state.cpu->add(t, cores);
    state.cpu->add(t + duration, -cores);
    const PathRef worker_store = store.child(gas_symbols().store_worker, w);
    log_.begin(worker_store, t, w);
    log_.end(worker_store, t + duration, w);
    store_end = std::max(store_end, t + duration);
  }
  log_.end(store, store_end, trace::kGlobalMachine);
  log_.end(job_path_, store_end, trace::kGlobalMachine);
  makespan_ = store_end;
  execute_finished_ = true;
}

void GasRun::save_checkpoint_state() {
  snapshot_.iteration = iteration_;
  snapshot_.value = value_;
  snapshot_.active = active_;
}

void GasRun::restore_checkpoint_state() {
  iteration_ = snapshot_.iteration;
  value_ = snapshot_.value;
  active_ = snapshot_.active;
  // new_value_ / next_active_ / changed_ are recomputed wholesale by
  // compute_iteration_effects when the iteration re-executes.
}

TimeNs GasRun::write_checkpoint(TimeNs t) {
  // Open the checkpoint phases now; closure is deferred until the write
  // completes (complete_checkpoint), so a crash landing inside the window
  // truncates them — the log shows an interrupted checkpoint, and the
  // snapshot falls back to the previous complete one.
  checkpoint_path_ = exec_path_.child(gas_symbols().checkpoint,
                                      checkpoint_seq_++);
  log_.begin(checkpoint_path_, t, trace::kGlobalMachine);
  checkpoint_wend_.assign(static_cast<std::size_t>(workers_), t);
  TimeNs cp_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const DurationNs duration =
        ns_from_seconds(cfg_.checkpoint.base_seconds) +
        ns_for_work(static_cast<double>(state.masters.size()) *
                    cfg_.checkpoint.work_per_vertex);
    const TimeNs wend = t + duration;
    checkpoint_wend_[static_cast<std::size_t>(w)] = wend;
    log_.begin(checkpoint_path_.child(gas_symbols().checkpoint_worker, w), t,
               w);
    // Serialization is single-threaded per worker.
    state.cpu->add(t, 1.0);
    cp_end = std::max(cp_end, wend);
  }
  checkpoint_active_ = true;
  return cp_end;
}

void GasRun::complete_checkpoint() {
  TimeNs cp_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    log_.end(checkpoint_path_.child(gas_symbols().checkpoint_worker, w), wend,
             w);
    state.cpu->add(wend, -1.0);
    cp_end = std::max(cp_end, wend);
  }
  log_.end(checkpoint_path_, cp_end, trace::kGlobalMachine);
  checkpoint_active_ = false;
  save_checkpoint_state();
}

void GasRun::abort_checkpoint(int victim, TimeNs now) {
  // Survivors stop writing when the failure is detected (`now`); the victim
  // stopped at the crash instant itself.
  const bool truncated = cfg_.crash_log == CrashLogStyle::kTruncated;
  TimeNs cp_close = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PathRef worker_cp =
        checkpoint_path_.child(gas_symbols().checkpoint_worker, w);
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    const TimeNs stop =
        w == victim ? std::min(crash_time_, wend) : std::min(now, wend);
    if (w == victim && truncated) {
      log_.abandon(worker_cp);
    } else {
      log_.end(worker_cp, stop, w);
      cp_close = std::max(cp_close, stop);
    }
    state.cpu->add(stop, -1.0);
  }
  if (truncated) {
    log_.abandon(checkpoint_path_);
  } else {
    log_.end(checkpoint_path_, cp_close, trace::kGlobalMachine);
  }
  checkpoint_active_ = false;
  // The snapshot was not saved: recovery falls back to the previous one.
}

void GasRun::schedule_next_crash(TimeNs floor) {
  if (!checkpointing_) return;
  const auto t = faults_.next_crash_time();
  if (!t) return;
  // Not epoch-guarded: a crash belongs to the run, not to one execution
  // attempt. A crash falling inside a recovery window fires right after it.
  sim_.schedule_at(std::max(*t, floor), [this] { fire_crash(); });
}

void GasRun::schedule_nic_changes() {
  if (faults_.empty()) return;
  const double base_rate = cfg_.cluster.machine.nic_bytes_per_sec();
  for (const TimeNs t : faults_.nic_change_times()) {
    // Boundaries may predate the point where scheduling happens (a window
    // opening at t=0 while the graph is still loading): apply them now.
    sim_.schedule_at(std::max(t, sim_.now()), [this, base_rate] {
      if (execute_finished_) return;
      const TimeNs now = sim_.now();
      for (int w = 0; w < workers_; ++w) {
        ws_[static_cast<std::size_t>(w)].nic->set_rate(
            now, base_rate * faults_.nic_factor(w, now));
      }
    });
  }
}

void GasRun::close_or_abandon(const PathRef& path, bool truncate, TimeNs now,
                              trace::MachineId machine) {
  const auto begin = log_.open_begin(path);
  if (!begin) return;
  if (truncate) {
    log_.abandon(path);
  } else {
    log_.end(path, std::max(now, *begin), machine);
  }
}

void GasRun::teardown_worker(int w, TimeNs now, bool truncate) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  if (step_.active) {
    const PathRef& worker = step_.worker_paths[static_cast<std::size_t>(w)];
    for (int th = 0; th < threads_; ++th) {
      const auto slot = static_cast<std::size_t>(w * threads_ + th);
      if (step_.running[slot] > 0.0) {
        state.cpu->add(now, -step_.running[slot]);
        step_.running[slot] = 0.0;
      }
      if (step_.thread_open[slot]) {
        close_or_abandon(worker.child(step_.thread_type, th), truncate, now,
                         w);
        step_.thread_open[slot] = 0;
      }
    }
    if (step_.worker_open[static_cast<std::size_t>(w)]) {
      close_or_abandon(worker, truncate, now, w);
      step_.worker_open[static_cast<std::size_t>(w)] = 0;
    }
  }
  if (exchange_active_ && exchange_open_[static_cast<std::size_t>(w)]) {
    close_or_abandon(exchange_path_.child(gas_symbols().worker_exchange, w),
                     truncate, now, w);
    exchange_open_[static_cast<std::size_t>(w)] = 0;
  }
  // In-flight traffic of the aborted iteration is gone — both the NIC queue
  // and anything still sitting in the coalescing buffers; the re-execution
  // regenerates it.
  state.nic->clear(now);
  if (batcher_.enabled()) batcher_.clear(w);
}

void GasRun::fire_crash() {
  if (execute_finished_) return;
  // A second failure while one is still being handled is picked up by
  // schedule_next_crash() after the in-flight recovery completes.
  if (any_dead_) return;
  const TimeNs now = sim_.now();
  const auto victim = faults_.take_crash(now);
  if (!victim) return;
  const int v = *victim;
  crash_victim_ = v;
  crash_time_ = now;
  any_dead_ = true;
  dead_[static_cast<std::size_t>(v)] = 1;
  channel_.set_dead(v, true);

  // The victim dies silently: its compute stops, its queued traffic is
  // gone, its open phases close (log shipper flush) or truncate. Survivors
  // keep running until the failure detector times out the victim's
  // heartbeats; nobody here consults the injector about the future.
  teardown_worker(v, now, cfg_.crash_log == CrashLogStyle::kTruncated);
  sim_.schedule_at(detector_.detect_time(v, now),
                   [this] { detect_and_recover(); });
}

void GasRun::detect_and_recover() {
  const TimeNs now = sim_.now();  // heartbeat-timeout detection instant
  const int victim = crash_victim_;
  // A new epoch invalidates every event of the aborted execution attempt.
  ++epoch_;
  const bool truncated = cfg_.crash_log == CrashLogStyle::kTruncated;
  for (int w = 0; w < workers_; ++w) {
    if (w != victim) teardown_worker(w, now, false);
  }
  // Step barriers and drained exchange ENDs were logged ahead of time; the
  // aborted phases must close at or after every logged child END.
  const TimeNs iter_close = std::max(now, logged_end_floor_);
  if (step_.active) {
    close_or_abandon(step_.step_path, truncated, iter_close,
                     trace::kGlobalMachine);
    step_ = StepRuntime{};
  }
  if (exchange_active_) {
    close_or_abandon(exchange_path_, truncated, iter_close,
                     trace::kGlobalMachine);
    exchange_active_ = false;
    exchange_on_done_ = nullptr;
  }
  close_or_abandon(iteration_path(), truncated, iter_close,
                   trace::kGlobalMachine);
  if (checkpoint_active_) abort_checkpoint(victim, now);
  ++iteration_instance_;

  // Snapshot-restart recovery: every worker reloads the last complete
  // snapshot; the restarted victim additionally re-ingests its edge
  // partition from storage. The whole window is dead time, reported as
  // "Recovery" blocking events.
  const PathRef rec = exec_path_.child(gas_symbols().recovery, recovery_seq_++);
  log_.begin(rec, now, trace::kGlobalMachine);
  const DurationNs restart = ns_from_seconds(cfg_.checkpoint.restart_seconds);
  const double cores = static_cast<double>(cfg_.cluster.machine.cores);
  TimeNs rec_end = now + restart;
  for (int w = 0; w < workers_; ++w) {
    double reload_work = static_cast<double>(ws_[static_cast<std::size_t>(w)]
                                                 .masters.size()) *
                         cfg_.checkpoint.reload_work_per_vertex;
    if (w == victim) {
      reload_work += worker_edges_[static_cast<std::size_t>(w)] *
                     cfg_.costs.work_per_load_edge;
    }
    const TimeNs wend = now + restart + ns_for_work(reload_work / cores);
    const PathRef worker_rec = rec.child(gas_symbols().recovery_worker, w);
    log_.begin(worker_rec, now, w);
    log_.end(worker_rec, wend, w);
    log_.block(gas_names::kRecovery, worker_rec, now, wend, w);
    rec_end = std::max(rec_end, wend);
  }
  log_.end(rec, rec_end, trace::kGlobalMachine);
  restore_checkpoint_state();
  dead_[static_cast<std::size_t>(victim)] = 0;
  channel_.set_dead(victim, false);
  any_dead_ = false;
  crash_victim_ = -1;
  // Resume after both the recovery window and the last logged END of the
  // aborted iteration, so repeated Iteration instances never overlap.
  const TimeNs resume = std::max(rec_end, iter_close);
  schedule_epoch(resume, [this] { start_iteration(sim_.now()); });
  schedule_next_crash(resume);
}

trace::RunArtifacts GasRun::execute() {
  if (!faults_.empty()) {
    faults_.resolve(gas_nominal_horizon(cfg_, g_, prog_));
    checkpointing_ = faults_.has_kind(sim::FaultKind::kCrash);
  }
  sim::FailureDetectorConfig heartbeat = cfg_.heartbeat;
  heartbeat.seed ^= cfg_.seed;
  detector_ = sim::FailureDetector(heartbeat, &faults_);
  sim::ReliableChannelConfig channel;
  channel.timeout_seconds = cfg_.retry.timeout_seconds;
  channel.backoff = cfg_.retry.backoff;
  channel.jitter = cfg_.retry.jitter;
  channel.max_attempts = std::max(1, cfg_.retry.max_attempts);
  channel_ = sim::ReliableChannel(channel, &faults_, workers_);
  batcher_ = CommBatcher(cfg_.batch, workers_);
  dead_.assign(static_cast<std::size_t>(workers_), 0);
  load_graph();
  sim_.run();
  G10_CHECK_MSG(execute_finished_, "simulation ended before the job finished");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.vertex_values = value_;
  comm_.batch_flushes =
      static_cast<std::int64_t>(batcher_.stats().total_flushes());
  artifacts.comm = std::move(comm_);
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    trace::GroundTruthSeries cpu;
    cpu.resource = gas_names::kCpu;
    cpu.machine = w;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = StepFunction::clamped_sum(state.cpu->series(), state.noise,
                                           cpu.capacity);
    artifacts.ground_truth.push_back(std::move(cpu));

    trace::GroundTruthSeries net;
    net.resource = gas_names::kNetwork;
    net.machine = w;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = state.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

GasEngine::GasEngine(GasConfig config) : config_(std::move(config)) {
  config_.cluster.validate();
  G10_CHECK(config_.chunk_edges > 0);
}

trace::RunArtifacts GasEngine::run(const graph::Graph& graph,
                                   const algorithms::GasProgram& program) const {
  GasRun run(config_, graph, program);
  return run.execute();
}

TimeNs GasEngine::estimate_horizon(const graph::Graph& graph,
                                   const algorithms::GasProgram& program) const {
  return gas_nominal_horizon(config_, graph, program);
}

}  // namespace g10::engine
