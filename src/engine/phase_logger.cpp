#include "engine/phase_logger.hpp"

#include "common/check.hpp"

namespace g10::engine {

using trace::PhaseEventRecord;

void PhaseLogger::begin(const trace::PathRef& path, TimeNs time,
                        trace::MachineId machine) {
  const auto [it, inserted] = open_.emplace(path, time);
  G10_CHECK_MSG(inserted, "phase already open: " << path.to_string());
  phase_events_.push_back(
      InternedPhaseEvent{PhaseEventRecord::Kind::Begin, path, time, machine});
}

void PhaseLogger::end(const trace::PathRef& path, TimeNs time,
                      trace::MachineId machine) {
  const auto it = open_.find(path);
  G10_CHECK_MSG(it != open_.end(),
                "ending phase that is not open: " << path.to_string());
  G10_CHECK_MSG(it->second <= time,
                "phase " << path.to_string() << " ends before it begins");
  open_.erase(it);
  phase_events_.push_back(
      InternedPhaseEvent{PhaseEventRecord::Kind::End, path, time, machine});
}

void PhaseLogger::block(std::string_view resource, const trace::PathRef& path,
                        TimeNs begin, TimeNs end, trace::MachineId machine) {
  G10_CHECK(end >= begin);
  if (end == begin) return;
  blocking_events_.push_back(InternedBlockingEvent{
      trace::SymbolTable::global().intern(resource), path, begin, end,
      machine});
}

bool PhaseLogger::abandon(const trace::PathRef& path) {
  return open_.erase(path) > 0;
}

bool PhaseLogger::is_open(const trace::PathRef& path) const {
  return open_.contains(path);
}

std::optional<TimeNs> PhaseLogger::open_begin(
    const trace::PathRef& path) const {
  const auto it = open_.find(path);
  if (it == open_.end()) return std::nullopt;
  return it->second;
}

std::vector<trace::PhaseEventRecord> PhaseLogger::take_phase_events() {
  G10_CHECK_MSG(open_.empty(), "phases still open at end of run");
  std::vector<trace::PhaseEventRecord> records;
  records.reserve(phase_events_.size());
  for (const InternedPhaseEvent& event : phase_events_) {
    records.push_back(PhaseEventRecord{event.kind, event.path.to_phase_path(),
                                       event.time, event.machine});
  }
  phase_events_.clear();
  phase_events_.shrink_to_fit();
  return records;
}

std::vector<trace::BlockingEventRecord> PhaseLogger::take_blocking_events() {
  const trace::SymbolTable& table = trace::SymbolTable::global();
  std::vector<trace::BlockingEventRecord> records;
  records.reserve(blocking_events_.size());
  for (const InternedBlockingEvent& event : blocking_events_) {
    records.push_back(trace::BlockingEventRecord{
        std::string(table.name(event.resource)), event.path.to_phase_path(),
        event.begin, event.end, event.machine});
  }
  blocking_events_.clear();
  blocking_events_.shrink_to_fit();
  return records;
}

}  // namespace g10::engine
