#include "engine/phase_logger.hpp"

#include "common/check.hpp"

namespace g10::engine {

using trace::PhaseEventRecord;

void PhaseLogger::begin(const trace::PhasePath& path, TimeNs time,
                        trace::MachineId machine) {
  const std::string key = path.to_string();
  G10_CHECK_MSG(!open_.contains(key), "phase already open: " << key);
  open_.emplace(key, time);
  phase_events_.push_back(
      PhaseEventRecord{PhaseEventRecord::Kind::Begin, path, time, machine});
}

void PhaseLogger::end(const trace::PhasePath& path, TimeNs time,
                      trace::MachineId machine) {
  const std::string key = path.to_string();
  const auto it = open_.find(key);
  G10_CHECK_MSG(it != open_.end(), "ending phase that is not open: " << key);
  G10_CHECK_MSG(it->second <= time, "phase " << key << " ends before it begins");
  open_.erase(it);
  phase_events_.push_back(
      PhaseEventRecord{PhaseEventRecord::Kind::End, path, time, machine});
}

void PhaseLogger::block(const std::string& resource,
                        const trace::PhasePath& path, TimeNs begin, TimeNs end,
                        trace::MachineId machine) {
  G10_CHECK(end >= begin);
  if (end == begin) return;
  blocking_events_.push_back(
      trace::BlockingEventRecord{resource, path, begin, end, machine});
}

bool PhaseLogger::abandon(const trace::PhasePath& path) {
  return open_.erase(path.to_string()) > 0;
}

bool PhaseLogger::is_open(const trace::PhasePath& path) const {
  return open_.contains(path.to_string());
}

std::optional<TimeNs> PhaseLogger::open_begin(
    const trace::PhasePath& path) const {
  const auto it = open_.find(path.to_string());
  if (it == open_.end()) return std::nullopt;
  return it->second;
}

std::vector<trace::PhaseEventRecord> PhaseLogger::take_phase_events() {
  G10_CHECK_MSG(open_.empty(), "phases still open at end of run");
  return std::move(phase_events_);
}

std::vector<trace::BlockingEventRecord> PhaseLogger::take_blocking_events() {
  return std::move(blocking_events_);
}

}  // namespace g10::engine
