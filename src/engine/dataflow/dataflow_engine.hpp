// Spark-like DAG-dataflow engine — the paper's §V extension target
// ("we are in the process of characterizing Spark workloads by extending
// Grade10's methods"). This demonstrates that the Grade10 machinery is not
// graph-specific: the same models, attribution, and issue detection apply
// to a stage/task dataflow.
//
// A job is a sequence of stages; each stage has a number of tasks that run
// on a pool of per-machine executor slots. Task durations follow the stage's
// cost plus optional skew (stragglers). Between stages, each task's shuffle
// output traverses the network. Phase hierarchy emitted:
//   Job.0
//   ├── (Stage.s)
//   │   ├── (Task.t)        (machine-pinned leaf)
//   │   └── ShuffleWrite.w  (per machine, drains shuffle output)
// Consumable resources recorded: "cpu", "network" (per machine).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "trace/records.hpp"

namespace g10::engine {

struct StageSpec {
  int tasks = 32;
  double work_per_task = 2.0e6;  ///< work units; ~50 ms at 4e7 units/s
  /// Multiplicative straggler skew: each task's work is scaled by
  /// 1 + skew * Z where Z ~ Exp(1); 0 = perfectly uniform.
  double skew = 0.0;
  double shuffle_bytes_per_task = 1.0e6;
};

struct DataflowJobSpec {
  std::vector<StageSpec> stages;
};

struct DataflowConfig {
  sim::ClusterSpec cluster;
  int slots_per_machine = 0;  ///< executor slots; 0 = one per core
  std::uint64_t seed = 42;
  /// Per-task CPU intensity in [min, 1] (same realism knob as the graph
  /// engines).
  double cpu_intensity_min = 0.85;

  int effective_slots() const {
    return slots_per_machine > 0 ? slots_per_machine : cluster.machine.cores;
  }
};

namespace dataflow_names {
inline constexpr const char* kCpu = "cpu";
inline constexpr const char* kNetwork = "network";
}  // namespace dataflow_names

class DataflowEngine {
 public:
  explicit DataflowEngine(DataflowConfig config);

  trace::RunArtifacts run(const DataflowJobSpec& job) const;

  const DataflowConfig& config() const { return config_; }

 private:
  DataflowConfig config_;
};

}  // namespace g10::engine
