#include "engine/dataflow/dataflow_engine.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using trace::PathRef;

/// Phase-type names interned once per process; the engine then builds paths
/// from symbols without touching the symbol table's mutex.
struct DataflowSymbols {
  trace::Symbol job, stage, task, shuffle_write;
};

const DataflowSymbols& dataflow_symbols() {
  static const DataflowSymbols symbols = [] {
    auto& table = trace::SymbolTable::global();
    DataflowSymbols s;
    s.job = table.intern("Job");
    s.stage = table.intern("Stage");
    s.task = table.intern("Task");
    s.shuffle_write = table.intern("ShuffleWrite");
    return s;
  }();
  return symbols;
}

class DataflowRun {
 public:
  DataflowRun(const DataflowConfig& cfg, const DataflowJobSpec& job)
      : cfg_(cfg), job_(job), rng_(cfg.seed) {
    cfg_.cluster.validate();
    G10_CHECK_MSG(!job.stages.empty(), "dataflow job needs stages");
    G10_CHECK(cfg_.effective_slots() <= cfg_.cluster.machine.cores);
  }

  trace::RunArtifacts execute();

 private:
  struct Machine {
    std::unique_ptr<sim::UsageRecorder> cpu;
    std::unique_ptr<sim::FluidQueue> nic;
  };

  void start_stage(int stage, TimeNs t);
  void schedule_next_task(int machine, int slot);
  void finish_stage_compute(int stage);

  PathRef stage_path(int stage) const {
    return job_path_.child(dataflow_symbols().stage, stage);
  }

  DataflowConfig cfg_;
  const DataflowJobSpec& job_;
  Rng rng_;
  sim::Simulation sim_;
  PhaseLogger log_;
  const PathRef job_path_ = PathRef{}.child(dataflow_symbols().job, 0);
  std::vector<Machine> machines_;

  // Current stage scheduling state.
  int stage_ = -1;
  PathRef stage_path_;  ///< cached stage_path(stage_)
  int next_task_ = 0;
  int running_tasks_ = 0;
  bool stage_compute_done_ = false;
  TimeNs stage_begin_ = 0;
  bool finished_ = false;
  TimeNs makespan_ = 0;
};

void DataflowRun::schedule_next_task(int machine, int slot) {
  (void)slot;
  const StageSpec& spec = job_.stages[static_cast<std::size_t>(stage_)];
  if (next_task_ >= spec.tasks) {
    if (running_tasks_ == 0 && !stage_compute_done_) {
      stage_compute_done_ = true;
      finish_stage_compute(stage_);
    }
    return;
  }
  const int task = next_task_++;
  ++running_tasks_;
  auto& m = machines_[static_cast<std::size_t>(machine)];
  const TimeNs now = sim_.now();
  const double skewed_work =
      spec.work_per_task *
      (1.0 + spec.skew * rng_.next_exponential(1.0));
  const double intensity = rng_.next_double(cfg_.cpu_intensity_min, 1.0);
  const auto duration = static_cast<DurationNs>(
      skewed_work / (cfg_.cluster.machine.core_work_per_sec * intensity) *
      static_cast<double>(kSecond));
  const PathRef path = stage_path_.child(dataflow_symbols().task, task);
  log_.begin(path, now, machine);
  m.cpu->add(now, intensity);
  sim_.schedule_after(std::max<DurationNs>(duration, 1), [this, machine, slot,
                                                          path, intensity,
                                                          &spec] {
    auto& mm = machines_[static_cast<std::size_t>(machine)];
    const TimeNs end = sim_.now();
    mm.cpu->add(end, -intensity);
    mm.nic->enqueue(end, spec.shuffle_bytes_per_task);
    log_.end(path, end, machine);
    --running_tasks_;
    schedule_next_task(machine, slot);
  });
}

void DataflowRun::start_stage(int stage, TimeNs t) {
  if (stage >= static_cast<int>(job_.stages.size())) {
    log_.end(job_path_, t, trace::kGlobalMachine);
    makespan_ = t;
    finished_ = true;
    return;
  }
  stage_ = stage;
  stage_path_ = stage_path(stage);
  next_task_ = 0;
  running_tasks_ = 0;
  stage_compute_done_ = false;
  stage_begin_ = t;
  log_.begin(stage_path_, t, trace::kGlobalMachine);
  for (int machine = 0; machine < cfg_.cluster.machine_count; ++machine) {
    for (int slot = 0; slot < cfg_.effective_slots(); ++slot) {
      sim_.schedule_at(t, [this, machine, slot] {
        schedule_next_task(machine, slot);
      });
    }
  }
}

void DataflowRun::finish_stage_compute(int stage) {
  // The stage completes when every machine's shuffle output has drained.
  const TimeNs now = sim_.now();
  TimeNs done = now;
  for (int machine = 0; machine < cfg_.cluster.machine_count; ++machine) {
    auto& m = machines_[static_cast<std::size_t>(machine)];
    const TimeNs drained = m.nic->time_empty(now);
    const PathRef shuffle =
        stage_path(stage).child(dataflow_symbols().shuffle_write, machine);
    log_.begin(shuffle, stage_begin_, machine);
    log_.end(shuffle, drained, machine);
    done = std::max(done, drained);
  }
  log_.end(stage_path(stage), done, trace::kGlobalMachine);
  sim_.schedule_at(done, [this, stage] { start_stage(stage + 1, sim_.now()); });
}

trace::RunArtifacts DataflowRun::execute() {
  machines_.resize(static_cast<std::size_t>(cfg_.cluster.machine_count));
  for (auto& m : machines_) {
    m.cpu = std::make_unique<sim::UsageRecorder>(
        dataflow_names::kCpu,
        static_cast<double>(cfg_.cluster.machine.cores));
    m.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
  }
  log_.begin(job_path_, 0, trace::kGlobalMachine);
  start_stage(0, 0);
  sim_.run();
  G10_CHECK_MSG(finished_, "dataflow job did not finish");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int machine = 0; machine < cfg_.cluster.machine_count; ++machine) {
    auto& m = machines_[static_cast<std::size_t>(machine)];
    trace::GroundTruthSeries cpu;
    cpu.resource = dataflow_names::kCpu;
    cpu.machine = machine;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = m.cpu->series();
    artifacts.ground_truth.push_back(std::move(cpu));
    trace::GroundTruthSeries net;
    net.resource = dataflow_names::kNetwork;
    net.machine = machine;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = m.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

DataflowEngine::DataflowEngine(DataflowConfig config)
    : config_(std::move(config)) {
  config_.cluster.validate();
}

trace::RunArtifacts DataflowEngine::run(const DataflowJobSpec& job) const {
  DataflowRun run(config_, job);
  return run.execute();
}

}  // namespace g10::engine
