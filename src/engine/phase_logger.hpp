// Phase/blocking log emission shared by both simulated engines.
//
// Tracks open phases so unbalanced begin/end pairs are caught at the source
// (inside the engine) instead of during later analysis.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "trace/records.hpp"

namespace g10::engine {

/// How a crash victim's already-open phases appear in the final log.
///
/// kReconciled (default): the victim's log shipper flushes closing records
/// at the crash instant, so the dumped trace stays balanced and strict
/// analysis succeeds with the recovery window attributed to Retry/Recovery
/// blocking. kTruncated reproduces a raw crashed logger: open phases keep
/// their BEGIN forever and only a lenient analysis can repair the trace.
enum class CrashLogStyle {
  kReconciled,
  kTruncated,
};

class PhaseLogger {
 public:
  void begin(const trace::PhasePath& path, TimeNs time,
             trace::MachineId machine);
  void end(const trace::PhasePath& path, TimeNs time,
           trace::MachineId machine);

  /// Records that `path` was blocked on `resource` over [begin, end).
  void block(const std::string& resource, const trace::PhasePath& path,
             TimeNs begin, TimeNs end, trace::MachineId machine);

  /// Drops an open phase WITHOUT emitting an End record, leaving a truncated
  /// BEGIN-without-END in the log — exactly what a crashed worker's logger
  /// would have produced. Returns false when the phase was not open.
  bool abandon(const trace::PhasePath& path);

  /// True when `path` has a Begin without a matching End (or abandon) yet.
  bool is_open(const trace::PhasePath& path) const;

  /// Begin time of an open phase; nullopt when not open. (Some phases are
  /// logged ahead of simulated time — e.g. WorkerCompute begins at t+prep —
  /// so crash handling clamps end times to at least the begin.)
  std::optional<TimeNs> open_begin(const trace::PhasePath& path) const;

  std::size_t open_phase_count() const { return open_.size(); }

  /// Moves the accumulated records out; the logger must have no open phases.
  std::vector<trace::PhaseEventRecord> take_phase_events();
  std::vector<trace::BlockingEventRecord> take_blocking_events();

 private:
  std::vector<trace::PhaseEventRecord> phase_events_;
  std::vector<trace::BlockingEventRecord> blocking_events_;
  std::unordered_map<std::string, TimeNs> open_;  // path -> begin time
};

}  // namespace g10::engine
