// Phase/blocking log emission shared by both simulated engines.
//
// Tracks open phases so unbalanced begin/end pairs are caught at the source
// (inside the engine) instead of during later analysis.
//
// This is the hot edge of trace generation, so everything is interned: the
// engines pass PathRef (inline (symbol, index) pairs with a precomputed
// hash), open-phase tracking keys on that hash, and records are stored in
// interned form. The string-typed PhaseEventRecord/BlockingEventRecord
// forms are rendered exactly once, at take_*() time, in emission order —
// which is what keeps logs byte-identical to the pre-interning ones.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "trace/records.hpp"
#include "trace/symbol_table.hpp"

namespace g10::engine {

/// How a crash victim's already-open phases appear in the final log.
///
/// kReconciled (default): the victim's log shipper flushes closing records
/// at the crash instant, so the dumped trace stays balanced and strict
/// analysis succeeds with the recovery window attributed to Retry/Recovery
/// blocking. kTruncated reproduces a raw crashed logger: open phases keep
/// their BEGIN forever and only a lenient analysis can repair the trace.
enum class CrashLogStyle {
  kReconciled,
  kTruncated,
};

class PhaseLogger {
 public:
  void begin(const trace::PathRef& path, TimeNs time,
             trace::MachineId machine);
  void end(const trace::PathRef& path, TimeNs time, trace::MachineId machine);

  /// Records that `path` was blocked on `resource` over [begin, end).
  void block(std::string_view resource, const trace::PathRef& path,
             TimeNs begin, TimeNs end, trace::MachineId machine);

  /// Drops an open phase WITHOUT emitting an End record, leaving a truncated
  /// BEGIN-without-END in the log — exactly what a crashed worker's logger
  /// would have produced. Returns false when the phase was not open.
  bool abandon(const trace::PathRef& path);

  /// True when `path` has a Begin without a matching End (or abandon) yet.
  bool is_open(const trace::PathRef& path) const;

  /// Begin time of an open phase; nullopt when not open. (Some phases are
  /// logged ahead of simulated time — e.g. WorkerCompute begins at t+prep —
  /// so crash handling clamps end times to at least the begin.)
  std::optional<TimeNs> open_begin(const trace::PathRef& path) const;

  std::size_t open_phase_count() const { return open_.size(); }

  /// Renders and moves the accumulated records out; the logger must have no
  /// open phases. Records appear in emission order.
  std::vector<trace::PhaseEventRecord> take_phase_events();
  std::vector<trace::BlockingEventRecord> take_blocking_events();

 private:
  struct InternedPhaseEvent {
    trace::PhaseEventRecord::Kind kind;
    trace::PathRef path;
    TimeNs time;
    trace::MachineId machine;
  };
  struct InternedBlockingEvent {
    trace::Symbol resource;
    trace::PathRef path;
    TimeNs begin;
    TimeNs end;
    trace::MachineId machine;
  };

  std::vector<InternedPhaseEvent> phase_events_;
  std::vector<InternedBlockingEvent> blocking_events_;
  std::unordered_map<trace::PathRef, TimeNs, trace::PathRefHash>
      open_;  // path -> begin time
};

}  // namespace g10::engine
