// Per-worker, per-destination communication coalescing (DESIGN.md §13).
//
// Both engines used to hand every compute chunk's remote traffic to the
// substrate as one transfer per (chunk, destination): with a live
// sim::ReliableChannel that means one ack'd plan — timeout draws, backoff,
// retransmit bookkeeping — per chunk per destination, so retransmit cost
// scales with chunk count. Real systems (Dorylus' CommManager framing,
// GraphLab's buffered remote updates) instead coalesce small sends into
// bounded per-destination buffers and flush a buffer when it reaches a
// frame-size limit or a flush deadline expires. CommBatcher is that layer:
// a dense workers x workers byte matrix the engines deposit into, with the
// engines deciding *when* a returned threshold crossing or a deadline turns
// into an actual NIC handoff / channel plan.
//
// The batcher itself is simulation-agnostic: it tracks bytes and flush
// statistics only. Time never enters this class — the engines own the
// simulated-time flush timers so crash epochs can cancel them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace g10::engine {

/// Tuning knobs for communication batching. Batching is on by default;
/// `max_batch_bytes = 0` disables it entirely (the `--batch-bytes 0` escape
/// hatch), restoring the one-transfer-per-chunk-per-destination behavior
/// byte-for-byte.
struct CommBatcherConfig {
  /// Frame size: a (worker, destination) buffer that reaches this many
  /// bytes is flushed immediately. 0 disables batching.
  double max_batch_bytes = 262144.0;
  /// Simulated-time flush deadline: traffic must not sit in a buffer longer
  /// than this even if the size threshold is never reached.
  DurationNs flush_after = kMillisecond;

  bool enabled() const { return max_batch_bytes > 0.0; }
};

/// Why a buffer was drained; recorded per flush in CommBatcherStats.
enum class FlushCause {
  kSize,     ///< buffer crossed max_batch_bytes
  kTimer,    ///< flush_after deadline expired
  kBarrier,  ///< end of the compute phase / exchange step drains everything
};

struct CommBatcherStats {
  std::int64_t deposits = 0;
  std::int64_t size_flushes = 0;
  std::int64_t timer_flushes = 0;
  std::int64_t barrier_flushes = 0;
  std::int64_t dropped_buffers = 0;  ///< non-empty buffers lost to a crash
  double bytes_deposited = 0.0;
  double bytes_flushed = 0.0;

  std::int64_t total_flushes() const {
    return size_flushes + timer_flushes + barrier_flushes;
  }
};

class CommBatcher {
 public:
  /// What a deposit did to the (src, dst) buffer; the engine turns these
  /// into flushes and timer arms.
  struct Deposit {
    bool crossed = false;        ///< buffer reached max_batch_bytes
    bool first_pending = false;  ///< src went from idle to holding bytes
  };

  /// One drained buffer from take_all().
  struct Flush {
    int dst = 0;
    double bytes = 0.0;
  };

  CommBatcher() = default;
  CommBatcher(const CommBatcherConfig& config, int workers);

  bool enabled() const { return workers_ > 0 && config_.enabled(); }
  DurationNs flush_after() const { return config_.flush_after; }

  Deposit deposit(int src, int dst, double bytes);

  /// Total buffered bytes awaiting flush on `src`.
  double pending(int src) const {
    return pending_[static_cast<std::size_t>(src)];
  }

  /// Drains the (src, dst) buffer; returns its bytes (0 if already empty).
  double take(int src, int dst, FlushCause cause);

  /// Drains every non-empty buffer of `src` into `out` (cleared first),
  /// ascending by destination — the same deterministic order the unbatched
  /// per-destination planning loops use.
  void take_all(int src, FlushCause cause, std::vector<Flush>& out);

  /// Crash teardown: the worker's buffered traffic is simply lost, exactly
  /// like its in-flight NIC queue. No flush is recorded.
  void clear(int src);

  const CommBatcherStats& stats() const { return stats_; }

 private:
  double& buffer(int src, int dst) {
    return buffers_[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(workers_) +
                    static_cast<std::size_t>(dst)];
  }
  void count_flush(FlushCause cause, double bytes);

  CommBatcherConfig config_;
  int workers_ = 0;
  std::vector<double> buffers_;  ///< workers x workers, row-major by src
  std::vector<double> pending_;  ///< per-src totals
  CommBatcherStats stats_;
};

}  // namespace g10::engine
