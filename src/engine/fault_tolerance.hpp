// Fault-tolerance configuration shared by both simulated engines.
//
// Both the Pregel and the GAS engine recover from injected worker crashes
// the same way — periodic snapshots, heartbeat failure detection, restart
// from the last complete checkpoint — and both carry remote traffic over a
// sim::ReliableChannel. These knobs parameterize that machinery; engine
// headers embed them in their config structs.
#pragma once

namespace g10::engine {

/// Checkpoint/restart fault tolerance. Checkpointing is armed only when the
/// fault spec contains a crash event, so fault-free runs stay byte-identical
/// to runs produced before this feature existed.
struct CheckpointConfig {
  int interval_steps = 1;               ///< checkpoint every k supersteps
                                        ///< (Pregel) / iterations (GAS)
  double base_seconds = 0.010;          ///< fixed per-checkpoint barrier cost
  double work_per_vertex = 30.0;        ///< serialization work per vertex
  double restart_seconds = 0.25;        ///< master detects + reschedules
  double reload_work_per_vertex = 60.0; ///< deserialize state during recovery
};

/// Retransmission policy of the reliable channel carrying remote sends: a
/// lost message blocks the sender ("Retry" blocking event) for an
/// exponentially growing, deterministically jittered timeout before the
/// attempt is repeated. Partitioned links are ridden out past the budget;
/// plain loss is forced through once the budget ends.
struct RetryConfig {
  double timeout_seconds = 0.02;  ///< first retransmit timeout
  double backoff = 2.0;           ///< timeout multiplier per failed attempt
  double jitter = 0.25;           ///< deterministic timeout jitter fraction
  int max_attempts = 4;           ///< transmissions before the budget ends
};

}  // namespace g10::engine
