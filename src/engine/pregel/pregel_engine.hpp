// Pregel-style BSP engine — the Apache Giraph stand-in (DESIGN.md §1).
//
// Executes a PregelProgram on a simulated cluster under the discrete-event
// kernel, producing (a) correct algorithm output and (b) the performance
// artifacts the real Giraph produces for Grade10: hierarchical phase logs,
// blocking events (stop-the-world GC pauses, bounded-message-queue stalls),
// and ground-truth CPU / network usage per machine.
//
// Phase hierarchy emitted (types in parentheses are repeated):
//   Job.0
//   ├── LoadGraph.0                  └── LoadWorker.w
//   ├── Execute.0
//   │   ├── (Superstep.s)
//   │   │   ├── WorkerPrepare.w
//   │   │   ├── WorkerCompute.w      └── (ComputeThread.t)
//   │   │   ├── WorkerCommunicate.w  (concurrent with WorkerCompute)
//   │   │   ├── WorkerBarrier.w
//   │   │   └── (GcPause.k)          (when a collection happens)
//   │   ├── (Checkpoint.k)           └── CheckpointWorker.w  (under faults)
//   │   └── (Recovery.r)             └── RecoveryWorker.w    (after a crash)
//   └── StoreResults.0               └── StoreWorker.w
//
// Consumable resources recorded: "cpu" (cores in use, per machine) and
// "network" (NIC transmit bytes/s, per machine). Blocking resources
// referenced in blocking events: "GC", "MessageQueue", and — under fault
// injection — "Retry" (send retry-timeout backoff) and "Recovery"
// (checkpoint-restart downtime).
//
// Fault injection (ClusterSpec::faults): remote sends travel through a
// sim::ReliableChannel (ack/retransmit with exponential backoff, riding out
// `part:` network partitions), so message loss costs time — never
// correctness. Worker crashes are detected by surviving workers through a
// sim::FailureDetector heartbeat timeout, then handled with
// checkpoint/restart recovery. By default (CrashLogStyle::kReconciled) the
// victim's log shipper flushes closing records at the crash instant so the
// trace stays balanced and strict analysis attributes the lost time to
// Retry/Recovery; CrashLogStyle::kTruncated reproduces a raw crashed JVM's
// log (BEGIN-without-END) instead. Superstep path indices keep counting
// across re-executions (Superstep.3 crashed -> recovery -> Superstep.4
// re-runs the same logical superstep), so every path in the log stays
// unique.
#pragma once

#include <cstdint>
#include <memory>

#include "algorithms/pregel_program.hpp"
#include "engine/comm_batcher.hpp"
#include "engine/fault_tolerance.hpp"
#include "engine/phase_logger.hpp"
#include "graph/graph.hpp"
#include "sim/cluster.hpp"
#include "sim/failure_detector.hpp"
#include "trace/records.hpp"

namespace g10::engine {

/// Work-unit costs of the Giraph stand-in. Values are deliberately high
/// relative to the GAS engine's: Giraph pays managed-runtime overhead per
/// object touched (boxing, reference chasing), which is the root of the
/// paper's observation that Giraph rarely saturates compute.
struct PregelCostModel {
  double work_per_vertex = 400.0;   ///< per active vertex visit
  double work_per_edge = 60.0;      ///< per out-edge scanned / message sent
  double work_per_message = 45.0;   ///< per message received & deserialized
  double bytes_per_message = 24.0;  ///< wire bytes per remote message
  double work_per_load_edge = 90.0;
  double work_per_store_vertex = 120.0;
  double bytes_per_load_edge = 16.0;  ///< ingest traffic during load
  double prepare_seconds = 0.004;     ///< per-worker superstep setup
  double barrier_sync_seconds = 0.002;
  /// Multiplicative jitter on chunk durations, uniform in [1-j, 1+j].
  double work_jitter = 0.05;
  /// Per-chunk CPU intensity is uniform in [cpu_intensity_min, 1]: a JVM
  /// compute thread rarely retires a full core's worth of work (memory
  /// stalls, reference chasing, JIT). Lower intensity stretches the chunk
  /// while its recorded CPU usage drops below one core — exactly the
  /// model-vs-reality gap the paper's tuned Exact(1 core) rule papers over.
  double cpu_intensity_min = 0.80;
};

/// Unmodeled background CPU activity per machine (OS daemons, JIT compiler
/// threads): a clamped random walk added to the ground-truth CPU signal.
/// Grade10's models do not describe it, which contributes realistic
/// attribution error (paper §IV-B).
struct NoiseConfig {
  bool enabled = true;
  DurationNs interval = 25 * kMillisecond;
  double max_cores = 1.2;
  double sigma = 0.3;  ///< random-walk step (cores)
};

/// Stop-the-world generational GC model.
struct GcConfig {
  bool enabled = true;
  double young_gen_bytes = 192e6;          ///< collection trigger threshold
  double bytes_per_message = 96.0;         ///< allocation per message object
  double bytes_per_vertex_update = 48.0;
  double pause_base_seconds = 0.035;
  double pause_per_byte = 4.0e-10;         ///< pause growth with heap churn
  double pause_jitter = 0.25;              ///< uniform +- fraction
};

/// Bounded outgoing message buffer (Giraph's flow control): a compute
/// thread that finds the buffer above capacity blocks until it drains.
struct QueueConfig {
  double capacity_bytes = 4e6;
  double resume_fraction = 0.5;  ///< unblock when level <= fraction*capacity
};

struct PregelConfig {
  sim::ClusterSpec cluster;
  int threads_per_worker = 0;     ///< 0 = one per core
  int partitions_per_thread = 4;  ///< dynamic load-balancing granularity
  int chunk_vertices = 192;       ///< vertices processed per scheduling chunk
  PregelCostModel costs;
  GcConfig gc;
  QueueConfig queue;
  /// Per-destination send coalescing (on by default; max_batch_bytes = 0
  /// disables it and restores one transfer per chunk per destination).
  CommBatcherConfig batch;
  NoiseConfig noise;
  CheckpointConfig checkpoint;
  RetryConfig retry;
  /// Heartbeat failure detection; its seed is folded with `seed` so two runs
  /// differing only in the engine seed also shift their detection latency.
  sim::FailureDetectorConfig heartbeat;
  CrashLogStyle crash_log = CrashLogStyle::kReconciled;
  std::uint64_t seed = 42;

  int effective_threads() const {
    return threads_per_worker > 0 ? threads_per_worker
                                  : cluster.machine.cores;
  }
};

/// Names used in logs and in the matching Grade10 resource model.
namespace pregel_names {
inline constexpr const char* kCpu = "cpu";
inline constexpr const char* kNetwork = "network";
inline constexpr const char* kGc = "GC";
inline constexpr const char* kMessageQueue = "MessageQueue";
inline constexpr const char* kRetry = "Retry";
inline constexpr const char* kRecovery = "Recovery";
}  // namespace pregel_names

class PregelEngine {
 public:
  explicit PregelEngine(PregelConfig config);

  /// Runs the program to completion; deterministic for a fixed config.
  trace::RunArtifacts run(const graph::Graph& graph,
                          const algorithms::PregelProgram& program) const;

  /// Deterministic closed-form estimate of the run's makespan, used to
  /// resolve percent-based fault times ("crash:w2@40%"). Intentionally
  /// crude: total modeled work over aggregate cluster throughput, capped at
  /// 64 supersteps for convergence-bounded programs.
  TimeNs estimate_horizon(const graph::Graph& graph,
                          const algorithms::PregelProgram& program) const;

  const PregelConfig& config() const { return config_; }

 private:
  PregelConfig config_;
};

}  // namespace g10::engine
