#include "engine/pregel/pregel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "graph/partition.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using algorithms::Combiner;
using algorithms::PregelOutbox;
using algorithms::PregelProgram;
using graph::Graph;
using graph::VertexId;
using trace::PhasePath;

// Seed offset for the fault injector's forked RNG stream: fault decisions
// must not perturb the engine's own draw sequence.
constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Closed-form makespan estimate shared by PregelEngine::estimate_horizon
/// and percent-time resolution inside a run. Deliberately ignores GC, queue
/// stalls and jitter — fault times only need a stable, roughly-scaled
/// anchor, not an accurate prediction.
TimeNs pregel_nominal_horizon(const PregelConfig& cfg, const Graph& g,
                              const PregelProgram& prog) {
  const double n = static_cast<double>(g.vertex_count());
  const double m = static_cast<double>(g.edge_count());
  const double cluster_rate = static_cast<double>(cfg.cluster.machine_count) *
                              static_cast<double>(cfg.cluster.machine.cores) *
                              cfg.cluster.machine.core_work_per_sec;
  const int steps = std::min(prog.max_supersteps(), 64);
  const double step_work =
      n * cfg.costs.work_per_vertex +
      m * (cfg.costs.work_per_edge + cfg.costs.work_per_message);
  const double total_work = m * cfg.costs.work_per_load_edge +
                            n * cfg.costs.work_per_store_vertex +
                            static_cast<double>(steps) * step_work;
  const double seconds =
      total_work / cluster_rate +
      static_cast<double>(steps) *
          (cfg.costs.prepare_seconds + cfg.costs.barrier_sync_seconds);
  return std::max<TimeNs>(
      kMillisecond,
      static_cast<TimeNs>(seconds * static_cast<double>(kSecond)));
}

/// Whole-run mutable state. One instance per PregelEngine::run call; the
/// event callbacks all close over `this`.
class PregelRun {
 public:
  PregelRun(const PregelConfig& cfg, const Graph& g, const PregelProgram& prog)
      : cfg_(cfg),
        g_(g),
        prog_(prog),
        rng_(cfg.seed),
        faults_(cfg.cluster.faults, cfg.seed ^ kFaultSeedSalt),
        workers_(cfg.cluster.machine_count),
        threads_(cfg.effective_threads()),
        combiner_(prog.combiner()) {
    cfg_.cluster.validate();
    G10_CHECK(g_.vertex_count() > 0);
    G10_CHECK_MSG(threads_ <= cfg_.cluster.machine.cores,
                  "threads per worker must not exceed cores");
    G10_CHECK(cfg_.checkpoint.interval_supersteps > 0);
    G10_CHECK(cfg_.retry.max_attempts >= 0);
  }

  trace::RunArtifacts execute();

 private:
  // ---- static per-run structures -----------------------------------------
  struct ThreadState {
    int partition = -1;    ///< index into worker partitions, -1 = none held
    std::size_t pos = 0;   ///< cursor into the partition's active list
    bool done = false;
    bool waiting_gc = false;
    bool phase_open = false;
    double running_intensity = 0.0;  ///< CPU held by an in-flight chunk
    PhasePath phase;  ///< ComputeThread path for the current superstep
  };

  struct WorkerState {
    std::vector<std::vector<VertexId>> partitions;   ///< static vertex split
    std::vector<std::vector<VertexId>> active_lists; ///< per partition, per superstep
    std::size_t next_partition = 0;
    int threads_done = 0;
    int running_chunks = 0;

    double alloc_bytes = 0.0;
    bool gc_active = false;
    TimeNs gc_end = 0;
    double gc_cores_taken = 0.0;
    PhasePath gc_phase;

    std::unique_ptr<sim::FluidQueue> nic;
    std::unique_ptr<sim::UsageRecorder> cpu;
    StepFunction noise;        ///< unmodeled background CPU
    double noise_level = 0.0;
    TimeNs compute_end = 0;
    TimeNs ready = 0;  ///< compute + communication + GC all finished
    std::vector<ThreadState> threads;
  };

  // ---- helpers ------------------------------------------------------------
  double seconds_for_work(double work) const {
    return work / cfg_.cluster.machine.core_work_per_sec;
  }
  DurationNs ns_for_work(double work) const {
    return static_cast<DurationNs>(seconds_for_work(work) *
                                   static_cast<double>(kSecond));
  }
  static DurationNs ns_from_seconds(double s) {
    return static_cast<DurationNs>(s * static_cast<double>(kSecond));
  }
  double jitter(double magnitude) {
    return 1.0 + magnitude * (2.0 * rng_.next_double() - 1.0);
  }

  std::uint32_t message_count(VertexId v) const {
    return combiner_ == Combiner::kNone
               ? static_cast<std::uint32_t>(msg_list_cur_[v].size())
               : msg_count_cur_[v];
  }

  void deliver(VertexId target, double message) {
    switch (combiner_) {
      case Combiner::kSum:
        msg_combined_next_[target] += message;
        ++msg_count_next_[target];
        break;
      case Combiner::kMin:
        if (msg_count_next_[target] == 0 ||
            message < msg_combined_next_[target]) {
          msg_combined_next_[target] = message;
        }
        ++msg_count_next_[target];
        break;
      case Combiner::kNone:
        msg_list_next_[target].push_back(message);
        break;
    }
  }

  /// Schedules `fn` at `t`, cancelled implicitly when a crash bumps the
  /// epoch: every event belonging to the aborted execution attempt carries
  /// the epoch it was scheduled in and becomes a no-op once stale.
  template <typename Fn>
  void schedule_epoch(TimeNs t, Fn fn) {
    sim_.schedule_at(t, [this, e = epoch_, fn = std::move(fn)] {
      if (e == epoch_) fn();
    });
  }

  // ---- phases of the run ----------------------------------------------------
  void noise_tick(int w);
  void load_graph();
  void start_superstep(TimeNs t);
  void thread_continue(int w, int th);
  void finish_chunk(int w, int th, double remote_bytes, double alloc_bytes,
                    double intensity);
  void attempt_send(int w, int th, double remote_bytes, int attempt);
  void thread_done(int w, int th);
  void start_gc(int w);
  void end_gc(int w);
  void worker_compute_done(int w);
  void finish_superstep(TimeNs barrier_time);
  void finish_execute(TimeNs t);

  // ---- fault tolerance ------------------------------------------------------
  void save_checkpoint_state();
  void restore_checkpoint_state();
  TimeNs write_checkpoint(TimeNs t);
  void complete_checkpoint();
  void abort_checkpoint(int victim, TimeNs now);
  void schedule_next_crash(TimeNs floor);
  void schedule_nic_changes();
  void fire_crash();
  void close_or_abandon(const PhasePath& path, bool dead, TimeNs now,
                        trace::MachineId machine);
  double worker_vertex_count(int w) const;

  PhasePath superstep_path() const {
    // Paths use the monotonic instance counter, not the logical superstep:
    // after a crash the re-executed superstep gets a fresh index, keeping
    // every path in the log unique.
    return PhasePath{}
        .child("Job", 0)
        .child("Execute", 0)
        .child("Superstep", superstep_instance_);
  }

  // ---- members --------------------------------------------------------------
  PregelConfig cfg_;
  const Graph& g_;
  const PregelProgram& prog_;
  Rng rng_;
  sim::FaultInjector faults_;
  int workers_;
  int threads_;
  Combiner combiner_;

  sim::Simulation sim_;
  PhaseLogger log_;
  graph::EdgeCutPartition owner_;
  std::vector<WorkerState> ws_;

  std::vector<double> value_;
  std::vector<char> halted_;
  std::vector<double> msg_combined_cur_, msg_combined_next_;
  std::vector<std::uint32_t> msg_count_cur_, msg_count_next_;
  std::vector<std::vector<double>> msg_list_cur_, msg_list_next_;

  int superstep_ = 0;           ///< logical superstep (algorithm semantics)
  int superstep_instance_ = 0;  ///< Superstep path index (never reused)
  int workers_done_ = 0;
  int gc_seq_ = 0;  ///< GcPause instance index within the current superstep
  bool execute_finished_ = false;
  TimeNs makespan_ = 0;

  // ---- fault-injection state ------------------------------------------------
  bool checkpointing_ = false;  ///< armed iff the spec contains a crash
  int epoch_ = 0;               ///< bumped on every crash
  int recovery_seq_ = 0;
  int checkpoint_seq_ = 0;
  bool checkpoint_active_ = false;  ///< a checkpoint write is in flight
  PhasePath checkpoint_path_;
  std::vector<TimeNs> checkpoint_wend_;  ///< per-worker write-finish times
  struct Snapshot {
    int superstep = 0;
    std::vector<double> value;
    std::vector<char> halted;
    std::vector<double> msg_combined;
    std::vector<std::uint32_t> msg_count;
    std::vector<std::vector<double>> msg_list;
  } snapshot_;
};

void PregelRun::noise_tick(int w) {
  if (execute_finished_) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  state.noise_level = std::clamp(
      state.noise_level + rng_.next_normal(0.0, cfg_.noise.sigma), 0.0,
      cfg_.noise.max_cores);
  state.noise.set(sim_.now(), state.noise_level);
  sim_.schedule_after(cfg_.noise.interval, [this, w] { noise_tick(w); });
}

void PregelRun::load_graph() {
  const VertexId n = g_.vertex_count();
  owner_ = graph::partition_by_hash(g_, static_cast<std::uint32_t>(workers_));

  ws_.resize(static_cast<std::size_t>(workers_));
  std::vector<std::vector<VertexId>> worker_vertices(workers_);
  for (VertexId v = 0; v < n; ++v) worker_vertices[owner_.owner[v]].push_back(v);

  const int partitions = threads_ * cfg_.partitions_per_thread;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
    state.cpu = std::make_unique<sim::UsageRecorder>(
        pregel_names::kCpu, static_cast<double>(cfg_.cluster.machine.cores));
    state.threads.resize(static_cast<std::size_t>(threads_));
    // Contiguous split of the worker's vertices into partitions.
    const auto& mine = worker_vertices[static_cast<std::size_t>(w)];
    state.partitions.resize(static_cast<std::size_t>(partitions));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      state.partitions[i * partitions / std::max<std::size_t>(mine.size(), 1)]
          .push_back(mine[i]);
    }
    state.active_lists.resize(state.partitions.size());
  }

  value_.resize(n);
  for (VertexId v = 0; v < n; ++v) value_[v] = prog_.initial_value(v, g_);
  halted_.assign(n, 0);
  if (combiner_ == Combiner::kNone) {
    msg_list_cur_.resize(n);
    msg_list_next_.resize(n);
  } else {
    msg_combined_cur_.assign(n, 0.0);
    msg_combined_next_.assign(n, 0.0);
    msg_count_cur_.assign(n, 0);
    msg_count_next_.assign(n, 0);
  }

  // --- emit the load phase ---------------------------------------------------
  const PhasePath job = PhasePath{}.child("Job", 0);
  const PhasePath load = job.child("LoadGraph", 0);
  log_.begin(job, 0, trace::kGlobalMachine);
  log_.begin(load, 0, trace::kGlobalMachine);
  TimeNs load_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double edges = 0.0;
    for (const auto& part : state.partitions) {
      for (VertexId v : part) edges += static_cast<double>(g_.out_degree(v));
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        edges * cfg_.costs.work_per_load_edge / cores * jitter(0.05) /
        faults_.speed_factor(w, 0));
    state.nic->enqueue(0, edges * cfg_.costs.bytes_per_load_edge);
    state.cpu->add(0, cores);
    state.cpu->add(duration, -cores);
    const PhasePath worker_load = load.child("LoadWorker", w);
    log_.begin(worker_load, 0, w);
    const TimeNs done = std::max(duration, state.nic->time_empty(duration));
    log_.end(worker_load, done, w);
    load_end = std::max(load_end, done);
  }
  log_.end(load, load_end, trace::kGlobalMachine);
  log_.begin(job.child("Execute", 0), load_end, trace::kGlobalMachine);
  if (cfg_.noise.enabled) {
    for (int w = 0; w < workers_; ++w) {
      sim_.schedule_at(0, [this, w] { noise_tick(w); });
    }
  }
  schedule_epoch(load_end, [this] { start_superstep(sim_.now()); });
  if (checkpointing_) save_checkpoint_state();
  schedule_next_crash(load_end);
  schedule_nic_changes();
}

void PregelRun::start_superstep(TimeNs t) {
  // Determine the active set; stop when nothing is runnable.
  std::size_t total_active = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.next_partition = 0;
    state.threads_done = 0;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      auto& active = state.active_lists[p];
      active.clear();
      for (VertexId v : state.partitions[p]) {
        if (!halted_[v] || message_count(v) > 0) active.push_back(v);
      }
      total_active += active.size();
    }
  }
  if (total_active == 0 || superstep_ >= prog_.max_supersteps()) {
    finish_execute(t);
    return;
  }

  gc_seq_ = 0;
  workers_done_ = 0;
  const PhasePath step = superstep_path();
  log_.begin(step, t, trace::kGlobalMachine);
  const DurationNs prep = ns_from_seconds(cfg_.costs.prepare_seconds);
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PhasePath prepare = step.child("WorkerPrepare", w);
    log_.begin(prepare, t, w);
    log_.end(prepare, t + prep, w);
    // Prepare burns one core per worker (bookkeeping is single-threaded).
    state.cpu->add(t, 1.0);
    state.cpu->add(t + prep, -1.0);
    log_.begin(step.child("WorkerCompute", w), t + prep, w);
    log_.begin(step.child("WorkerCommunicate", w), t + prep, w);
    for (int th = 0; th < threads_; ++th) {
      auto& thread = state.threads[static_cast<std::size_t>(th)];
      thread = ThreadState{};
      thread.phase = step.child("WorkerCompute", w).child("ComputeThread", th);
      schedule_epoch(t + prep, [this, w, th] { thread_continue(w, th); });
    }
  }
}

void PregelRun::thread_continue(int w, int th) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  const TimeNs now = sim_.now();
  if (thread.done) return;
  if (!thread.phase_open) {
    log_.begin(thread.phase, now, w);
    thread.phase_open = true;
  }
  // 1. Stop-the-world GC on this worker: wait until it completes.
  if (state.gc_active) {
    if (!thread.waiting_gc) {
      thread.waiting_gc = true;
      log_.block(pregel_names::kGc, thread.phase, now, state.gc_end, w);
    }
    return;  // end_gc() resumes us
  }
  // 2. Outgoing message buffer over capacity: backpressure stall.
  if (state.nic->level(now) > cfg_.queue.capacity_bytes) {
    const TimeNs resume = state.nic->time_until_level(
        now, cfg_.queue.capacity_bytes * cfg_.queue.resume_fraction);
    log_.block(pregel_names::kMessageQueue, thread.phase, now, resume, w);
    schedule_epoch(resume, [this, w, th] { thread_continue(w, th); });
    return;
  }
  // 3. Acquire a partition if we do not hold one.
  while (thread.partition < 0 ||
         thread.pos >=
             state.active_lists[static_cast<std::size_t>(thread.partition)]
                 .size()) {
    if (state.next_partition >= state.partitions.size()) {
      thread_done(w, th);
      return;
    }
    thread.partition = static_cast<int>(state.next_partition++);
    thread.pos = 0;
  }
  // 4. Process one chunk of active vertices.
  const auto& active =
      state.active_lists[static_cast<std::size_t>(thread.partition)];
  const std::size_t begin = thread.pos;
  const std::size_t end = std::min(
      active.size(), begin + static_cast<std::size_t>(cfg_.chunk_vertices));
  thread.pos = end;

  double work = 0.0;
  double remote_bytes = 0.0;
  double alloc = 0.0;
  PregelOutbox out;
  std::span<const double> empty;
  for (std::size_t i = begin; i < end; ++i) {
    const VertexId v = active[i];
    const std::uint32_t msgs = message_count(v);
    std::span<const double> messages = empty;
    if (combiner_ == Combiner::kNone) {
      messages = msg_list_cur_[v];
    } else if (msgs > 0) {
      messages = std::span<const double>(&msg_combined_cur_[v], 1);
    }
    out = PregelOutbox{};
    prog_.compute(v, value_[v], messages, superstep_, g_, out);
    halted_[v] = out.vote_to_halt ? 1 : 0;
    work += cfg_.costs.work_per_vertex +
            cfg_.costs.work_per_message * static_cast<double>(msgs);
    alloc += cfg_.gc.bytes_per_vertex_update;
    if (out.send_to_all_neighbors) {
      const auto nbrs = g_.out_neighbors(v);
      work += cfg_.costs.work_per_edge * static_cast<double>(nbrs.size());
      for (graph::EdgeIndex e = 0; e < nbrs.size(); ++e) {
        const VertexId u = nbrs[e];
        const double payload =
            out.add_edge_weight
                ? out.message + g_.edge_weight(g_.edge_id(v, e))
                : out.message;
        deliver(u, payload);
        alloc += cfg_.gc.bytes_per_message;
        if (owner_.owner[u] != static_cast<std::uint32_t>(w)) {
          remote_bytes += cfg_.costs.bytes_per_message;
        }
      }
    } else {
      // Giraph still scans the edge list of a computed vertex.
      work += 0.25 * cfg_.costs.work_per_edge *
              static_cast<double>(g_.out_degree(v));
    }
  }
  // A JVM thread's effective CPU intensity fluctuates below one core;
  // the same work then takes proportionally longer. An active slowdown
  // window stretches the chunk further (sampled once, at dispatch).
  const double intensity =
      rng_.next_double(cfg_.costs.cpu_intensity_min, 1.0);
  const DurationNs duration = std::max<DurationNs>(
      1, ns_for_work(work * jitter(cfg_.costs.work_jitter) / intensity /
                     faults_.speed_factor(w, now)));
  state.cpu->add(now, intensity);
  thread.running_intensity = intensity;
  ++state.running_chunks;
  schedule_epoch(now + duration,
                 [this, w, th, remote_bytes, alloc, intensity] {
                   finish_chunk(w, th, remote_bytes, alloc, intensity);
                 });
}

void PregelRun::finish_chunk(int w, int th, double remote_bytes,
                             double alloc_bytes, double intensity) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.cpu->add(now, -intensity);
  state.threads[static_cast<std::size_t>(th)].running_intensity = 0.0;
  --state.running_chunks;
  state.alloc_bytes += alloc_bytes;
  if (state.gc_active) {
    // GC is running: this core is immediately taken over by the collector.
    state.cpu->add(now, 1.0);
    state.gc_cores_taken += 1.0;
  } else if (cfg_.gc.enabled && state.alloc_bytes > cfg_.gc.young_gen_bytes) {
    start_gc(w);
  }
  attempt_send(w, th, remote_bytes, 0);
}

void PregelRun::attempt_send(int w, int th, double remote_bytes, int attempt) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  const TimeNs now = sim_.now();
  // Under NIC message loss the flush of this chunk's remote messages can
  // fail; the thread then backs off with an exponentially growing timeout
  // and retries, which Grade10 sees as "Retry" blocking events. After
  // max_attempts the send is forced through (the simulated transport is
  // reliable underneath — correctness is never at stake, only time).
  if (remote_bytes > 0.0 && attempt < cfg_.retry.max_attempts &&
      faults_.send_fails(w, now)) {
    const double timeout_seconds =
        cfg_.retry.timeout_seconds *
        std::pow(cfg_.retry.backoff, static_cast<double>(attempt));
    const TimeNs resume = now + ns_from_seconds(timeout_seconds);
    log_.block(pregel_names::kRetry, thread.phase, now, resume, w);
    schedule_epoch(resume, [this, w, th, remote_bytes, attempt] {
      attempt_send(w, th, remote_bytes, attempt + 1);
    });
    return;
  }
  state.nic->enqueue(now, remote_bytes);
  thread_continue(w, th);
}

void PregelRun::start_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  const double pause_seconds =
      (cfg_.gc.pause_base_seconds + cfg_.gc.pause_per_byte * state.alloc_bytes) *
      jitter(cfg_.gc.pause_jitter);
  state.alloc_bytes = 0.0;
  state.gc_active = true;
  state.gc_end = now + ns_from_seconds(pause_seconds);
  state.gc_phase = superstep_path().child("GcPause", gc_seq_++);
  log_.begin(state.gc_phase, now, w);
  // The collector takes every core not currently finishing a compute chunk;
  // the remaining cores are absorbed one by one as chunks complete.
  state.gc_cores_taken = static_cast<double>(cfg_.cluster.machine.cores) -
                         static_cast<double>(state.running_chunks);
  state.cpu->add(now, state.gc_cores_taken);
  schedule_epoch(state.gc_end, [this, w] { end_gc(w); });
}

void PregelRun::end_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.cpu->add(now, -state.gc_cores_taken);
  state.gc_cores_taken = 0.0;
  state.gc_active = false;
  log_.end(state.gc_phase, now, w);
  for (int th = 0; th < threads_; ++th) {
    auto& thread = state.threads[static_cast<std::size_t>(th)];
    if (thread.waiting_gc) {
      thread.waiting_gc = false;
      thread_continue(w, th);
    }
  }
}

void PregelRun::thread_done(int w, int th) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  thread.done = true;
  if (thread.phase_open) {
    log_.end(thread.phase, sim_.now(), w);
    thread.phase_open = false;
  }
  if (++state.threads_done == threads_) worker_compute_done(w);
}

void PregelRun::worker_compute_done(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.compute_end = now;
  const PhasePath step = superstep_path();
  log_.end(step.child("WorkerCompute", w), now, w);
  const TimeNs drained = state.nic->time_empty(now);
  log_.end(step.child("WorkerCommunicate", w), drained, w);
  log_.begin(step.child("WorkerBarrier", w), now, w);
  state.ready = std::max(drained, state.gc_active ? state.gc_end : now);
  if (++workers_done_ == workers_) {
    TimeNs barrier = 0;
    for (const auto& other : ws_) barrier = std::max(barrier, other.ready);
    barrier += ns_from_seconds(cfg_.costs.barrier_sync_seconds);
    schedule_epoch(barrier, [this] { finish_superstep(sim_.now()); });
  }
}

void PregelRun::finish_superstep(TimeNs barrier_time) {
  const PhasePath step = superstep_path();
  for (int w = 0; w < workers_; ++w) {
    log_.end(step.child("WorkerBarrier", w), barrier_time, w);
  }
  log_.end(step, barrier_time, trace::kGlobalMachine);

  // Retire this superstep's messages and promote the next batch.
  if (combiner_ == Combiner::kNone) {
    for (auto& list : msg_list_cur_) list.clear();
    msg_list_cur_.swap(msg_list_next_);
  } else {
    std::fill(msg_combined_cur_.begin(), msg_combined_cur_.end(), 0.0);
    std::fill(msg_count_cur_.begin(), msg_count_cur_.end(), 0u);
    msg_combined_cur_.swap(msg_combined_next_);
    msg_count_cur_.swap(msg_count_next_);
  }
  ++superstep_;
  ++superstep_instance_;
  if (checkpointing_ &&
      superstep_ % cfg_.checkpoint.interval_supersteps == 0) {
    const TimeNs cp_end = write_checkpoint(barrier_time);
    schedule_epoch(cp_end, [this] {
      complete_checkpoint();
      start_superstep(sim_.now());
    });
    return;
  }
  start_superstep(barrier_time);
}

void PregelRun::finish_execute(TimeNs t) {
  const PhasePath job = PhasePath{}.child("Job", 0);
  log_.end(job.child("Execute", 0), t, trace::kGlobalMachine);
  const PhasePath store = job.child("StoreResults", 0);
  log_.begin(store, t, trace::kGlobalMachine);
  TimeNs store_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double vertices = 0.0;
    for (const auto& part : state.partitions) {
      vertices += static_cast<double>(part.size());
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        vertices * cfg_.costs.work_per_store_vertex / cores * jitter(0.05) /
        faults_.speed_factor(w, t));
    state.cpu->add(t, cores);
    state.cpu->add(t + duration, -cores);
    const PhasePath worker_store = store.child("StoreWorker", w);
    log_.begin(worker_store, t, w);
    log_.end(worker_store, t + duration, w);
    store_end = std::max(store_end, t + duration);
  }
  log_.end(store, store_end, trace::kGlobalMachine);
  log_.end(job, store_end, trace::kGlobalMachine);
  makespan_ = store_end;
  execute_finished_ = true;
}

double PregelRun::worker_vertex_count(int w) const {
  const auto& state = ws_[static_cast<std::size_t>(w)];
  double vertices = 0.0;
  for (const auto& part : state.partitions) {
    vertices += static_cast<double>(part.size());
  }
  return vertices;
}

void PregelRun::save_checkpoint_state() {
  snapshot_.superstep = superstep_;
  snapshot_.value = value_;
  snapshot_.halted = halted_;
  snapshot_.msg_combined = msg_combined_cur_;
  snapshot_.msg_count = msg_count_cur_;
  snapshot_.msg_list = msg_list_cur_;
}

void PregelRun::restore_checkpoint_state() {
  superstep_ = snapshot_.superstep;
  value_ = snapshot_.value;
  halted_ = snapshot_.halted;
  msg_combined_cur_ = snapshot_.msg_combined;
  msg_count_cur_ = snapshot_.msg_count;
  msg_list_cur_ = snapshot_.msg_list;
  // Partially-delivered messages from the aborted attempt are discarded;
  // re-executing the superstep regenerates them.
  std::fill(msg_combined_next_.begin(), msg_combined_next_.end(), 0.0);
  std::fill(msg_count_next_.begin(), msg_count_next_.end(), 0u);
  for (auto& list : msg_list_next_) list.clear();
}

TimeNs PregelRun::write_checkpoint(TimeNs t) {
  // Open the checkpoint phases now; closure is deferred until the write
  // completes (complete_checkpoint), so a crash landing inside the window
  // truncates them — the log shows an interrupted checkpoint, and the
  // snapshot falls back to the previous complete one.
  const PhasePath exec = PhasePath{}.child("Job", 0).child("Execute", 0);
  checkpoint_path_ = exec.child("Checkpoint", checkpoint_seq_++);
  log_.begin(checkpoint_path_, t, trace::kGlobalMachine);
  checkpoint_wend_.assign(static_cast<std::size_t>(workers_), t);
  TimeNs cp_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const DurationNs duration =
        ns_from_seconds(cfg_.checkpoint.base_seconds) +
        ns_for_work(worker_vertex_count(w) * cfg_.checkpoint.work_per_vertex);
    const TimeNs wend = t + duration;
    checkpoint_wend_[static_cast<std::size_t>(w)] = wend;
    log_.begin(checkpoint_path_.child("CheckpointWorker", w), t, w);
    // Serialization is single-threaded per worker.
    state.cpu->add(t, 1.0);
    cp_end = std::max(cp_end, wend);
  }
  checkpoint_active_ = true;
  return cp_end;
}

void PregelRun::complete_checkpoint() {
  TimeNs cp_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    log_.end(checkpoint_path_.child("CheckpointWorker", w), wend, w);
    state.cpu->add(wend, -1.0);
    cp_end = std::max(cp_end, wend);
  }
  log_.end(checkpoint_path_, cp_end, trace::kGlobalMachine);
  checkpoint_active_ = false;
  save_checkpoint_state();
}

void PregelRun::abort_checkpoint(int victim, TimeNs now) {
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PhasePath worker_cp = checkpoint_path_.child("CheckpointWorker", w);
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    const TimeNs stop = std::min(now, wend);
    if (w == victim) {
      log_.abandon(worker_cp);
    } else {
      log_.end(worker_cp, stop, w);
    }
    state.cpu->add(stop, -1.0);
  }
  log_.abandon(checkpoint_path_);
  checkpoint_active_ = false;
  // The snapshot was not saved: recovery falls back to the previous one.
}

void PregelRun::schedule_next_crash(TimeNs floor) {
  if (!checkpointing_) return;
  const auto t = faults_.next_crash_time();
  if (!t) return;
  // Not epoch-guarded: a crash belongs to the run, not to one execution
  // attempt. A crash falling inside a recovery window fires right after it.
  sim_.schedule_at(std::max(*t, floor), [this] { fire_crash(); });
}

void PregelRun::schedule_nic_changes() {
  if (faults_.empty()) return;
  const double base_rate = cfg_.cluster.machine.nic_bytes_per_sec();
  for (const TimeNs t : faults_.nic_change_times()) {
    // Boundaries may predate the point where scheduling happens (a window
    // opening at t=0 while the graph is still loading): apply them now.
    sim_.schedule_at(std::max(t, sim_.now()), [this, base_rate] {
      if (execute_finished_) return;
      const TimeNs now = sim_.now();
      for (int w = 0; w < workers_; ++w) {
        ws_[static_cast<std::size_t>(w)].nic->set_rate(
            now, base_rate * faults_.nic_factor(w, now));
      }
    });
  }
}

void PregelRun::close_or_abandon(const PhasePath& path, bool dead, TimeNs now,
                                 trace::MachineId machine) {
  const auto begin = log_.open_begin(path);
  if (!begin) return;
  if (dead) {
    log_.abandon(path);
  } else {
    // Some phase begins are logged ahead of simulated time (WorkerCompute
    // opens at t+prep); never end a phase before its begin.
    log_.end(path, std::max(now, *begin), machine);
  }
}

void PregelRun::fire_crash() {
  if (execute_finished_) return;
  const TimeNs now = sim_.now();
  const auto victim = faults_.take_crash(now);
  if (!victim) return;
  // A new epoch invalidates every event of the aborted execution attempt.
  ++epoch_;
  const PhasePath step = superstep_path();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const bool dead = w == *victim;
    for (int th = 0; th < threads_; ++th) {
      auto& thread = state.threads[static_cast<std::size_t>(th)];
      if (thread.running_intensity > 0.0) {
        state.cpu->add(now, -thread.running_intensity);
        thread.running_intensity = 0.0;
      }
      if (thread.phase_open) {
        // The crashed worker's log simply stops: its open phases keep their
        // BEGIN but never get an END. Survivors close theirs cleanly.
        if (dead) {
          log_.abandon(thread.phase);
        } else {
          log_.end(thread.phase, now, w);
        }
        thread.phase_open = false;
      }
      thread.done = true;
    }
    state.running_chunks = 0;
    if (state.gc_active) {
      state.cpu->add(now, -state.gc_cores_taken);
      state.gc_cores_taken = 0.0;
      state.gc_active = false;
      close_or_abandon(state.gc_phase, dead, now, w);
    }
    state.alloc_bytes = 0.0;
    close_or_abandon(step.child("WorkerCompute", w), dead, now, w);
    close_or_abandon(step.child("WorkerCommunicate", w), dead, now, w);
    close_or_abandon(step.child("WorkerBarrier", w), dead, now, w);
    // In-flight traffic of the aborted superstep is gone; the re-execution
    // regenerates it.
    state.nic->clear(now);
  }
  if (log_.is_open(step)) log_.abandon(step);
  if (checkpoint_active_) abort_checkpoint(*victim, now);
  ++superstep_instance_;

  // Checkpoint-restart recovery: the master detects the failure, restarts
  // the victim and every worker reloads the last checkpoint. The whole
  // window is dead time, reported as "Recovery" blocking events.
  const PhasePath exec = PhasePath{}.child("Job", 0).child("Execute", 0);
  const PhasePath rec = exec.child("Recovery", recovery_seq_++);
  log_.begin(rec, now, trace::kGlobalMachine);
  const DurationNs restart = ns_from_seconds(cfg_.checkpoint.restart_seconds);
  TimeNs rec_end = now + restart;
  for (int w = 0; w < workers_; ++w) {
    const DurationNs reload = ns_for_work(
        worker_vertex_count(w) * cfg_.checkpoint.reload_work_per_vertex /
        static_cast<double>(cfg_.cluster.machine.cores));
    const TimeNs wend = now + restart + reload;
    const PhasePath worker_rec = rec.child("RecoveryWorker", w);
    log_.begin(worker_rec, now, w);
    log_.end(worker_rec, wend, w);
    log_.block(pregel_names::kRecovery, worker_rec, now, wend, w);
    rec_end = std::max(rec_end, wend);
  }
  log_.end(rec, rec_end, trace::kGlobalMachine);
  restore_checkpoint_state();
  schedule_epoch(rec_end, [this] { start_superstep(sim_.now()); });
  schedule_next_crash(rec_end);
}

trace::RunArtifacts PregelRun::execute() {
  if (!faults_.empty()) {
    faults_.resolve(pregel_nominal_horizon(cfg_, g_, prog_));
    checkpointing_ = faults_.has_kind(sim::FaultKind::kCrash);
  }
  load_graph();
  sim_.run();
  G10_CHECK_MSG(execute_finished_, "simulation ended before the job finished");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.vertex_values = value_;
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    trace::GroundTruthSeries cpu;
    cpu.resource = pregel_names::kCpu;
    cpu.machine = w;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = StepFunction::clamped_sum(state.cpu->series(), state.noise,
                                           cpu.capacity);
    artifacts.ground_truth.push_back(std::move(cpu));

    trace::GroundTruthSeries net;
    net.resource = pregel_names::kNetwork;
    net.machine = w;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = state.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

PregelEngine::PregelEngine(PregelConfig config) : config_(std::move(config)) {
  config_.cluster.validate();
  G10_CHECK(config_.chunk_vertices > 0);
  G10_CHECK(config_.partitions_per_thread > 0);
}

trace::RunArtifacts PregelEngine::run(
    const graph::Graph& graph, const algorithms::PregelProgram& program) const {
  PregelRun run(config_, graph, program);
  return run.execute();
}

TimeNs PregelEngine::estimate_horizon(
    const graph::Graph& graph, const algorithms::PregelProgram& program) const {
  return pregel_nominal_horizon(config_, graph, program);
}

}  // namespace g10::engine
