#include "engine/pregel/pregel_engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "graph/partition.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using algorithms::Combiner;
using algorithms::PregelOutbox;
using algorithms::PregelProgram;
using graph::Graph;
using graph::VertexId;
using trace::PhasePath;

/// Whole-run mutable state. One instance per PregelEngine::run call; the
/// event callbacks all close over `this`.
class PregelRun {
 public:
  PregelRun(const PregelConfig& cfg, const Graph& g, const PregelProgram& prog)
      : cfg_(cfg),
        g_(g),
        prog_(prog),
        rng_(cfg.seed),
        workers_(cfg.cluster.machine_count),
        threads_(cfg.effective_threads()),
        combiner_(prog.combiner()) {
    cfg_.cluster.validate();
    G10_CHECK(g_.vertex_count() > 0);
    G10_CHECK_MSG(threads_ <= cfg_.cluster.machine.cores,
                  "threads per worker must not exceed cores");
  }

  trace::RunArtifacts execute();

 private:
  // ---- static per-run structures -----------------------------------------
  struct ThreadState {
    int partition = -1;    ///< index into worker partitions, -1 = none held
    std::size_t pos = 0;   ///< cursor into the partition's active list
    bool done = false;
    bool waiting_gc = false;
    bool phase_open = false;
    PhasePath phase;  ///< ComputeThread path for the current superstep
  };

  struct WorkerState {
    std::vector<std::vector<VertexId>> partitions;   ///< static vertex split
    std::vector<std::vector<VertexId>> active_lists; ///< per partition, per superstep
    std::size_t next_partition = 0;
    int threads_done = 0;
    int running_chunks = 0;

    double alloc_bytes = 0.0;
    bool gc_active = false;
    TimeNs gc_end = 0;
    double gc_cores_taken = 0.0;
    PhasePath gc_phase;

    std::unique_ptr<sim::FluidQueue> nic;
    std::unique_ptr<sim::UsageRecorder> cpu;
    StepFunction noise;        ///< unmodeled background CPU
    double noise_level = 0.0;
    TimeNs compute_end = 0;
    TimeNs ready = 0;  ///< compute + communication + GC all finished
    std::vector<ThreadState> threads;
  };

  // ---- helpers ------------------------------------------------------------
  double seconds_for_work(double work) const {
    return work / cfg_.cluster.machine.core_work_per_sec;
  }
  DurationNs ns_for_work(double work) const {
    return static_cast<DurationNs>(seconds_for_work(work) *
                                   static_cast<double>(kSecond));
  }
  static DurationNs ns_from_seconds(double s) {
    return static_cast<DurationNs>(s * static_cast<double>(kSecond));
  }
  double jitter(double magnitude) {
    return 1.0 + magnitude * (2.0 * rng_.next_double() - 1.0);
  }

  std::uint32_t message_count(VertexId v) const {
    return combiner_ == Combiner::kNone
               ? static_cast<std::uint32_t>(msg_list_cur_[v].size())
               : msg_count_cur_[v];
  }

  void deliver(VertexId target, double message) {
    switch (combiner_) {
      case Combiner::kSum:
        msg_combined_next_[target] += message;
        ++msg_count_next_[target];
        break;
      case Combiner::kMin:
        if (msg_count_next_[target] == 0 ||
            message < msg_combined_next_[target]) {
          msg_combined_next_[target] = message;
        }
        ++msg_count_next_[target];
        break;
      case Combiner::kNone:
        msg_list_next_[target].push_back(message);
        break;
    }
  }

  // ---- phases of the run ----------------------------------------------------
  void noise_tick(int w);
  void load_graph();
  void start_superstep(TimeNs t);
  void thread_continue(int w, int th);
  void finish_chunk(int w, int th, double remote_bytes, double alloc_bytes,
                    double intensity);
  void thread_done(int w, int th);
  void start_gc(int w);
  void end_gc(int w);
  void worker_compute_done(int w);
  void finish_superstep(TimeNs barrier_time);
  void finish_execute(TimeNs t);

  PhasePath superstep_path() const {
    return PhasePath{}
        .child("Job", 0)
        .child("Execute", 0)
        .child("Superstep", superstep_);
  }

  // ---- members --------------------------------------------------------------
  PregelConfig cfg_;
  const Graph& g_;
  const PregelProgram& prog_;
  Rng rng_;
  int workers_;
  int threads_;
  Combiner combiner_;

  sim::Simulation sim_;
  PhaseLogger log_;
  graph::EdgeCutPartition owner_;
  std::vector<WorkerState> ws_;

  std::vector<double> value_;
  std::vector<char> halted_;
  std::vector<double> msg_combined_cur_, msg_combined_next_;
  std::vector<std::uint32_t> msg_count_cur_, msg_count_next_;
  std::vector<std::vector<double>> msg_list_cur_, msg_list_next_;

  int superstep_ = 0;
  int workers_done_ = 0;
  int gc_seq_ = 0;  ///< GcPause instance index within the current superstep
  bool execute_finished_ = false;
  TimeNs makespan_ = 0;
};

void PregelRun::noise_tick(int w) {
  if (execute_finished_) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  state.noise_level = std::clamp(
      state.noise_level + rng_.next_normal(0.0, cfg_.noise.sigma), 0.0,
      cfg_.noise.max_cores);
  state.noise.set(sim_.now(), state.noise_level);
  sim_.schedule_after(cfg_.noise.interval, [this, w] { noise_tick(w); });
}

void PregelRun::load_graph() {
  const VertexId n = g_.vertex_count();
  owner_ = graph::partition_by_hash(g_, static_cast<std::uint32_t>(workers_));

  ws_.resize(static_cast<std::size_t>(workers_));
  std::vector<std::vector<VertexId>> worker_vertices(workers_);
  for (VertexId v = 0; v < n; ++v) worker_vertices[owner_.owner[v]].push_back(v);

  const int partitions = threads_ * cfg_.partitions_per_thread;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
    state.cpu = std::make_unique<sim::UsageRecorder>(
        pregel_names::kCpu, static_cast<double>(cfg_.cluster.machine.cores));
    state.threads.resize(static_cast<std::size_t>(threads_));
    // Contiguous split of the worker's vertices into partitions.
    const auto& mine = worker_vertices[static_cast<std::size_t>(w)];
    state.partitions.resize(static_cast<std::size_t>(partitions));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      state.partitions[i * partitions / std::max<std::size_t>(mine.size(), 1)]
          .push_back(mine[i]);
    }
    state.active_lists.resize(state.partitions.size());
  }

  value_.resize(n);
  for (VertexId v = 0; v < n; ++v) value_[v] = prog_.initial_value(v, g_);
  halted_.assign(n, 0);
  if (combiner_ == Combiner::kNone) {
    msg_list_cur_.resize(n);
    msg_list_next_.resize(n);
  } else {
    msg_combined_cur_.assign(n, 0.0);
    msg_combined_next_.assign(n, 0.0);
    msg_count_cur_.assign(n, 0);
    msg_count_next_.assign(n, 0);
  }

  // --- emit the load phase ---------------------------------------------------
  const PhasePath job = PhasePath{}.child("Job", 0);
  const PhasePath load = job.child("LoadGraph", 0);
  log_.begin(job, 0, trace::kGlobalMachine);
  log_.begin(load, 0, trace::kGlobalMachine);
  TimeNs load_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double edges = 0.0;
    for (const auto& part : state.partitions) {
      for (VertexId v : part) edges += static_cast<double>(g_.out_degree(v));
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        edges * cfg_.costs.work_per_load_edge / cores * jitter(0.05));
    state.nic->enqueue(0, edges * cfg_.costs.bytes_per_load_edge);
    state.cpu->add(0, cores);
    state.cpu->add(duration, -cores);
    const PhasePath worker_load = load.child("LoadWorker", w);
    log_.begin(worker_load, 0, w);
    const TimeNs done = std::max(duration, state.nic->time_empty(duration));
    log_.end(worker_load, done, w);
    load_end = std::max(load_end, done);
  }
  log_.end(load, load_end, trace::kGlobalMachine);
  log_.begin(job.child("Execute", 0), load_end, trace::kGlobalMachine);
  if (cfg_.noise.enabled) {
    for (int w = 0; w < workers_; ++w) {
      sim_.schedule_at(0, [this, w] { noise_tick(w); });
    }
  }
  sim_.schedule_at(load_end, [this] { start_superstep(sim_.now()); });
}

void PregelRun::start_superstep(TimeNs t) {
  // Determine the active set; stop when nothing is runnable.
  std::size_t total_active = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.next_partition = 0;
    state.threads_done = 0;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      auto& active = state.active_lists[p];
      active.clear();
      for (VertexId v : state.partitions[p]) {
        if (!halted_[v] || message_count(v) > 0) active.push_back(v);
      }
      total_active += active.size();
    }
  }
  if (total_active == 0 || superstep_ >= prog_.max_supersteps()) {
    finish_execute(t);
    return;
  }

  gc_seq_ = 0;
  workers_done_ = 0;
  const PhasePath step = superstep_path();
  log_.begin(step, t, trace::kGlobalMachine);
  const DurationNs prep = ns_from_seconds(cfg_.costs.prepare_seconds);
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PhasePath prepare = step.child("WorkerPrepare", w);
    log_.begin(prepare, t, w);
    log_.end(prepare, t + prep, w);
    // Prepare burns one core per worker (bookkeeping is single-threaded).
    state.cpu->add(t, 1.0);
    state.cpu->add(t + prep, -1.0);
    log_.begin(step.child("WorkerCompute", w), t + prep, w);
    log_.begin(step.child("WorkerCommunicate", w), t + prep, w);
    for (int th = 0; th < threads_; ++th) {
      auto& thread = state.threads[static_cast<std::size_t>(th)];
      thread = ThreadState{};
      thread.phase = step.child("WorkerCompute", w).child("ComputeThread", th);
      sim_.schedule_at(t + prep, [this, w, th] { thread_continue(w, th); });
    }
  }
}

void PregelRun::thread_continue(int w, int th) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  const TimeNs now = sim_.now();
  if (thread.done) return;
  if (!thread.phase_open) {
    log_.begin(thread.phase, now, w);
    thread.phase_open = true;
  }
  // 1. Stop-the-world GC on this worker: wait until it completes.
  if (state.gc_active) {
    if (!thread.waiting_gc) {
      thread.waiting_gc = true;
      log_.block(pregel_names::kGc, thread.phase, now, state.gc_end, w);
    }
    return;  // end_gc() resumes us
  }
  // 2. Outgoing message buffer over capacity: backpressure stall.
  if (state.nic->level(now) > cfg_.queue.capacity_bytes) {
    const TimeNs resume = state.nic->time_until_level(
        now, cfg_.queue.capacity_bytes * cfg_.queue.resume_fraction);
    log_.block(pregel_names::kMessageQueue, thread.phase, now, resume, w);
    sim_.schedule_at(resume, [this, w, th] { thread_continue(w, th); });
    return;
  }
  // 3. Acquire a partition if we do not hold one.
  while (thread.partition < 0 ||
         thread.pos >=
             state.active_lists[static_cast<std::size_t>(thread.partition)]
                 .size()) {
    if (state.next_partition >= state.partitions.size()) {
      thread_done(w, th);
      return;
    }
    thread.partition = static_cast<int>(state.next_partition++);
    thread.pos = 0;
  }
  // 4. Process one chunk of active vertices.
  const auto& active =
      state.active_lists[static_cast<std::size_t>(thread.partition)];
  const std::size_t begin = thread.pos;
  const std::size_t end = std::min(
      active.size(), begin + static_cast<std::size_t>(cfg_.chunk_vertices));
  thread.pos = end;

  double work = 0.0;
  double remote_bytes = 0.0;
  double alloc = 0.0;
  PregelOutbox out;
  std::span<const double> empty;
  for (std::size_t i = begin; i < end; ++i) {
    const VertexId v = active[i];
    const std::uint32_t msgs = message_count(v);
    std::span<const double> messages = empty;
    if (combiner_ == Combiner::kNone) {
      messages = msg_list_cur_[v];
    } else if (msgs > 0) {
      messages = std::span<const double>(&msg_combined_cur_[v], 1);
    }
    out = PregelOutbox{};
    prog_.compute(v, value_[v], messages, superstep_, g_, out);
    halted_[v] = out.vote_to_halt ? 1 : 0;
    work += cfg_.costs.work_per_vertex +
            cfg_.costs.work_per_message * static_cast<double>(msgs);
    alloc += cfg_.gc.bytes_per_vertex_update;
    if (out.send_to_all_neighbors) {
      const auto nbrs = g_.out_neighbors(v);
      work += cfg_.costs.work_per_edge * static_cast<double>(nbrs.size());
      for (graph::EdgeIndex e = 0; e < nbrs.size(); ++e) {
        const VertexId u = nbrs[e];
        const double payload =
            out.add_edge_weight
                ? out.message + g_.edge_weight(g_.edge_id(v, e))
                : out.message;
        deliver(u, payload);
        alloc += cfg_.gc.bytes_per_message;
        if (owner_.owner[u] != static_cast<std::uint32_t>(w)) {
          remote_bytes += cfg_.costs.bytes_per_message;
        }
      }
    } else {
      // Giraph still scans the edge list of a computed vertex.
      work += 0.25 * cfg_.costs.work_per_edge *
              static_cast<double>(g_.out_degree(v));
    }
  }
  // A JVM thread's effective CPU intensity fluctuates below one core;
  // the same work then takes proportionally longer.
  const double intensity =
      rng_.next_double(cfg_.costs.cpu_intensity_min, 1.0);
  const DurationNs duration = std::max<DurationNs>(
      1,
      ns_for_work(work * jitter(cfg_.costs.work_jitter) / intensity));
  state.cpu->add(now, intensity);
  ++state.running_chunks;
  sim_.schedule_after(duration, [this, w, th, remote_bytes, alloc, intensity] {
    finish_chunk(w, th, remote_bytes, alloc, intensity);
  });
}

void PregelRun::finish_chunk(int w, int th, double remote_bytes,
                             double alloc_bytes, double intensity) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.cpu->add(now, -intensity);
  --state.running_chunks;
  state.nic->enqueue(now, remote_bytes);
  state.alloc_bytes += alloc_bytes;
  if (state.gc_active) {
    // GC is running: this core is immediately taken over by the collector.
    state.cpu->add(now, 1.0);
    state.gc_cores_taken += 1.0;
  } else if (cfg_.gc.enabled && state.alloc_bytes > cfg_.gc.young_gen_bytes) {
    start_gc(w);
  }
  thread_continue(w, th);
}

void PregelRun::start_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  const double pause_seconds =
      (cfg_.gc.pause_base_seconds + cfg_.gc.pause_per_byte * state.alloc_bytes) *
      jitter(cfg_.gc.pause_jitter);
  state.alloc_bytes = 0.0;
  state.gc_active = true;
  state.gc_end = now + ns_from_seconds(pause_seconds);
  state.gc_phase = superstep_path().child("GcPause", gc_seq_++);
  log_.begin(state.gc_phase, now, w);
  // The collector takes every core not currently finishing a compute chunk;
  // the remaining cores are absorbed one by one as chunks complete.
  state.gc_cores_taken = static_cast<double>(cfg_.cluster.machine.cores) -
                         static_cast<double>(state.running_chunks);
  state.cpu->add(now, state.gc_cores_taken);
  sim_.schedule_at(state.gc_end, [this, w] { end_gc(w); });
}

void PregelRun::end_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.cpu->add(now, -state.gc_cores_taken);
  state.gc_cores_taken = 0.0;
  state.gc_active = false;
  log_.end(state.gc_phase, now, w);
  for (int th = 0; th < threads_; ++th) {
    auto& thread = state.threads[static_cast<std::size_t>(th)];
    if (thread.waiting_gc) {
      thread.waiting_gc = false;
      thread_continue(w, th);
    }
  }
}

void PregelRun::thread_done(int w, int th) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  thread.done = true;
  if (thread.phase_open) {
    log_.end(thread.phase, sim_.now(), w);
    thread.phase_open = false;
  }
  if (++state.threads_done == threads_) worker_compute_done(w);
}

void PregelRun::worker_compute_done(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.compute_end = now;
  const PhasePath step = superstep_path();
  log_.end(step.child("WorkerCompute", w), now, w);
  const TimeNs drained = state.nic->time_empty(now);
  log_.end(step.child("WorkerCommunicate", w), drained, w);
  log_.begin(step.child("WorkerBarrier", w), now, w);
  state.ready = std::max(drained, state.gc_active ? state.gc_end : now);
  if (++workers_done_ == workers_) {
    TimeNs barrier = 0;
    for (const auto& other : ws_) barrier = std::max(barrier, other.ready);
    barrier += ns_from_seconds(cfg_.costs.barrier_sync_seconds);
    sim_.schedule_at(barrier, [this] { finish_superstep(sim_.now()); });
  }
}

void PregelRun::finish_superstep(TimeNs barrier_time) {
  const PhasePath step = superstep_path();
  for (int w = 0; w < workers_; ++w) {
    log_.end(step.child("WorkerBarrier", w), barrier_time, w);
  }
  log_.end(step, barrier_time, trace::kGlobalMachine);

  // Retire this superstep's messages and promote the next batch.
  if (combiner_ == Combiner::kNone) {
    for (auto& list : msg_list_cur_) list.clear();
    msg_list_cur_.swap(msg_list_next_);
  } else {
    std::fill(msg_combined_cur_.begin(), msg_combined_cur_.end(), 0.0);
    std::fill(msg_count_cur_.begin(), msg_count_cur_.end(), 0u);
    msg_combined_cur_.swap(msg_combined_next_);
    msg_count_cur_.swap(msg_count_next_);
  }
  ++superstep_;
  start_superstep(barrier_time);
}

void PregelRun::finish_execute(TimeNs t) {
  const PhasePath job = PhasePath{}.child("Job", 0);
  log_.end(job.child("Execute", 0), t, trace::kGlobalMachine);
  const PhasePath store = job.child("StoreResults", 0);
  log_.begin(store, t, trace::kGlobalMachine);
  TimeNs store_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double vertices = 0.0;
    for (const auto& part : state.partitions) {
      vertices += static_cast<double>(part.size());
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        vertices * cfg_.costs.work_per_store_vertex / cores * jitter(0.05));
    state.cpu->add(t, cores);
    state.cpu->add(t + duration, -cores);
    const PhasePath worker_store = store.child("StoreWorker", w);
    log_.begin(worker_store, t, w);
    log_.end(worker_store, t + duration, w);
    store_end = std::max(store_end, t + duration);
  }
  log_.end(store, store_end, trace::kGlobalMachine);
  log_.end(job, store_end, trace::kGlobalMachine);
  makespan_ = store_end;
  execute_finished_ = true;
}

trace::RunArtifacts PregelRun::execute() {
  load_graph();
  sim_.run();
  G10_CHECK_MSG(execute_finished_, "simulation ended before the job finished");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.vertex_values = value_;
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    trace::GroundTruthSeries cpu;
    cpu.resource = pregel_names::kCpu;
    cpu.machine = w;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = StepFunction::clamped_sum(state.cpu->series(), state.noise,
                                           cpu.capacity);
    artifacts.ground_truth.push_back(std::move(cpu));

    trace::GroundTruthSeries net;
    net.resource = pregel_names::kNetwork;
    net.machine = w;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = state.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

PregelEngine::PregelEngine(PregelConfig config) : config_(std::move(config)) {
  config_.cluster.validate();
  G10_CHECK(config_.chunk_vertices > 0);
  G10_CHECK(config_.partitions_per_thread > 0);
}

trace::RunArtifacts PregelEngine::run(
    const graph::Graph& graph, const algorithms::PregelProgram& program) const {
  PregelRun run(config_, graph, program);
  return run.execute();
}

}  // namespace g10::engine
