#include "engine/pregel/pregel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/phase_logger.hpp"
#include "graph/partition.hpp"
#include "sim/failure_detector.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fluid_queue.hpp"
#include "sim/reliable_channel.hpp"
#include "sim/simulation.hpp"
#include "sim/usage_recorder.hpp"

namespace g10::engine {

namespace {

using algorithms::Combiner;
using algorithms::PregelOutbox;
using algorithms::PregelProgram;
using graph::Graph;
using graph::VertexId;
using trace::PathRef;

/// Phase-type names interned once per process; engines then build paths
/// from symbols without touching the symbol table's mutex.
struct PregelSymbols {
  trace::Symbol job, load_graph, load_worker, execute, superstep,
      worker_prepare, worker_compute, compute_thread, worker_communicate,
      worker_barrier, gc_pause, checkpoint, checkpoint_worker, recovery,
      recovery_worker, store_results, store_worker;
};

const PregelSymbols& pregel_symbols() {
  static const PregelSymbols symbols = [] {
    auto& table = trace::SymbolTable::global();
    PregelSymbols s;
    s.job = table.intern("Job");
    s.load_graph = table.intern("LoadGraph");
    s.load_worker = table.intern("LoadWorker");
    s.execute = table.intern("Execute");
    s.superstep = table.intern("Superstep");
    s.worker_prepare = table.intern("WorkerPrepare");
    s.worker_compute = table.intern("WorkerCompute");
    s.compute_thread = table.intern("ComputeThread");
    s.worker_communicate = table.intern("WorkerCommunicate");
    s.worker_barrier = table.intern("WorkerBarrier");
    s.gc_pause = table.intern("GcPause");
    s.checkpoint = table.intern("Checkpoint");
    s.checkpoint_worker = table.intern("CheckpointWorker");
    s.recovery = table.intern("Recovery");
    s.recovery_worker = table.intern("RecoveryWorker");
    s.store_results = table.intern("StoreResults");
    s.store_worker = table.intern("StoreWorker");
    return s;
  }();
  return symbols;
}

// Seed offset for the fault injector's forked RNG stream: fault decisions
// must not perturb the engine's own draw sequence.
constexpr std::uint64_t kFaultSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Closed-form makespan estimate shared by PregelEngine::estimate_horizon
/// and percent-time resolution inside a run. Deliberately ignores GC, queue
/// stalls and jitter — fault times only need a stable, roughly-scaled
/// anchor, not an accurate prediction.
TimeNs pregel_nominal_horizon(const PregelConfig& cfg, const Graph& g,
                              const PregelProgram& prog) {
  const double n = static_cast<double>(g.vertex_count());
  const double m = static_cast<double>(g.edge_count());
  const double cluster_rate = static_cast<double>(cfg.cluster.machine_count) *
                              static_cast<double>(cfg.cluster.machine.cores) *
                              cfg.cluster.machine.core_work_per_sec;
  const int steps = std::min(prog.max_supersteps(), 64);
  const double step_work =
      n * cfg.costs.work_per_vertex +
      m * (cfg.costs.work_per_edge + cfg.costs.work_per_message);
  const double total_work = m * cfg.costs.work_per_load_edge +
                            n * cfg.costs.work_per_store_vertex +
                            static_cast<double>(steps) * step_work;
  const double seconds =
      total_work / cluster_rate +
      static_cast<double>(steps) *
          (cfg.costs.prepare_seconds + cfg.costs.barrier_sync_seconds);
  return std::max<TimeNs>(
      kMillisecond,
      static_cast<TimeNs>(seconds * static_cast<double>(kSecond)));
}

/// Whole-run mutable state. One instance per PregelEngine::run call; the
/// event callbacks all close over `this`.
class PregelRun {
 public:
  PregelRun(const PregelConfig& cfg, const Graph& g, const PregelProgram& prog)
      : cfg_(cfg),
        g_(g),
        prog_(prog),
        rng_(cfg.seed),
        faults_(cfg.cluster.faults, cfg.seed ^ kFaultSeedSalt),
        workers_(cfg.cluster.machine_count),
        threads_(cfg.effective_threads()),
        combiner_(prog.combiner()) {
    cfg_.cluster.validate();
    G10_CHECK(g_.vertex_count() > 0);
    G10_CHECK_MSG(threads_ <= cfg_.cluster.machine.cores,
                  "threads per worker must not exceed cores");
    G10_CHECK(cfg_.checkpoint.interval_steps > 0);
    G10_CHECK(cfg_.retry.max_attempts >= 0);
  }

  trace::RunArtifacts execute();

 private:
  // ---- static per-run structures -----------------------------------------
  struct ThreadState {
    int partition = -1;    ///< index into worker partitions, -1 = none held
    std::size_t pos = 0;   ///< cursor into the partition's active list
    bool done = false;
    bool waiting_gc = false;
    bool phase_open = false;
    double running_intensity = 0.0;  ///< CPU held by an in-flight chunk
    TimeNs gc_wait_begin = 0;  ///< when this thread started waiting on GC
    PathRef phase;  ///< ComputeThread path for the current superstep
    /// Per-destination remote bytes of the in-flight chunk. Persistent
    /// per-thread scratch: exactly one chunk per thread is outstanding and
    /// send_chunk consumes it before the next dispatch, so reusing the
    /// buffer replaces what used to be an allocation per chunk.
    std::vector<double> remote_by_dst;

    /// Per-superstep reset that keeps the scratch buffer's capacity.
    void reset() {
      partition = -1;
      pos = 0;
      done = false;
      waiting_gc = false;
      phase_open = false;
      running_intensity = 0.0;
      gc_wait_begin = 0;
    }
  };

  struct WorkerState {
    std::vector<std::vector<VertexId>> partitions;   ///< static vertex split
    std::vector<std::vector<VertexId>> active_lists; ///< per partition, per superstep
    std::size_t next_partition = 0;
    int threads_done = 0;
    int running_chunks = 0;

    double alloc_bytes = 0.0;
    bool gc_active = false;
    TimeNs gc_end = 0;
    double gc_cores_taken = 0.0;
    PathRef gc_phase;
    // Cached per-superstep templates: set once in start_superstep, reused
    // by worker_compute_done / finish_superstep / teardown_worker.
    PathRef compute_phase;
    PathRef communicate_phase;
    PathRef barrier_phase;

    std::unique_ptr<sim::FluidQueue> nic;
    std::unique_ptr<sim::UsageRecorder> cpu;
    StepFunction noise;        ///< unmodeled background CPU
    double noise_level = 0.0;
    TimeNs compute_end = 0;
    TimeNs ready = 0;  ///< compute + communication + GC all finished
    std::vector<ThreadState> threads;
  };

  // ---- helpers ------------------------------------------------------------
  double seconds_for_work(double work) const {
    return work / cfg_.cluster.machine.core_work_per_sec;
  }
  DurationNs ns_for_work(double work) const {
    return static_cast<DurationNs>(seconds_for_work(work) *
                                   static_cast<double>(kSecond));
  }
  static DurationNs ns_from_seconds(double s) {
    return static_cast<DurationNs>(s * static_cast<double>(kSecond));
  }
  double jitter(double magnitude) {
    return 1.0 + magnitude * (2.0 * rng_.next_double() - 1.0);
  }

  std::uint32_t message_count(VertexId v) const { return msg_count_cur_[v]; }

  /// Delivers v's outbox message to every out-neighbor. The combiner switch
  /// is hoisted out of the per-edge loop: each case is a tight loop over the
  /// neighbor span, with a separate weighted variant for add_edge_weight
  /// (an empty weight span means every edge weighs 1, matching
  /// Graph::out_weights on unweighted graphs).
  void deliver_all(VertexId v, std::span<const VertexId> nbrs,
                   const PregelOutbox& out) {
    const double base = out.message;
    const std::span<const double> weights =
        out.add_edge_weight ? g_.out_weights(v) : std::span<const double>{};
    switch (combiner_) {
      case Combiner::kSum:
        if (weights.empty()) {
          const double m = out.add_edge_weight ? base + 1.0 : base;
          for (const VertexId u : nbrs) {
            msg_combined_next_[u] += m;
            ++msg_count_next_[u];
          }
        } else {
          for (std::size_t e = 0; e < nbrs.size(); ++e) {
            const VertexId u = nbrs[e];
            msg_combined_next_[u] += base + weights[e];
            ++msg_count_next_[u];
          }
        }
        break;
      case Combiner::kMin:
        if (weights.empty()) {
          const double m = out.add_edge_weight ? base + 1.0 : base;
          for (const VertexId u : nbrs) {
            if (msg_count_next_[u]++ == 0 || m < msg_combined_next_[u]) {
              msg_combined_next_[u] = m;
            }
          }
        } else {
          for (std::size_t e = 0; e < nbrs.size(); ++e) {
            const VertexId u = nbrs[e];
            const double m = base + weights[e];
            if (msg_count_next_[u]++ == 0 || m < msg_combined_next_[u]) {
              msg_combined_next_[u] = m;
            }
          }
        }
        break;
      case Combiner::kNone:
        // SoA arena path: append (target, payload) to the flat delivery log;
        // finish_superstep scatters it into the next superstep's CSR arena.
        msg_log_targets_.insert(msg_log_targets_.end(), nbrs.begin(),
                                nbrs.end());
        if (weights.empty()) {
          const double m = out.add_edge_weight ? base + 1.0 : base;
          msg_log_payloads_.insert(msg_log_payloads_.end(), nbrs.size(), m);
        } else {
          for (std::size_t e = 0; e < nbrs.size(); ++e) {
            msg_log_payloads_.push_back(base + weights[e]);
          }
        }
        for (const VertexId u : nbrs) ++msg_count_next_[u];
        break;
    }
  }

  /// Schedules `fn` at `t`, cancelled implicitly when a crash bumps the
  /// epoch: every event belonging to the aborted execution attempt carries
  /// the epoch it was scheduled in and becomes a no-op once stale.
  template <typename Fn>
  void schedule_epoch(TimeNs t, Fn fn) {
    sim_.schedule_at(t, [this, e = epoch_, fn = std::move(fn)] {
      if (e == epoch_) fn();
    });
  }

  // ---- phases of the run ----------------------------------------------------
  void noise_tick(int w);
  void load_graph();
  void start_superstep(TimeNs t);
  void thread_continue(int w, int th);
  void finish_chunk(int w, int th, double remote_bytes, double alloc_bytes,
                    double intensity);
  void send_chunk(int w, int th, double remote_bytes);
  TimeNs flush_batch(int w, int dst, double bytes, TimeNs now);
  void arm_flush_timer(int w);
  void resume_after_send(int w, int th, TimeNs now, TimeNs resume);
  void thread_done(int w, int th);
  void start_gc(int w);
  void end_gc(int w);
  void worker_compute_done(int w);
  void finish_superstep(TimeNs barrier_time);
  void finish_execute(TimeNs t);

  // ---- fault tolerance ------------------------------------------------------
  void save_checkpoint_state();
  void restore_checkpoint_state();
  TimeNs write_checkpoint(TimeNs t);
  void complete_checkpoint();
  void abort_checkpoint(int victim, TimeNs now);
  void schedule_next_crash(TimeNs floor);
  void schedule_nic_changes();
  void fire_crash();
  void detect_and_recover();
  void teardown_worker(int w, TimeNs now, bool truncate);
  void close_or_abandon(const PathRef& path, bool truncate, TimeNs now,
                        trace::MachineId machine);
  double worker_vertex_count(int w) const;

  PathRef superstep_path() const {
    // Paths use the monotonic instance counter, not the logical superstep:
    // after a crash the re-executed superstep gets a fresh index, keeping
    // every path in the log unique.
    return exec_path_.child(pregel_symbols().superstep, superstep_instance_);
  }

  // ---- members --------------------------------------------------------------
  PregelConfig cfg_;
  const Graph& g_;
  const PregelProgram& prog_;
  Rng rng_;
  sim::FaultInjector faults_;
  int workers_;
  int threads_;
  Combiner combiner_;

  sim::Simulation sim_;
  PhaseLogger log_;
  const PathRef job_path_ = PathRef{}.child(pregel_symbols().job, 0);
  const PathRef exec_path_ = job_path_.child(pregel_symbols().execute, 0);
  graph::EdgeCutPartition owner_;
  std::vector<WorkerState> ws_;

  std::vector<double> value_;
  std::vector<char> halted_;
  std::vector<double> msg_combined_cur_, msg_combined_next_;
  // Receive counts are kept for every combiner mode; message_count() reads
  // them uniformly instead of branching per vertex.
  std::vector<std::uint32_t> msg_count_cur_, msg_count_next_;
  // Combiner::kNone storage (SoA message arena): the current superstep's
  // messages live in CSR layout over one flat payload array; deliveries
  // append to a flat (target, payload) log that finish_superstep scatters
  // into the next arena in two passes. Replaces the old per-vertex
  // vector-of-vectors message lists.
  std::vector<double> msg_data_cur_;
  std::vector<std::uint64_t> msg_offsets_cur_;  ///< size n+1
  std::vector<VertexId> msg_log_targets_;
  std::vector<double> msg_log_payloads_;
  std::vector<std::uint64_t> arena_cursor_;  ///< scatter scratch, size n

  // Static remote fan-out CSR, built once at load: for each vertex, its
  // remote destination workers and how many of its out-edges land on each.
  // Ownership never changes during a run, so the per-edge owner test leaves
  // the chunk hot loop for good.
  std::vector<std::uint64_t> remote_off_;  ///< size n+1
  std::vector<std::uint32_t> remote_dst_;
  std::vector<std::uint32_t> remote_cnt_;

  // Per-destination send coalescing (DESIGN.md §13) plus the run's logical
  // communication counters reported through RunArtifacts::comm.
  CommBatcher batcher_;
  std::vector<CommBatcher::Flush> flush_scratch_;
  trace::CommStats comm_;
  std::uint64_t step_messages_ = 0;

  int superstep_ = 0;           ///< logical superstep (algorithm semantics)
  int superstep_instance_ = 0;  ///< Superstep path index (never reused)
  int workers_done_ = 0;
  int gc_seq_ = 0;  ///< GcPause instance index within the current superstep
  bool execute_finished_ = false;
  TimeNs makespan_ = 0;

  // ---- fault-injection state ------------------------------------------------
  bool checkpointing_ = false;  ///< armed iff the spec contains a crash
  sim::FailureDetector detector_;
  sim::ReliableChannel channel_;
  std::vector<char> dead_;      ///< per-worker: crashed, not yet recovered
  bool any_dead_ = false;
  int crash_victim_ = -1;
  TimeNs crash_time_ = 0;
  std::vector<TimeNs> comm_end_;  ///< per-worker logged Communicate END times
  int epoch_ = 0;               ///< bumped when recovery aborts an attempt
  int recovery_seq_ = 0;
  int checkpoint_seq_ = 0;
  bool checkpoint_active_ = false;  ///< a checkpoint write is in flight
  PathRef checkpoint_path_;
  std::vector<TimeNs> checkpoint_wend_;  ///< per-worker write-finish times
  struct Snapshot {
    int superstep = 0;
    std::vector<double> value;
    std::vector<char> halted;
    std::vector<double> msg_combined;
    std::vector<std::uint32_t> msg_count;
    std::vector<double> msg_data;          ///< kNone arena payloads
    std::vector<std::uint64_t> msg_offsets;  ///< kNone arena offsets
  } snapshot_;
};

void PregelRun::noise_tick(int w) {
  if (execute_finished_) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  state.noise_level = std::clamp(
      state.noise_level + rng_.next_normal(0.0, cfg_.noise.sigma), 0.0,
      cfg_.noise.max_cores);
  // The walk keeps advancing (fixed RNG draw schedule) but a crashed
  // machine reports zero background CPU until it rejoins.
  state.noise.set(sim_.now(),
                  dead_[static_cast<std::size_t>(w)] != 0 ? 0.0
                                                          : state.noise_level);
  sim_.schedule_after(cfg_.noise.interval, [this, w] { noise_tick(w); });
}

void PregelRun::load_graph() {
  const VertexId n = g_.vertex_count();
  owner_ = graph::partition_by_hash(g_, static_cast<std::uint32_t>(workers_));

  ws_.resize(static_cast<std::size_t>(workers_));
  std::vector<std::vector<VertexId>> worker_vertices(workers_);
  for (VertexId v = 0; v < n; ++v) worker_vertices[owner_.owner[v]].push_back(v);

  const int partitions = threads_ * cfg_.partitions_per_thread;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.nic = std::make_unique<sim::FluidQueue>(
        cfg_.cluster.machine.nic_bytes_per_sec());
    state.cpu = std::make_unique<sim::UsageRecorder>(
        pregel_names::kCpu, static_cast<double>(cfg_.cluster.machine.cores));
    state.threads.resize(static_cast<std::size_t>(threads_));
    // Contiguous split of the worker's vertices into partitions.
    const auto& mine = worker_vertices[static_cast<std::size_t>(w)];
    state.partitions.resize(static_cast<std::size_t>(partitions));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      state.partitions[i * partitions / std::max<std::size_t>(mine.size(), 1)]
          .push_back(mine[i]);
    }
    state.active_lists.resize(state.partitions.size());
  }

  value_.resize(n);
  for (VertexId v = 0; v < n; ++v) value_[v] = prog_.initial_value(v, g_);
  halted_.assign(n, 0);
  msg_count_cur_.assign(n, 0);
  msg_count_next_.assign(n, 0);
  if (combiner_ == Combiner::kNone) {
    msg_offsets_cur_.assign(static_cast<std::size_t>(n) + 1, 0);
    msg_data_cur_.clear();
    msg_log_targets_.clear();
    msg_log_payloads_.clear();
    arena_cursor_.assign(n, 0);
  } else {
    msg_combined_cur_.assign(n, 0.0);
    msg_combined_next_.assign(n, 0.0);
  }

  // Remote fan-out CSR: one (destination, edge count) entry per vertex and
  // remote worker, in ascending destination order.
  remote_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  remote_dst_.clear();
  remote_cnt_.clear();
  std::vector<std::uint32_t> dst_count(static_cast<std::size_t>(workers_), 0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t home = owner_.owner[v];
    for (const VertexId u : g_.out_neighbors(v)) {
      if (owner_.owner[u] != home) ++dst_count[owner_.owner[u]];
    }
    for (std::uint32_t dst = 0; dst < static_cast<std::uint32_t>(workers_);
         ++dst) {
      if (dst_count[dst] == 0) continue;
      remote_dst_.push_back(dst);
      remote_cnt_.push_back(dst_count[dst]);
      dst_count[dst] = 0;
    }
    remote_off_[static_cast<std::size_t>(v) + 1] = remote_dst_.size();
  }

  // --- emit the load phase ---------------------------------------------------
  const PathRef& job = job_path_;
  const PathRef load = job.child(pregel_symbols().load_graph, 0);
  log_.begin(job, 0, trace::kGlobalMachine);
  log_.begin(load, 0, trace::kGlobalMachine);
  TimeNs load_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double edges = 0.0;
    for (const auto& part : state.partitions) {
      for (VertexId v : part) edges += static_cast<double>(g_.out_degree(v));
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        edges * cfg_.costs.work_per_load_edge / cores * jitter(0.05) /
        faults_.speed_factor(w, 0));
    state.nic->enqueue(0, edges * cfg_.costs.bytes_per_load_edge);
    state.cpu->add(0, cores);
    state.cpu->add(duration, -cores);
    const PathRef worker_load = load.child(pregel_symbols().load_worker, w);
    log_.begin(worker_load, 0, w);
    const TimeNs done = std::max(duration, state.nic->time_empty(duration));
    log_.end(worker_load, done, w);
    load_end = std::max(load_end, done);
  }
  log_.end(load, load_end, trace::kGlobalMachine);
  log_.begin(exec_path_, load_end, trace::kGlobalMachine);
  if (cfg_.noise.enabled) {
    for (int w = 0; w < workers_; ++w) {
      sim_.schedule_at(0, [this, w] { noise_tick(w); });
    }
  }
  schedule_epoch(load_end, [this] { start_superstep(sim_.now()); });
  if (checkpointing_) save_checkpoint_state();
  schedule_next_crash(load_end);
  schedule_nic_changes();
}

void PregelRun::start_superstep(TimeNs t) {
  if (any_dead_) return;  // recovery restarts execution itself
  std::fill(comm_end_.begin(), comm_end_.end(), TimeNs{0});
  // Determine the active set; stop when nothing is runnable.
  std::size_t total_active = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    state.next_partition = 0;
    state.threads_done = 0;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      auto& active = state.active_lists[p];
      active.clear();
      for (VertexId v : state.partitions[p]) {
        if (!halted_[v] || message_count(v) > 0) active.push_back(v);
      }
      total_active += active.size();
    }
  }
  if (total_active == 0 || superstep_ >= prog_.max_supersteps()) {
    finish_execute(t);
    return;
  }

  gc_seq_ = 0;
  workers_done_ = 0;
  const PathRef step = superstep_path();
  log_.begin(step, t, trace::kGlobalMachine);
  const DurationNs prep = ns_from_seconds(cfg_.costs.prepare_seconds);
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PathRef prepare = step.child(pregel_symbols().worker_prepare, w);
    log_.begin(prepare, t, w);
    log_.end(prepare, t + prep, w);
    // Prepare burns one core per worker (bookkeeping is single-threaded).
    state.cpu->add(t, 1.0);
    state.cpu->add(t + prep, -1.0);
    state.compute_phase = step.child(pregel_symbols().worker_compute, w);
    state.communicate_phase = step.child(pregel_symbols().worker_communicate, w);
    state.barrier_phase = step.child(pregel_symbols().worker_barrier, w);
    log_.begin(state.compute_phase, t + prep, w);
    log_.begin(state.communicate_phase, t + prep, w);
    for (int th = 0; th < threads_; ++th) {
      auto& thread = state.threads[static_cast<std::size_t>(th)];
      thread.reset();
      thread.phase =
          state.compute_phase.child(pregel_symbols().compute_thread, th);
      schedule_epoch(t + prep, [this, w, th] { thread_continue(w, th); });
    }
  }
}

void PregelRun::thread_continue(int w, int th) {
  if (dead_[static_cast<std::size_t>(w)] != 0) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  const TimeNs now = sim_.now();
  if (thread.done) return;
  if (!thread.phase_open) {
    log_.begin(thread.phase, now, w);
    thread.phase_open = true;
  }
  // 1. Stop-the-world GC on this worker: wait until it completes. The GC
  //    blocking event is emitted when the wait ends (end_gc, or crash
  //    teardown), so an interrupted wait never logs a dangling block.
  if (state.gc_active) {
    if (!thread.waiting_gc) {
      thread.waiting_gc = true;
      thread.gc_wait_begin = now;
    }
    return;  // end_gc() resumes us
  }
  // 2. Outgoing message buffer over capacity: backpressure stall. Logged
  //    when the stall resolves, for the same reason as the GC wait. The
  //    coalescing buffers count against the same capacity — they are the
  //    front half of the outgoing buffer — so pressure first converts them
  //    into NIC traffic, then stalls on the queue like the unbatched path.
  if (batcher_.enabled() && batcher_.pending(w) > 0.0 &&
      state.nic->level(now) + batcher_.pending(w) >
          cfg_.queue.capacity_bytes) {
    batcher_.take_all(w, FlushCause::kSize, flush_scratch_);
    for (const auto& f : flush_scratch_) flush_batch(w, f.dst, f.bytes, now);
  }
  if (state.nic->level(now) > cfg_.queue.capacity_bytes) {
    const TimeNs resume = state.nic->time_until_level(
        now, cfg_.queue.capacity_bytes * cfg_.queue.resume_fraction);
    schedule_epoch(resume, [this, w, th, now, resume] {
      if (dead_[static_cast<std::size_t>(w)] != 0) return;
      log_.block(pregel_names::kMessageQueue,
                 ws_[static_cast<std::size_t>(w)]
                     .threads[static_cast<std::size_t>(th)]
                     .phase,
                 now, resume, w);
      thread_continue(w, th);
    });
    return;
  }
  // 3. Acquire a partition if we do not hold one.
  while (thread.partition < 0 ||
         thread.pos >=
             state.active_lists[static_cast<std::size_t>(thread.partition)]
                 .size()) {
    if (state.next_partition >= state.partitions.size()) {
      // Final flush: with a live reliable channel, the last compute thread
      // out drains this worker's coalescing buffers before the compute phase
      // can close, preserving the invariant that every channel attempt is
      // enqueued before worker_compute_done computes the drain time.
      if (batcher_.enabled() && !channel_.trivial() &&
          state.threads_done == threads_ - 1 && batcher_.pending(w) > 0.0) {
        batcher_.take_all(w, FlushCause::kBarrier, flush_scratch_);
        TimeNs resume = now;
        for (const auto& f : flush_scratch_) {
          resume = std::max(resume, flush_batch(w, f.dst, f.bytes, now));
        }
        if (resume > now) {
          // Re-entry finds the buffers empty and falls through to
          // thread_done.
          resume_after_send(w, th, now, resume);
          return;
        }
      }
      thread_done(w, th);
      return;
    }
    thread.partition = static_cast<int>(state.next_partition++);
    thread.pos = 0;
  }
  // 4. Process one chunk of active vertices.
  const auto& active =
      state.active_lists[static_cast<std::size_t>(thread.partition)];
  const std::size_t begin = thread.pos;
  const std::size_t end = std::min(
      active.size(), begin + static_cast<std::size_t>(cfg_.chunk_vertices));
  thread.pos = end;

  double work = 0.0;
  double remote_bytes = 0.0;
  // Per-destination split of the remote traffic, needed when the reliable
  // channel is live (each destination is a separate ack'd transfer) or when
  // the batcher frames traffic per destination. The split lives in
  // per-thread scratch: one chunk per thread is in flight, and send_chunk
  // consumes it before the next dispatch.
  const bool split_dst = !channel_.trivial() || batcher_.enabled();
  auto& remote_by_dst = thread.remote_by_dst;
  if (split_dst) remote_by_dst.assign(static_cast<std::size_t>(workers_), 0.0);
  double alloc = 0.0;
  PregelOutbox out;
  std::span<const double> empty;
  for (std::size_t i = begin; i < end; ++i) {
    const VertexId v = active[i];
    const std::uint32_t msgs = msg_count_cur_[v];
    std::span<const double> messages = empty;
    if (msgs > 0) {
      messages = combiner_ == Combiner::kNone
                     ? std::span<const double>(
                           msg_data_cur_.data() + msg_offsets_cur_[v], msgs)
                     : std::span<const double>(&msg_combined_cur_[v], 1);
    }
    out = PregelOutbox{};
    prog_.compute(v, value_[v], messages, superstep_, g_, out);
    halted_[v] = out.vote_to_halt ? 1 : 0;
    work += cfg_.costs.work_per_vertex +
            cfg_.costs.work_per_message * static_cast<double>(msgs);
    alloc += cfg_.gc.bytes_per_vertex_update;
    if (out.send_to_all_neighbors) {
      const auto nbrs = g_.out_neighbors(v);
      const double degree = static_cast<double>(nbrs.size());
      work += cfg_.costs.work_per_edge * degree;
      alloc += cfg_.gc.bytes_per_message * degree;
      step_messages_ += nbrs.size();
      deliver_all(v, nbrs, out);
      // Remote accounting from the precomputed fan-out: one entry per
      // (vertex, destination) instead of an owner lookup per edge.
      for (std::uint64_t k = remote_off_[v]; k < remote_off_[v + 1]; ++k) {
        const double bytes = cfg_.costs.bytes_per_message *
                             static_cast<double>(remote_cnt_[k]);
        remote_bytes += bytes;
        if (split_dst) remote_by_dst[remote_dst_[k]] += bytes;
      }
    } else {
      // Giraph still scans the edge list of a computed vertex.
      work += 0.25 * cfg_.costs.work_per_edge *
              static_cast<double>(g_.out_degree(v));
    }
  }
  // A JVM thread's effective CPU intensity fluctuates below one core;
  // the same work then takes proportionally longer. An active slowdown
  // window stretches the chunk further (sampled once, at dispatch).
  const double intensity =
      rng_.next_double(cfg_.costs.cpu_intensity_min, 1.0);
  const DurationNs duration = std::max<DurationNs>(
      1, ns_for_work(work * jitter(cfg_.costs.work_jitter) / intensity /
                     faults_.speed_factor(w, now)));
  state.cpu->add(now, intensity);
  thread.running_intensity = intensity;
  ++state.running_chunks;
  schedule_epoch(now + duration, [this, w, th, remote_bytes, alloc, intensity] {
    finish_chunk(w, th, remote_bytes, alloc, intensity);
  });
}

void PregelRun::finish_chunk(int w, int th, double remote_bytes,
                             double alloc_bytes, double intensity) {
  if (dead_[static_cast<std::size_t>(w)] != 0) return;
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.cpu->add(now, -intensity);
  state.threads[static_cast<std::size_t>(th)].running_intensity = 0.0;
  --state.running_chunks;
  state.alloc_bytes += alloc_bytes;
  if (state.gc_active) {
    // GC is running: this core is immediately taken over by the collector.
    state.cpu->add(now, 1.0);
    state.gc_cores_taken += 1.0;
  } else if (cfg_.gc.enabled && state.alloc_bytes > cfg_.gc.young_gen_bytes) {
    start_gc(w);
  }
  send_chunk(w, th, remote_bytes);
}

/// Hands one flushed per-destination batch to the transport. Returns when
/// the sending thread may proceed: `now` on the trivial channel, otherwise
/// the reliable plan's completion time. Every planned attempt (including
/// retransmits) costs the payload bytes on this worker's NIC at its own
/// time.
TimeNs PregelRun::flush_batch(int w, int dst, double bytes, TimeNs now) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  if (channel_.trivial()) {
    state.nic->enqueue(now, bytes);
    return now;
  }
  const auto plan = channel_.plan_send(w, dst, now);
  ++comm_.channel_plans;
  for (const auto& attempt : plan.attempts) {
    if (attempt.at <= now) {
      state.nic->enqueue(now, bytes);
    } else {
      schedule_epoch(attempt.at, [this, w, bytes] {
        if (dead_[static_cast<std::size_t>(w)] != 0) return;
        ws_[static_cast<std::size_t>(w)].nic->enqueue(sim_.now(), bytes);
      });
    }
  }
  return plan.complete;
}

/// Arms the simulated-time flush deadline for worker w's buffers. Trivial
/// channel only: with a live channel the sending thread already blocks on
/// the plan's completion and leftovers drain at the final flush. Armed on
/// every idle->pending transition; a stale timer finds pending() == 0 and
/// does nothing. Epoch-guarded so crash recovery cancels it.
void PregelRun::arm_flush_timer(int w) {
  schedule_epoch(sim_.now() + batcher_.flush_after(), [this, w] {
    if (dead_[static_cast<std::size_t>(w)] != 0) return;
    if (batcher_.pending(w) <= 0.0) return;
    batcher_.take_all(w, FlushCause::kTimer, flush_scratch_);
    double total = 0.0;
    for (const auto& f : flush_scratch_) total += f.bytes;
    ws_[static_cast<std::size_t>(w)].nic->enqueue(sim_.now(), total);
  });
}

/// Releases the sending thread: immediately, or after blocking on the
/// reliable channel's completion time. Grade10 sees the wait as a "Retry"
/// blocking event emitted when it ends.
void PregelRun::resume_after_send(int w, int th, TimeNs now, TimeNs resume) {
  if (resume > now) {
    const PathRef phase = ws_[static_cast<std::size_t>(w)]
                              .threads[static_cast<std::size_t>(th)]
                              .phase;
    schedule_epoch(resume, [this, w, th, phase, now, resume] {
      if (dead_[static_cast<std::size_t>(w)] != 0) return;
      log_.block(pregel_names::kRetry, phase, now, resume, w);
      thread_continue(w, th);
    });
    return;
  }
  thread_continue(w, th);
}

void PregelRun::send_chunk(int w, int th, double remote_bytes) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  comm_.remote_bytes_total += remote_bytes;
  if (channel_.trivial() && !batcher_.enabled()) {
    // Fast path (batching disabled): without fault events every send is a
    // single immediate attempt, so the flush bypasses the channel and the
    // trace stays byte-identical to the pre-batching engine.
    state.nic->enqueue(now, remote_bytes);
    thread_continue(w, th);
    return;
  }
  if (remote_bytes <= 0.0) {
    // Chunks with no remote traffic behave identically in every mode.
    state.nic->enqueue(now, remote_bytes);
    thread_continue(w, th);
    return;
  }
  const auto& remote_by_dst =
      state.threads[static_cast<std::size_t>(th)].remote_by_dst;
  if (!batcher_.enabled()) {
    // Unbatched reliable path: the chunk's remote messages go out as one
    // ack'd transfer per destination, and the thread blocks until the last
    // transfer completes.
    TimeNs resume = now;
    for (int dst = 0; dst < workers_; ++dst) {
      const double bytes = remote_by_dst[static_cast<std::size_t>(dst)];
      if (bytes <= 0.0 || dst == w) continue;
      resume = std::max(resume, flush_batch(w, dst, bytes, now));
    }
    resume_after_send(w, th, now, resume);
    return;
  }
  // Batched path: the chunk's traffic joins the per-destination coalescing
  // buffers. Only buffers crossing the frame size flush here; the rest wait
  // for the flush timer (trivial channel) or the compute barrier.
  bool arm_timer = false;
  TimeNs resume = now;
  for (int dst = 0; dst < workers_; ++dst) {
    const double bytes = remote_by_dst[static_cast<std::size_t>(dst)];
    if (bytes <= 0.0 || dst == w) continue;
    const auto dep = batcher_.deposit(w, dst, bytes);
    arm_timer = arm_timer || dep.first_pending;
    if (!dep.crossed) continue;
    const double batch = batcher_.take(w, dst, FlushCause::kSize);
    resume = std::max(resume, flush_batch(w, dst, batch, now));
  }
  if (arm_timer && channel_.trivial()) arm_flush_timer(w);
  resume_after_send(w, th, now, resume);
}

void PregelRun::start_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  const double pause_seconds =
      (cfg_.gc.pause_base_seconds + cfg_.gc.pause_per_byte * state.alloc_bytes) *
      jitter(cfg_.gc.pause_jitter);
  state.alloc_bytes = 0.0;
  state.gc_active = true;
  state.gc_end = now + ns_from_seconds(pause_seconds);
  state.gc_phase = superstep_path().child(pregel_symbols().gc_pause, gc_seq_++);
  log_.begin(state.gc_phase, now, w);
  // The collector takes every core not currently finishing a compute chunk;
  // the remaining cores are absorbed one by one as chunks complete.
  state.gc_cores_taken = static_cast<double>(cfg_.cluster.machine.cores) -
                         static_cast<double>(state.running_chunks);
  state.cpu->add(now, state.gc_cores_taken);
  schedule_epoch(state.gc_end, [this, w] { end_gc(w); });
}

void PregelRun::end_gc(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  // A crash teardown may have force-finished this collection already.
  if (!state.gc_active) return;
  const TimeNs now = sim_.now();
  state.cpu->add(now, -state.gc_cores_taken);
  state.gc_cores_taken = 0.0;
  state.gc_active = false;
  log_.end(state.gc_phase, now, w);
  for (int th = 0; th < threads_; ++th) {
    auto& thread = state.threads[static_cast<std::size_t>(th)];
    if (thread.waiting_gc) {
      thread.waiting_gc = false;
      log_.block(pregel_names::kGc, thread.phase, thread.gc_wait_begin, now,
                 w);
      thread_continue(w, th);
    }
  }
}

void PregelRun::thread_done(int w, int th) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  auto& thread = state.threads[static_cast<std::size_t>(th)];
  thread.done = true;
  if (thread.phase_open) {
    log_.end(thread.phase, sim_.now(), w);
    thread.phase_open = false;
  }
  if (++state.threads_done == threads_) worker_compute_done(w);
}

void PregelRun::worker_compute_done(int w) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  const TimeNs now = sim_.now();
  state.compute_end = now;
  log_.end(state.compute_phase, now, w);
  if (batcher_.enabled()) {
    if (channel_.trivial()) {
      // Barrier flush: whatever is still buffered goes out now, before the
      // communicate drain time is computed.
      if (batcher_.pending(w) > 0.0) {
        batcher_.take_all(w, FlushCause::kBarrier, flush_scratch_);
        double total = 0.0;
        for (const auto& f : flush_scratch_) total += f.bytes;
        state.nic->enqueue(now, total);
      }
    } else {
      // With a live channel the last compute thread already flushed.
      G10_CHECK_MSG(batcher_.pending(w) <= 0.0,
                    "unflushed batch at compute end");
    }
  }
  const TimeNs drained = state.nic->time_empty(now);
  log_.end(state.communicate_phase, drained, w);
  // The END above is logged ahead of simulated time; remember it so a crash
  // teardown can close the Superstep at or after every logged child END.
  comm_end_[static_cast<std::size_t>(w)] = drained;
  log_.begin(state.barrier_phase, now, w);
  state.ready = std::max(drained, state.gc_active ? state.gc_end : now);
  if (++workers_done_ == workers_) {
    TimeNs barrier = 0;
    for (const auto& other : ws_) barrier = std::max(barrier, other.ready);
    barrier += ns_from_seconds(cfg_.costs.barrier_sync_seconds);
    schedule_epoch(barrier, [this] { finish_superstep(sim_.now()); });
  }
}

void PregelRun::finish_superstep(TimeNs barrier_time) {
  // A crash with a pending detection leaves the superstep to the recovery
  // path; the barrier must not retire it half-dead.
  if (any_dead_) return;
  const PathRef step = superstep_path();
  for (int w = 0; w < workers_; ++w) {
    log_.end(ws_[static_cast<std::size_t>(w)].barrier_phase, barrier_time, w);
  }
  log_.end(step, barrier_time, trace::kGlobalMachine);

  // Retire this superstep's messages and promote the next batch.
  if (combiner_ == Combiner::kNone) {
    // Two-pass CSR rebuild of the message arena: prefix-sum the delivery
    // counts, then stable-scatter the append log so each vertex sees its
    // messages in delivery order (what the per-vertex lists used to hold).
    const VertexId n = g_.vertex_count();
    msg_offsets_cur_[0] = 0;
    for (VertexId v = 0; v < n; ++v) {
      msg_offsets_cur_[v + 1] = msg_offsets_cur_[v] + msg_count_next_[v];
      arena_cursor_[v] = msg_offsets_cur_[v];
    }
    msg_data_cur_.resize(msg_log_targets_.size());
    for (std::size_t i = 0; i < msg_log_targets_.size(); ++i) {
      msg_data_cur_[arena_cursor_[msg_log_targets_[i]]++] =
          msg_log_payloads_[i];
    }
    msg_log_targets_.clear();
    msg_log_payloads_.clear();
  } else {
    std::fill(msg_combined_cur_.begin(), msg_combined_cur_.end(), 0.0);
    msg_combined_cur_.swap(msg_combined_next_);
  }
  std::fill(msg_count_cur_.begin(), msg_count_cur_.end(), 0u);
  msg_count_cur_.swap(msg_count_next_);
  comm_.messages_per_step.push_back(step_messages_);
  step_messages_ = 0;
  ++superstep_;
  ++superstep_instance_;
  if (checkpointing_ &&
      superstep_ % cfg_.checkpoint.interval_steps == 0) {
    const TimeNs cp_end = write_checkpoint(barrier_time);
    schedule_epoch(cp_end, [this] {
      // A crash inside the write window leaves the checkpoint to be aborted
      // by the recovery path instead of completed here.
      if (any_dead_) return;
      complete_checkpoint();
      start_superstep(sim_.now());
    });
    return;
  }
  start_superstep(barrier_time);
}

void PregelRun::finish_execute(TimeNs t) {
  const PathRef& job = job_path_;
  log_.end(exec_path_, t, trace::kGlobalMachine);
  const PathRef store = job.child(pregel_symbols().store_results, 0);
  log_.begin(store, t, trace::kGlobalMachine);
  TimeNs store_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    double vertices = 0.0;
    for (const auto& part : state.partitions) {
      vertices += static_cast<double>(part.size());
    }
    const double cores = static_cast<double>(cfg_.cluster.machine.cores);
    const DurationNs duration = ns_for_work(
        vertices * cfg_.costs.work_per_store_vertex / cores * jitter(0.05) /
        faults_.speed_factor(w, t));
    state.cpu->add(t, cores);
    state.cpu->add(t + duration, -cores);
    const PathRef worker_store = store.child(pregel_symbols().store_worker, w);
    log_.begin(worker_store, t, w);
    log_.end(worker_store, t + duration, w);
    store_end = std::max(store_end, t + duration);
  }
  log_.end(store, store_end, trace::kGlobalMachine);
  log_.end(job, store_end, trace::kGlobalMachine);
  makespan_ = store_end;
  execute_finished_ = true;
}

double PregelRun::worker_vertex_count(int w) const {
  const auto& state = ws_[static_cast<std::size_t>(w)];
  double vertices = 0.0;
  for (const auto& part : state.partitions) {
    vertices += static_cast<double>(part.size());
  }
  return vertices;
}

void PregelRun::save_checkpoint_state() {
  snapshot_.superstep = superstep_;
  snapshot_.value = value_;
  snapshot_.halted = halted_;
  snapshot_.msg_combined = msg_combined_cur_;
  snapshot_.msg_count = msg_count_cur_;
  snapshot_.msg_data = msg_data_cur_;
  snapshot_.msg_offsets = msg_offsets_cur_;
}

void PregelRun::restore_checkpoint_state() {
  superstep_ = snapshot_.superstep;
  value_ = snapshot_.value;
  halted_ = snapshot_.halted;
  msg_combined_cur_ = snapshot_.msg_combined;
  msg_count_cur_ = snapshot_.msg_count;
  msg_data_cur_ = snapshot_.msg_data;
  msg_offsets_cur_ = snapshot_.msg_offsets;
  // Partially-delivered messages from the aborted attempt are discarded;
  // re-executing the superstep regenerates them (and its message tally).
  std::fill(msg_combined_next_.begin(), msg_combined_next_.end(), 0.0);
  std::fill(msg_count_next_.begin(), msg_count_next_.end(), 0u);
  msg_log_targets_.clear();
  msg_log_payloads_.clear();
  step_messages_ = 0;
}

TimeNs PregelRun::write_checkpoint(TimeNs t) {
  // Open the checkpoint phases now; closure is deferred until the write
  // completes (complete_checkpoint), so a crash landing inside the window
  // truncates them — the log shows an interrupted checkpoint, and the
  // snapshot falls back to the previous complete one.
  checkpoint_path_ =
      exec_path_.child(pregel_symbols().checkpoint, checkpoint_seq_++);
  log_.begin(checkpoint_path_, t, trace::kGlobalMachine);
  checkpoint_wend_.assign(static_cast<std::size_t>(workers_), t);
  TimeNs cp_end = t;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const DurationNs duration =
        ns_from_seconds(cfg_.checkpoint.base_seconds) +
        ns_for_work(worker_vertex_count(w) * cfg_.checkpoint.work_per_vertex);
    const TimeNs wend = t + duration;
    checkpoint_wend_[static_cast<std::size_t>(w)] = wend;
    log_.begin(checkpoint_path_.child(pregel_symbols().checkpoint_worker, w), t,
               w);
    // Serialization is single-threaded per worker.
    state.cpu->add(t, 1.0);
    cp_end = std::max(cp_end, wend);
  }
  checkpoint_active_ = true;
  return cp_end;
}

void PregelRun::complete_checkpoint() {
  TimeNs cp_end = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    log_.end(checkpoint_path_.child(pregel_symbols().checkpoint_worker, w),
             wend, w);
    state.cpu->add(wend, -1.0);
    cp_end = std::max(cp_end, wend);
  }
  log_.end(checkpoint_path_, cp_end, trace::kGlobalMachine);
  checkpoint_active_ = false;
  save_checkpoint_state();
}

void PregelRun::abort_checkpoint(int victim, TimeNs now) {
  // Survivors stop writing when the failure is detected (`now`); the victim
  // stopped at the crash instant itself.
  const bool truncated = cfg_.crash_log == CrashLogStyle::kTruncated;
  TimeNs cp_close = 0;
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    const PathRef worker_cp =
        checkpoint_path_.child(pregel_symbols().checkpoint_worker, w);
    const TimeNs wend = checkpoint_wend_[static_cast<std::size_t>(w)];
    const TimeNs stop =
        w == victim ? std::min(crash_time_, wend) : std::min(now, wend);
    if (w == victim && truncated) {
      log_.abandon(worker_cp);
    } else {
      log_.end(worker_cp, stop, w);
      cp_close = std::max(cp_close, stop);
    }
    state.cpu->add(stop, -1.0);
  }
  if (truncated) {
    log_.abandon(checkpoint_path_);
  } else {
    log_.end(checkpoint_path_, cp_close, trace::kGlobalMachine);
  }
  checkpoint_active_ = false;
  // The snapshot was not saved: recovery falls back to the previous one.
}

void PregelRun::schedule_next_crash(TimeNs floor) {
  if (!checkpointing_) return;
  const auto t = faults_.next_crash_time();
  if (!t) return;
  // Not epoch-guarded: a crash belongs to the run, not to one execution
  // attempt. A crash falling inside a recovery window fires right after it.
  sim_.schedule_at(std::max(*t, floor), [this] { fire_crash(); });
}

void PregelRun::schedule_nic_changes() {
  if (faults_.empty()) return;
  const double base_rate = cfg_.cluster.machine.nic_bytes_per_sec();
  for (const TimeNs t : faults_.nic_change_times()) {
    // Boundaries may predate the point where scheduling happens (a window
    // opening at t=0 while the graph is still loading): apply them now.
    sim_.schedule_at(std::max(t, sim_.now()), [this, base_rate] {
      if (execute_finished_) return;
      const TimeNs now = sim_.now();
      for (int w = 0; w < workers_; ++w) {
        ws_[static_cast<std::size_t>(w)].nic->set_rate(
            now, base_rate * faults_.nic_factor(w, now));
      }
    });
  }
}

void PregelRun::close_or_abandon(const PathRef& path, bool truncate,
                                 TimeNs now, trace::MachineId machine) {
  const auto begin = log_.open_begin(path);
  if (!begin) return;
  if (truncate) {
    log_.abandon(path);
  } else {
    // Some phase begins are logged ahead of simulated time (WorkerCompute
    // opens at t+prep); never end a phase before its begin.
    log_.end(path, std::max(now, *begin), machine);
  }
}

void PregelRun::teardown_worker(int w, TimeNs now, bool truncate) {
  auto& state = ws_[static_cast<std::size_t>(w)];
  for (int th = 0; th < threads_; ++th) {
    auto& thread = state.threads[static_cast<std::size_t>(th)];
    if (thread.running_intensity > 0.0) {
      state.cpu->add(now, -thread.running_intensity);
      thread.running_intensity = 0.0;
    }
    if (thread.phase_open) {
      if (thread.waiting_gc && !truncate) {
        log_.block(pregel_names::kGc, thread.phase, thread.gc_wait_begin, now,
                   w);
      }
      if (truncate) {
        // The crashed worker's log simply stops: its open phases keep their
        // BEGIN but never get an END.
        log_.abandon(thread.phase);
      } else {
        log_.end(thread.phase, now, w);
      }
      thread.phase_open = false;
    }
    thread.waiting_gc = false;
    thread.done = true;
  }
  state.running_chunks = 0;
  if (state.gc_active) {
    state.cpu->add(now, -state.gc_cores_taken);
    state.gc_cores_taken = 0.0;
    state.gc_active = false;
    close_or_abandon(state.gc_phase, truncate, now, w);
  }
  state.alloc_bytes = 0.0;
  close_or_abandon(state.compute_phase, truncate, now, w);
  close_or_abandon(state.communicate_phase, truncate, now, w);
  close_or_abandon(state.barrier_phase, truncate, now, w);
  // In-flight traffic of the aborted superstep is gone — both the NIC
  // queue and anything still sitting in the coalescing buffers; the
  // re-execution regenerates it.
  state.nic->clear(now);
  if (batcher_.enabled()) batcher_.clear(w);
}

void PregelRun::fire_crash() {
  if (execute_finished_) return;
  // A second failure while one is still being handled is picked up by
  // schedule_next_crash() after the in-flight recovery completes.
  if (any_dead_) return;
  const TimeNs now = sim_.now();
  const auto victim = faults_.take_crash(now);
  if (!victim) return;
  const int v = *victim;
  crash_victim_ = v;
  crash_time_ = now;
  any_dead_ = true;
  dead_[static_cast<std::size_t>(v)] = 1;
  channel_.set_dead(v, true);

  // The victim dies silently: its compute stops, its queued traffic is
  // gone, its open phases close (log shipper flush) or truncate. Survivors
  // keep running — their sends to the victim fail deterministically and
  // give up after the retry budget — until the failure detector times out
  // the victim's heartbeats; nobody here consults the injector about the
  // future.
  teardown_worker(v, now, cfg_.crash_log == CrashLogStyle::kTruncated);
  sim_.schedule_at(detector_.detect_time(v, now),
                   [this] { detect_and_recover(); });
}

void PregelRun::detect_and_recover() {
  const TimeNs now = sim_.now();  // heartbeat-timeout detection instant
  const int victim = crash_victim_;
  // A new epoch invalidates every event of the aborted execution attempt.
  ++epoch_;
  const bool truncated = cfg_.crash_log == CrashLogStyle::kTruncated;
  const PathRef step = superstep_path();
  const bool step_open = log_.is_open(step);
  // Some WorkerCommunicate ENDs were logged ahead of time; the Superstep
  // must close at or after every logged child END.
  TimeNs step_close = now;
  for (int w = 0; w < workers_; ++w) {
    if (w != victim) teardown_worker(w, now, false);
    step_close = std::max(step_close, comm_end_[static_cast<std::size_t>(w)]);
  }
  if (step_open) {
    if (truncated) {
      log_.abandon(step);
    } else {
      log_.end(step, step_close, trace::kGlobalMachine);
    }
  }
  if (checkpoint_active_) abort_checkpoint(victim, now);
  ++superstep_instance_;

  // Checkpoint-restart recovery: the master restarts the victim and every
  // worker reloads the last checkpoint. The whole window is dead time,
  // reported as "Recovery" blocking events.
  const PathRef rec =
      exec_path_.child(pregel_symbols().recovery, recovery_seq_++);
  log_.begin(rec, now, trace::kGlobalMachine);
  const DurationNs restart = ns_from_seconds(cfg_.checkpoint.restart_seconds);
  TimeNs rec_end = now + restart;
  for (int w = 0; w < workers_; ++w) {
    const DurationNs reload = ns_for_work(
        worker_vertex_count(w) * cfg_.checkpoint.reload_work_per_vertex /
        static_cast<double>(cfg_.cluster.machine.cores));
    const TimeNs wend = now + restart + reload;
    const PathRef worker_rec =
        rec.child(pregel_symbols().recovery_worker, w);
    log_.begin(worker_rec, now, w);
    log_.end(worker_rec, wend, w);
    log_.block(pregel_names::kRecovery, worker_rec, now, wend, w);
    rec_end = std::max(rec_end, wend);
  }
  log_.end(rec, rec_end, trace::kGlobalMachine);
  restore_checkpoint_state();
  dead_[static_cast<std::size_t>(victim)] = 0;
  channel_.set_dead(victim, false);
  any_dead_ = false;
  crash_victim_ = -1;
  // Resume after both the recovery window and the last logged END of the
  // aborted superstep, so repeated Superstep instances never overlap.
  const TimeNs resume = std::max(rec_end, step_close);
  schedule_epoch(resume, [this] { start_superstep(sim_.now()); });
  schedule_next_crash(resume);
}

trace::RunArtifacts PregelRun::execute() {
  if (!faults_.empty()) {
    faults_.resolve(pregel_nominal_horizon(cfg_, g_, prog_));
    checkpointing_ = faults_.has_kind(sim::FaultKind::kCrash);
  }
  sim::FailureDetectorConfig heartbeat = cfg_.heartbeat;
  heartbeat.seed ^= cfg_.seed;
  detector_ = sim::FailureDetector(heartbeat, &faults_);
  sim::ReliableChannelConfig channel;
  channel.timeout_seconds = cfg_.retry.timeout_seconds;
  channel.backoff = cfg_.retry.backoff;
  channel.jitter = cfg_.retry.jitter;
  channel.max_attempts = std::max(1, cfg_.retry.max_attempts);
  channel_ = sim::ReliableChannel(channel, &faults_, workers_);
  batcher_ = CommBatcher(cfg_.batch, workers_);
  dead_.assign(static_cast<std::size_t>(workers_), 0);
  comm_end_.assign(static_cast<std::size_t>(workers_), 0);
  load_graph();
  sim_.run();
  G10_CHECK_MSG(execute_finished_, "simulation ended before the job finished");

  trace::RunArtifacts artifacts;
  artifacts.makespan = makespan_;
  artifacts.vertex_values = value_;
  comm_.batch_flushes =
      static_cast<std::int64_t>(batcher_.stats().total_flushes());
  artifacts.comm = std::move(comm_);
  artifacts.phase_events = log_.take_phase_events();
  artifacts.blocking_events = log_.take_blocking_events();
  for (int w = 0; w < workers_; ++w) {
    auto& state = ws_[static_cast<std::size_t>(w)];
    trace::GroundTruthSeries cpu;
    cpu.resource = pregel_names::kCpu;
    cpu.machine = w;
    cpu.capacity = static_cast<double>(cfg_.cluster.machine.cores);
    cpu.series = StepFunction::clamped_sum(state.cpu->series(), state.noise,
                                           cpu.capacity);
    artifacts.ground_truth.push_back(std::move(cpu));

    trace::GroundTruthSeries net;
    net.resource = pregel_names::kNetwork;
    net.machine = w;
    net.capacity = cfg_.cluster.machine.nic_bytes_per_sec();
    net.series = state.nic->finalize_rate_series(makespan_);
    artifacts.ground_truth.push_back(std::move(net));
  }
  return artifacts;
}

}  // namespace

PregelEngine::PregelEngine(PregelConfig config) : config_(std::move(config)) {
  config_.cluster.validate();
  G10_CHECK(config_.chunk_vertices > 0);
  G10_CHECK(config_.partitions_per_thread > 0);
}

trace::RunArtifacts PregelEngine::run(
    const graph::Graph& graph, const algorithms::PregelProgram& program) const {
  PregelRun run(config_, graph, program);
  return run.execute();
}

TimeNs PregelEngine::estimate_horizon(
    const graph::Graph& graph, const algorithms::PregelProgram& program) const {
  return pregel_nominal_horizon(config_, graph, program);
}

}  // namespace g10::engine
