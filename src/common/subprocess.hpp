// Child-process spawning for the ensemble supervisor (DESIGN.md §15).
//
// A thin fork/exec wrapper that provides the three things the supervisor
// needs and std::system cannot give: (1) the child runs in its own process
// group, so a SIGKILL reaches every grandchild a wedged worker may have
// leaked (orphan reaping); (2) resource sandboxes — RLIMIT_AS and
// RLIMIT_CPU are installed between fork and exec, so a memory-exploding or
// CPU-spinning child is contained by the kernel, not by cooperative checks;
// (3) fd plumbing — selected parent descriptors are dup2'd to fixed child
// fds (the status/heartbeat pipe), with everything else O_CLOEXEC.
//
// fork+exec is used rather than posix_spawn because rlimit installation
// needs a pre-exec hook posix_spawn does not portably offer; the child-side
// code between fork and exec is restricted to async-signal-safe calls
// (setpgid/setrlimit/dup2/execvp/_exit), so spawning from a process with
// running threads is safe as long as the caller's own state is (the
// supervisor is single-threaded by design).
//
// Exit classification: ExitStatus splits the waitpid status into
// exited/code vs signaled/signal and renders a stable human-readable
// describe() ("exited with code 3", "killed by SIGSEGV") that the
// supervisor copies into journal records, so signal attribution survives
// into the aggregate report.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g10 {

/// Kernel-enforced sandboxes installed in the child before exec. Zero means
/// "inherit the parent's limit" (no sandbox on that dimension).
struct SpawnLimits {
  std::uint64_t address_space_bytes = 0;  ///< RLIMIT_AS (hard+soft)
  double cpu_seconds = 0.0;               ///< RLIMIT_CPU (SIGXCPU past soft)
};

struct SpawnOptions {
  /// Put the child in a fresh process group (pgid == child pid), so
  /// Subprocess::kill(sig) can signal the whole tree at once.
  bool new_process_group = true;
  SpawnLimits limits;
  /// dup2(parent_fd, child_fd) pairs applied in the child before exec.
  /// dup2 clears O_CLOEXEC on the target, so a CLOEXEC pipe end can be
  /// handed to exactly one child without leaking into siblings.
  std::vector<std::pair<int, int>> dup_fds;
};

/// Decoded waitpid(2) status.
struct ExitStatus {
  bool exited = false;    ///< normal exit — `code` is valid
  int code = 0;
  bool signaled = false;  ///< killed by a signal — `signal_number` is valid
  int signal_number = 0;

  bool success() const { return exited && code == 0; }
  /// "exited with code 3" / "killed by SIGSEGV" (stable wording — journal
  /// records and tests match on it).
  std::string describe() const;
};

/// "SIGSEGV" for SIGSEGV & co; "signal 63" for numbers without a name.
std::string signal_name(int signal_number);

/// An anonymous pipe, both ends O_CLOEXEC. Closes what it still owns on
/// destruction; release either end to transfer ownership.
class Pipe {
 public:
  Pipe();  ///< throws CheckError on failure
  ~Pipe();

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;
  Pipe(Pipe&& other) noexcept;
  Pipe& operator=(Pipe&& other) noexcept;

  int read_fd() const { return read_fd_; }
  int write_fd() const { return write_fd_; }
  int release_read();   ///< caller now owns the fd (-1 afterwards)
  int release_write();
  void close_read();
  void close_write();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// One spawned child. Movable, not copyable; the destructor does NOT kill
/// or reap a still-running child (the supervisor owns that policy) — it
/// only abandons the handle.
class Subprocess {
 public:
  /// Spawns argv[0] with execvp semantics. Throws CheckError when the
  /// fork/pipe plumbing fails; exec failure inside the child surfaces as
  /// exit code 127 through wait().
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const SpawnOptions& options = {});

  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }
  /// True until the child has been reaped by poll()/wait().
  bool running() const { return pid_ > 0 && !status_.has_value(); }

  /// Non-blocking reap: nullopt while the child is still alive, the final
  /// status (cached; repeat calls are free) once it exited.
  std::optional<ExitStatus> poll();
  /// Blocking reap.
  ExitStatus wait();

  /// Sends `sig` to the child — to its whole process group when it was
  /// spawned with new_process_group (the default). No-op once reaped.
  void kill(int sig) const;

 private:
  pid_t pid_ = -1;
  bool own_group_ = false;
  std::optional<ExitStatus> status_;
};

}  // namespace g10
