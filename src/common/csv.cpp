#include "common/csv.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace g10 {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells, int decimals) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(format_fixed(v, decimals));
  write_row(text);
}

}  // namespace g10
