// Lightweight precondition / invariant checking.
//
// G10_CHECK is always on (the cost is negligible relative to the analysis
// pipeline) and throws g10::CheckError so tests can assert on violations
// instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace g10 {

/// Thrown when a G10_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace g10

#define G10_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::g10::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define G10_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream g10_os_;                                    \
      g10_os_ << msg;                                                \
      ::g10::detail::check_failed(#cond, __FILE__, __LINE__, g10_os_.str()); \
    }                                                                \
  } while (0)
