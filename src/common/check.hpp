// Lightweight precondition / invariant checking.
//
// Two tiers, both always on (the cost is negligible relative to the
// analysis pipeline) and both throwing so tests can assert on violations
// instead of aborting the process:
//
//  - G10_CHECK / G10_CHECK_MSG guard *input* preconditions: a violation
//    means the caller handed in bad data (malformed trace, inconsistent
//    model). Throws g10::CheckError; the pipeline's checked entry points
//    convert these into structured status errors.
//  - G10_ASSERT / G10_ASSERT_MSG document *internal* invariants: a
//    violation means a bug in this codebase, never bad input. Throws
//    g10::AssertError (a CheckError subclass, so existing handlers still
//    catch it) with a message prefixed "internal invariant violated".
//
// Both carry std::source_location, so the failure message names the
// function as well as the file:line without any macro __FILE__ plumbing.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace g10 {

/// Thrown when a G10_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a G10_ASSERT condition is violated: an internal bug, not a
/// data problem. Subclasses CheckError so existing catch sites keep working.
class AssertError : public CheckError {
 public:
  explicit AssertError(const std::string& what) : CheckError(what) {}
};

namespace detail {

inline std::string check_message(const char* kind, const char* expr,
                                 const std::source_location& loc,
                                 const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << expr << " at " << loc.file_name() << ':' << loc.line()
     << " in " << loc.function_name();
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}

[[noreturn]] inline void check_failed(const char* expr,
                                      const std::source_location& loc,
                                      const std::string& msg) {
  throw CheckError(check_message("check failed", expr, loc, msg));
}

[[noreturn]] inline void assert_failed(const char* expr,
                                       const std::source_location& loc,
                                       const std::string& msg) {
  throw AssertError(
      check_message("internal invariant violated", expr, loc, msg));
}

}  // namespace detail
}  // namespace g10

#define G10_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::g10::detail::check_failed(                             \
          #cond, ::std::source_location::current(), "");       \
    }                                                          \
  } while (0)

#define G10_CHECK_MSG(cond, msg)                               \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream g10_os_;                              \
      g10_os_ << msg;                                          \
      ::g10::detail::check_failed(                             \
          #cond, ::std::source_location::current(), g10_os_.str()); \
    }                                                          \
  } while (0)

#define G10_ASSERT(cond)                                       \
  do {                                                         \
    if (!(cond)) {                                             \
      ::g10::detail::assert_failed(                            \
          #cond, ::std::source_location::current(), "");       \
    }                                                          \
  } while (0)

#define G10_ASSERT_MSG(cond, msg)                              \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream g10_os_;                              \
      g10_os_ << msg;                                          \
      ::g10::detail::assert_failed(                            \
          #cond, ::std::source_location::current(), g10_os_.str()); \
    }                                                          \
  } while (0)
