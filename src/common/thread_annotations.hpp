// Clang thread-safety-analysis annotations (no-ops elsewhere).
//
// The macros expand to Clang's capability attributes so that lock
// discipline — which mutex guards which field, which functions must be
// called with a lock held — is declared in the types and checked at
// compile time (-Wthread-safety; the build promotes violations to errors
// with -Werror=thread-safety under Clang). GCC and MSVC see empty macros,
// so annotated code stays portable.
//
// Use g10::Mutex / g10::MutexLock from common/mutex.hpp as the annotated
// capability types; std::mutex itself carries no attributes under
// libstdc++, so the analysis cannot see through it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define G10_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define G10_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex).
#define G10_CAPABILITY(name) G10_THREAD_ANNOTATION_IMPL(capability(name))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define G10_SCOPED_CAPABILITY G10_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// Declares that a field or variable may only be accessed while holding
/// the given capability.
#define G10_GUARDED_BY(x) G10_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// Like G10_GUARDED_BY, but guards the data a pointer points to.
#define G10_PT_GUARDED_BY(x) G10_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// Declares that a function acquires the given capabilities and does not
/// release them before returning.
#define G10_ACQUIRE(...) \
  G10_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities.
#define G10_RELEASE(...) \
  G10_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// Declares that a function attempts to acquire a capability; `result` is
/// the return value that indicates success.
#define G10_TRY_ACQUIRE(result, ...) \
  G10_THREAD_ANNOTATION_IMPL(try_acquire_capability(result, __VA_ARGS__))

/// Declares that the caller must hold the given capabilities.
#define G10_REQUIRES(...) \
  G10_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities (prevents
/// self-deadlock on non-reentrant mutexes).
#define G10_EXCLUDES(...) G10_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define G10_RETURN_CAPABILITY(x) G10_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// Escape hatch: disables the analysis for one function (used for code the
/// analysis cannot model, e.g. conditional locking).
#define G10_NO_THREAD_SAFETY_ANALYSIS \
  G10_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)
