#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace g10 {

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  G10_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back()) os_ << ',';
    stack_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  G10_CHECK(!stack_.empty() && !after_key_);
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  G10_CHECK(!stack_.empty() && !after_key_);
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  G10_CHECK(!stack_.empty() && !after_key_);
  if (stack_.back()) os_ << ',';
  stack_.back() = true;
  std::string quoted;
  json_escape(quoted, k);
  os_ << quoted << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  std::string quoted;
  json_escape(quoted, v);
  os_ << quoted;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  os_ << json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(std::string_view message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.string_);
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out.kind_ = JsonValue::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items_.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (we never emit surrogates for
          // the control characters the writer escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view raw = text_.substr(start, pos_ - start);
    if (raw.empty()) return fail("expected a JSON value");
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), v);
    if (ec != std::errc() || ptr != raw.data() + raw.size()) {
      return fail("malformed number");
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = v;
    out.raw_number_ = std::string(raw);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return JsonParser(text, error).run();
}

bool JsonValue::as_bool() const {
  G10_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::as_double() const {
  G10_CHECK(kind_ == Kind::kNumber);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  G10_CHECK(kind_ == Kind::kNumber);
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(
      raw_number_.data(), raw_number_.data() + raw_number_.size(), v);
  if (ec == std::errc() && ptr == raw_number_.data() + raw_number_.size()) {
    return v;
  }
  return static_cast<std::int64_t>(number_);
}

std::uint64_t JsonValue::as_uint() const {
  G10_CHECK(kind_ == Kind::kNumber);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(
      raw_number_.data(), raw_number_.data() + raw_number_.size(), v);
  if (ec == std::errc() && ptr == raw_number_.data() + raw_number_.size()) {
    return v;
  }
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::as_string() const {
  G10_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  G10_CHECK(kind_ == Kind::kArray);
  return items_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind_ == Kind::kNumber ? v->number_ : fallback;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind_ == Kind::kNumber ? v->as_int() : fallback;
}

std::uint64_t JsonValue::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind_ == Kind::kNumber ? v->as_uint() : fallback;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind_ == Kind::kString ? v->string_
                                                   : std::string(fallback);
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind_ == Kind::kBool ? v->bool_ : fallback;
}

}  // namespace g10
