#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

namespace g10 {

namespace {

std::size_t env_threads() {
  // srclint: entropy-ok(documented G10_THREADS override; selects parallelism, never results)
  const char* raw = std::getenv("G10_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value <= 0) return 0;
  return static_cast<std::size_t>(value);
}

}  // namespace

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const std::size_t env = env_threads(); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(Options options)
    : queue_capacity_(options.queue_capacity > 0 ? options.queue_capacity : 1) {
  const std::size_t threads = resolve_threads(options.threads);
  if (threads <= 1) return;  // serial pool: everything runs inline
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(state_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  std::size_t target;
  {
    MutexLock lock(state_mutex_);
    while (pending_ >= queue_capacity_ && !stop_) space_cv_.wait(state_mutex_);
    if (stop_) return;
    ++pending_;
    ++unfinished_;
    target = next_worker_++ % workers_.size();
  }
  {
    MutexLock lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  if (workers_.empty()) return false;
  std::size_t target;
  {
    MutexLock lock(state_mutex_);
    if (stop_ || pending_ >= queue_capacity_) return false;
    ++pending_;
    ++unfinished_;
    target = next_worker_++ % workers_.size();
  }
  {
    MutexLock lock(workers_[target]->mutex);
    workers_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
  return true;
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO keeps the cache warm) ...
  {
    Worker& mine = *workers_[self];
    MutexLock lock(mine.mutex);
    if (!mine.tasks.empty()) {
      out = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from a sibling (FIFO spreads the large,
  // early chunks of a fan-out across thieves).
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (!try_acquire(self, task)) {
      MutexLock lock(state_mutex_);
      while (pending_ == 0 && !stop_) wake_cv_.wait(state_mutex_);
      if (stop_ && pending_ == 0) return;
      continue;  // re-scan the queues with the lock released
    }
    {
      MutexLock lock(state_mutex_);
      --pending_;
    }
    space_cv_.notify_one();
    task();
    {
      MutexLock lock(state_mutex_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(state_mutex_);
  while (unfinished_ != 0) idle_cv_.wait(state_mutex_);
}

namespace {

/// Shared state of one parallel_for fan-out. Chunks are claimed through an
/// atomic cursor; completion is tracked under a mutex so waiters can sleep.
/// Kept alive by shared_ptr: a task may still sit in a worker deque after
/// the caller finished every chunk itself and returned.
struct ForLoopState {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  Mutex mutex;
  std::condition_variable_any done_cv;
  std::size_t chunks_done G10_GUARDED_BY(mutex) = 0;
  /// Exception of the lowest-index failing chunk, for deterministic rethrow.
  std::size_t error_chunk G10_GUARDED_BY(mutex) = 0;
  std::exception_ptr error G10_GUARDED_BY(mutex);

  /// Claims and runs chunks until none are left.
  void drain() G10_EXCLUDES(mutex) {
    while (true) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count) return;
      run_chunk(chunk);
    }
  }

  void run_chunk(std::size_t chunk) G10_EXCLUDES(mutex) {
    const std::size_t begin = chunk * grain;
    const std::size_t end = std::min(n, begin + grain);
    std::exception_ptr caught;
    try {
      for (std::size_t i = begin; i < end; ++i) (*body)(i);
    } catch (...) {
      caught = std::current_exception();
    }
    MutexLock lock(mutex);
    if (caught && (!error || chunk < error_chunk)) {
      error = caught;
      error_chunk = chunk;
    }
    if (++chunks_done == chunk_count) done_cv.notify_all();
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForLoopState>();
  state->n = n;
  state->grain = grain;
  state->chunk_count = (n + grain - 1) / grain;
  state->body = &body;

  // One helper task per worker (capped by the chunk count); the caller
  // drains too, so completion never depends on a task being picked up —
  // which is why a full queue can simply drop helpers (try_submit) instead
  // of blocking, keeping nested fan-outs deadlock-free.
  const std::size_t helpers =
      std::min(workers_.size(), state->chunk_count - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    if (!try_submit([state] { state->drain(); })) break;
  }
  state->drain();

  MutexLock lock(state->mutex);
  while (state->chunks_done != state->chunk_count) {
    state->done_cv.wait(state->mutex);
  }
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(ThreadPool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->parallel_for(n, grain, body);
}

}  // namespace g10
