#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace g10 {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  G10_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  G10_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace g10
