// Plain-text table rendering for the experiment harnesses: every bench binary
// prints the rows of its paper table/figure through this.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace g10 {

/// Column-aligned text table. Cells are strings; the renderer pads columns to
/// the widest cell and draws a header separator.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  void render(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace g10
