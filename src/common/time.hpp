// Time representation shared by the simulator, the trace formats, and the
// Grade10 analysis pipeline.
//
// All timestamps are integer nanoseconds on a single simulated clock that
// starts at 0. Grade10 discretizes time into fixed-length timeslices
// (§III-C of the paper); TimesliceGrid maps between the two views.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace g10 {

/// Absolute simulated time in nanoseconds since workload start.
using TimeNs = std::int64_t;

/// A span of simulated time in nanoseconds.
using DurationNs = std::int64_t;

/// Index of a timeslice on a TimesliceGrid (0-based).
using TimesliceIndex = std::int64_t;

inline constexpr DurationNs kMicrosecond = 1'000;
inline constexpr DurationNs kMillisecond = 1'000'000;
inline constexpr DurationNs kSecond = 1'000'000'000;

/// Converts nanoseconds to (double) seconds, for reporting.
constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}

/// Converts nanoseconds to (double) milliseconds, for reporting.
constexpr double to_millis(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

/// A fixed-duration discretization of the timeline (paper §III-C).
///
/// Timeslice i covers [i * duration, (i + 1) * duration). Grade10 assumes the
/// SUT is in steady state inside one timeslice; the duration is the main
/// knob for analysis granularity (tens of milliseconds in practice).
class TimesliceGrid {
 public:
  explicit TimesliceGrid(DurationNs slice_duration)
      : slice_duration_(slice_duration) {
    G10_CHECK_MSG(slice_duration > 0, "timeslice duration must be positive");
  }

  DurationNs slice_duration() const { return slice_duration_; }

  /// Timeslice containing time t (floor).
  TimesliceIndex slice_of(TimeNs t) const {
    G10_CHECK(t >= 0);
    return t / slice_duration_;
  }

  /// First timeslice whose start is >= t (ceil). Used for snapping phase
  /// starts, so a phase is counted only in slices it (mostly) covers.
  TimesliceIndex slice_ceil(TimeNs t) const {
    G10_CHECK(t >= 0);
    return (t + slice_duration_ - 1) / slice_duration_;
  }

  TimeNs start_of(TimesliceIndex s) const { return s * slice_duration_; }
  TimeNs end_of(TimesliceIndex s) const { return (s + 1) * slice_duration_; }

  /// Number of slices needed to cover [0, end): ceil(end / duration).
  TimesliceIndex slice_count(TimeNs end) const {
    G10_CHECK(end >= 0);
    return (end + slice_duration_ - 1) / slice_duration_;
  }

 private:
  DurationNs slice_duration_;
};

/// Half-open time interval [begin, end).
struct Interval {
  TimeNs begin = 0;
  TimeNs end = 0;

  DurationNs length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool contains(TimeNs t) const { return t >= begin && t < end; }

  /// Length of the overlap with [a, b).
  DurationNs overlap(TimeNs a, TimeNs b) const {
    const TimeNs lo = begin > a ? begin : a;
    const TimeNs hi = end < b ? end : b;
    return hi > lo ? hi - lo : 0;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace g10
