#include "common/step_function.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace g10 {

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);
}

std::size_t StepFunction::index_of(TimeNs t) const {
  // Last breakpoint with time <= t.
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return npos;
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

void StepFunction::add(TimeNs time, double delta) {
  if (delta == 0.0 && !times_.empty()) return;
  if (times_.empty() || time > times_.back()) {
    const double base = times_.empty() ? 0.0 : values_.back();
    times_.push_back(time);
    values_.push_back(base + delta);
    return;
  }
  if (time == times_.back()) {
    values_.back() += delta;
    return;
  }
  // Out-of-order: insert (or merge) a breakpoint and shift all later values.
  auto it = std::lower_bound(times_.begin(), times_.end(), time);
  auto idx = static_cast<std::size_t>(it - times_.begin());
  if (it != times_.end() && *it == time) {
    for (std::size_t i = idx; i < values_.size(); ++i) values_[i] += delta;
    return;
  }
  const double base = idx == 0 ? 0.0 : values_[idx - 1];
  times_.insert(it, time);
  values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(idx), base);
  for (std::size_t i = idx; i < values_.size(); ++i) values_[i] += delta;
}

void StepFunction::set(TimeNs time, double value) {
  G10_CHECK_MSG(times_.empty() || time >= times_.back(),
                "StepFunction::set requires non-decreasing time");
  if (!times_.empty() && times_.back() == time) {
    values_.back() = value;
    return;
  }
  times_.push_back(time);
  values_.push_back(value);
}

double StepFunction::value_at(TimeNs t) const {
  const std::size_t i = index_of(t);
  return i == npos ? 0.0 : values_[i];
}

double StepFunction::integrate(TimeNs a, TimeNs b) const {
  if (b <= a || times_.empty()) return 0.0;
  double total = 0.0;
  std::size_t i = index_of(a);
  TimeNs cursor = a;
  double current = i == npos ? 0.0 : values_[i];
  std::size_t next = i == npos ? 0 : i + 1;
  // Walk breakpoints strictly inside (a, b) with a single bounds check per
  // step; the same segments accumulate in the same order as the generic
  // cursor loop, so the partial sums are bitwise identical.
  while (next < times_.size() && times_[next] < b) {
    if (times_[next] > cursor) {
      total += current * static_cast<double>(times_[next] - cursor);
      cursor = times_[next];
    }
    current = values_[next];
    ++next;
  }
  if (b > cursor) total += current * static_cast<double>(b - cursor);
  return total;
}

double StepFunction::average(TimeNs a, TimeNs b) const {
  if (b <= a) return value_at(a);
  return integrate(a, b) / static_cast<double>(b - a);
}

double StepFunction::max_over(TimeNs a, TimeNs b) const {
  if (b <= a) return value_at(a);
  double best = value_at(a);
  auto it = std::upper_bound(times_.begin(), times_.end(), a);
  for (; it != times_.end() && *it < b; ++it) {
    const auto idx = static_cast<std::size_t>(it - times_.begin());
    best = std::max(best, values_[idx]);
  }
  return best;
}

TimeNs StepFunction::last_change() const {
  return times_.empty() ? 0 : times_.back();
}

StepFunction StepFunction::clamped_sum(const StepFunction& a,
                                       const StepFunction& b, double cap) {
  StepFunction out;
  out.times_.reserve(a.times_.size() + b.times_.size());
  out.values_.reserve(a.times_.size() + b.times_.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double va = 0.0;
  double vb = 0.0;
  while (ia < a.times_.size() || ib < b.times_.size()) {
    TimeNs t;
    if (ib >= b.times_.size() ||
        (ia < a.times_.size() && a.times_[ia] <= b.times_[ib])) {
      t = a.times_[ia];
    } else {
      t = b.times_[ib];
    }
    while (ia < a.times_.size() && a.times_[ia] == t) va = a.values_[ia++];
    while (ib < b.times_.size() && b.times_[ib] == t) vb = b.values_[ib++];
    out.set(t, std::min(va + vb, cap));
  }
  out.compact();
  return out;
}

void StepFunction::compact(double epsilon) {
  if (times_.size() < 2) return;
  std::size_t w = 1;
  for (std::size_t r = 1; r < times_.size(); ++r) {
    if (std::fabs(values_[r] - values_[w - 1]) <= epsilon) continue;
    times_[w] = times_[r];
    values_[w] = values_[r];
    ++w;
  }
  times_.resize(w);
  values_.resize(w);
}

}  // namespace g10
