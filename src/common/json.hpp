// Minimal JSON support for the machine-readable artifacts this repo
// produces and consumes: the ensemble run journal (JSONL, parsed back on
// --resume), the ensemble report, and the lint --json emitter's escaping.
//
// Two halves:
//  - JsonWriter: a streaming writer with automatic separators and string
//    escaping. Doubles are rendered with shortest-round-trip to_chars, so a
//    value written and re-parsed is bit-identical — the property the
//    ensemble's byte-identical --resume guarantee rests on.
//  - JsonValue: a tiny recursive-descent parser for trusted, well-formed
//    input (our own journal lines). Object member order is preserved.
//    Not a general-purpose validator: it accepts a superset of JSON in a
//    few corners (e.g. lone surrogates pass through) but rejects anything
//    structurally damaged, which is what torn journal tails look like.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace g10 {

/// Appends the JSON string literal for `s` (quotes included) to `out`.
void json_escape(std::string& out, std::string_view s);

/// Shortest decimal rendering of `v` that parses back to the same double
/// (std::to_chars). Non-finite values render as null (JSON has no inf/nan).
std::string json_double(double v);

/// Streaming JSON writer. Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("runs").begin_array();
///   w.value(1.5); w.value("ok");
///   w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value() / begin_*() is its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  void separate();

  std::ostream& os_;
  /// Stack of container states: false = empty so far, true = needs comma.
  std::vector<bool> stack_;
  bool after_key_ = false;
};

/// Parsed JSON value. Numbers are kept as doubles (plus the raw text, so
/// integer-valued fields survive uint64 round-trips).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; trailing garbage is an error. Returns
  /// nullopt and a diagnostic on malformed input.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; G10_CHECK-fail on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Convenience typed lookups with defaults, for flat journal records.
  double get_double(std::string_view key, double fallback = 0.0) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback = 0) const;
  std::uint64_t get_uint(std::string_view key,
                         std::uint64_t fallback = 0) const;
  std::string get_string(std::string_view key,
                         std::string_view fallback = "") const;
  bool get_bool(std::string_view key, bool fallback = false) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string raw_number_;  ///< exact source text of a number
  std::string string_;
  std::vector<JsonValue> items_;                          ///< arrays
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< objects
};

}  // namespace g10
