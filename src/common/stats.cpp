#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace g10 {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  G10_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 0.5);
}

double coefficient_of_variation(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  if (s.count() == 0 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

double relative_l1_error(const std::vector<double>& a,
                         const std::vector<double>& b) {
  G10_CHECK_MSG(a.size() == b.size(), "series must have equal length");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += std::fabs(b[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : num;
  return num / den;
}

}  // namespace g10
